"""Real two-process offloading over TCP: the protocol, not a simulation.

A thin driver over :mod:`repro.runtime.transport`: spawns an edge-server
process, runs Algorithm 1's joint (point, codec) decision, executes the
head segment locally, then ships the crossing tensors twice — once as a
monolithic fp32 upload and once streamed in chunks with the decided codec
— and checks both replies against local execution.  The streamed request
lets the server decode tensors and start tail chains while later bytes
are still in flight; its ``tail_s`` (server time exposed after the last
byte) is the real-socket counterpart of the simulator's overlap credit.

Run:  python examples/distributed_sockets.py
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time

import numpy as np

from repro import GraphPartitioner, LoADPartEngine, OfflineProfiler, build_model
from repro.network.streaming import StreamingConfig
from repro.nn import GraphExecutor, SegmentExecutor
from repro.runtime.transport import TransportClient, run_server

MODEL = "squeezenet"
SEED = 42
HOST, PORT = "127.0.0.1", 47123
BANDWIDTH = 8e6


async def drive(engine: LoADPartEngine) -> None:
    graph = engine.graph
    # 4 KiB chunks so the streamed arm visibly pipelines (SqueezeNet's
    # compressed cut is ~15 kB; the 32 KiB default would be one chunk).
    streaming = StreamingConfig(chunk_bytes=4096)
    joint = engine.decide_joint(BANDWIDTH, streaming=streaming)
    point = joint.point
    part = GraphPartitioner(graph).partition(point)
    executor = GraphExecutor(graph, seed=SEED)

    rng = np.random.default_rng(1)
    x = rng.standard_normal(graph.input_spec.shape).astype(np.float32)
    reference = executor.run(x)

    head = SegmentExecutor(part.head, params=executor.params)
    wire_order = [name for name, _nb, _op in engine.cut_tensors(point)]
    client = await TransportClient.connect(HOST, PORT)
    try:
        for i in range(3):
            t0 = time.perf_counter()
            boundary = head.run({graph.input_name: x}) if point > 0 else {}
            if graph.input_name in part.transfer_specs:
                boundary[graph.input_name] = x
            device_s = time.perf_counter() - t0

            for label, codec, chunk_bytes in (
                ("monolithic fp32", "fp32", None),
                (f"streamed {joint.codec}", joint.codec, streaming.chunk_bytes),
            ):
                t1 = time.perf_counter()
                out = await client.offload(
                    point, boundary, codec=codec,
                    chunk_bytes=chunk_bytes, order=wire_order)
                round_trip_s = time.perf_counter() - t1
                err = float(np.abs(out.result - reference).max())
                print(f"request {i + 1} [{label:>16}]: p={point}, "
                      f"shipped {out.wire_bytes / 1e3:.1f} kB in {out.chunks} "
                      f"chunk(s), device {device_s * 1e3:.1f} ms, server "
                      f"{out.server_s * 1e3:.1f} ms (tail {out.tail_s * 1e3:.1f} ms), "
                      f"round-trip {round_trip_s * 1e3:.1f} ms, max|err|={err:.1e}")
                assert err < 1e-4
        await client.shutdown_server()
    finally:
        await client.close()


def main() -> None:
    ready = multiprocessing.Event()
    server = multiprocessing.Process(
        target=run_server, args=(MODEL, SEED, PORT, ready), daemon=True)
    server.start()
    if not ready.wait(timeout=30):
        raise RuntimeError("server did not come up")

    graph = build_model(MODEL)
    report = OfflineProfiler(samples_per_category=250, seed=7).run()
    engine = LoADPartEngine(graph, report.user_predictor, report.edge_predictor)
    asyncio.run(drive(engine))
    server.join(timeout=5)
    print("distributed results identical to local execution")


if __name__ == "__main__":
    main()
