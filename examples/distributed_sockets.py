"""Real two-process offloading over TCP: the protocol, not a simulation.

Spawns an edge-server process listening on localhost, then acts as the
user-end device: it runs Algorithm 1, executes the head segment with the
NumPy executor, ships the intermediate tensor (plus the partition point)
over a real socket, and receives the classification result back — the
paper's Fig. 3 data path end to end.  Both processes build identical
weights from the shared model definition, so no parameters cross the wire.

Run:  python examples/distributed_sockets.py
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import struct
import time

import numpy as np

from repro import GraphPartitioner, LoADPartEngine, OfflineProfiler, build_model
from repro.core.cache import PartitionCache
from repro.nn import GraphExecutor, SegmentExecutor

MODEL = "squeezenet"
SEED = 42
HOST, PORT = "127.0.0.1", 47123


def send_msg(sock: socket.socket, header: dict, payload: bytes = b"") -> None:
    head = json.dumps(header).encode()
    sock.sendall(struct.pack("!II", len(head), len(payload)) + head + payload)


def recv_msg(sock: socket.socket) -> tuple[dict, bytes]:
    raw = recv_exact(sock, 8)
    head_len, payload_len = struct.unpack("!II", raw)
    header = json.loads(recv_exact(sock, head_len).decode())
    return header, recv_exact(sock, payload_len)


def recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = b""
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise ConnectionError("peer closed")
        buf += chunk
    return buf


def server_process(ready: multiprocessing.Event) -> None:
    """The edge server: loads the model, serves partition tails."""
    graph = build_model(MODEL)
    executor = GraphExecutor(graph, seed=SEED)  # identical weights via seed
    cache = PartitionCache(GraphPartitioner(graph))
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as srv:
        srv.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        srv.bind((HOST, PORT))
        srv.listen(1)
        ready.set()
        conn, _addr = srv.accept()
        with conn:
            while True:
                try:
                    header, payload = recv_msg(conn)
                except ConnectionError:
                    break
                if header.get("op") == "shutdown":
                    break
                point = header["point"]
                part = cache.get(point)
                boundary = {}
                cursor = 0
                for name, meta in header["tensors"].items():
                    nbytes = int(np.prod(meta["shape"])) * 4
                    arr = np.frombuffer(
                        payload[cursor:cursor + nbytes], dtype=np.float32
                    ).reshape(meta["shape"])
                    boundary[name] = arr
                    cursor += nbytes
                t0 = time.perf_counter()
                tail = SegmentExecutor(part.tail, params=executor.params)
                result = tail.run(boundary)[graph.output_name]
                exec_s = time.perf_counter() - t0
                send_msg(conn, {"exec_ms": exec_s * 1e3,
                                "shape": list(result.shape)},
                         np.ascontiguousarray(result).tobytes())


def main() -> None:
    ready = multiprocessing.Event()
    server = multiprocessing.Process(target=server_process, args=(ready,), daemon=True)
    server.start()
    ready.wait(timeout=10)

    graph = build_model(MODEL)
    report = OfflineProfiler(samples_per_category=250, seed=7).run()
    engine = LoADPartEngine(graph, report.user_predictor, report.edge_predictor)
    point = engine.decide(8e6).point
    part = GraphPartitioner(graph).partition(point)
    executor = GraphExecutor(graph, seed=SEED)

    rng = np.random.default_rng(1)
    x = rng.standard_normal(graph.input_spec.shape).astype(np.float32)
    reference = executor.run(x)

    head = SegmentExecutor(part.head, params=executor.params)
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.connect((HOST, PORT))
        for i in range(3):
            t0 = time.perf_counter()
            boundary = head.run({graph.input_name: x}) if point > 0 else {}
            if graph.input_name in part.transfer_specs:
                boundary[graph.input_name] = x
            device_s = time.perf_counter() - t0

            header = {
                "point": point,
                "tensors": {k: {"shape": list(v.shape)} for k, v in boundary.items()},
            }
            payload = b"".join(np.ascontiguousarray(v).tobytes() for v in boundary.values())
            t1 = time.perf_counter()
            send_msg(sock, header, payload)
            reply, result_bytes = recv_msg(sock)
            round_trip_s = time.perf_counter() - t1
            result = np.frombuffer(result_bytes, dtype=np.float32).reshape(reply["shape"])

            err = float(np.abs(result - reference).max())
            print(f"request {i + 1}: p={point}, shipped {len(payload) / 1e3:.1f} kB, "
                  f"device {device_s * 1e3:.1f} ms, server {reply['exec_ms']:.1f} ms, "
                  f"round-trip {round_trip_s * 1e3:.1f} ms, max|err|={err:.1e}")
            assert err < 1e-4
        send_msg(sock, {"op": "shutdown"})
    server.join(timeout=5)
    print("distributed result identical to local execution")


if __name__ == "__main__":
    main()
