"""Functional split execution: partition SqueezeNet and actually run it.

Demonstrates the executable side of the system (the stand-in for the
paper's MindSpore runtime): the graph is partitioned at the point the
decision engine picks, the head runs "on the device", the intermediate
tensors cross the (simulated) link, the tail runs "on the server" — and
the result is bit-identical to monolithic execution.

Run:  python examples/partition_and_execute.py
"""

import numpy as np

from repro import GraphPartitioner, OfflineProfiler, LoADPartEngine, build_model
from repro.nn import GraphExecutor, SegmentExecutor


def main() -> None:
    graph = build_model("squeezenet")
    report = OfflineProfiler(samples_per_category=250, seed=7).run()
    engine = LoADPartEngine(graph, report.user_predictor, report.edge_predictor)

    # Where would LoADPart split at 8 Mbps on an idle server?
    point = engine.decide(8e6).point
    part = GraphPartitioner(graph).partition(point)
    print(f"SqueezeNet split after topological position {point} "
          f"(of {engine.num_nodes})")
    print(f"  head: {len(part.head.compute_nodes)} nodes on the device")
    print(f"  tail: {len(part.tail.compute_nodes)} nodes on the server")
    print(f"  tensors crossing the link: "
          f"{ {k: str(v) for k, v in part.transfer_specs.items()} }")
    print(f"  upload size: {part.upload_bytes / 1e3:.1f} kB "
          f"(vs {graph.input_spec.nbytes / 1e3:.1f} kB raw input)")

    # Execute both ways on a real tensor.  Both sides initialise identical
    # weights from the shared model file (deterministic seeding), so no
    # weights ever cross the network — as in the paper's deployment.
    rng = np.random.default_rng(0)
    x = rng.standard_normal(graph.input_spec.shape).astype(np.float32)

    monolithic = GraphExecutor(graph, seed=42)
    reference = monolithic.run(x)

    device_side = SegmentExecutor(part.head, seed=42)
    transferred = device_side.run({graph.input_name: x})
    print(f"  device produced {len(transferred)} boundary tensor(s); "
          "uploading to the server ...")

    if graph.input_name in part.transfer_specs:
        transferred[graph.input_name] = x
    server_side = SegmentExecutor(part.tail, seed=42)
    result = server_side.run(transferred)[graph.output_name]

    error = float(np.abs(result - reference).max())
    print(f"  max |split - monolithic| = {error:.2e}")
    assert error < 1e-4, "partitioned execution must match"
    top5 = np.argsort(result[0])[-5:][::-1]
    print(f"  top-5 classes: {top5.tolist()}  (identical either way)")


if __name__ == "__main__":
    main()
