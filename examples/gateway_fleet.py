"""Sharded fleet: four edge servers behind a health-probing gateway.

Saturates 60 clients against the edge and crashes server 0 mid-run,
twice — once with a single server behind the gateway, once with four.
Each offload is routed by the joint ``(partition point, server)`` scan
(`engine.decide_fleet`) using the per-server load factors the
supervisor's probes keep fresh.  When server 0 dies the supervisor
marks it SUSPECT and then DEAD, client retries re-route to a live
sibling, and on restart the probe loop notices the wiped queue and
resets that server's ``k``.

The single-server fleet survives the crash (availability 1.0) but one
GPU carries everyone, so most requests retreat to local inference and
the tail stretches.  The four-server fleet absorbs the whole offered
load on the offload path: availability 1.0 *and* a far lower p95.

A third, heterogeneous arm mixes hardware: server 0 is fast and near,
server 1 runs a 4x slower GPU 30 ms farther away.  Per-server
``ServerProfile``s tell the router what each server *is* (a scaled edge
predictor, a bandwidth prior, a link-position prior), the supervisor
learns the actual link latencies from its two-size probes, and the
joint scan sends each request where it will actually finish soonest —
watch the routed counts concentrate on the fast shard.

Run:  python examples/gateway_fleet.py
"""

from repro import LoADPartEngine, OfflineProfiler, build_model
from repro.core.engine import ServerProfile
from repro.hardware.gpu_model import GpuModel, GpuParams
from repro.network.channel import NetworkParams
from repro.network.faults import ServerFaultPlan
from repro.network.traces import ConstantTrace
from repro.profiling.predictor import ScaledPredictor
from repro.runtime.gateway import GatewayConfig, GatewayFleetSystem
from repro.runtime.resilience import ResilienceConfig
from repro.runtime.supervisor import SupervisorConfig
from repro.runtime.system import SystemConfig

CLIENTS = 60
DURATION_S = 8.0
CRASH = (2.5, 5.0)          # server 0 dies mid-run, then restarts
SLOWDOWN = 4.0              # server 1's GPU handicap in the hetero arm
FAR_LATENCY_S = 0.03        # server 1's extra one-way link latency


def run(engine, num_servers: int):
    server_faults = [None] * num_servers
    server_faults[0] = ServerFaultPlan(crash_windows=(CRASH,))
    system = GatewayFleetSystem(
        engine, CLIENTS, num_servers=num_servers,
        bandwidth_trace=ConstantTrace(50e6),
        config=SystemConfig(seed=7, think_time_s=0.6,
                            resilience=ResilienceConfig(max_retries=2)),
        gateway_config=GatewayConfig(probes=SupervisorConfig(
            probe_period_s=0.5, dead_after_misses=2)),
        server_faults=server_faults,
    )
    return system, system.run(DURATION_S)


def run_heterogeneous(engine, edge_predictor):
    """Fast+near vs slow+far, routed by per-server beliefs."""
    base = GpuParams()
    slow_gpu = GpuModel(GpuParams(
        conv_rate=base.conv_rate / SLOWDOWN,
        dwconv_rate=base.dwconv_rate / SLOWDOWN,
        matmul_rate=base.matmul_rate / SLOWDOWN,
        mem_bandwidth=base.mem_bandwidth / SLOWDOWN))
    profiles = [
        ServerProfile(),
        ServerProfile(edge_predictor=ScaledPredictor(edge_predictor, SLOWDOWN),
                      extra_latency_s=FAR_LATENCY_S),
    ]
    system = GatewayFleetSystem(
        engine, CLIENTS, num_servers=2,
        bandwidth_trace=ConstantTrace(50e6),
        config=SystemConfig(seed=7, think_time_s=0.6,
                            resilience=ResilienceConfig(max_retries=2)),
        gateway_config=GatewayConfig(probes=SupervisorConfig(
            probe_period_s=0.5, dead_after_misses=2)),
        gpu_models=[None, slow_gpu],
        network_params=[NetworkParams(),
                        NetworkParams(base_latency_s=NetworkParams().base_latency_s
                                      + FAR_LATENCY_S)],
        profiles=profiles,
    )
    return system, system.run(DURATION_S)


def describe(label: str, system, result) -> None:
    records = [r for t in result.timelines for r in t]
    completed = sum(1 for r in records if r.completed)
    print(f"\n{label}: {len(records)} requests, "
          f"availability {completed / len(records):.1%}, "
          f"local fraction {result.local_fraction:.1%}, "
          f"p95 {result.p95_latency * 1e3:.1f} ms")
    print("  server   requests   completed   p95(ms)   failed")
    for s in result.server_breakdown():
        p95 = f"{s.p95_latency * 1e3:7.1f}" if s.completed else "      -"
        print(f"  {s.server_id:>6}   {s.requests:8d}   {s.completed:9d}   "
              f"{p95}   {s.failed:6d}")
    restarts = {sid: h.restarts_seen for sid, h in system.supervisor.health.items()}
    print(f"  restarts seen by the supervisor: {restarts}")


def main() -> None:
    report = OfflineProfiler(samples_per_category=150, seed=3).run()
    engine = LoADPartEngine(
        build_model("squeezenet"), report.user_predictor, report.edge_predictor
    )

    for num_servers in (1, 4):
        system, result = run(engine, num_servers)
        describe(f"fleet of {num_servers}", system, result)

    print("\nBoth fleets ride through the crash at full availability; the")
    print("4-server fleet also keeps the work on the edge — the supervisor")
    print("routes around the dead shard instead of retreating to local.")

    system, result = run_heterogeneous(engine, report.edge_predictor)
    describe("heterogeneous fleet (fast+near vs 4x-slow+far)", system, result)
    learned = {sid: round(system.supervisor.latency_for(sid) * 1e3, 2)
               for sid in system.supervisor.health}
    print(f"  routed counts: {dict(system.gateway.routed_counts)}")
    print(f"  learned link latencies (ms): {learned}")
    print("\nThe profiles tell the router server 1 is slow and far before a")
    print("single request lands there; the probe decomposition then learns")
    print("the real link latencies, keeping bandwidth estimates honest.")


if __name__ == "__main__":
    main()
