"""Bring your own DNN: partition a custom network with the public API.

The decision machinery is model-agnostic: anything expressible in the
graph IR gets per-node predictions, transmission-size analysis and
Algorithm 1 decisions for free.  This example builds a small custom
DAG-structured CNN (a MobileNet-ish stem with a residual tail), inspects
its cut landscape, and sweeps the decision over bandwidth and server load.

Run:  python examples/custom_model.py
"""

from repro import GraphBuilder, LoADPartEngine, OfflineProfiler
from repro.core.blocks import candidate_points


def build_custom_model():
    b = GraphBuilder("edgenet", (1, 3, 160, 160))
    # Stem: standard conv + BN + ReLU, stride 2.
    x = b.conv_block(b.input, 32, kernel=3, stride=2, padding=1, bn=True, prefix="stem")
    # Two depth-wise separable blocks (MobileNet style).
    for i, channels in enumerate((64, 128), start=1):
        x = b.dwconv(x, kernel=3, stride=2, padding=1, name=f"ds{i}.dw")
        x = b.batchnorm(x, name=f"ds{i}.dwbn")
        x = b.relu(x, name=f"ds{i}.dwrelu")
        x = b.conv(x, channels, kernel=1, name=f"ds{i}.pw")
        x = b.batchnorm(x, name=f"ds{i}.pwbn")
        x = b.relu(x, name=f"ds{i}.pwrelu")
    # A residual block.
    skip = x
    y = b.conv_block(x, 128, kernel=3, padding=1, bn=True, prefix="res.a")
    y = b.conv(y, 128, kernel=3, padding=1, name="res.b.conv")
    y = b.batchnorm(y, name="res.b.bn")
    x = b.add(y, skip, name="res.add")
    x = b.relu(x, name="res.relu")
    # Head.
    x = b.global_avgpool(x, name="pool")
    x = b.flatten(x, name="flatten")
    x = b.dense_block(x, 100, act=None, prefix="fc")
    b.output(x)
    return b.build()


def main() -> None:
    graph = build_custom_model()
    print(graph.summary())

    candidates = candidate_points(graph)
    print(f"\n{len(graph) + 1} partition positions, "
          f"{len(candidates)} block-boundary candidates: {candidates}")

    report = OfflineProfiler(samples_per_category=250, seed=7).run()
    engine = LoADPartEngine(graph, report.user_predictor, report.edge_predictor)

    print("\ndecision sweep (p: 0=full offload, "
          f"{engine.num_nodes}=local):")
    print("        " + "".join(f"  k={k:<5g}" for k in (1, 10, 100)))
    for bw_mbps in (1, 2, 4, 8, 16, 32, 64):
        points = [engine.decide(bw_mbps * 1e6, k=float(k)).point for k in (1, 10, 100)]
        print(f"{bw_mbps:>3} Mbps " + "".join(f"  p={p:<5}" for p in points))


if __name__ == "__main__":
    main()
