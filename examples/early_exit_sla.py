"""Early exits under mixed SLAs: degrade accuracy, never miss a deadline.

Eight MobileNetV1 clients share one edge server over an 8 Mbps uplink.
Half carry a strict 100 ms deadline the full network cannot meet at this
bandwidth; half carry a slack 350 ms deadline it meets comfortably.  The
same workload runs twice:

- the paper's engine (full network only): strict clients miss every
  deadline — the best partition point simply is not fast enough;
- the exit-carrying engine: ``decide_exit`` picks, per request, the
  latest (most accurate) exit whose best partition meets that request's
  SLA.  Strict traffic lands on an early exit and makes its deadline at
  a declared accuracy cost; slack traffic keeps the final exit — the
  full network, byte-identical weights — at full accuracy.

Run:  python examples/early_exit_sla.py
"""

from repro import LoADPartEngine, OfflineProfiler, SystemConfig, build_model
from repro.models import build_exit_model
from repro.network.traces import ConstantTrace
from repro.runtime.multi import MultiClientSystem

CLIENTS = 8
DURATION_S = 8.0
BANDWIDTH_BPS = 8e6
SLA_STRICT_S = 0.1
SLA_SLACK_S = 0.35


def run(engine):
    config = SystemConfig(seed=7, think_time_s=0.1,
                          sla_classes=(SLA_STRICT_S, SLA_SLACK_S))
    result = MultiClientSystem(engine, CLIENTS,
                               bandwidth_trace=ConstantTrace(BANDWIDTH_BPS),
                               config=config).run(DURATION_S)
    return [r for t in result.timelines for r in t]


def describe(label, records, accuracy_of):
    print(f"\n{label}:")
    for name, sla in (("strict", SLA_STRICT_S), ("slack", SLA_SLACK_S)):
        rows = [r for r in records if r.sla_s == sla]
        met = sum(1 for r in rows if r.met_sla)
        exits = sorted({"full" if r.exit_index is None else r.exit_index
                        for r in rows})
        acc = min(accuracy_of(r.exit_index) for r in rows if r.completed)
        print(f"  {name} ({sla * 1e3:.0f} ms): {met}/{len(rows)} deadlines "
              f"met, served at exit(s) {exits}, accuracy proxy >= {acc:.2f}")


def main() -> None:
    report = OfflineProfiler(samples_per_category=150, seed=3).run()
    plain = LoADPartEngine(build_model("mobilenet_v1"),
                           report.user_predictor, report.edge_predictor)
    graph, branches = build_exit_model("mobilenet_v1")
    exits = LoADPartEngine(graph, report.user_predictor,
                           report.edge_predictor, exits=branches)

    print(f"{CLIENTS} clients, {BANDWIDTH_BPS / 1e6:.0f} Mbps shared uplink, "
          f"SLA classes {SLA_STRICT_S * 1e3:.0f} ms / "
          f"{SLA_SLACK_S * 1e3:.0f} ms round-robin")

    full_records = run(plain)
    exit_records = run(exits)

    describe("full network only", full_records, exits.exit_accuracy)
    describe("joint (exit, point) decisions", exit_records,
             exits.exit_accuracy)

    strict = [r for r in exit_records if r.sla_s == SLA_STRICT_S]
    assert all(r.met_sla for r in strict)
    slack = [r for r in exit_records if r.sla_s == SLA_SLACK_S]
    assert all(r.exit_index == exits.num_exits - 1 for r in slack)
    print("\nthe exit engine met every strict deadline by trading declared "
          "accuracy,\nwhile slack traffic kept the full network.")


if __name__ == "__main__":
    main()
