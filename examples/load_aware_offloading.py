"""Load-aware offloading: the Fig. 9 scenario as a runnable demo.

SqueezeNet at a fixed 8 Mbps uplink while the edge server's GPU goes from
idle to 100%(l) to 100%(h) and back.  LoADPart (load-aware) runs against
the Neurosurgeon baseline (load-oblivious); the trace shows the partition
point escaping to local inference when the server saturates and returning
once the GPU watchdog reports recovery.

Run:  python examples/load_aware_offloading.py
"""

import numpy as np

from repro import (
    ConstantTrace,
    LoADPartEngine,
    OffloadingSystem,
    OfflineProfiler,
    SystemConfig,
    build_model,
    fig9_schedule,
)


def run_policy(engine, policy: str):
    system = OffloadingSystem(
        engine,
        bandwidth_trace=ConstantTrace(8e6),
        load_schedule=fig9_schedule(),
        config=SystemConfig(policy=policy, seed=3),
    )
    return system.run(280.0)


def main() -> None:
    report = OfflineProfiler(samples_per_category=250, seed=7).run()
    engine = LoADPartEngine(
        build_model("squeezenet"), report.user_predictor, report.edge_predictor
    )
    schedule = fig9_schedule()
    loadpart = run_policy(engine, "loadpart")
    baseline = run_policy(engine, "neurosurgeon")

    print("time   GPU load   LoADPart p   LoADPart(ms)   baseline(ms)")
    print("----   --------   ----------   ------------   ------------")
    for t0 in range(0, 280, 20):
        lp = loadpart.between(float(t0), float(t0 + 20))
        bl = baseline.between(float(t0), float(t0 + 20))
        if not len(lp) or not len(bl):
            continue
        level = schedule.level_at(t0 + 10.0).name
        point = int(np.median(lp.points))
        mode = "local" if point == engine.num_nodes else f"p={point}"
        print(f"{t0:>3}s   {level:>8}   {mode:>10}   "
              f"{lp.mean_latency() * 1e3:12.1f}   {bl.mean_latency() * 1e3:12.1f}")

    reduction = 1 - loadpart.mean_latency() / baseline.mean_latency()
    print(f"\nmean end-to-end latency: LoADPart {loadpart.mean_latency() * 1e3:.1f} ms "
          f"vs baseline {baseline.mean_latency() * 1e3:.1f} ms "
          f"({100 * reduction:.1f}% reduction; paper: 14.2% avg, up to 32.3%)")


if __name__ == "__main__":
    main()
