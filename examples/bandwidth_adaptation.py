"""Bandwidth adaptation: LoADPart tracking a fluctuating WiFi link.

Runs AlexNet through the full runtime while the true link bandwidth follows
a random walk between ~1 and ~40 Mbps.  The device only sees what its
sliding-window estimator measures (probes + passive samples), yet the
partition point tracks the link: early cuts when the link is fast, local
inference when it collapses — the Fig. 6 behaviour on a realistic trace.

Run:  python examples/bandwidth_adaptation.py
"""

import numpy as np

from repro import LoADPartEngine, OffloadingSystem, OfflineProfiler, SystemConfig, build_model
from repro.network.traces import RandomWalkTrace


def main() -> None:
    report = OfflineProfiler(samples_per_category=250, seed=7).run()
    engine = LoADPartEngine(
        build_model("alexnet"), report.user_predictor, report.edge_predictor
    )
    trace = RandomWalkTrace(
        mean_bps=8e6, sigma=0.35, step_s=2.0, duration_s=180.0,
        min_bps=1e6, max_bps=40e6, seed=4,
    )
    system = OffloadingSystem(
        engine, bandwidth_trace=trace, config=SystemConfig(policy="loadpart", seed=1)
    )
    timeline = system.run(180.0)

    print("time   true link   estimated   partition   mean latency")
    print("----   ---------   ---------   ---------   ------------")
    for t0 in range(0, 180, 15):
        window = timeline.between(float(t0), float(t0 + 15))
        if not len(window):
            continue
        true_bw = trace.upload_at(t0 + 7.5) / 1e6
        est_bw = float(np.median([r.estimated_bandwidth_bps for r in window])) / 1e6
        point = int(np.median(window.points))
        mode = "local" if point == engine.num_nodes else (
            "full" if point == 0 else f"p={point}"
        )
        print(f"{t0:>3}s   {true_bw:6.1f} Mbps  {est_bw:6.1f} Mbps  "
              f"{mode:>9}   {window.mean_latency() * 1e3:8.1f} ms")

    # The estimator should track the true link within a reasonable margin.
    errors = [
        abs(r.estimated_bandwidth_bps - trace.upload_at(r.start_s)) / trace.upload_at(r.start_s)
        for r in timeline
    ]
    print(f"\nmedian bandwidth-estimation error: {100 * float(np.median(errors)):.1f}%")
    print(f"partition points used: {sorted(set(timeline.points.tolist()))}")


if __name__ == "__main__":
    main()
