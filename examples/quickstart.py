"""Quickstart: train the predictors, make partition decisions, run the system.

This is the 60-second tour of the public API:

1. run the offline profiler (Fig. 4) to train M_user / M_edge,
2. build a decision engine for a DNN and ask it where to split under
   different network/load conditions (Algorithm 1),
3. run the full device-server emulation for a few seconds and inspect the
   per-request records.

Run:  python examples/quickstart.py
"""

from repro import (
    ConstantTrace,
    LoADPartEngine,
    OffloadingSystem,
    OfflineProfiler,
    SystemConfig,
    build_model,
)


def main() -> None:
    # 1. Offline phase: profile sampled layer configs and fit the NNLS
    #    prediction models for both sides (takes well under a second).
    report = OfflineProfiler(samples_per_category=250, seed=7).run()
    print("Trained prediction models (Table III excerpt):")
    print(report.format_table3())

    # 2. Decision engine for AlexNet: one O(n) scan per query.
    engine = LoADPartEngine(
        build_model("alexnet"), report.user_predictor, report.edge_predictor
    )
    print("\nAlexNet partition decisions (n=27; 0=full offload, 27=local):")
    for bw_mbps in (1, 4, 8, 32):
        for k in (1.0, 50.0):
            decision = engine.decide(bw_mbps * 1e6, k=k)
            print(
                f"  {bw_mbps:>2} Mbps, k={k:<5.1f} -> p={decision.point:>2} "
                f"predicted {decision.predicted_latency * 1e3:7.1f} ms"
            )

    # 3. Online phase: the discrete-event device-server emulation.
    system = OffloadingSystem(
        engine,
        bandwidth_trace=ConstantTrace(8e6),
        config=SystemConfig(policy="loadpart", seed=0),
    )
    timeline = system.run(duration_s=5.0)
    print(f"\nSimulated 5 s at 8 Mbps: {len(timeline)} inferences, "
          f"mean {timeline.mean_latency() * 1e3:.1f} ms, "
          f"p95 {timeline.percentile_latency(95) * 1e3:.1f} ms")
    first = timeline.records[0]
    print(f"first request: p={first.partition_point}, "
          f"device {first.device_s * 1e3:.1f} ms + upload {first.upload_s * 1e3:.1f} ms "
          f"+ server {first.server_s * 1e3:.2f} ms")


if __name__ == "__main__":
    main()
