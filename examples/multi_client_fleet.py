"""Fleet scenario: many devices sharing one edge server.

The paper's motivation — edge servers facing contention from the
offloaded tasks of many devices — made endogenous: the server's GPU load
comes from the fleet's own offloads. A LoADPart fleet self-stabilises
(clients retreat to local inference when the GPU saturates and return as
it drains), while a load-oblivious Neurosurgeon fleet piles onto the
saturated GPU.

Run:  python examples/multi_client_fleet.py
"""

from repro import LoADPartEngine, OfflineProfiler, SystemConfig, build_model
from repro.runtime.multi import MultiClientSystem


def main() -> None:
    report = OfflineProfiler(samples_per_category=250, seed=7).run()
    engine = LoADPartEngine(
        build_model("resnet50"), report.user_predictor, report.edge_predictor
    )

    print("fleet size   policy        mean(ms)   p95(ms)   local%   reqs/40s")
    print("----------   ------------  --------   -------   ------   --------")
    for num_clients in (8, 24, 64):
        for policy in ("loadpart", "neurosurgeon"):
            system = MultiClientSystem(
                engine, num_clients,
                config=SystemConfig(policy=policy, seed=5),
            )
            result = system.run(40.0)
            print(f"{num_clients:>10}   {policy:<12}  "
                  f"{result.mean_latency * 1e3:8.1f}   "
                  f"{result.p95_latency * 1e3:7.1f}   "
                  f"{result.local_fraction * 100:5.1f}%   "
                  f"{result.total_requests:8d}")

    print("\nLoad-aware clients shed load to their own CPUs once the shared GPU")
    print("saturates; the oblivious fleet keeps offloading into the queue.")


if __name__ == "__main__":
    main()
