"""Outage resilience: surviving a dead link and a crashed server.

Runs SqueezeNet through the full runtime twice under the same deterministic
fault schedule — a 10 s WiFi outage followed by a 10 s server crash — once
with the paper's trusting client and once with the resilient offload path
(deadlines from the engine's own prediction, bounded retries, circuit
breaker, local fallback).

The naive client issues requests until the first one dies on the dark
link, then blocks forever waiting for a reply that will never come.  The
resilient client notices the deadline, feeds the failure to its bandwidth
estimator, retreats to local inference, and resumes offloading once the
profiler's health probe sees the path recover.

Run:  python examples/outage_resilience.py
"""

from repro import LoADPartEngine, OffloadingSystem, OfflineProfiler, SystemConfig, build_model
from repro.network.faults import FaultPlan, ServerFaultPlan
from repro.runtime.resilience import ResilienceConfig

DURATION_S = 60.0
OUTAGE = (10.0, 20.0)       # the WiFi link goes dark
CRASH = (35.0, 45.0)        # the edge server dies and restarts


def run(engine, resilient: bool):
    config = SystemConfig(
        seed=3,
        faults=FaultPlan(outages=(OUTAGE,)),
        server_faults=ServerFaultPlan(crash_windows=(CRASH,)),
        resilience=ResilienceConfig(cooldown_s=8.0) if resilient else None,
    )
    return OffloadingSystem(engine, config=config).run(DURATION_S)


def describe(label: str, timeline, n: int) -> None:
    print(f"\n{label}: {len(timeline)} requests issued, "
          f"availability {timeline.availability():.1%}, "
          f"fallback rate {timeline.fallback_rate():.1%}")
    print("  window      requests   completed   dominant mode")
    for t0 in range(0, int(DURATION_S), 10):
        window = timeline.between(float(t0), float(t0 + 10))
        if not len(window):
            print(f"  {t0:>3}-{t0 + 10:<3}s       none — client is stalled")
            continue
        local = sum(1 for r in window if r.partition_point == n)
        mode = "local" if local > len(window) / 2 else "offload"
        done = sum(1 for r in window if r.completed)
        print(f"  {t0:>3}-{t0 + 10:<3}s     {len(window):5d}      {done:5d}     {mode}")


def main() -> None:
    report = OfflineProfiler(samples_per_category=150, seed=3).run()
    engine = LoADPartEngine(
        build_model("squeezenet"), report.user_predictor, report.edge_predictor
    )
    print(f"fault schedule: link outage {OUTAGE[0]:.0f}-{OUTAGE[1]:.0f}s, "
          f"server crash {CRASH[0]:.0f}-{CRASH[1]:.0f}s")

    naive = run(engine, resilient=False)
    resilient = run(engine, resilient=True)

    describe("naive client", naive, engine.num_nodes)
    describe("resilient client", resilient, engine.num_nodes)

    assert resilient.availability() == 1.0
    print("\nthe resilient client answered every request; the naive client "
          f"stalled after {sum(1 for r in naive if r.completed)} answers.")


if __name__ == "__main__":
    main()
