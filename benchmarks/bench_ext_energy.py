"""Extension — energy-aware partitioning (Neurosurgeon's other objective).

Not a paper figure: compares the partition points and costs of the
latency-optimal, energy-optimal and weighted objectives on the same
prediction models, using the O(n) scan for all three.
"""

import pytest

from repro.core.engine import LoADPartEngine
from repro.experiments.reporting import render_table
from repro.hardware.energy import EnergyParams, energy_decision, energy_of_partition, weighted_decision
from repro.models import build_model

MODELS = ("alexnet", "squeezenet", "resnet18")


@pytest.fixture(scope="module")
def engines(trained_report):
    return {
        m: LoADPartEngine(build_model(m), trained_report.user_predictor,
                          trained_report.edge_predictor)
        for m in MODELS
    }


def test_energy_decision_speed(benchmark, engines):
    e = engines["alexnet"]
    decision = benchmark(
        energy_decision, list(e.device_times), list(e.edge_times), list(e.sizes), 8e6
    )
    assert 0 <= decision.point <= e.num_nodes


def test_objective_comparison(benchmark, engines, save_report):
    params = EnergyParams()

    def compute():
        rows = []
        for model, e in engines.items():
            device, edge, sizes = list(e.device_times), list(e.edge_times), list(e.sizes)
            for bw in (4e6, 8e6, 32e6):
                lat = e.decide(bw)
                en = energy_decision(device, edge, sizes, bw, params=params)
                mix = weighted_decision(device, edge, sizes, bw, energy_weight=0.5,
                                        params=params)
                lat_energy = energy_of_partition(lat.point, device, edge, sizes, bw,
                                                 params=params)
                en_energy = energy_of_partition(en.point, device, edge, sizes, bw,
                                                params=params)
                rows.append(
                    (model, f"{bw / 1e6:g}",
                     lat.point, f"{lat_energy:.2f}",
                     en.point, f"{en_energy:.2f}",
                     mix.point)
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "ext_energy",
        render_table(
            ["model", "Mbps", "latency-opt p", "its energy (J)",
             "energy-opt p", "min energy (J)", "weighted p"],
            rows,
        ),
    )
    for row in rows:
        # The energy-optimal point never costs more energy than the
        # latency-optimal one.
        assert float(row[5]) <= float(row[3]) + 1e-9
