"""Table IV — testbed specifications and their simulation stand-ins."""

from repro.experiments import table4


def test_table4_specs(benchmark, save_report):
    result = benchmark.pedantic(table4.run_table4, rounds=3, iterations=1)
    save_report("table4_specs", table4.format_table4(result))
    assert result.edge.gpu == "NVIDIA Tesla T4 16GB"
    assert result.device.cpu_cores == 4
    # The calibrated stand-ins preserve the capability gap.
    assert result.gpu_params.conv_rate > 100 * result.device_params.conv_rate
