"""Fig. 1 — AlexNet latency per partition point at 8 Mbps.

Regenerates the stacked-bar data and asserts the paper's two headline
reads: the best point beats full offloading by a large factor and local
inference by tens of percent.
"""

from repro.experiments import fig1


def test_fig1_motivation(benchmark, save_report):
    result = benchmark.pedantic(fig1.run_fig1, rounds=3, iterations=1)
    save_report("fig1_motivation", fig1.format_fig1(result))

    n = len(result.rows) - 1
    assert 0 < result.best.point < n, "best point must be a partial offload"
    assert result.speedup_vs_full > 2.0, "paper: up to ~4x vs full offloading"
    assert result.speedup_vs_local > 1.15, "paper: ~30% vs local inference"
    # The best cut is right after a pooling layer, as in the paper.
    assert "maxpool" in result.best.label
