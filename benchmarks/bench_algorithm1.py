"""Micro-benchmark: Algorithm 1 decision latency.

The paper's argument for the linear scan is that it is cheap enough to
re-run per request on a resource-constrained device.  These benchmarks
measure the actual decision latency on the largest zoo graphs.
"""

import pytest

from repro.core.engine import LoADPartEngine
from repro.models import build_model


@pytest.fixture(scope="module", params=["alexnet", "resnet50", "resnet152"])
def engine(request, trained_report):
    return LoADPartEngine(
        build_model(request.param),
        trained_report.user_predictor,
        trained_report.edge_predictor,
    )


def test_decision_latency(benchmark, engine):
    """One O(n) decision with precomputed prefix/suffix arrays."""
    decision = benchmark(engine.decide, 8e6, 3.0)
    assert 0 <= decision.point <= engine.num_nodes
    # Fast enough for per-request use even on a weak device: the paper's
    # whole point.  (Generous bound; typical is tens of microseconds.)
    assert benchmark.stats["mean"] < 2e-3


def test_engine_construction_latency(benchmark, trained_report):
    """Engine setup (predictions + prefix/suffix) happens once per model."""
    graph = build_model("resnet152")

    result = benchmark.pedantic(
        LoADPartEngine,
        args=(graph, trained_report.user_predictor, trained_report.edge_predictor),
        rounds=3,
        iterations=1,
    )
    assert result.num_nodes == 516
