"""Availability of the resilient offload path under injected faults.

Four deterministic fault scenarios run twice each — once with the legacy
trusting client (the paper's runtime, which blocks forever on a dead
transfer or a silent server) and once with the resilient client
(deadlines from the engine's own latency prediction, bounded retries with
exponential backoff, circuit breaker with probe-driven recovery, local
fallback):

- ``no_fault``      — sanity: both arms must behave identically.
- ``flaky_link``    — per-transfer drop probability + latency spikes.
- ``server_crash``  — the server dies for a window mid-run (cache and
  load-factor state are wiped on restart).
- ``overload``      — a client fleet overwhelms bounded admission; the
  server sheds load with BusyReply.

Headline metrics: **availability** (completed / issued), **fallback rate**
(requests resolved locally after giving up on the offload path), and
completed-request latency.  A ``stalled`` arm stopped issuing requests
before the horizon because a request never completed — that is what
resilience buys us out of.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_resilience.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform

import numpy as np

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_resilience.json"

MODEL = "squeezenet"
DURATION_S = 60.0
OVERLOAD_DURATION_S = 20.0
OVERLOAD_CLIENTS = 8


def _scenarios():
    from repro.network.faults import FaultPlan, ServerFaultPlan

    return {
        "no_fault": {},
        "flaky_link": {
            "faults": FaultPlan(drop_prob=0.08, latency_spike_prob=0.05,
                                latency_spike_s=0.25, seed=11),
        },
        "server_crash": {
            "server_faults": ServerFaultPlan(crash_windows=((10.0, 25.0),)),
        },
        "overload": {
            "server_faults": ServerFaultPlan(queue_limit=4, retry_after_s=0.05,
                                             admission_window_s=0.25),
        },
    }


def _summarise(records, duration_s: float) -> dict:
    issued = len(records)
    completed = [r for r in records if r.completed]
    lat = np.array([r.total_s for r in completed])
    statuses: dict = {}
    for r in records:
        statuses[r.status] = statuses.get(r.status, 0) + 1
    stalled = any(not r.completed for r in records)
    return {
        "issued": issued,
        "completed": len(completed),
        "availability": round(len(completed) / issued, 4) if issued else None,
        "fallback_rate": round(
            sum(1 for r in records if r.fell_back) / issued, 4) if issued else None,
        "retries_per_request": round(
            sum(r.retries for r in records) / issued, 4) if issued else None,
        "mean_ms": round(float(lat.mean()) * 1e3, 2) if len(lat) else None,
        "p95_ms": round(float(np.percentile(lat, 95)) * 1e3, 2) if len(lat) else None,
        "throughput_rps": round(len(completed) / duration_s, 2),
        "statuses": statuses,
        "stalled": stalled,
    }


def run_single(engine, scenario: dict, resilience, seed: int, duration_s: float):
    from repro.runtime.system import OffloadingSystem, SystemConfig

    config = SystemConfig(seed=seed, resilience=resilience, **scenario)
    timeline = OffloadingSystem(engine, config=config).run(duration_s)
    return list(timeline)


def run_fleet(engine, scenario: dict, resilience, seed: int, duration_s: float):
    from repro.runtime.multi import MultiClientSystem
    from repro.runtime.system import SystemConfig

    # policy="full" keeps every client on the offload path, so bounded
    # admission is actually contended.
    config = SystemConfig(seed=seed, policy="full", resilience=resilience,
                          **scenario)
    result = MultiClientSystem(engine, OVERLOAD_CLIENTS, config=config).run(duration_s)
    return [r for t in result.timelines for r in t]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=DURATION_S)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    from repro.core.engine import LoADPartEngine
    from repro.models import build_model
    from repro.profiling.offline import OfflineProfiler
    from repro.runtime.resilience import ResilienceConfig

    report_prof = OfflineProfiler(samples_per_category=150, seed=3).run()
    engine = LoADPartEngine(build_model(MODEL), report_prof.user_predictor,
                            report_prof.edge_predictor)
    resilience = ResilienceConfig()

    results = []
    for name, scenario in _scenarios().items():
        fleet = name == "overload"
        duration = OVERLOAD_DURATION_S if fleet else args.duration
        runner = run_fleet if fleet else run_single
        arms = {}
        for arm, cfg in (("naive", None), ("resilient", resilience)):
            records = runner(engine, scenario, cfg, args.seed, duration)
            arms[arm] = _summarise(records, duration)
        results.append({"scenario": name, "duration_s": duration,
                        "clients": OVERLOAD_CLIENTS if fleet else 1,
                        "arms": arms})
        for arm in ("naive", "resilient"):
            row = arms[arm]
            mean = f"{row['mean_ms']:.1f}" if row["mean_ms"] is not None else "-"
            print(f"{name:13s} {arm:10s} issued {row['issued']:4d}  "
                  f"avail {row['availability']:.3f}  "
                  f"fallback {row['fallback_rate']:.3f}  mean {mean} ms  "
                  f"stalled={row['stalled']}")

    res_avail = [r["arms"]["resilient"]["availability"] for r in results]
    no_fault = results[0]["arms"]
    report = {
        "benchmark": "resilience",
        "model": MODEL,
        "seed": args.seed,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        # Gate metrics: the resilient arm must complete everything, and
        # resilience must cost nothing when nothing fails.
        "min_resilient_availability": min(res_avail),
        "no_fault_mean_delta_ms": round(
            abs(no_fault["resilient"]["mean_ms"] - no_fault["naive"]["mean_ms"]), 3),
        "results": results,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nmin resilient availability {report['min_resilient_availability']:.3f}, "
          f"no-fault mean delta {report['no_fault_mean_delta_ms']:.3f} ms "
          f"-> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
