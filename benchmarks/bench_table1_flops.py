"""Table I — FLOPs formulas, cross-checked against literature totals."""

from repro.experiments import table1


def test_table1_flops(benchmark, save_report):
    result = benchmark.pedantic(table1.run_table1, rounds=3, iterations=1)
    save_report("table1_flops", table1.format_table1(result))
    assert result.all_within_reference
    assert set(result.formulas) == {
        "Conv", "DWConv", "Matmul", "Pooling",
        "BiasAdd", "Element-wise", "BatchNorm", "Activation",
    }
