"""Ablation — full topological scan vs block-boundary candidates (§III-D).

The paper's block analysis says interior (multi-tensor) cuts are never
optimal.  This benchmark verifies the restricted candidate scan returns
the same decision as the full scan on every DAG model of the zoo, and
reports the block-cut evidence per model.
"""

import pytest

from repro.core.blocks import block_cut_report, candidate_points
from repro.core.engine import LoADPartEngine
from repro.experiments.reporting import render_table
from repro.models import build_model

DAG_MODELS = ("squeezenet", "resnet18", "resnet50", "xception", "inception_v3")


@pytest.fixture(scope="module")
def engines(trained_report):
    return {
        m: LoADPartEngine(build_model(m), trained_report.user_predictor,
                          trained_report.edge_predictor)
        for m in DAG_MODELS
    }


def test_candidate_scan_matches_full_scan(benchmark, engines, save_report):
    def check():
        rows = []
        for model, engine in engines.items():
            candidates = candidate_points(engine.graph)
            mismatches = 0
            for bw in (1e6, 4e6, 8e6, 32e6):
                for k in (1.0, 10.0, 100.0):
                    decision = engine.decide(bw, k=k)
                    best_candidate = min(
                        candidates, key=lambda p: decision.candidates[p]
                    )
                    if decision.candidates[best_candidate] > decision.predicted_latency * (1 + 1e-12):
                        mismatches += 1
            reduction = 1 - len(candidates) / (engine.num_nodes + 1)
            rows.append((model, engine.num_nodes + 1, len(candidates),
                         f"{reduction * 100:.0f}%", mismatches))
        return rows

    rows = benchmark.pedantic(check, rounds=1, iterations=1)
    save_report(
        "ablation_blocks",
        render_table(["model", "all points", "candidates", "search reduction", "mismatches"], rows),
    )
    for row in rows:
        assert row[4] == 0, f"a block-interior cut was optimal for {row[0]}"


def test_block_cut_evidence(benchmark, save_report):
    """Inside-block cuts transmit more than boundary cuts (the 1.25 MB claim)."""

    def compute():
        rows = []
        for model in DAG_MODELS:
            report = block_cut_report(build_model(model))
            rows.append(
                (
                    model,
                    f"{report.input_bytes / 1e6:.2f}",
                    f"{(report.min_multi_cut_bytes or 0) / 1e6:.2f}",
                    f"{report.min_width1_cut_bytes / 1e6:.2f}",
                    len(report.multi_points),
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "ablation_block_cuts",
        render_table(
            ["model", "input (MB)", "min inside-block cut (MB)",
             "min boundary cut (MB)", "interior positions"],
            rows,
        ),
    )
    for model, _inp, multi, width1, _n in rows:
        assert float(multi) > float(width1), model
