"""Extension — three-tier (device/edge/cloud) partitioning.

Not a paper figure: extends Algorithm 1 to the AAIoT-style chain the
paper cites, with an O(n) two-cut scan.  Benchmarks the scan against the
O(n^2) brute force and reports where the three tiers split the 6 DNNs.
"""

import numpy as np
import pytest

from repro.core.engine import LoADPartEngine
from repro.core.multi_tier import multi_tier_brute_force, multi_tier_decision
from repro.experiments.reporting import render_table
from repro.models import EVALUATED_MODELS, build_model

#: The cloud tier: an A100-class box reachable over a metro link.
CLOUD_SPEEDUP = 3.0
B_DEVICE_EDGE = 8e6
B_EDGE_CLOUD = 200e6


@pytest.fixture(scope="module")
def instances(trained_report):
    out = {}
    for model in EVALUATED_MODELS:
        e = LoADPartEngine(build_model(model), trained_report.user_predictor,
                           trained_report.edge_predictor)
        cloud = (np.asarray(e.edge_times) / CLOUD_SPEEDUP).tolist()
        out[model] = (list(e.device_times), list(e.edge_times), cloud,
                      list(e.sizes), e)
    return out


def test_two_cut_scan_speed(benchmark, instances):
    device, edge, cloud, sizes, _e = instances["resnet50"]
    decision = benchmark(
        multi_tier_decision, device, edge, cloud, sizes, B_DEVICE_EDGE, B_EDGE_CLOUD
    )
    assert decision.predicted_latency > 0


def test_brute_force_speed(benchmark, instances):
    device, edge, cloud, sizes, _e = instances["resnet50"]
    benchmark.pedantic(
        multi_tier_brute_force,
        args=(device, edge, cloud, sizes, B_DEVICE_EDGE, B_EDGE_CLOUD),
        rounds=2, iterations=1,
    )


def test_three_tier_placements(benchmark, instances, save_report):
    def compute():
        rows = []
        for model, (device, edge, cloud, sizes, engine) in instances.items():
            for k_edge, label in ((1.0, "idle edge"), (20.0, "busy edge")):
                three = multi_tier_decision(device, edge, cloud, sizes,
                                            B_DEVICE_EDGE, B_EDGE_CLOUD,
                                            k_edge=k_edge)
                brute = multi_tier_brute_force(device, edge, cloud, sizes,
                                               B_DEVICE_EDGE, B_EDGE_CLOUD,
                                               k_edge=k_edge)
                two = engine.decide(B_DEVICE_EDGE, k=k_edge)
                rows.append(
                    (model, label,
                     f"{three.device_nodes}/{three.edge_nodes}/{three.cloud_nodes}",
                     f"{three.predicted_latency * 1e3:.0f}",
                     f"{two.predicted_latency * 1e3:.0f}",
                     f"{(1 - three.predicted_latency / two.predicted_latency) * 100:.1f}%",
                     "yes" if abs(three.predicted_latency - brute.predicted_latency) < 1e-9
                     else "NO")
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "ext_multitier",
        render_table(
            ["model", "edge load", "device/edge/cloud nodes", "3-tier ms",
             "2-tier ms", "gain", "matches brute force"],
            rows,
        ),
    )
    for row in rows:
        assert row[6] == "yes"
        # Adding a tier can only help (the 2-tier placements are a subset).
        assert float(row[5].rstrip("%")) >= -1e-6
    # Under a busy edge, at least some models escalate work to the cloud.
    busy = [r for r in rows if r[1] == "busy edge"]
    assert any(int(r[2].split("/")[2]) > 0 for r in busy)
