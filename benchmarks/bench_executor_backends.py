"""End-to-end executor backend benchmark: naive vs planned.

Times repeated whole-graph inference for one representative of each of the
seven model families (the compile-once / run-many regime the planned
backend is designed for), verifies bit-identity of the outputs, and writes
``BENCH_executor.json``.

The reported statistic is the **minimum** over repetitions: on shared or
thermally-throttled hosts the minimum is the stable estimate of what the
code costs, while means absorb scheduler noise.  Run as a script::

    PYTHONPATH=src python benchmarks/bench_executor_backends.py --repeats 5
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

import numpy as np

#: One representative per family named in the paper's evaluation set.
FAMILIES = {
    "AlexNet": "alexnet",
    "VGG": "vgg16",
    "ResNet": "resnet18",
    "SqueezeNet": "squeezenet",
    "MobileNet": "mobilenet_v1",
    "Inception": "inception_v3",
    "Xception": "xception",
}

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_executor.json"


def _time_runs(run, x, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run(x)
        best = min(best, time.perf_counter() - t0)
    return best


def bench_model(model_name: str, repeats: int, seed: int = 0) -> dict:
    from repro.models import build_model
    from repro.nn import GraphExecutor
    from repro.nn.executor import init_parameters
    from repro.nn.plan import GraphPlan

    graph = build_model(model_name)
    # Parameter materialisation is a shared cost of both backends (the
    # naive executor pays the identical init), so compile_ms times only
    # what the planned backend adds: plan compilation + autotuning.
    params = init_parameters((graph.node(n) for n in graph.topological_order()), seed)
    t0 = time.perf_counter()
    plan = GraphPlan(graph, seed=seed, params=params)
    compile_s = time.perf_counter() - t0
    naive = GraphExecutor(graph, seed=seed, params=plan.params)
    x = np.random.default_rng(1).standard_normal(graph.input_spec.shape).astype(np.float32)

    ref = naive.run(x)
    out = plan.run(x)
    bit_identical = bool(np.array_equal(ref, out) and np.array_equal(out, plan.run(x)))

    naive_s = _time_runs(naive.run, x, repeats)
    planned_s = _time_runs(plan.run, x, repeats)
    stats = plan.stats
    return {
        "model": model_name,
        "naive_ms": round(naive_s * 1e3, 3),
        "planned_ms": round(planned_s * 1e3, 3),
        "speedup": round(naive_s / planned_s, 3),
        "bit_identical": bit_identical,
        "compile_ms": round(compile_s * 1e3, 3),
        "plan": {
            "steps": stats.steps,
            "inplace_steps": stats.inplace_steps,
            "alias_steps": stats.alias_steps,
            "arena_bytes": stats.arena_bytes,
            "persistent_bytes": stats.persistent_bytes,
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per backend (min is reported)")
    parser.add_argument("--models", nargs="*", default=None,
                        help="model names (default: one per family)")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    if args.models:
        # Accept either builder names ("alexnet") or family labels ("AlexNet").
        family_by_lower = {f.lower(): (f, m) for f, m in FAMILIES.items()}
        targets = {}
        for name in args.models:
            family, model_name = family_by_lower.get(name.lower(), (name, name))
            targets[family] = model_name
    else:
        targets = FAMILIES

    results = {}
    for family, model_name in targets.items():
        try:
            entry = bench_model(model_name, args.repeats)
        except KeyError as exc:
            parser.error(str(exc.args[0]) if exc.args else str(exc))
        results[family] = entry
        print(f"{family:12s} ({model_name}): naive {entry['naive_ms']:9.1f} ms  "
              f"planned {entry['planned_ms']:9.1f} ms  "
              f"speedup {entry['speedup']:.2f}x  bit_identical={entry['bit_identical']}")

    speedups = [entry["speedup"] for entry in results.values()]
    geomean = float(np.exp(np.mean(np.log(speedups))))
    report = {
        "benchmark": "executor_backends",
        "statistic": "min",
        "repeats": args.repeats,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "geomean_speedup": round(geomean, 3),
        "all_bit_identical": all(e["bit_identical"] for e in results.values()),
        "results": results,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\ngeomean speedup {geomean:.2f}x -> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
