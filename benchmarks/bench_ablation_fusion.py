"""Ablation — layer fusion (§VI extension).

The paper notes its profiling/decision pipeline extends to fused layers.
This benchmark quantifies what fusion buys in this system: fewer kernels
(hence far less exposure to GPU contention), lower framework overhead, and
a smaller decision problem — while keeping outputs bit-identical.
"""

import numpy as np
import pytest

from repro.core.engine import LoADPartEngine
from repro.experiments.reporting import render_table
from repro.graph.fusion import fuse_graph
from repro.hardware import DeviceModel, GpuModel, GpuScheduler, LOAD_LEVELS
from repro.models import build_model
from repro.profiling.features import profile_graph
from repro.profiling.offline import OfflineProfiler

MODELS = ("alexnet", "vgg16", "resnet18", "squeezenet")


@pytest.fixture(scope="module")
def fused_report():
    return OfflineProfiler(samples_per_category=250, seed=7, include_fused=True).run()


def test_fusion_pass_speed(benchmark):
    graph = build_model("resnet50")
    fused = benchmark(fuse_graph, graph)
    assert len(fused) < len(graph)


def test_fusion_cost_savings(benchmark, save_report):
    device, gpu, sched = DeviceModel(), GpuModel(), GpuScheduler()
    level = LOAD_LEVELS["100%(h)"]

    def compute():
        rows = []
        rng = np.random.default_rng(0)
        for model in MODELS:
            g = build_model(model)
            fg = fuse_graph(g)
            pu, pf = profile_graph(g), profile_graph(fg)
            dev_u, dev_f = device.mean_graph_time(pu), device.mean_graph_time(pf)
            gpu_u, gpu_f = gpu.mean_graph_time(pu), gpu.mean_graph_time(pf)
            # Under heavy contention fewer kernels means fewer preemption
            # points — fusion's biggest systems win in this setting.
            load_u = np.mean([sched.execute(gpu.kernel_times(pu), level, rng) for _ in range(40)])
            load_f = np.mean([sched.execute(gpu.kernel_times(pf), level, rng) for _ in range(40)])
            rows.append(
                (model, f"{len(g)}->{len(fg)}",
                 f"{dev_u * 1e3:.0f}->{dev_f * 1e3:.0f}",
                 f"{gpu_u * 1e3:.2f}->{gpu_f * 1e3:.2f}",
                 f"{load_u * 1e3:.0f}->{load_f * 1e3:.0f}",
                 f"{(1 - load_f / load_u) * 100:.0f}%")
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "ablation_fusion",
        render_table(
            ["model", "nodes", "device ms", "server idle ms",
             "server 100%(h) ms", "contention saving"],
            rows,
        ),
    )
    for row in rows:
        saving = float(row[5].rstrip("%"))
        assert saving > 20, f"fusion should cut contention exposure: {row}"


def test_fused_decisions_stay_consistent(benchmark, fused_report, save_report):
    """Fused and unfused engines agree on the offload/local regime."""

    def compute():
        rows = []
        for model in MODELS:
            g = build_model(model)
            fg = fuse_graph(g)
            eng_u = LoADPartEngine(g, fused_report.user_predictor, fused_report.edge_predictor)
            eng_f = LoADPartEngine(fg, fused_report.user_predictor, fused_report.edge_predictor)
            agree = 0
            total = 0
            for bw in (1e6, 4e6, 8e6, 32e6):
                du, df = eng_u.decide(bw), eng_f.decide(bw)
                mode_u = "local" if du.is_local else ("full" if du.is_full_offload else "partial")
                mode_f = "local" if df.is_local else ("full" if df.is_full_offload else "partial")
                agree += mode_u == mode_f
                total += 1
            rows.append((model, f"{agree}/{total}"))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report("ablation_fusion_decisions",
                render_table(["model", "regime agreement"], rows))
    # Regimes mostly agree; SqueezeNet's borderline 8 Mbps economics can
    # legitimately flip (fusion makes local inference relatively cheaper
    # while the upload cost is unchanged), so allow up to half to move.
    for model, ratio in rows:
        agree, total = map(int, ratio.split("/"))
        assert agree >= total / 2, f"fusion upended the decision regime: {model}"
    assert sum(int(r[1].split("/")[0]) for r in rows) >= 12  # >=75% overall
