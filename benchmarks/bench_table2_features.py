"""Table II — GBT (XGBoost-substitute) feature selection."""

from repro.experiments import table2


def test_table2_feature_selection(benchmark, save_report):
    result = benchmark.pedantic(
        table2.run_table2, kwargs={"samples": 400, "seed": 11}, rounds=1, iterations=1
    )
    save_report("table2_features", table2.format_table2(result))

    for row in result.rows:
        # FLOPs is always a top-2 feature for compute-bound kinds.
        if row.category in ("matmul", "dwconv"):
            top2 = {name for name, _ in row.ranking[:2]}
            assert "flops" in top2, (row.category, row.side)
    # The edge conv selection of Table II captures most of the gain.
    edge_conv = next(r for r in result.rows if (r.category, r.side) == ("conv", "edge"))
    assert edge_conv.paper_gain_share > 0.6
