"""Ablation — NNLS linear regression vs gradient-boosted trees (§VI).

The paper chooses LR over heavier learned predictors to keep the on-device
decision cheap.  This benchmark quantifies that trade-off: the GBT is more
accurate on the nonlinear device conv times, but orders of magnitude
slower to evaluate.
"""

import numpy as np
import pytest

from repro.experiments.reporting import render_table
from repro.hardware.device_model import DeviceModel
from repro.profiling.features import candidate_vector, feature_vector
from repro.profiling.gbt import GradientBoostedTrees
from repro.profiling.metrics import mape
from repro.profiling.regression import NNLSModel
from repro.profiling.sampler import ConfigSampler


@pytest.fixture(scope="module")
def conv_dataset():
    sampler = ConfigSampler(seed=21)
    device = DeviceModel()
    rng = np.random.default_rng(22)
    profiles = sampler.sample_profiles("conv", 500)
    y = np.array([device.sample_time(p, rng) for p in profiles])
    X_lr = np.stack([feature_vector(p, "device") for p in profiles])
    X_gbt = np.stack([candidate_vector(p) for p in profiles])
    split = 375
    return (X_lr[:split], X_gbt[:split], y[:split],
            X_lr[split:], X_gbt[split:], y[split:])


@pytest.fixture(scope="module")
def fitted(conv_dataset):
    X_lr, X_gbt, y, *_ = conv_dataset
    lr = NNLSModel(["flops", "n*c_out*s_f"]).fit(X_lr, y)
    gbt = GradientBoostedTrees(n_estimators=60).fit(X_gbt, y)
    return lr, gbt


def test_nnls_predict_speed(benchmark, fitted, conv_dataset):
    lr, _ = fitted
    _, _, _, X_lr_test, _, _ = conv_dataset
    benchmark(lr.predict, X_lr_test)


def test_gbt_predict_speed(benchmark, fitted, conv_dataset):
    _, gbt = fitted
    _, _, _, _, X_gbt_test, _ = conv_dataset
    benchmark(gbt.predict, X_gbt_test)


def test_accuracy_tradeoff(benchmark, fitted, conv_dataset, save_report):
    lr, gbt = fitted
    _, _, _, X_lr_test, X_gbt_test, y_test = conv_dataset

    def evaluate():
        return (
            mape(y_test, np.maximum(lr.predict(X_lr_test), 1e-9)),
            mape(y_test, np.maximum(gbt.predict(X_gbt_test), 1e-9)),
        )

    lr_mape, gbt_mape = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    save_report(
        "ablation_predictor",
        render_table(
            ["predictor", "device conv MAPE"],
            [("NNLS LR (paper's choice)", f"{lr_mape * 100:.1f}%"),
             ("GBT (XGBoost-like)", f"{gbt_mape * 100:.1f}%")],
        ),
    )
    # The GBT is meaningfully more accurate on the nonlinear conv times...
    assert gbt_mape < lr_mape
    # ...but the LR is still usable (the paper's trade-off).
    assert lr_mape < 1.0
