"""Ablation — Algorithm 1's O(n) scan vs a DADS-style min-cut (§III-D).

The paper rejects min-cut solvers for dynamic decisions because of their
O(n^3)-ish cost.  This benchmark measures both on the same inputs and
verifies the linear scan loses (almost) nothing in solution quality.
"""

import pytest

from repro.core.baselines import dads_min_cut
from repro.core.engine import LoADPartEngine
from repro.experiments.reporting import render_table
from repro.models import build_model

MODELS = ("alexnet", "squeezenet", "resnet18")


@pytest.fixture(scope="module")
def engines(trained_report):
    return {
        m: LoADPartEngine(build_model(m), trained_report.user_predictor,
                          trained_report.edge_predictor)
        for m in MODELS
    }


@pytest.mark.parametrize("model", MODELS)
def test_algorithm1_speed(benchmark, engines, model):
    engine = engines[model]
    benchmark(engine.decide, 8e6, 2.0)


@pytest.mark.parametrize("model", MODELS)
def test_mincut_speed(benchmark, engines, model):
    engine = engines[model]
    result = benchmark.pedantic(
        dads_min_cut,
        args=(engine.graph, list(engine.device_times), list(engine.edge_times), 8e6),
        kwargs={"k": 2.0},
        rounds=2,
        iterations=1,
    )
    assert result.latency > 0


def test_solution_quality_gap(benchmark, engines, save_report):
    """The linear scan is within a few percent of the general optimum."""

    def compute():
        rows = []
        for model, engine in engines.items():
            for bw in (2e6, 8e6, 32e6):
                scan = engine.decide(bw, k=2.0).predicted_latency
                cut = dads_min_cut(
                    engine.graph, list(engine.device_times),
                    list(engine.edge_times), bw, k=2.0,
                ).latency
                rows.append((model, f"{bw / 1e6:g}", f"{scan * 1e3:.1f}",
                             f"{cut * 1e3:.1f}", f"{(scan / cut - 1) * 100:.2f}%"))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "ablation_mincut",
        render_table(["model", "Mbps", "Alg.1 (ms)", "min-cut (ms)", "gap"], rows),
    )
    for row in rows:
        gap = float(row[4].rstrip("%"))
        assert gap < 5.0, f"linear scan lost too much: {row}"
