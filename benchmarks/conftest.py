"""Shared benchmark fixtures and report output.

Every experiment benchmark writes its formatted reproduction table to
``results/<name>.txt`` so the paper-vs-measured comparison survives the
run (pytest captures stdout by default).
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_report(results_dir):
    def _save(name: str, text: str) -> None:
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print(f"\n=== {name} ===\n{text}")

    return _save


# ``trained_report`` and the engine fixtures come from the repository-root
# conftest.py, shared with tests/ (one cached profiler run per process).
