"""Table III — prediction-model accuracy (the offline profiler pipeline)."""

from repro.experiments import table3
from repro.profiling.offline import OfflineProfiler


def test_table3_predictors(benchmark, save_report):
    result = benchmark.pedantic(
        lambda: table3.Table3Result(OfflineProfiler(samples_per_category=400, seed=7).run()),
        rounds=1,
        iterations=1,
    )
    save_report("table3_predictors", table3.format_table3(result))

    rows = {r.name: r for r in result.report.rows}
    # Paper's qualitative shape: matmul is the best-predicted kind on the
    # device; conv kinds are among the worst everywhere.
    assert result.matmul_is_most_accurate_device
    assert result.device_conv_is_worst_mape
    assert rows["Conv"].device_mape > 0.2, "device conv is hard to predict (paper: 40%)"
    assert rows["Matmul"].device_mape < 0.15, "device matmul is easy (paper: 8.5%)"
    # Edge RMSEs are microsecond-scale; device RMSEs are millisecond-scale.
    assert rows["Conv"].edge_rmse < 1e-3
    assert rows["Conv"].device_rmse > 1e-3
