"""Fig. 8 — SqueezeNet: LoADPart vs local vs full offloading per bandwidth."""

from repro.experiments import fig8


def test_fig8_squeezenet(benchmark, save_report):
    result = benchmark.pedantic(
        fig8.run_fig8, kwargs={"requests": 60, "seed": 0}, rounds=1, iterations=1
    )
    save_report("fig8_squeezenet_bandwidth", fig8.format_fig8(result))

    for row in result.rows:
        assert row.loadpart_s <= 1.08 * min(row.local_s, row.full_s)
    # Paper: 7.05x mean / 23.93x max vs full, 1.41x / 2.53x vs local.
    assert result.max_speedup_vs_full > 5.0
    assert result.mean_speedup_vs_full > 2.0
    assert result.max_speedup_vs_local > 1.5
    assert result.mean_speedup_vs_local > 1.05
    # At 8 Mbps LoADPart uses a genuine mid-network partition point.
    mid = next(r for r in result.rows if r.bandwidth_mbps == 8)
    assert 0 < mid.loadpart_point < 92
