"""Server-side throughput of batched vs sequential tail execution.

Two layers are measured, matching the repo's split between the simulated
edge server and the functional array path:

- **Simulated T4 throughput** (the headline): requests/s the modeled GPU
  serves when concurrent offloads are stacked into one batch, vs serving
  them one at a time.  Batched GPU execution costs
  ``1 + (b - 1) * marginal_sample_cost`` of one sample, so a batch of 4 at
  the default 0.35 marginal cost serves ``4 / 2.05 = 1.95x`` the requests
  per GPU-second.  This is where batching pays on real serving hardware.
- **Host wall-clock** of the planned backend executing the same batch on
  real arrays, reported for transparency.  The bit-identity contract pins
  the exact BLAS call sequence (per-sample GEMM slabs, per-row GEMVs), so
  on a single-core CPU host batched and sequential execution do identical
  floating-point work and the wall ratio hovers around 1x — the batched
  plan's value on the host is *equivalence*, not speed.

Every batched run is verified per-sample bit-identical to independent
naive batch-1 runs before any timing is recorded.  A fleet-level section
runs the full :class:`MultiClientSystem` with and without dynamic batching
and reports completed requests, latency, and observed batch sizes.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_batched_fleet.py --repeats 5
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import time

import numpy as np

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_batch.json"

#: (model, tail fraction): 0.0 = full offload (whole graph is the tail).
TAILS = (
    ("squeezenet", 0.0),
    ("resnet18", 0.0),
    ("mobilenet_v1", 0.5),
)

BATCHES = (1, 2, 4, 8)


def _time_best(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_tail(model_name: str, tail_fraction: float, repeats: int) -> dict:
    from repro.graph.partitioner import GraphPartitioner
    from repro.hardware.gpu_model import GpuModel
    from repro.models import build_model
    from repro.nn import SegmentExecutor
    from repro.profiling.features import profile_node
    from repro.runtime.batching import BatchingConfig

    graph = build_model(model_name)
    order = graph.topological_order()
    point = int(len(order) * tail_fraction)
    tail = GraphPartitioner(graph).partition(point).tail
    profiles = [profile_node(node, graph.input_specs_of(node))
                for node in tail.nodes if node.op not in ("make_tuple", "return")]

    batching = BatchingConfig()
    gpu = GpuModel()
    sample_gpu_s = gpu.mean_graph_time(profiles)

    sequential = SegmentExecutor(tail, seed=0, backend="planned", batch=1)
    naive = SegmentExecutor(tail, seed=0, params=sequential.params)

    rng = np.random.default_rng(3)
    entry = {
        "model": model_name,
        "partition_point": point,
        "tail_nodes": len(tail.nodes),
        "sim_sample_gpu_ms": round(sample_gpu_s * 1e3, 3),
        "batches": [],
    }
    for b in BATCHES:
        draws = [
            {name: rng.standard_normal(spec.shape).astype(np.float32)
             for name, spec in tail.boundary_inputs.items()}
            for _ in range(b)
        ]
        stacked = {
            name: np.concatenate([d[name] for d in draws], axis=0)
            for name in tail.boundary_inputs
        }
        batched = SegmentExecutor(tail, seed=0, params=sequential.params,
                                  backend="planned", batch=b)

        out = batched.run(stacked)
        bit_identical = True
        for i, draw in enumerate(draws):
            ref = naive.run(draw)
            for name, value in ref.items():
                if not np.array_equal(out[name][i:i + 1], value):
                    bit_identical = False

        host_seq_s = _time_best(lambda: [sequential.run(d) for d in draws], repeats)
        host_bat_s = _time_best(lambda: batched.run(stacked), repeats)

        # Simulated T4: sequential serving costs b full samples; batched
        # serving costs one batch at the ladder's marginal sample cost.
        padded = batching.padded_size(b)
        sim_seq_s = b * sample_gpu_s
        sim_bat_s = sample_gpu_s * batching.batch_time_scale(padded)
        entry["batches"].append({
            "batch": b,
            "padded": padded,
            "bit_identical": bit_identical,
            "sim_seq_rps": round(b / sim_seq_s, 1),
            "sim_batched_rps": round(b / sim_bat_s, 1),
            "sim_throughput_ratio": round(sim_seq_s / sim_bat_s, 3),
            "host_seq_ms": round(host_seq_s * 1e3, 3),
            "host_batched_ms": round(host_bat_s * 1e3, 3),
            "host_wall_ratio": round(host_seq_s / host_bat_s, 3),
        })
    return entry


def bench_fleet(duration_s: float = 4.0, clients: int = 24) -> dict:
    """Full fleet run, dynamic batching off vs on (same seed and horizon).

    24 always-offload clients saturate the shared GPU (utilization pins at
    1.0 without batching) — the regime where stacking concurrent tails
    into one batch visibly relieves contention.
    """
    from repro.core.engine import LoADPartEngine
    from repro.models import build_model
    from repro.profiling.offline import OfflineProfiler
    from repro.runtime.batching import BatchingConfig
    from repro.runtime.multi import MultiClientSystem
    from repro.runtime.system import SystemConfig

    report = OfflineProfiler(samples_per_category=150, seed=3).run()
    engine = LoADPartEngine(build_model("resnet50"),
                            report.user_predictor, report.edge_predictor)

    out = {}
    for label, batching in (("sequential", None),
                            ("batched", BatchingConfig(window_s=0.02))):
        config = SystemConfig(seed=7, policy="full", batching=batching)
        system = MultiClientSystem(engine, clients, config=config)
        result = system.run(duration_s)
        records = [r for t in result.timelines for r in t]
        out[label] = {
            "requests": result.total_requests,
            "requests_per_s": round(result.total_requests / duration_s, 2),
            "mean_latency_ms": round(result.mean_latency * 1e3, 2),
            "p95_latency_ms": round(result.p95_latency * 1e3, 2),
            "gpu_utilization": round(system.tracker.utilization(duration_s), 3),
            "mean_batch_size": round(
                float(np.mean([r.batch_size for r in records])), 2) if records else None,
            "max_batch_size": max((r.batch_size for r in records), default=0),
            "mean_queue_ms": round(
                float(np.mean([r.server_queue_s for r in records])) * 1e3, 3)
                if records else None,
        }
    out["throughput_gain"] = round(
        out["batched"]["requests_per_s"] / out["sequential"]["requests_per_s"], 3
    )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per configuration (min reported)")
    parser.add_argument("--skip-fleet", action="store_true",
                        help="skip the (slow) full fleet simulation section")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    results = []
    for model_name, fraction in TAILS:
        entry = bench_tail(model_name, fraction, args.repeats)
        results.append(entry)
        for row in entry["batches"]:
            print(f"{model_name:13s} b={row['batch']}: "
                  f"sim {row['sim_seq_rps']:7.1f} -> {row['sim_batched_rps']:7.1f} rps "
                  f"({row['sim_throughput_ratio']:.2f}x)  "
                  f"host {row['host_seq_ms']:7.1f} -> {row['host_batched_ms']:7.1f} ms  "
                  f"bit_identical={row['bit_identical']}")

    ratios_at_4plus = [row["sim_throughput_ratio"] for e in results
                       for row in e["batches"] if row["batch"] >= 4]
    all_identical = all(row["bit_identical"] for e in results for row in e["batches"])
    report = {
        "benchmark": "batched_fleet",
        "statistic": "min",
        "repeats": args.repeats,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "min_throughput_ratio_at_batch4plus": round(min(ratios_at_4plus), 3),
        "all_bit_identical": all_identical,
        "results": results,
    }
    if not args.skip_fleet:
        print("\nfleet simulation (resnet50, 24 clients, policy=full):")
        report["fleet"] = bench_fleet()
        for label in ("sequential", "batched"):
            row = report["fleet"][label]
            print(f"  {label:10s} {row['requests']:4d} reqs "
                  f"({row['requests_per_s']:.1f}/s)  mean {row['mean_latency_ms']:.1f} ms  "
                  f"p95 {row['p95_latency_ms']:.1f} ms  "
                  f"max batch {row['max_batch_size']}")
        print(f"  end-to-end throughput gain {report['fleet']['throughput_gain']:.2f}x")

    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nserver-side throughput at batch>=4: "
          f">={report['min_throughput_ratio_at_batch4plus']:.2f}x, "
          f"bit_identical={all_identical} -> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
