"""Branch-parallel plan execution benchmark: serial vs chain-parallel.

Times repeated whole-graph inference on the branchy model families
(Inception, SqueezeNet, ResNet — graphs whose compiled step lists slice
into many independent chains) with the serial planned backend and with
``ParallelConfig(threads=N)``, verifies the parallel output is
bit-identical to both the serial plan and the naive oracle, and writes
``BENCH_parallel.json``.

Serial backbones (AlexNet, MobileNet) ride along as **no-regression
controls**: they compile to a single chain, so the parallel config must
not slow them down.

The reported statistic is the **minimum** over repetitions, as in the
other benchmarks: the minimum is the stable estimate of code cost on
shared hosts.  The report records ``host.cpus`` because chain
parallelism physically cannot pay off on a single-core host —
``tools/bench_compare.py`` only enforces the branchy speedup floor when
the candidate ran with two or more cores.  Run as a script::

    PYTHONPATH=src python benchmarks/bench_parallel_chains.py --repeats 5
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time

import numpy as np

#: Families whose graphs slice into many chains (fire modules, residual
#: blocks, inception branches) — the targets of the speedup floor.
BRANCHY = {
    "Inception": "inception_v3",
    "SqueezeNet": "squeezenet",
    "ResNet": "resnet18",
}

#: Single-chain backbones: the parallel config must not regress these.
CONTROLS = {
    "AlexNet": "alexnet",
    "MobileNet": "mobilenet_v1",
}

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def _default_threads() -> int:
    return max(2, min(4, os.cpu_count() or 1))


def _time_runs(run, x, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run(x)
        best = min(best, time.perf_counter() - t0)
    return best


def bench_model(model_name: str, role: str, threads: int, repeats: int,
                seed: int = 0) -> dict:
    from repro.models import build_model
    from repro.nn import GraphExecutor
    from repro.nn.executor import init_parameters
    from repro.nn.parallel import ParallelConfig
    from repro.nn.plan import GraphPlan

    graph = build_model(model_name)
    params = init_parameters((graph.node(n) for n in graph.topological_order()), seed)
    serial = GraphPlan(graph, seed=seed, params=params)
    parallel = GraphPlan(graph, seed=seed, params=params,
                         parallel=ParallelConfig(threads=threads))
    naive = GraphExecutor(graph, seed=seed, params=params)
    x = np.random.default_rng(1).standard_normal(graph.input_spec.shape).astype(np.float32)

    ref = naive.run(x)
    serial_out = serial.run(x)
    parallel_out = parallel.run(x)
    bit_identical = bool(
        np.array_equal(ref, serial_out)
        and serial_out.tobytes() == parallel_out.tobytes()
        and parallel_out.tobytes() == parallel.run(x).tobytes()
    )

    serial_s = _time_runs(serial.run, x, repeats)
    parallel_s = _time_runs(parallel.run, x, repeats)
    stats = parallel.stats
    return {
        "model": model_name,
        "role": role,
        "serial_ms": round(serial_s * 1e3, 3),
        "parallel_ms": round(parallel_s * 1e3, 3),
        "speedup": round(serial_s / parallel_s, 3),
        "bit_identical": bit_identical,
        "chains": stats.chains,
        "pinned_buffers": stats.pinned_buffers,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per mode (min is reported)")
    parser.add_argument("--threads", type=int, default=_default_threads(),
                        help="chain-executor pool size (default: host-derived)")
    parser.add_argument("--models", nargs="*", default=None,
                        help="family or builder names (default: all)")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    roles = {**{f: ("branchy", m) for f, m in BRANCHY.items()},
             **{f: ("serial_control", m) for f, m in CONTROLS.items()}}
    if args.models:
        by_lower = {f.lower(): f for f in roles}
        by_model = {m.lower(): f for f, (_, m) in roles.items()}
        targets = {}
        for name in args.models:
            family = by_lower.get(name.lower()) or by_model.get(name.lower())
            if family is None:
                parser.error(f"unknown model {name!r} "
                             f"(choose from {sorted(roles)})")
            targets[family] = roles[family]
    else:
        targets = roles

    results = {}
    for family, (role, model_name) in targets.items():
        entry = bench_model(model_name, role, args.threads, args.repeats)
        results[family] = entry
        print(f"{family:12s} ({model_name}, {role}): "
              f"serial {entry['serial_ms']:9.1f} ms  "
              f"parallel {entry['parallel_ms']:9.1f} ms  "
              f"speedup {entry['speedup']:.2f}x  chains {entry['chains']:3d}  "
              f"bit_identical={entry['bit_identical']}")

    branchy = [e["speedup"] for e in results.values() if e["role"] == "branchy"]
    report = {
        "benchmark": "parallel_chains",
        "statistic": "min",
        "repeats": args.repeats,
        "threads": args.threads,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
        },
        "branchy_max_speedup": round(max(branchy), 3) if branchy else None,
        "all_bit_identical": all(e["bit_identical"] for e in results.values()),
        "results": results,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    best = report["branchy_max_speedup"]
    print(f"\nbest branchy speedup {best:.2f}x on {os.cpu_count()} cpu(s) "
          f"-> {args.output}" if best is not None else f"\n-> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
