"""Streaming + codec-aware offloading vs the monolithic fp32 upload.

Two cell families per (model, bandwidth), both from the engine's declared
cost model (simulated timing — host speed plays no role):

- **policy** — what the system actually does: Algorithm 1's plain decision
  (fp32, monolithic upload) against the joint ``(point, codec, chunking)``
  decision of :meth:`LoADPartEngine.decide_joint`.  The joint candidate
  set contains the plain objective, so this ratio is >= 1.0 by
  construction; at high bandwidth the engine must fall back to fp32/mono
  and the ratio collapses to 1.0 — that is the "no regression when the
  link is fast" half of the contract.  The recorded decisions also
  demonstrate the ``(point, codec)`` shift across the sweep.

- **transfer_bound** — both arms pinned via :meth:`LoADPartEngine.joint_at`
  at the same transfer-dominated cut (the joint offload-only optimum at
  the 4 Mbps reference link, held fixed across the sweep): streamed
  lossless zlib vs monolithic fp32.  This isolates what the codec +
  pipelined upload buy at a fixed partition point; the headline gate is
  >= 1.3x at every bandwidth at or below 8 Mbps.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_streaming.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform

import numpy as np

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_streaming.json"

MODELS = ("squeezenet", "resnet18", "mobilenet_v1")
BANDWIDTHS_MBPS = (1.0, 2.0, 4.0, 8.0, 32.0, 64.0, 256.0)
#: Bandwidths at or below this are transfer-dominated: the 1.3x floor applies.
LOW_BW_MBPS = 8.0
#: Reference link for choosing each model's pinned cut: slow enough that
#: the upload dominates every offloading cut's objective.
PIN_BW_MBPS = 4.0
STREAM_CODEC = "zlib"  # lossless: the gated comparison must be bit-exact


def _decision_row(jd, bandwidth_mbps: float) -> dict:
    return {
        "bandwidth_mbps": bandwidth_mbps,
        "point": jd.point,
        "codec": jd.codec,
        "streamed": jd.streamed,
        "chunks": jd.chunks,
        "latency_ms": round(jd.predicted_latency * 1e3, 4),
        "wire_kb": round(jd.wire_bytes / 1e3, 2),
    }


def bench_model(model: str, report_prof, k: float) -> dict:
    from repro.core.engine import LoADPartEngine
    from repro.models import build_model
    from repro.network.streaming import StreamingConfig

    engine = LoADPartEngine(build_model(model), report_prof.user_predictor,
                            report_prof.edge_predictor)
    # 8 KiB chunks: small enough that every model's transfer-dominated
    # cut spans multiple chunks (the default 32 KiB would leave small
    # cuts as a single chunk, i.e. no streamed candidate to compare).
    streaming = StreamingConfig(chunk_bytes=8192)
    # Pin: the model's most transfer-dominated *compressible* cut — the
    # offloading point where the streamed-lossless arm's advantage over
    # monolithic fp32 is largest at the slow reference link.  (Dense
    # conv outputs and the raw input barely deflate, so cuts behind
    # ReLU/pool/concat producers win this by construction; the policy
    # cells show the unpinned system-level numbers.)
    jd_pin = engine.decide_joint(PIN_BW_MBPS * 1e6, k=k, streaming=streaming,
                                 offload_only=True)
    mono_vec = jd_pin.candidates[("fp32", "mono")][:-1]
    stream_vec = jd_pin.candidates[(STREAM_CODEC, "stream")][:-1]
    feasible = np.flatnonzero(np.isfinite(stream_vec))
    pin = int(feasible[np.argmax(mono_vec[feasible] / stream_vec[feasible])])
    cells = []
    decisions = []
    low_bw_ratios = []
    policy_regressions = []
    for mbps in BANDWIDTHS_MBPS:
        bw = mbps * 1e6

        # Policy cells: the system-optimal decision of each arm.
        base = engine.decide(bw, k=k)
        joint = engine.decide_joint(bw, k=k, streaming=streaming)
        policy_ratio = base.predicted_latency / joint.predicted_latency
        policy_regressions.append(1.0 / policy_ratio - 1.0)
        decisions.append(_decision_row(joint, mbps))

        # Transfer-bound cells: both arms pinned at the same cut.
        mono = engine.joint_at(pin, "fp32", False, bw, k=k, streaming=streaming)
        stream = engine.joint_at(pin, STREAM_CODEC, True, bw, k=k,
                                 streaming=streaming)
        pinned_ratio = mono.predicted_latency / stream.predicted_latency
        if mbps <= LOW_BW_MBPS:
            low_bw_ratios.append(pinned_ratio)

        cells.append({
            "bandwidth_mbps": mbps,
            "policy": {
                "base_ms": round(base.predicted_latency * 1e3, 4),
                "joint_ms": round(joint.predicted_latency * 1e3, 4),
                "ratio": round(policy_ratio, 4),
            },
            "transfer_bound": {
                "point": pin,
                "mono_fp32_ms": round(mono.predicted_latency * 1e3, 4),
                "stream_ms": round(stream.predicted_latency * 1e3, 4),
                "stream_codec": STREAM_CODEC,
                "stream_chunks": stream.chunks,
                "ratio": round(pinned_ratio, 4),
            },
        })
        print(f"{model:14s} {mbps:6.1f} Mbps  policy "
              f"{base.predicted_latency * 1e3:8.2f} -> "
              f"{joint.predicted_latency * 1e3:8.2f} ms "
              f"(p={joint.point}, {joint.codec}"
              f"{', stream' if joint.streamed else ''})  pinned p={pin:3d} "
              f"{mono.predicted_latency * 1e3:8.2f} -> "
              f"{stream.predicted_latency * 1e3:8.2f} ms "
              f"({pinned_ratio:.2f}x)")

    shifts = sorted({(d["point"], d["codec"]) for d in decisions})
    return {
        "pinned_point": pin,
        "cells": cells,
        "decisions": decisions,
        "distinct_point_codec": [list(s) for s in shifts],
        "min_low_bw_ratio": round(min(low_bw_ratios), 4),
        "max_policy_regression": round(max(policy_regressions), 6),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--k", type=float, default=1.0,
                        help="edge load factor applied to server-side terms")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    from repro.profiling.offline import OfflineProfiler

    report_prof = OfflineProfiler(samples_per_category=150, seed=3).run()
    results = {}
    for model in MODELS:
        results[model] = bench_model(model, report_prof, args.k)

    report = {
        "benchmark": "streaming",
        "k": args.k,
        "low_bw_mbps": LOW_BW_MBPS,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        # Gate metrics: streamed lossless uploads must win big where the
        # link is the bottleneck, and the joint policy must never lose.
        "min_low_bw_ratio": min(r["min_low_bw_ratio"] for r in results.values()),
        "max_policy_regression": max(r["max_policy_regression"]
                                     for r in results.values()),
        "results": results,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nmin transfer-bound ratio at <= {LOW_BW_MBPS:.0f} Mbps: "
          f"{report['min_low_bw_ratio']:.2f}x; max policy regression "
          f"{report['max_policy_regression'] * 100:+.2f}% -> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
