"""Fig. 7 — AlexNet: LoADPart vs local vs full offloading per bandwidth."""

from repro.experiments import fig7


def test_fig7_alexnet(benchmark, save_report):
    result = benchmark.pedantic(
        fig7.run_fig7, kwargs={"requests": 60, "seed": 0}, rounds=1, iterations=1
    )
    save_report("fig7_alexnet_bandwidth", fig7.format_fig7(result))

    # LoADPart never loses to either trivial policy (within noise).
    for row in result.rows:
        assert row.loadpart_s <= 1.08 * min(row.local_s, row.full_s)
    # Paper shape: large speedups vs full offloading at low bandwidth
    # (paper: 6.96x mean, 21.98x max) and solid gains vs local at high
    # bandwidth (paper: 1.75x mean, 3.37x max).
    assert result.max_speedup_vs_full > 5.0
    assert result.mean_speedup_vs_full > 2.0
    assert result.max_speedup_vs_local > 2.0
    assert result.mean_speedup_vs_local > 1.2
