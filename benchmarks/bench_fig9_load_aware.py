"""Fig. 9 — the headline experiment: LoADPart vs Neurosurgeon under load.

All six DNNs at 8 Mbps through the 0% -> 100%(l) -> 100%(h) -> 0% load
schedule.  Paper: AlexNet -4.95% mean / -39.4% max; SqueezeNet -14.2% /
-32.3%; VGG16/Xception/ResNet18 unchanged; ResNet50 close to baseline.
"""

from repro.experiments import fig9


def test_fig9_load_aware(benchmark, save_report):
    result = benchmark.pedantic(
        fig9.run_fig9, kwargs={"duration_s": 260.0, "seed": 0}, rounds=1, iterations=1
    )
    save_report("fig9_load_aware", fig9.format_fig9(result))

    per = result.per_model

    # SqueezeNet: the paper's strongest case (mean -14.2%, max -32.3%).
    assert per["squeezenet"].mean_reduction > 0.05
    assert per["squeezenet"].max_window_reduction > 0.20
    # The partition point oscillates: mid-network when idle, local under
    # 100%(h), and back after the watchdog notices the recovery.
    n_sq = 92
    assert any(p < n_sq for p in per["squeezenet"].loadpart_points)
    assert n_sq in per["squeezenet"].loadpart_points

    # AlexNet: modest mean gain, large transient gains (paper 4.95%/39.4%).
    assert per["alexnet"].mean_reduction > 0.0
    assert per["alexnet"].max_window_reduction > 0.10

    # VGG16 and Xception: full offloading is optimal even under load, so
    # LoADPart matches the baseline (paper plots no baseline for them).
    for model in ("vgg16", "xception"):
        assert abs(per[model].mean_reduction) < 0.08, model
        assert per[model].loadpart_points == (0,)

    # ResNet18: local is optimal throughout; load variation has no effect.
    assert abs(per["resnet18"].mean_reduction) < 0.08

    # ResNet50: switches to local under 100%(h) (paper: close to baseline,
    # local above 100%(l)).
    assert 176 in per["resnet50"].loadpart_points
    assert per["resnet50"].mean_reduction > -0.05
