"""Fig. 2 — end-to-end latency distributions under background GPU load.

AlexNet/VGG16/ResNet101 fully offloaded at 8 Mbps under 30%..100%(h)
background load, 1000 samples per level as in the paper.
"""

from repro.experiments import fig2


def test_fig2_load_levels(benchmark, save_report):
    result = benchmark.pedantic(
        fig2.run_fig2, kwargs={"samples": 1000, "seed": 0}, rounds=1, iterations=1
    )
    save_report("fig2_load_levels", fig2.format_fig2(result))

    for model, stats in result.stats.items():
        by_name = {s.level: s for s in stats}
        # Averages flat below 50% utilisation.
        assert by_name["50%"].mean_s < 1.02 * by_name["0%"].mean_s, model
        # Rising mean above 90%.
        assert by_name["100%(l)"].mean_s > by_name["90%"].mean_s > by_name["50%"].mean_s
        # 100%(h) far worse and far noisier than 100%(l), same utilisation.
        assert by_name["100%(h)"].mean_s > 1.15 * by_name["100%(l)"].mean_s
        assert by_name["100%(h)"].std_s > 3 * by_name["100%(l)"].std_s
