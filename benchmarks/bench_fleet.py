"""Sharded fleet under saturation: 1 vs 4 edge servers, crash mid-run.

Saturates a 100+ client fleet against the edge and crashes server 0 in
the middle of the horizon, three arms:

- ``naive_direct`` — the paper's runtime: every client talks straight to
  the single shared server with no deadlines and no failover.  The crash
  stalls clients (a blocking RPC never returns) and availability drops.
- ``fleet1``       — the same single server behind the gateway with the
  supervisor probing and resilient clients: the crash is detected,
  requests fall back and retry, availability recovers to 1.0 — but one
  GPU still carries everyone, so contention pushes ``k`` up and tail
  latency out.
- ``fleet4``       — four servers behind the gateway.  Server 0 crashes
  on the same schedule; the supervisor marks it dead, the joint
  ``(point, server)`` scan re-routes to the live siblings, and the load
  spreads across three healthy GPUs: availability 1.0 *and* a lower p95
  than the single-server fleet.

A heterogeneous cell pits a fast+near server against a slow+far one
(4x slower GPU, +30 ms link, half the uplink) under the same client
load, twice: ``hetero_aware`` gives the gateway per-server
``ServerProfile`` beliefs plus learned link penalties, ``hetero_blind``
routes with neither — so the aware arm anticipates the hardware gap
while the blind arm discovers it one mis-routed request at a time.  The
gate asserts the aware arm's p95 strictly beats the blind arm's.

The report also re-checks the degenerate identity (1-server gateway with
probes disabled == direct path, record for record) so the gate catches
any drift in the routing layer's zero-cost guarantee.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_fleet.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform

import numpy as np

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fleet.json"

MODEL = "squeezenet"
CLIENTS = 100
DURATION_S = 8.0
CRASH_WINDOW = (2.5, 5.0)
BANDWIDTH_BPS = 50e6
THINK_TIME_S = 0.6
IDENTITY_CLIENTS = 3
IDENTITY_DURATION_S = 2.0


def _summarise(result, duration_s: float) -> dict:
    records = [r for t in result.timelines for r in t]
    issued = len(records)
    completed = [r for r in records if r.completed]
    lat = np.array([r.total_s for r in completed])
    return {
        "issued": issued,
        "completed": len(completed),
        "availability": round(len(completed) / issued, 4) if issued else None,
        "mean_ms": round(float(lat.mean()) * 1e3, 2) if len(lat) else None,
        "p95_ms": round(float(np.percentile(lat, 95)) * 1e3, 2) if len(lat) else None,
        "throughput_rps": round(len(completed) / duration_s, 2),
        "local_fraction": round(result.local_fraction, 4),
        "stalled_clients": sum(
            1 for t in result.timelines if any(not r.completed for r in t)),
    }


def _breakdown(result) -> list:
    rows = []
    for s in result.server_breakdown():
        rows.append({
            "server_id": s.server_id,
            "requests": s.requests,
            "completed": s.completed,
            "availability": None if np.isnan(s.availability)
            else round(s.availability, 4),
            "p95_ms": None if np.isnan(s.p95_latency)
            else round(s.p95_latency * 1e3, 2),
            "rejected": s.rejected,
            "failed": s.failed,
            "fallbacks": s.fallbacks,
        })
    return rows


def run_naive(engine, seed: int, duration_s: float) -> dict:
    from repro.network.faults import ServerFaultPlan
    from repro.network.traces import ConstantTrace
    from repro.runtime.multi import MultiClientSystem
    from repro.runtime.system import SystemConfig

    config = SystemConfig(
        seed=seed,
        think_time_s=THINK_TIME_S,
        server_faults=ServerFaultPlan(crash_windows=(CRASH_WINDOW,)),
    )
    result = MultiClientSystem(
        engine, CLIENTS, bandwidth_trace=ConstantTrace(BANDWIDTH_BPS),
        config=config).run(duration_s)
    return _summarise(result, duration_s)


def run_fleet(engine, seed: int, duration_s: float, num_servers: int) -> dict:
    from repro.network.faults import ServerFaultPlan
    from repro.network.traces import ConstantTrace
    from repro.runtime.gateway import GatewayConfig, GatewayFleetSystem
    from repro.runtime.resilience import ResilienceConfig
    from repro.runtime.supervisor import SupervisorConfig
    from repro.runtime.system import SystemConfig

    config = SystemConfig(
        seed=seed,
        think_time_s=THINK_TIME_S,
        resilience=ResilienceConfig(max_retries=2),
    )
    server_faults = [None] * num_servers
    server_faults[0] = ServerFaultPlan(crash_windows=(CRASH_WINDOW,))
    system = GatewayFleetSystem(
        engine, CLIENTS, num_servers=num_servers,
        bandwidth_trace=ConstantTrace(BANDWIDTH_BPS),
        config=config,
        gateway_config=GatewayConfig(probes=SupervisorConfig(
            probe_period_s=0.5, dead_after_misses=2)),
        server_faults=server_faults,
    )
    result = system.run(duration_s)
    summary = _summarise(result, duration_s)
    summary["servers"] = _breakdown(result)
    summary["rejected_at_gateway"] = system.gateway.rejected_count
    summary["restarts_seen"] = {
        sid: h.restarts_seen for sid, h in system.supervisor.health.items()}
    return summary


#: Heterogeneous cell: server 1's true hardware/link handicap vs server 0.
HETERO_GPU_SLOWDOWN = 4.0
HETERO_EXTRA_LATENCY_S = 0.03
HETERO_FAR_BANDWIDTH_BPS = 25e6


def run_hetero(engine, edge_predictor, seed: int, duration_s: float,
               aware: bool) -> dict:
    """Fast+near vs slow+far, with and without per-server beliefs.

    The *truth* is identical in both arms: server 1 runs a GPU with every
    rate divided by ``HETERO_GPU_SLOWDOWN``, sits ``HETERO_EXTRA_LATENCY_S``
    farther away, and has half the uplink.  Only the gateway's *belief*
    differs: the aware arm carries ``ServerProfile``s (scaled predictor,
    bandwidth prior, link-position prior) and learns link penalties from
    probe decomposition; the blind arm routes on the engine's shared
    predictor with single-upload probes.
    """
    from repro.core.engine import ServerProfile
    from repro.hardware.gpu_model import GpuModel, GpuParams
    from repro.network.channel import NetworkParams
    from repro.network.traces import ConstantTrace
    from repro.profiling.predictor import ScaledPredictor
    from repro.runtime.gateway import GatewayConfig, GatewayFleetSystem
    from repro.runtime.resilience import ResilienceConfig
    from repro.runtime.supervisor import SupervisorConfig
    from repro.runtime.system import SystemConfig

    s = HETERO_GPU_SLOWDOWN
    base = GpuParams()
    slow_gpu = GpuModel(GpuParams(
        conv_rate=base.conv_rate / s, dwconv_rate=base.dwconv_rate / s,
        matmul_rate=base.matmul_rate / s, mem_bandwidth=base.mem_bandwidth / s))
    profiles = None
    if aware:
        profiles = [
            ServerProfile(),
            ServerProfile(
                edge_predictor=ScaledPredictor(edge_predictor, s),
                bandwidth_bps=HETERO_FAR_BANDWIDTH_BPS,
                extra_latency_s=HETERO_EXTRA_LATENCY_S),
        ]
    config = SystemConfig(
        seed=seed,
        think_time_s=THINK_TIME_S,
        resilience=ResilienceConfig(max_retries=2),
    )
    system = GatewayFleetSystem(
        engine, CLIENTS, num_servers=2,
        bandwidth_trace=ConstantTrace(BANDWIDTH_BPS),
        config=config,
        gateway_config=GatewayConfig(probes=SupervisorConfig(
            probe_period_s=0.5, dead_after_misses=2, learn_links=aware)),
        gpu_models=[None, slow_gpu],
        network_params=[
            NetworkParams(),
            NetworkParams(base_latency_s=NetworkParams().base_latency_s
                          + HETERO_EXTRA_LATENCY_S)],
        bandwidth_traces=[ConstantTrace(BANDWIDTH_BPS),
                          ConstantTrace(HETERO_FAR_BANDWIDTH_BPS)],
        profiles=profiles,
    )
    result = system.run(duration_s)
    summary = _summarise(result, duration_s)
    summary["servers"] = _breakdown(result)
    summary["routed_counts"] = dict(system.gateway.routed_counts)
    summary["learned_link_latency_s"] = {
        sid: round(system.supervisor.latency_for(sid), 5)
        for sid in system.supervisor.health}
    return summary


def check_degenerate_identity(engine, seed: int) -> bool:
    """1-server gateway, probes off: records must equal the direct path."""
    from repro.runtime.gateway import GatewayConfig, GatewayFleetSystem
    from repro.runtime.multi import MultiClientSystem
    from repro.runtime.system import SystemConfig

    config = SystemConfig(seed=seed)
    direct = MultiClientSystem(
        engine, IDENTITY_CLIENTS, config=config).run(IDENTITY_DURATION_S)
    degen = GatewayFleetSystem(
        engine, IDENTITY_CLIENTS, num_servers=1, config=config,
        gateway_config=GatewayConfig(probes=None)).run(IDENTITY_DURATION_S)
    return all(td.records == tg.records
               for td, tg in zip(direct.timelines, degen.timelines))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=DURATION_S)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    from repro.core.engine import LoADPartEngine
    from repro.models import build_model
    from repro.profiling.offline import OfflineProfiler

    report_prof = OfflineProfiler(samples_per_category=150, seed=3).run()
    engine = LoADPartEngine(build_model(MODEL), report_prof.user_predictor,
                            report_prof.edge_predictor)

    arms = {
        "naive_direct": run_naive(engine, args.seed, args.duration),
        "fleet1": run_fleet(engine, args.seed, args.duration, num_servers=1),
        "fleet4": run_fleet(engine, args.seed, args.duration, num_servers=4),
        "hetero_blind": run_hetero(engine, report_prof.edge_predictor,
                                   args.seed, args.duration, aware=False),
        "hetero_aware": run_hetero(engine, report_prof.edge_predictor,
                                   args.seed, args.duration, aware=True),
    }
    degenerate_identical = check_degenerate_identity(engine, args.seed)

    for name, row in arms.items():
        p95 = f"{row['p95_ms']:.1f}" if row["p95_ms"] is not None else "-"
        print(f"{name:13s} issued {row['issued']:5d}  "
              f"avail {row['availability']:.3f}  p95 {p95} ms  "
              f"local {row['local_fraction']:.3f}  "
              f"stalled_clients {row['stalled_clients']}")
    print(f"degenerate identity: {degenerate_identical}")

    report = {
        "benchmark": "fleet",
        "model": MODEL,
        "clients": CLIENTS,
        "duration_s": args.duration,
        "crash_window_s": list(CRASH_WINDOW),
        "seed": args.seed,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        # Gate metrics: the 4-server fleet must ride through the crash at
        # full availability and beat the 1-server fleet's tail latency;
        # the degenerate 1-server gateway must stay a zero-cost wrapper.
        "fleet4_availability": arms["fleet4"]["availability"],
        "fleet1_p95_ms": arms["fleet1"]["p95_ms"],
        "fleet4_p95_ms": arms["fleet4"]["p95_ms"],
        "naive_availability": arms["naive_direct"]["availability"],
        # Heterogeneous gate: belief-aware routing must beat profile-blind
        # routing on tail latency against the same fast+near / slow+far truth.
        "hetero_aware_p95_ms": arms["hetero_aware"]["p95_ms"],
        "hetero_blind_p95_ms": arms["hetero_blind"]["p95_ms"],
        "degenerate_identical": degenerate_identical,
        "results": [{"arm": name, **row} for name, row in arms.items()],
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nfleet4 avail {report['fleet4_availability']:.3f}, "
          f"p95 {report['fleet4_p95_ms']:.1f} ms vs fleet1 "
          f"{report['fleet1_p95_ms']:.1f} ms; hetero aware p95 "
          f"{report['hetero_aware_p95_ms']:.1f} ms vs blind "
          f"{report['hetero_blind_p95_ms']:.1f} ms -> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
