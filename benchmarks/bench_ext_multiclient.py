"""Extension — multi-client fleet on one edge server (paper's motivation).

Not a paper figure: quantifies the emergent fleet behaviour of load-aware
partitioning when the server contention is caused by the clients
themselves, closing the loop the paper's §I motivation describes.
"""

import pytest

from repro.core.engine import LoADPartEngine
from repro.experiments.reporting import render_table
from repro.models import build_model
from repro.runtime.multi import MultiClientSystem
from repro.runtime.system import SystemConfig


@pytest.fixture(scope="module")
def engine(trained_report):
    return LoADPartEngine(
        build_model("resnet50"),
        trained_report.user_predictor,
        trained_report.edge_predictor,
    )


def test_fleet_self_stabilisation(benchmark, engine, save_report):
    def run():
        rows = []
        for num_clients in (8, 24, 64):
            stats = {}
            for policy in ("loadpart", "neurosurgeon"):
                system = MultiClientSystem(
                    engine, num_clients, config=SystemConfig(policy=policy, seed=5)
                )
                stats[policy] = system.run(30.0)
            lp, bl = stats["loadpart"], stats["neurosurgeon"]
            rows.append(
                (num_clients,
                 f"{lp.mean_latency * 1e3:.0f}", f"{bl.mean_latency * 1e3:.0f}",
                 f"{(1 - lp.mean_latency / bl.mean_latency) * 100:.0f}%",
                 f"{lp.local_fraction * 100:.0f}%", f"{bl.local_fraction * 100:.0f}%",
                 f"{lp.total_requests}", f"{bl.total_requests}")
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ext_multiclient",
        render_table(
            ["clients", "LoADPart ms", "baseline ms", "latency cut",
             "LoADPart local%", "baseline local%", "LoADPart reqs", "baseline reqs"],
            rows,
        ),
    )
    # At fleet scale, the load-aware policy must win on latency and
    # throughput, with a visible retreat to local inference.
    big = rows[-1]
    assert float(big[3].rstrip("%")) > 10
    assert float(big[4].rstrip("%")) > 10
    assert int(big[6]) > int(big[7])
