"""Per-sample parallel batched plans: serial batched vs 2-D (sample × chain).

Times repeated batched whole-graph inference — the shape of the server's
batched tail execs — for a branchy family (SqueezeNet: samples × chains
compose) and a serial backbone (AlexNet: only the sample axis exists),
sweeping threads {1, 2, 4} × batch {1, 4, 8}.  Every cell is verified
**per-sample bit-identical** to the serial batched plan and to
independent naive batch-1 runs before it is timed.

Controls ride along in the same grid: ``threads=1`` cells keep the fused
batched compile — on a single-chain backbone a parallel config with no
workers must cost ~nothing over the plain batched plan
(``serial_control``, gated); on a branchy graph it carries PR 4's
accepted chain-region compile overhead (``branchy_serial``,
informational).  ``batch=1`` cells are plain chain parallelism with no
sample axis to exploit (``chain_only``).

The reported statistic is the **minimum** over repetitions, and the
report records ``host.cpus``: sample parallelism physically cannot pay
off on a single-core host, so ``tools/bench_compare.py`` only enforces
the speedup floor when the candidate ran with two or more cores
(bit-identity is enforced unconditionally).  Run as a script::

    PYTHONPATH=src python benchmarks/bench_parallel_samples.py --repeats 5
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import platform
import time

import numpy as np

#: family -> builder name; one branchy (2-D schedule) + one serial
#: backbone (pure sample-axis schedule).
FAMILIES = {
    "SqueezeNet": "squeezenet",
    "AlexNet": "alexnet",
}

THREAD_GRID = (1, 2, 4)
BATCH_GRID = (1, 4, 8)

DEFAULT_OUTPUT = (pathlib.Path(__file__).resolve().parent.parent
                  / "BENCH_parallel_samples.json")


def _time_runs(run, x, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        run(x)
        best = min(best, time.perf_counter() - t0)
    return best


def bench_cell(graph, params, naive, batch: int, threads: int,
               repeats: int, seed: int = 0) -> dict:
    from repro.nn.parallel import ParallelConfig
    from repro.nn.plan import GraphPlan

    serial = GraphPlan(graph, seed=seed, params=params, batch=batch)
    parallel = GraphPlan(graph, seed=seed, params=params, batch=batch,
                         parallel=ParallelConfig(threads=threads))
    rng = np.random.default_rng(1)
    xs = [rng.standard_normal(graph.input_spec.shape).astype(np.float32)
          for _ in range(batch)]
    x = np.concatenate(xs, axis=0) if batch > 1 else xs[0]

    serial_out = serial.run(x)
    parallel_out = parallel.run(x)
    per_sample_ok = all(
        np.array_equal(serial_out[i:i + 1], naive.run(xi))
        for i, xi in enumerate(xs)
    )
    bit_identical = bool(
        per_sample_ok
        and serial_out.tobytes() == parallel_out.tobytes()
        and parallel_out.tobytes() == parallel.run(x).tobytes()
    )

    serial_s = _time_runs(serial.run, x, repeats)
    parallel_s = _time_runs(parallel.run, x, repeats)
    stats = parallel.stats
    if batch > 1 and threads > 1:
        role = "sample_parallel"
    elif threads > 1:
        role = "chain_only"        # batch=1: no sample axis to exploit
    elif stats.chains <= max(stats.sample_slices, 1):
        role = "serial_control"    # threads=1, single chain: pure config cost
    else:
        # threads=1 on a branchy graph: the fused batched plan compiled
        # with chain regions — carries PR 4's accepted chain-compile
        # overhead (conv pre-seed off, pinned buffers), informational only.
        role = "branchy_serial"
    return {
        "batch": batch,
        "threads": threads,
        "role": role,
        "serial_ms": round(serial_s * 1e3, 3),
        "parallel_ms": round(parallel_s * 1e3, 3),
        "speedup": round(serial_s / parallel_s, 3),
        "samples_per_s": round(batch / parallel_s, 2),
        "sample_slices": stats.sample_slices,
        "tasks": stats.chains,
        "bit_identical": bit_identical,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions per cell (min is reported)")
    parser.add_argument("--models", nargs="*", default=None,
                        help="family names to run (default: all)")
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    from repro.models import build_model
    from repro.nn import GraphExecutor
    from repro.nn.executor import init_parameters

    targets = FAMILIES
    if args.models:
        by_lower = {f.lower(): f for f in FAMILIES}
        try:
            targets = {by_lower[m.lower()]: FAMILIES[by_lower[m.lower()]]
                       for m in args.models}
        except KeyError as exc:
            parser.error(f"unknown model {exc.args[0]!r} "
                         f"(choose from {sorted(FAMILIES)})")

    results = {}
    for family, model_name in targets.items():
        graph = build_model(model_name)
        params = init_parameters(
            (graph.node(n) for n in graph.topological_order()), 0)
        naive = GraphExecutor(graph, seed=0, params=params)
        for batch in BATCH_GRID:
            for threads in THREAD_GRID:
                cell = bench_cell(graph, params, naive, batch, threads,
                                  args.repeats)
                results[f"{family}/b{batch}/t{threads}"] = cell
                print(f"{family:10s} b={batch} t={threads} ({cell['role']:15s}): "
                      f"serial {cell['serial_ms']:8.1f} ms  "
                      f"parallel {cell['parallel_ms']:8.1f} ms  "
                      f"speedup {cell['speedup']:.2f}x  "
                      f"bit_identical={cell['bit_identical']}")

    parallel_cells = [e["speedup"] for e in results.values()
                      if e["role"] == "sample_parallel"]
    report = {
        "benchmark": "parallel_samples",
        "statistic": "min",
        "repeats": args.repeats,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "cpus": os.cpu_count(),
        },
        "sample_parallel_max_speedup": (round(max(parallel_cells), 3)
                                        if parallel_cells else None),
        "all_bit_identical": all(e["bit_identical"]
                                 for e in results.values()),
        "results": results,
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    best = report["sample_parallel_max_speedup"]
    print(f"\nbest sample-parallel speedup "
          f"{best:.2f}x on {os.cpu_count()} cpu(s) -> {args.output}"
          if best is not None else f"\n-> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
