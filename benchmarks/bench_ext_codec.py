"""Extension — transmission codecs (fp32/fp16/int8 uploads).

Not a paper figure: quantifies how compressing the intermediate tensors
shifts the partition landscape (related-work direction the paper cites:
reducing what crosses the link).
"""

import numpy as np
import pytest

from repro.core.engine import LoADPartEngine
from repro.experiments.reporting import render_table
from repro.models import build_model
from repro.network.codec import TensorCodec


@pytest.fixture(scope="module")
def engines(trained_report):
    graph = build_model("squeezenet")
    return {
        name: LoADPartEngine(
            graph, trained_report.user_predictor, trained_report.edge_predictor,
            upload_codec=TensorCodec(name),
        )
        for name in ("fp32", "fp16", "int8")
    }


def test_codec_encode_speed(benchmark):
    rng = np.random.default_rng(0)
    x = rng.standard_normal((1, 128, 28, 28)).astype(np.float32)
    codec = TensorCodec("int8")
    encoded = benchmark(codec.encode, x)
    assert encoded.nbytes == x.size


def test_codec_partition_landscape(benchmark, engines, save_report):
    def compute():
        rows = []
        n = next(iter(engines.values())).num_nodes
        for bw in (1e6, 2e6, 4e6, 8e6):
            row = [f"{bw / 1e6:g}"]
            for name in ("fp32", "fp16", "int8"):
                decision = engines[name].decide(bw)
                mode = "local" if decision.point == n else (
                    "full" if decision.point == 0 else f"p={decision.point}"
                )
                row.append(f"{mode} ({decision.predicted_latency * 1e3:.0f}ms)")
            rows.append(tuple(row))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    save_report(
        "ext_codec",
        render_table(["Mbps", "fp32 uploads", "fp16 uploads", "int8 uploads"], rows),
    )
    # int8 must enable offloading at some bandwidth where fp32 stays local.
    rescued = any("local" in r[1] and "local" not in r[3] for r in rows)
    assert rescued
