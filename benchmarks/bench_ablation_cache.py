"""Ablation — the partition cache (§III-A).

The paper: with the cache, partition overhead amortises to ~1% of the
inference time over ~100 offloading requests.  This benchmark measures
partitioning cost with and without the cache and checks the amortised
share.
"""

import pytest

from repro.core.cache import PartitionCache
from repro.experiments.context import default_engine
from repro.experiments.reporting import render_table
from repro.graph.partitioner import GraphPartitioner
from repro.models import build_model


@pytest.fixture(scope="module")
def partitioner():
    return GraphPartitioner(build_model("squeezenet"))


def test_partition_without_cache(benchmark, partitioner):
    benchmark(partitioner.partition, 47)


def test_partition_with_cache(benchmark, partitioner):
    cache = PartitionCache(partitioner)
    cache.get(47)  # warm
    benchmark(cache.get, 47)


def test_amortised_overhead_share(benchmark, save_report):
    """Simulated overhead share over 100 requests at one partition point."""
    from repro.network.traces import ConstantTrace
    from repro.runtime.system import OffloadingSystem, SystemConfig

    def run():
        engine = default_engine("squeezenet")
        system = OffloadingSystem(
            engine,
            bandwidth_trace=ConstantTrace(8e6),
            config=SystemConfig(seed=0),
        )
        timeline = system.run(duration_s=1e9, max_requests=100)
        total = sum(r.total_s for r in timeline)
        overhead = sum(r.overhead_s for r in timeline)
        return overhead / total, system.device.cache.hit_rate

    share, hit_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    save_report(
        "ablation_cache",
        render_table(
            ["metric", "value", "paper"],
            [
                ("amortised partition overhead", f"{share * 100:.2f}%", "~1%"),
                ("device cache hit rate (100 reqs)", f"{hit_rate * 100:.1f}%", "-"),
            ],
        ),
    )
    assert share < 0.02, "amortised overhead should be ~1% as in the paper"
    assert hit_rate > 0.9
