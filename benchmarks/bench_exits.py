"""Early exits under SLA load: joint (exit, point) vs full-network-only.

Eight clients share one edge server over an 8 Mbps uplink, with two SLA
classes assigned round-robin: a *strict* deadline the full network cannot
meet end-to-end at this bandwidth, and a *slack* deadline it meets
comfortably.  Two arms run the identical workload:

- ``full_net_only`` — the paper's engine with no exit branches: every
  request runs the full network at Algorithm 1's best partition point.
  Strict-class requests miss their deadline structurally; the SLA stamp
  records the damage.
- ``exits``         — the exit-carrying engine: ``decide_exit`` picks the
  latest (most accurate) exit whose best partition meets the per-request
  SLA.  Strict traffic lands on an early exit and makes its deadline at a
  declared accuracy cost; slack traffic keeps the final exit — the full
  network, byte-identical weights — at full accuracy.

The report also re-checks the degenerate identity (the exit-carrying
engine with ``sla_classes=None`` produces records *equal*, field for
field, to the plain engine's) so the gate catches any drift in the
zero-cost guarantee for exit-free traffic.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_exits.py
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform

import numpy as np

DEFAULT_OUTPUT = pathlib.Path(__file__).resolve().parent.parent / "BENCH_exits.json"

MODEL = "mobilenet_v1"
CLIENTS = 8
DURATION_S = 8.0
BANDWIDTH_BPS = 8e6
THINK_TIME_S = 0.1
SLA_STRICT_S = 0.1
SLA_SLACK_S = 0.35
IDENTITY_CLIENTS = 3
IDENTITY_DURATION_S = 2.0


def _class_row(records, accuracy_of) -> dict:
    completed = [r for r in records if r.completed]
    lat = np.array([r.total_s for r in completed])
    exits: dict = {}
    for r in records:
        key = "full" if r.exit_index is None else str(r.exit_index)
        exits[key] = exits.get(key, 0) + 1
    accs = [accuracy_of(r.exit_index) for r in completed]
    return {
        "issued": len(records),
        "completed": len(completed),
        "attainment": (round(sum(1 for r in records if r.met_sla)
                             / len(records), 4) if records else None),
        "mean_ms": round(float(lat.mean()) * 1e3, 2) if len(lat) else None,
        "p95_ms": round(float(np.percentile(lat, 95)) * 1e3, 2)
        if len(lat) else None,
        "mean_accuracy": round(float(np.mean(accs)), 4) if accs else None,
        "min_accuracy": round(float(np.min(accs)), 4) if accs else None,
        "exit_counts": exits,
    }


def run_arm(engine, accuracy_of, seed: int, duration_s: float) -> dict:
    from repro.network.traces import ConstantTrace
    from repro.runtime.multi import MultiClientSystem
    from repro.runtime.system import SystemConfig

    config = SystemConfig(
        seed=seed,
        think_time_s=THINK_TIME_S,
        sla_classes=(SLA_STRICT_S, SLA_SLACK_S),
    )
    result = MultiClientSystem(
        engine, CLIENTS, bandwidth_trace=ConstantTrace(BANDWIDTH_BPS),
        config=config).run(duration_s)
    records = [r for t in result.timelines for r in t]
    return {
        "overall_attainment": round(result.sla_attainment(), 4),
        "strict": _class_row(
            [r for r in records if r.sla_s == SLA_STRICT_S], accuracy_of),
        "slack": _class_row(
            [r for r in records if r.sla_s == SLA_SLACK_S], accuracy_of),
    }


def check_degenerate_identity(plain_engine, exit_engine, seed: int) -> bool:
    """Exit-carrying engine, no SLA classes: records must equal the plain
    engine's, field for field — the exit axis is free until asked for."""
    from repro.runtime.multi import MultiClientSystem
    from repro.runtime.system import SystemConfig

    config = SystemConfig(seed=seed)
    base = MultiClientSystem(
        plain_engine, IDENTITY_CLIENTS, config=config).run(IDENTITY_DURATION_S)
    degen = MultiClientSystem(
        exit_engine, IDENTITY_CLIENTS, config=config).run(IDENTITY_DURATION_S)
    return all(tb.records == td.records
               for tb, td in zip(base.timelines, degen.timelines))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=DURATION_S)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", type=pathlib.Path, default=DEFAULT_OUTPUT)
    args = parser.parse_args(argv)

    from repro.core.engine import LoADPartEngine
    from repro.models import build_exit_model, build_model
    from repro.profiling.offline import OfflineProfiler

    report_prof = OfflineProfiler(samples_per_category=150, seed=3).run()
    plain = LoADPartEngine(build_model(MODEL), report_prof.user_predictor,
                           report_prof.edge_predictor)
    graph, branches = build_exit_model(MODEL)
    exits = LoADPartEngine(graph, report_prof.user_predictor,
                           report_prof.edge_predictor, exits=branches)

    # Accuracy proxy per served exit; the plain arm always runs the full
    # network, so its records score the final exit's accuracy.
    def accuracy_of(exit_index):
        return exits.exit_accuracy(exit_index)

    arms = {
        "full_net_only": run_arm(plain, accuracy_of, args.seed, args.duration),
        "exits": run_arm(exits, accuracy_of, args.seed, args.duration),
    }
    degenerate_identical = check_degenerate_identity(plain, exits, args.seed)

    for name, row in arms.items():
        print(f"{name:14s} strict att {row['strict']['attainment']:.3f} "
              f"(p95 {row['strict']['p95_ms']} ms, "
              f"acc {row['strict']['mean_accuracy']})  "
              f"slack att {row['slack']['attainment']:.3f} "
              f"(acc {row['slack']['min_accuracy']})")
    print(f"degenerate identity: {degenerate_identical}")

    report = {
        "benchmark": "exits",
        "model": MODEL,
        "clients": CLIENTS,
        "duration_s": args.duration,
        "bandwidth_mbps": BANDWIDTH_BPS / 1e6,
        "sla_strict_s": SLA_STRICT_S,
        "sla_slack_s": SLA_SLACK_S,
        "seed": args.seed,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        # Gate metrics: under strict deadlines the exit-carrying engine
        # must strictly beat the full-network-only arm on attainment,
        # slack traffic must keep the full network's accuracy (and lose
        # no attainment), and exit-free traffic must stay byte-identical.
        "exits_strict_attainment": arms["exits"]["strict"]["attainment"],
        "full_strict_attainment": arms["full_net_only"]["strict"]["attainment"],
        "exits_slack_attainment": arms["exits"]["slack"]["attainment"],
        "full_slack_attainment": arms["full_net_only"]["slack"]["attainment"],
        "exits_slack_min_accuracy": arms["exits"]["slack"]["min_accuracy"],
        "full_net_accuracy": accuracy_of(None),
        "degenerate_identical": degenerate_identical,
        "results": [{"arm": name, **row} for name, row in arms.items()],
    }
    args.output.write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nstrict attainment {report['full_strict_attainment']:.3f} -> "
          f"{report['exits_strict_attainment']:.3f} with exits; slack "
          f"accuracy {report['exits_slack_min_accuracy']} -> {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
