"""Fig. 6 — partition points of the 6 DNNs over the bandwidth sweep."""

from repro.experiments import fig6


def test_fig6_bandwidth_sweep(benchmark, save_report):
    result = benchmark.pedantic(fig6.run_fig6, rounds=1, iterations=1)
    save_report("fig6_bandwidth_sweep", fig6.format_fig6(result))

    def points(model):
        return {s.bandwidth_mbps: s.dominant_point for s in result.per_model[model][:4]} | {
            s.bandwidth_mbps: s.dominant_point for s in result.per_model[model][4:]
        }

    n = result.num_nodes

    # AlexNet: early points at high bandwidth, local at <= 2 Mbps (paper).
    alex = {s.bandwidth_mbps: s.dominant_point for s in result.per_model["alexnet"]}
    assert alex[64] <= 8
    assert alex[1] == n["alexnet"]

    # SqueezeNet: partial at 8 Mbps, local at low bandwidth (paper: 4 Mbps).
    sq = {s.bandwidth_mbps: s.dominant_point for s in result.per_model["squeezenet"]}
    assert 0 < sq[8] < n["squeezenet"]
    assert sq[1] == n["squeezenet"]

    # VGG16: full offloading at every bandwidth, even 1 Mbps (paper §V-B).
    assert all(s.dominant_point == 0 for s in result.per_model["vgg16"])

    # ResNet18: local at low bandwidth, full at high (paper §V-B).
    r18 = {s.bandwidth_mbps: s.dominant_point for s in result.per_model["resnet18"]}
    assert r18[1] == n["resnet18"] and r18[8] == n["resnet18"]
    assert r18[64] == 0

    # ResNet50 / Xception: local at very low bandwidth, full otherwise.
    for model in ("resnet50", "xception"):
        pts = {s.bandwidth_mbps: s.dominant_point for s in result.per_model[model]}
        assert pts[1] == n[model]
        assert pts[64] == 0
