"""Compare two benchmark reports and gate on regressions.

Intended as the perf check between a baseline run (e.g. from the main
branch) and a candidate run::

    python tools/bench_compare.py baseline.json candidate.json

Exits non-zero when the candidate regresses by more than the threshold
(default 15%) on any entry present in both reports.

For ``BENCH_executor.json`` reports, ``--metric planned_ms`` (the default)
gates on absolute planned-backend milliseconds — right when both reports
come from the same host.  ``--metric speedup`` gates on the naive/planned
speedup ratio instead, which cancels host speed and is the right choice
when the baseline report was committed from a different machine (e.g. CI).

``BENCH_resilience.json`` reports are detected automatically and gated on
the resilient arm's **availability** (fractional drop vs baseline) and
**fallback rate** (absolute increase) per fault scenario — host speed
plays no role in either, so they compare cleanly across machines.

``BENCH_parallel.json`` reports are also detected automatically.  They
gate on the candidate's own numbers rather than the baseline's, because
chain-parallel speedup depends on core count and the baseline may have
been committed from a different machine: at least one branchy model must
reach the 1.2x speedup floor (skipped, loudly, when the candidate host
has fewer than two CPUs — parallelism cannot pay off there), no serial
control model may slow down more than 5%, and bit-identity must hold
everywhere.

``BENCH_parallel_samples.json`` reports gate the same way on the 2-D
(sample × chain) grid: at least one ``sample_parallel`` cell must reach
the 1.2x floor on 2+ CPU hosts, ``serial_control`` cells (threads=1 on a
single-chain backbone) stay within 5%, and bit-identity — sample-parallel
output vs the serial batched plan vs per-sample naive runs — is enforced
unconditionally.  ``chain_only`` and ``branchy_serial`` cells are
informational (the former is gated by the parallel_chains report, the
latter carries PR 4's accepted chain-compile overhead).

``BENCH_fleet.json`` reports gate on the candidate alone: the 4-server
fleet must complete every request (availability 1.0) while server 0
crashes mid-run, its p95 must beat the saturated 1-server fleet's, the
degenerate 1-server gateway must have stayed record-identical to the
direct client-server path, and on the heterogeneous (fast+near vs
slow+far) cell the profile-aware arm's p95 must strictly beat the
profile-blind arm's.

``BENCH_streaming.json`` reports gate on the candidate alone (the numbers
come from the declared cost model, so host speed cancels entirely):
streamed lossless uploads must beat the monolithic fp32 upload by at
least 1.3x at every pinned transfer-dominated (≤8 Mbps) cell, the joint
``(point, codec, chunking)`` policy may not regress the plain Algorithm 1
decision by more than 5% at any bandwidth, and every model must shift its
``(point, codec)`` choice across the sweep.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_THRESHOLD = 0.15

#: parallel_chains gates: ≥1.2x on at least one branchy model (multi-core
#: hosts only), and serial single-chain controls within 5% of their
#: serial-plan time.
BRANCHY_SPEEDUP_FLOOR = 1.2
SERIAL_CONTROL_TOLERANCE = 0.05

#: parallel_samples gate: ≥1.2x on at least one (batch, threads) cell
#: that schedules samples in parallel (multi-core hosts only).
SAMPLE_SPEEDUP_FLOOR = 1.2

#: streaming gates: streamed-lossless uploads must beat monolithic fp32
#: by ≥1.3x at every transfer-dominated (≤8 Mbps) pinned cell, the joint
#: policy may not regress the plain decision by more than 5% anywhere,
#: and each model's sweep must shift its (point, codec) choice.
STREAMING_LOW_BW_FLOOR = 1.3
STREAMING_POLICY_TOLERANCE = 0.05


def load(path: pathlib.Path) -> dict:
    try:
        with open(path) as fh:
            report = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"cannot read report: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{path}: not valid JSON ({exc})")
    if "results" not in report:
        raise SystemExit(f"{path}: not a benchmark report (no 'results')")
    return report


def compare_resilience(baseline: dict, candidate: dict,
                       threshold: float) -> list[str]:
    """Gate the resilient arm's availability and fallback rate per scenario."""
    regressions: list[str] = []
    base = {r["scenario"]: r["arms"]["resilient"] for r in baseline["results"]}
    cand = {r["scenario"]: r["arms"]["resilient"] for r in candidate["results"]}
    common = sorted(set(base) & set(cand))
    if not common:
        raise SystemExit("reports share no scenarios; nothing to compare")
    for name in common:
        b_avail, c_avail = base[name]["availability"], cand[name]["availability"]
        b_fb, c_fb = base[name]["fallback_rate"], cand[name]["fallback_rate"]
        # Availability drops fractionally; fallback rate (already a
        # fraction of requests) is compared as an absolute increase.
        avail_loss = 1.0 - c_avail / b_avail if b_avail else 0.0
        fb_gain = c_fb - b_fb
        marker = ""
        if avail_loss > threshold:
            marker = "  <-- REGRESSION"
            regressions.append(
                f"{name}: availability {b_avail:.3f} -> {c_avail:.3f} "
                f"({avail_loss * 100:+.1f}% > {threshold * 100:.0f}%)")
        if fb_gain > threshold:
            marker = "  <-- REGRESSION"
            regressions.append(
                f"{name}: fallback rate {b_fb:.3f} -> {c_fb:.3f} "
                f"(+{fb_gain:.3f} > {threshold:.2f})")
        print(f"{name:13s} avail {b_avail:.3f} -> {c_avail:.3f}  "
              f"fallback {b_fb:.3f} -> {c_fb:.3f}{marker}")
    only = sorted(set(base) ^ set(cand))
    if only:
        print(f"(not compared, present in one report only: {', '.join(only)})")
    return regressions


def compare_fleet(baseline: dict, candidate: dict,
                  threshold: float) -> list[str]:
    """Gate the sharded-fleet report on the candidate's own numbers.

    Four hard gates, all host-speed-free: the 4-server fleet must ride
    through the mid-run crash at availability 1.0, its p95 must beat the
    1-server fleet's p95 at the same saturation, the degenerate 1-server
    gateway must have stayed record-identical to the direct path, and
    profile-aware routing must beat profile-blind routing on p95 in the
    heterogeneous cell.  The baseline is printed for side-by-side
    context only.
    """
    regressions: list[str] = []
    b4, c4 = baseline["fleet4_availability"], candidate["fleet4_availability"]
    bp1, cp1 = baseline["fleet1_p95_ms"], candidate["fleet1_p95_ms"]
    bp4, cp4 = baseline["fleet4_p95_ms"], candidate["fleet4_p95_ms"]
    print(f"fleet4 availability {b4:.3f} -> {c4:.3f}")
    print(f"fleet1 p95 {bp1:.1f} -> {cp1:.1f} ms")
    print(f"fleet4 p95 {bp4:.1f} -> {cp4:.1f} ms")
    print(f"degenerate identical: {baseline['degenerate_identical']} -> "
          f"{candidate['degenerate_identical']}")
    if c4 < 1.0:
        regressions.append(
            f"fleet4 availability {c4:.4f} < 1.0 "
            "(the 4-server fleet dropped requests during the crash)")
    if cp4 >= cp1:
        regressions.append(
            f"fleet4 p95 {cp4:.1f} ms >= fleet1 p95 {cp1:.1f} ms "
            "(sharding bought no tail latency at saturation)")
    if not candidate["degenerate_identical"]:
        regressions.append(
            "degenerate 1-server gateway diverged from the direct path")
    # Heterogeneous cell (reports that predate it skip the gate).
    ca = candidate.get("hetero_aware_p95_ms")
    cb = candidate.get("hetero_blind_p95_ms")
    if ca is not None and cb is not None:
        ba = baseline.get("hetero_aware_p95_ms")
        bb = baseline.get("hetero_blind_p95_ms")
        context = (f"{ba:.1f} -> " if ba is not None else "")
        print(f"hetero aware p95 {context}{ca:.1f} ms vs blind "
              f"{(f'{bb:.1f} -> ' if bb is not None else '')}{cb:.1f} ms")
        if ca >= cb:
            regressions.append(
                f"hetero aware p95 {ca:.1f} ms >= blind p95 {cb:.1f} ms "
                "(per-server profiles bought no tail latency on the "
                "fast+near / slow+far fleet)")
    return regressions


def compare_exits(baseline: dict, candidate: dict,
                  threshold: float) -> list[str]:
    """Gate the early-exit report on the candidate's own numbers.

    Four hard gates, all host-speed-free (the timeline is simulated):
    under strict deadlines the exit-carrying engine must strictly beat
    the full-network-only arm on SLA attainment, the slack class must
    lose no attainment and must keep the full network's accuracy (its
    worst-served exit is the final one), and the exit-free degenerate
    cell must have stayed record-identical to the plain engine.  The
    baseline is printed for side-by-side context only.
    """
    regressions: list[str] = []
    bfs = baseline["full_strict_attainment"]
    bes = baseline["exits_strict_attainment"]
    cfs = candidate["full_strict_attainment"]
    ces = candidate["exits_strict_attainment"]
    print(f"strict attainment: full-net {bfs:.3f} -> {cfs:.3f}  "
          f"exits {bes:.3f} -> {ces:.3f}")
    print(f"slack attainment:  full-net "
          f"{baseline['full_slack_attainment']:.3f} -> "
          f"{candidate['full_slack_attainment']:.3f}  exits "
          f"{baseline['exits_slack_attainment']:.3f} -> "
          f"{candidate['exits_slack_attainment']:.3f}")
    print(f"slack min accuracy {baseline['exits_slack_min_accuracy']} -> "
          f"{candidate['exits_slack_min_accuracy']} "
          f"(full net {candidate['full_net_accuracy']})")
    print(f"degenerate identical: {baseline['degenerate_identical']} -> "
          f"{candidate['degenerate_identical']}")
    if ces <= cfs:
        regressions.append(
            f"exits strict attainment {ces:.4f} <= full-net-only "
            f"{cfs:.4f} (the exit axis bought no deadline attainment)")
    if candidate["exits_slack_attainment"] < candidate["full_slack_attainment"]:
        regressions.append(
            f"slack attainment {candidate['exits_slack_attainment']:.4f} "
            f"with exits < {candidate['full_slack_attainment']:.4f} without "
            "(exits cost the slack class deadlines)")
    if candidate["exits_slack_min_accuracy"] < candidate["full_net_accuracy"]:
        regressions.append(
            f"slack class served below full accuracy "
            f"({candidate['exits_slack_min_accuracy']} < "
            f"{candidate['full_net_accuracy']}): a slack request was "
            "degraded to an early exit it did not need")
    if not candidate["degenerate_identical"]:
        regressions.append(
            "exit-free degenerate cell diverged from the plain engine")
    return regressions


def compare_parallel(baseline: dict, candidate: dict,
                     threshold: float) -> list[str]:
    """Gate chain-parallel execution on the candidate's own report.

    Speedup is a property of the candidate host's core count, so the
    baseline is used for side-by-side context only; the hard gates are
    the branchy speedup floor, the serial-control regression bound, and
    bit-identity.
    """
    regressions: list[str] = []
    base_results = baseline["results"]
    cand_results = candidate["results"]
    cpus = (candidate.get("host") or {}).get("cpus") or 0
    branchy_best: tuple[str, float] | None = None
    for name in sorted(cand_results):
        entry = cand_results[name]
        speedup = entry["speedup"]
        marker = ""
        if not entry.get("bit_identical", False):
            marker = "  <-- REGRESSION"
            regressions.append(f"{name}: parallel output not bit-identical")
        if entry["role"] == "branchy":
            if branchy_best is None or speedup > branchy_best[1]:
                branchy_best = (name, speedup)
        elif speedup < 1.0 - SERIAL_CONTROL_TOLERANCE:
            marker = "  <-- REGRESSION"
            regressions.append(
                f"{name}: serial control slowed {entry['serial_ms']:.1f} -> "
                f"{entry['parallel_ms']:.1f} ms ({speedup:.2f}x < "
                f"{1.0 - SERIAL_CONTROL_TOLERANCE:.2f}x)")
        base = base_results.get(name)
        context = (f"baseline {base['speedup']:.2f}x  " if base else "")
        print(f"{name:12s} ({entry['role']:14s}) serial "
              f"{entry['serial_ms']:9.1f} ms  parallel "
              f"{entry['parallel_ms']:9.1f} ms  {context}"
              f"speedup {speedup:.2f}x{marker}")
    if branchy_best is None:
        raise SystemExit("candidate report has no branchy models; "
                         "nothing to gate")
    if cpus >= 2:
        if branchy_best[1] < BRANCHY_SPEEDUP_FLOOR:
            regressions.append(
                f"best branchy speedup {branchy_best[1]:.2f}x "
                f"({branchy_best[0]}) below the "
                f"{BRANCHY_SPEEDUP_FLOOR:.1f}x floor on {cpus} cpus")
        else:
            print(f"\nbranchy floor met: {branchy_best[0]} "
                  f"{branchy_best[1]:.2f}x >= {BRANCHY_SPEEDUP_FLOOR:.1f}x "
                  f"on {cpus} cpus")
    else:
        print(f"\nbranchy speedup floor skipped: candidate host has "
              f"{cpus} cpu(s); chain parallelism cannot pay off")
    return regressions


def compare_parallel_samples(baseline: dict, candidate: dict,
                             threshold: float) -> list[str]:
    """Gate per-sample parallel batched plans on the candidate's report.

    Mirrors :func:`compare_parallel`: speedup depends on the candidate
    host's core count, so the baseline provides side-by-side context only.
    Hard gates are the sample-parallel speedup floor (2+ CPU hosts), the
    serial-control bound, and bit-identity everywhere.
    """
    regressions: list[str] = []
    base_results = baseline["results"]
    cand_results = candidate["results"]
    cpus = (candidate.get("host") or {}).get("cpus") or 0
    best: tuple[str, float] | None = None
    for name in sorted(cand_results):
        entry = cand_results[name]
        speedup = entry["speedup"]
        marker = ""
        if not entry.get("bit_identical", False):
            marker = "  <-- REGRESSION"
            regressions.append(
                f"{name}: sample-parallel output not bit-identical")
        if entry["role"] == "sample_parallel":
            if best is None or speedup > best[1]:
                best = (name, speedup)
        elif (entry["role"] == "serial_control"
              and speedup < 1.0 - SERIAL_CONTROL_TOLERANCE):
            marker = "  <-- REGRESSION"
            regressions.append(
                f"{name}: serial control slowed {entry['serial_ms']:.1f} -> "
                f"{entry['parallel_ms']:.1f} ms ({speedup:.2f}x < "
                f"{1.0 - SERIAL_CONTROL_TOLERANCE:.2f}x)")
        base = base_results.get(name)
        context = (f"baseline {base['speedup']:.2f}x  " if base else "")
        print(f"{name:18s} ({entry['role']:15s}) serial "
              f"{entry['serial_ms']:9.1f} ms  parallel "
              f"{entry['parallel_ms']:9.1f} ms  {context}"
              f"speedup {speedup:.2f}x{marker}")
    if best is None:
        raise SystemExit("candidate report has no sample_parallel cells; "
                         "nothing to gate")
    if cpus >= 2:
        if best[1] < SAMPLE_SPEEDUP_FLOOR:
            regressions.append(
                f"best sample-parallel speedup {best[1]:.2f}x ({best[0]}) "
                f"below the {SAMPLE_SPEEDUP_FLOOR:.1f}x floor on {cpus} cpus")
        else:
            print(f"\nsample-parallel floor met: {best[0]} "
                  f"{best[1]:.2f}x >= {SAMPLE_SPEEDUP_FLOOR:.1f}x "
                  f"on {cpus} cpus")
    else:
        print(f"\nsample-parallel speedup floor skipped: candidate host has "
              f"{cpus} cpu(s); sample parallelism cannot pay off")
    return regressions


def compare_streaming(baseline: dict, candidate: dict,
                      threshold: float) -> list[str]:
    """Gate streamed+codec offloading on the candidate's own report.

    All numbers come from the engine's declared cost model, so they are
    host-independent; the baseline provides side-by-side context only.
    Hard gates: the transfer-bound speedup floor at low bandwidth, the
    joint-policy regression bound, and a demonstrable (point, codec)
    shift across each model's bandwidth sweep.
    """
    regressions: list[str] = []
    base_results = baseline["results"]
    cand_results = candidate["results"]
    low_bw = candidate.get("low_bw_mbps", 8.0)
    for name in sorted(cand_results):
        entry = cand_results[name]
        base = base_results.get(name)
        low_ratio = entry["min_low_bw_ratio"]
        policy_reg = entry["max_policy_regression"]
        marker = ""
        if low_ratio < STREAMING_LOW_BW_FLOOR:
            marker = "  <-- REGRESSION"
            regressions.append(
                f"{name}: transfer-bound ratio {low_ratio:.2f}x at "
                f"<= {low_bw:.0f} Mbps below the "
                f"{STREAMING_LOW_BW_FLOOR:.1f}x floor")
        if policy_reg > STREAMING_POLICY_TOLERANCE:
            marker = "  <-- REGRESSION"
            regressions.append(
                f"{name}: joint policy regresses the plain decision by "
                f"{policy_reg * 100:+.1f}% > "
                f"{STREAMING_POLICY_TOLERANCE * 100:.0f}%")
        shifts = {tuple(s) for s in entry["distinct_point_codec"]}
        if len(shifts) < 2:
            marker = "  <-- REGRESSION"
            regressions.append(
                f"{name}: decision never shifts (point, codec) across the "
                f"bandwidth sweep: {sorted(shifts)}")
        context = (f"baseline {base['min_low_bw_ratio']:.2f}x  "
                   if base else "")
        print(f"{name:14s} pinned p={entry['pinned_point']:3d}  low-bw ratio "
              f"{context}candidate {low_ratio:.2f}x  policy regression "
              f"{policy_reg * 100:+.2f}%  "
              f"{len(shifts)} (point, codec) choices{marker}")
    if not cand_results:
        raise SystemExit("candidate report has no models; nothing to gate")
    return regressions


def compare(baseline: dict, candidate: dict, threshold: float,
            metric: str = "planned_ms") -> list[str]:
    """Returns a list of human-readable regression messages (empty = pass)."""
    regressions: list[str] = []
    base_results = baseline["results"]
    cand_results = candidate["results"]
    common = sorted(set(base_results) & set(cand_results))
    if not common:
        raise SystemExit("reports share no models; nothing to compare")
    for name in common:
        base_ms = base_results[name]["planned_ms"]
        cand_ms = cand_results[name]["planned_ms"]
        base_speedup = base_results[name]["speedup"]
        cand_speedup = cand_results[name]["speedup"]
        if metric == "planned_ms":
            # Positive = candidate slower, in fractional planned-time terms.
            loss = cand_ms / base_ms - 1.0
        else:
            # Positive = candidate's speedup shrank, host speed cancelled.
            loss = 1.0 - cand_speedup / base_speedup
        marker = ""
        if loss > threshold:
            marker = "  <-- REGRESSION"
            regressions.append(
                f"{name}: {metric} {base_ms:.1f} -> {cand_ms:.1f} ms / "
                f"{base_speedup:.2f}x -> {cand_speedup:.2f}x "
                f"({loss * 100:+.1f}% > {threshold * 100:.0f}%)"
            )
        print(f"{name:12s} planned {base_ms:9.1f} -> {cand_ms:9.1f} ms "
              f"({(cand_ms / base_ms - 1.0) * 100:+6.1f}%)  speedup "
              f"{base_speedup:.2f}x -> {cand_speedup:.2f}x{marker}")
    only = sorted(set(base_results) ^ set(cand_results))
    if only:
        print(f"(not compared, present in one report only: {', '.join(only)})")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("candidate", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional regression (default 0.15)")
    parser.add_argument("--metric", choices=("planned_ms", "speedup"),
                        default="planned_ms",
                        help="gate on absolute planned time (same-host reports) "
                             "or on the naive/planned speedup (cross-host)")
    args = parser.parse_args(argv)

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    for kind in ("resilience", "parallel_chains", "parallel_samples",
                 "streaming", "fleet", "exits"):
        if (baseline.get("benchmark") == kind) != (candidate.get("benchmark") == kind):
            raise SystemExit(f"cannot compare a {kind} report against "
                             "a different benchmark type")
    if baseline.get("benchmark") == "resilience":
        regressions = compare_resilience(baseline, candidate, args.threshold)
    elif baseline.get("benchmark") == "parallel_chains":
        regressions = compare_parallel(baseline, candidate, args.threshold)
    elif baseline.get("benchmark") == "parallel_samples":
        regressions = compare_parallel_samples(baseline, candidate,
                                               args.threshold)
    elif baseline.get("benchmark") == "streaming":
        regressions = compare_streaming(baseline, candidate, args.threshold)
    elif baseline.get("benchmark") == "fleet":
        regressions = compare_fleet(baseline, candidate, args.threshold)
    elif baseline.get("benchmark") == "exits":
        regressions = compare_exits(baseline, candidate, args.threshold)
    else:
        regressions = compare(baseline, candidate,
                              args.threshold, metric=args.metric)
    if regressions:
        print("\nregressions over threshold:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno regressions over threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
