"""Compare two ``BENCH_executor.json`` reports and gate on regressions.

Intended as the perf check between a baseline run (e.g. from the main
branch) and a candidate run::

    python tools/bench_compare.py baseline.json candidate.json

Exits non-zero when the candidate's planned backend regresses by more than
the threshold (default 15%) on any model present in both reports.  Speedups
and naive-side drift are reported but never fail the check — the planned
backend is the optimised artefact this gate protects.

``--metric planned_ms`` (the default) gates on absolute planned-backend
milliseconds — right when both reports come from the same host.
``--metric speedup`` gates on the naive/planned speedup ratio instead,
which cancels host speed and is the right choice when the baseline report
was committed from a different machine (e.g. in CI).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

DEFAULT_THRESHOLD = 0.15


def load(path: pathlib.Path) -> dict:
    try:
        with open(path) as fh:
            report = json.load(fh)
    except OSError as exc:
        raise SystemExit(f"cannot read report: {exc}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"{path}: not valid JSON ({exc})")
    if "results" not in report:
        raise SystemExit(f"{path}: not a BENCH_executor.json report (no 'results')")
    return report


def compare(baseline: dict, candidate: dict, threshold: float,
            metric: str = "planned_ms") -> list[str]:
    """Returns a list of human-readable regression messages (empty = pass)."""
    regressions: list[str] = []
    base_results = baseline["results"]
    cand_results = candidate["results"]
    common = sorted(set(base_results) & set(cand_results))
    if not common:
        raise SystemExit("reports share no models; nothing to compare")
    for name in common:
        base_ms = base_results[name]["planned_ms"]
        cand_ms = cand_results[name]["planned_ms"]
        base_speedup = base_results[name]["speedup"]
        cand_speedup = cand_results[name]["speedup"]
        if metric == "planned_ms":
            # Positive = candidate slower, in fractional planned-time terms.
            loss = cand_ms / base_ms - 1.0
        else:
            # Positive = candidate's speedup shrank, host speed cancelled.
            loss = 1.0 - cand_speedup / base_speedup
        marker = ""
        if loss > threshold:
            marker = "  <-- REGRESSION"
            regressions.append(
                f"{name}: {metric} {base_ms:.1f} -> {cand_ms:.1f} ms / "
                f"{base_speedup:.2f}x -> {cand_speedup:.2f}x "
                f"({loss * 100:+.1f}% > {threshold * 100:.0f}%)"
            )
        print(f"{name:12s} planned {base_ms:9.1f} -> {cand_ms:9.1f} ms "
              f"({(cand_ms / base_ms - 1.0) * 100:+6.1f}%)  speedup "
              f"{base_speedup:.2f}x -> {cand_speedup:.2f}x{marker}")
    only = sorted(set(base_results) ^ set(cand_results))
    if only:
        print(f"(not compared, present in one report only: {', '.join(only)})")
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", type=pathlib.Path)
    parser.add_argument("candidate", type=pathlib.Path)
    parser.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                        help="allowed fractional regression (default 0.15)")
    parser.add_argument("--metric", choices=("planned_ms", "speedup"),
                        default="planned_ms",
                        help="gate on absolute planned time (same-host reports) "
                             "or on the naive/planned speedup (cross-host)")
    args = parser.parse_args(argv)

    regressions = compare(load(args.baseline), load(args.candidate),
                          args.threshold, metric=args.metric)
    if regressions:
        print("\nplanned-backend regressions over threshold:", file=sys.stderr)
        for line in regressions:
            print(f"  {line}", file=sys.stderr)
        return 1
    print("\nno planned-backend regressions over threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
