"""Calibration harness: decision landscape of the true cost models.

Prints, per model and bandwidth, the best partition point using the
*noiseless* hardware models (device prefix + upload + GPU tail), which is
what LoADPart should converge to. Used to tune DeviceParams/GpuParams.
"""
import numpy as np

from repro.models import build_model, EVALUATED_MODELS
from repro.profiling.features import profile_graph
from repro.hardware import DeviceModel, GpuModel, GpuScheduler, LOAD_LEVELS

GOODPUT = 1.0

def landscape(name, bw_mbps, level_name="0%"):
    g = build_model(name)
    profs = profile_graph(g)
    dev = DeviceModel(); gpu = GpuModel(); sched = GpuScheduler()
    level = LOAD_LEVELS[level_name]
    dev_times = [dev.mean_time(p) for p in profs]
    gpu_times = gpu.kernel_times(profs)
    sizes = g.transmission_sizes()
    n = len(profs)
    bw = bw_mbps * 1e6 * GOODPUT
    totals = []
    for p in range(n + 1):
        head = sum(dev_times[:p])
        if p == n:
            totals.append(head)
            continue
        tail_kernels = gpu_times[p:]
        tail = sched.mean_execute(tail_kernels, level)
        up = sizes[p] * 8 / bw
        totals.append(head + up + tail)
    best = int(np.argmin(totals))
    return best, totals, n

for name in EVALUATED_MODELS:
    g = build_model(name)
    profs = profile_graph(g)
    dev = DeviceModel()
    local = sum(dev.mean_time(p) for p in profs)
    row = [f"{name:11s} local={local*1e3:6.0f}ms"]
    for bw in (1, 2, 4, 8, 16, 32, 64):
        best, totals, n = landscape(name, bw)
        tag = "L" if best == n else ("F" if best == 0 else "")
        row.append(f"{bw:>2d}M:p={best:<3d}{tag}{totals[best]*1e3:6.0f}ms")
    print(" ".join(row))
    for lvl in ("100%(l)", "100%(h)"):
        best, totals, n = landscape(name, 8, lvl)
        tag = "L" if best == n else ("F" if best == 0 else "")
        base_best, base_totals, _ = landscape(name, 8)
        print(f"    @8Mbps {lvl:8s}: best p={best}{tag} {totals[best]*1e3:.0f}ms | stale-baseline p={base_best}: {totals[base_best]*1e3:.0f}ms")
