"""End-to-end validation: true vs predicted decision landscapes."""

from repro.core import LoADPartEngine
from repro.hardware import DeviceModel, GpuModel, GpuScheduler, LOAD_LEVELS
from repro.models import build_model, EVALUATED_MODELS
from repro.profiling import OfflineProfiler
from repro.profiling.features import profile_graph

MB = 1e6
dev = DeviceModel(); gpu = GpuModel(); sched = GpuScheduler()
report = OfflineProfiler(device_model=dev, gpu_model=gpu, samples_per_category=250, seed=7).run()
print(report.format_table3())
print()

for name in EVALUATED_MODELS:
    g = build_model(name); profs = profile_graph(g)
    eng = LoADPartEngine(g, report.user_predictor, report.edge_predictor)
    tdev = [dev.mean_time(p) for p in profs]
    kts = gpu.kernel_times(profs)
    sizes = g.transmission_sizes()
    n = len(profs)

    def true_lat(p, bw, lvl="0%"):
        head = sum(tdev[:p])
        if p == n: return head
        return head + sizes[p]*8/bw + sched.mean_execute(kts[p:], LOAD_LEVELS[lvl]) + 0.002

    line = [f"{name:11s} true_local={sum(tdev)*1e3:6.0f} pred_local={eng.decide(8*MB).candidates[n]*1e3:6.0f}"]
    for bw in (1,2,4,8,16,32,64):
        dp = eng.decide(bw*MB).point
        tb = min(range(n+1), key=lambda q: true_lat(q, bw*MB))
        regret = true_lat(dp, bw*MB)/true_lat(tb, bw*MB)-1
        tag = "L" if dp==n else ("F" if dp==0 else "")
        line.append(f"{bw}M:{dp}{tag}(opt {tb},r{regret*100:.0f}%)")
    print(" ".join(line))
    # load behaviour at 8 Mbps
    p_idle = eng.decide(8*MB).point
    for lvl in ("100%(l)", "100%(h)"):
        # k = observed / model-predicted, as the paper's monitor computes it.
        ref = p_idle if p_idle < n else 0
        actual = sched.mean_execute(kts[ref:], LOAD_LEVELS[lvl])
        predicted = max(eng.predicted_server_time(ref), 1e-9)
        k = actual / predicted
        p_load = eng.decide(8*MB, k=max(k,1.0)).point
        t_load = true_lat(p_load, 8*MB, lvl)
        t_stale = true_lat(p_idle, 8*MB, lvl)
        impr = (t_stale-t_load)/t_stale*100
        print(f"    {lvl:8s} k={k:6.1f} p:{p_idle}->{p_load} LoAD={t_load*1e3:6.0f}ms stale={t_stale*1e3:6.0f}ms improvement={impr:5.1f}%")
