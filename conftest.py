"""Root fixtures shared by ``tests/`` and ``benchmarks/``.

The profiled-model fixtures live here (instead of per-directory copies) and
route through :mod:`repro.experiments.context`, whose builders are
``lru_cache``'d per (samples, seed): one offline-profiler run and one
engine per model serve the whole process — unit tests, the differential
parallel sweep, and the benchmark suite alike.
"""

from __future__ import annotations

import pytest


@pytest.fixture(scope="session")
def trained_report():
    """The offline-trained M_user / M_edge bundle, profiled exactly once."""
    from repro.experiments.context import default_report

    return default_report()


@pytest.fixture(scope="session")
def engine_for(trained_report):
    """Factory fixture: a cached decision engine for any zoo model."""
    from repro.experiments.context import default_engine

    return lambda model: default_engine(model)


@pytest.fixture(scope="session")
def alexnet_engine(engine_for):
    return engine_for("alexnet")


@pytest.fixture(scope="session")
def squeezenet_engine(engine_for):
    return engine_for("squeezenet")


@pytest.fixture(scope="session")
def exit_engine_for(trained_report):
    """Factory fixture: a cached exit-carrying engine for any exit family."""
    from repro.experiments.context import default_exit_engine

    return lambda model: default_exit_engine(model)


@pytest.fixture(scope="session")
def squeezenet_exit_engine(exit_engine_for):
    return exit_engine_for("squeezenet")
