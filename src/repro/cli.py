"""Command-line interface.

Usage (also available as ``python -m repro``)::

    loadpart models
    loadpart summary squeezenet
    loadpart decide alexnet --bandwidth-mbps 8 --k 1.0
    loadpart simulate squeezenet --policy loadpart --duration 60 --fig9-load
    loadpart experiment fig9
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.experiments import fig1, fig2, fig6, fig7, fig8, fig9, table1, table2, table3, table4

EXPERIMENTS = {
    "fig1": lambda: fig1.format_fig1(fig1.run_fig1()),
    "fig2": lambda: fig2.format_fig2(fig2.run_fig2(samples=300)),
    "fig6": lambda: fig6.format_fig6(fig6.run_fig6()),
    "fig7": lambda: fig7.format_fig7(fig7.run_fig7()),
    "fig8": lambda: fig8.format_fig8(fig8.run_fig8()),
    "fig9": lambda: fig9.format_fig9(fig9.run_fig9()),
    "table1": lambda: table1.format_table1(table1.run_table1()),
    "table2": lambda: table2.format_table2(table2.run_table2()),
    "table3": lambda: table3.format_table3(table3.run_table3()),
    "table4": lambda: table4.format_table4(table4.run_table4()),
}


def _cmd_models(args: argparse.Namespace) -> int:
    from repro.models import build_model, list_models

    print(f"{'model':<14} {'nodes':>6} {'GFLOPs':>8} {'params(MB)':>11}")
    for name in list_models():
        graph = build_model(name)
        print(f"{name:<14} {len(graph):>6} {graph.total_flops() / 1e9:>8.3f} "
              f"{graph.total_param_bytes() / 1e6:>11.2f}")
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    from repro.models import build_model

    print(build_model(args.model).summary())
    return 0


def _cmd_decide(args: argparse.Namespace) -> int:
    from repro.experiments.context import default_engine

    engine = default_engine(args.model)
    decision = engine.decide(args.bandwidth_mbps * 1e6, k=args.k)
    n = engine.num_nodes
    mode = "local inference" if decision.is_local else (
        "full offloading" if decision.is_full_offload else "partial offloading"
    )
    print(f"{args.model} at {args.bandwidth_mbps:g} Mbps, k={args.k:g}:")
    print(f"  partition point p={decision.point} of {n} ({mode})")
    print(f"  predicted end-to-end latency {decision.predicted_latency * 1e3:.1f} ms")
    if args.landscape:
        order = engine.graph.topological_order()
        print(f"  {'p':>4} {'after':<28} {'predicted(ms)':>14}")
        for p in range(n + 1):
            label = "(input)" if p == 0 else order[p - 1]
            marker = "  <-- chosen" if p == decision.point else ""
            print(f"  {p:>4} {label:<28} {decision.candidates[p] * 1e3:>14.1f}{marker}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.experiments.context import default_engine
    from repro.hardware import fig9_schedule
    from repro.network import ConstantTrace
    from repro.runtime import OffloadingSystem, SystemConfig

    engine = default_engine(args.model)
    system = OffloadingSystem(
        engine,
        bandwidth_trace=ConstantTrace(args.bandwidth_mbps * 1e6),
        load_schedule=fig9_schedule() if args.fig9_load else None,
        config=SystemConfig(policy=args.policy, seed=args.seed),
    )
    timeline = system.run(args.duration)
    points = sorted(set(timeline.points.tolist()))
    print(f"{args.model} / {args.policy}: {len(timeline)} inferences in "
          f"{args.duration:g} s at {args.bandwidth_mbps:g} Mbps")
    print(f"  mean {timeline.mean_latency() * 1e3:.1f} ms, "
          f"p95 {timeline.percentile_latency(95) * 1e3:.1f} ms")
    print(f"  partition points used: {points}")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    print(EXPERIMENTS[args.name]())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="loadpart",
        description="LoADPart reproduction: load-aware dynamic DNN partitioning",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("models", help="list the model zoo").set_defaults(func=_cmd_models)

    p = sub.add_parser("summary", help="per-node summary of one model")
    p.add_argument("model")
    p.set_defaults(func=_cmd_summary)

    p = sub.add_parser("decide", help="run Algorithm 1 once")
    p.add_argument("model")
    p.add_argument("--bandwidth-mbps", type=float, default=8.0)
    p.add_argument("--k", type=float, default=1.0,
                   help="influential factor of the server load (>= 1)")
    p.add_argument("--landscape", action="store_true",
                   help="print the full per-point objective")
    p.set_defaults(func=_cmd_decide)

    p = sub.add_parser("simulate", help="run the device-server emulation")
    p.add_argument("model")
    p.add_argument("--policy", choices=("loadpart", "neurosurgeon", "local", "full"),
                   default="loadpart")
    p.add_argument("--bandwidth-mbps", type=float, default=8.0)
    p.add_argument("--duration", type=float, default=30.0)
    p.add_argument("--fig9-load", action="store_true",
                   help="apply the Fig. 9 background-load schedule")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_simulate)

    p = sub.add_parser("experiment", help="regenerate a paper table/figure")
    p.add_argument("name", choices=sorted(EXPERIMENTS))
    p.set_defaults(func=_cmd_experiment)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
