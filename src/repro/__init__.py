"""LoADPart reproduction: load-aware dynamic DNN partitioning for edge offloading.

Reimplementation of *LoADPart: Load-Aware Dynamic Partition of Deep Neural
Networks for Edge Offloading* (Liu, Zheng, Li, Guo — ICDCS 2022), together
with every substrate it needs: a computation-graph IR with a NumPy
executor, a 9-model zoo, calibrated device/GPU cost models with a
contention simulator, a network substrate, the offline profiling pipeline
(NNLS prediction models), and a discrete-event device-server runtime.

Quickstart::

    from repro import OfflineProfiler, LoADPartEngine, build_model

    report = OfflineProfiler().run()          # train M_user / M_edge
    engine = LoADPartEngine(
        build_model("alexnet"), report.user_predictor, report.edge_predictor
    )
    decision = engine.decide(bandwidth_up=8e6, k=1.0)
    print(decision.point, decision.predicted_latency)

See ``examples/`` for end-to-end scenarios and ``repro.experiments`` for
the regenerators of every table and figure in the paper.
"""

from repro.core import (
    FullOffloadStrategy,
    LoADPartEngine,
    LoadFactorMonitor,
    GpuWatchdog,
    LocalStrategy,
    NeurosurgeonStrategy,
    PartitionCache,
    PartitionDecision,
    dads_min_cut,
    partition_decision,
)
from repro.graph import (
    ComputationGraph,
    GraphBuilder,
    GraphPartitioner,
    PartitionedGraph,
    TensorSpec,
    fuse_graph,
    graph_from_json,
    graph_to_json,
)
from repro.hardware import (
    DeviceModel,
    DeviceParams,
    GpuModel,
    GpuParams,
    GpuScheduler,
    LOAD_LEVELS,
    LoadLevel,
    LoadSchedule,
    fig9_schedule,
)
from repro.models import EVALUATED_MODELS, build_model, get_model, list_models
from repro.network import BandwidthEstimator, Channel, ConstantTrace, StepTrace, TensorCodec, fig6_trace
from repro.nn import BACKENDS, GraphExecutor, GraphPlan, SegmentExecutor, SegmentPlan
from repro.profiling import LatencyPredictor, OfflineProfiler
from repro.runtime import MultiClientSystem, OffloadingSystem, SystemConfig

__version__ = "0.1.0"

__all__ = [
    "BACKENDS",
    "BandwidthEstimator",
    "Channel",
    "ComputationGraph",
    "ConstantTrace",
    "DeviceModel",
    "DeviceParams",
    "EVALUATED_MODELS",
    "FullOffloadStrategy",
    "GpuModel",
    "GpuParams",
    "GpuScheduler",
    "GpuWatchdog",
    "GraphBuilder",
    "GraphExecutor",
    "GraphPartitioner",
    "GraphPlan",
    "LOAD_LEVELS",
    "LatencyPredictor",
    "LoADPartEngine",
    "LoadFactorMonitor",
    "LoadLevel",
    "LoadSchedule",
    "LocalStrategy",
    "NeurosurgeonStrategy",
    "OfflineProfiler",
    "OffloadingSystem",
    "PartitionCache",
    "PartitionDecision",
    "PartitionedGraph",
    "SegmentExecutor",
    "SegmentPlan",
    "MultiClientSystem",
    "StepTrace",
    "SystemConfig",
    "TensorCodec",
    "fuse_graph",
    "TensorSpec",
    "build_model",
    "dads_min_cut",
    "fig6_trace",
    "fig9_schedule",
    "get_model",
    "graph_from_json",
    "graph_to_json",
    "list_models",
    "partition_decision",
]
