"""Xception (Chollet, 2017), input 1x3x299x299 as in the paper.

Exercises depth-wise separable convolutions (the DWConv prediction model of
Tables I-III) and residual branches.  On the paper's testbed Xception is
either run locally or fully offloaded; local inference is ~1.8 s.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationGraph


def _sepconv(b: GraphBuilder, x: str, out_channels: int, prefix: str) -> str:
    """Depth-wise separable convolution: DWConv 3x3 + pointwise Conv + BN."""
    x = b.dwconv(x, kernel=3, padding=1, name=f"{prefix}.dw")
    x = b.conv(x, out_channels, kernel=1, name=f"{prefix}.pw")
    return b.batchnorm(x, name=f"{prefix}.bn")


def _entry_block(b: GraphBuilder, x: str, out_channels: int, prefix: str,
                 first_relu: bool = True) -> str:
    shortcut = b.conv(x, out_channels, kernel=1, stride=2, name=f"{prefix}.short.conv")
    shortcut = b.batchnorm(shortcut, name=f"{prefix}.short.bn")
    out = x
    if first_relu:
        out = b.relu(out, name=f"{prefix}.relu1")
    out = _sepconv(b, out, out_channels, prefix=f"{prefix}.sep1")
    out = b.relu(out, name=f"{prefix}.relu2")
    out = _sepconv(b, out, out_channels, prefix=f"{prefix}.sep2")
    out = b.maxpool(out, kernel=3, stride=2, padding=1, name=f"{prefix}.pool")
    return b.add(out, shortcut, name=f"{prefix}.add")


def _middle_block(b: GraphBuilder, x: str, prefix: str) -> str:
    out = x
    for i in range(1, 4):
        out = b.relu(out, name=f"{prefix}.relu{i}")
        out = _sepconv(b, out, 728, prefix=f"{prefix}.sep{i}")
    return b.add(out, x, name=f"{prefix}.add")


def build_xception(num_classes: int = 1000) -> ComputationGraph:
    b = GraphBuilder("xception", (1, 3, 299, 299))
    # Entry flow stem.
    x = b.conv_block(b.input, 32, kernel=3, stride=2, bn=True, prefix="stem1")
    x = b.conv_block(x, 64, kernel=3, bn=True, prefix="stem2")
    # Entry flow blocks (the first has no leading ReLU, as in the paper's model).
    x = _entry_block(b, x, 128, prefix="entry1", first_relu=False)
    x = _entry_block(b, x, 256, prefix="entry2")
    x = _entry_block(b, x, 728, prefix="entry3")
    # Middle flow: 8 residual blocks.
    for i in range(1, 9):
        x = _middle_block(b, x, prefix=f"middle{i}")
    # Exit flow.
    shortcut = b.conv(x, 1024, kernel=1, stride=2, name="exit.short.conv")
    shortcut = b.batchnorm(shortcut, name="exit.short.bn")
    out = b.relu(x, name="exit.relu1")
    out = _sepconv(b, out, 728, prefix="exit.sep1")
    out = b.relu(out, name="exit.relu2")
    out = _sepconv(b, out, 1024, prefix="exit.sep2")
    out = b.maxpool(out, kernel=3, stride=2, padding=1, name="exit.pool")
    x = b.add(out, shortcut, name="exit.add")
    x = _sepconv(b, x, 1536, prefix="exit.sep3")
    x = b.relu(x, name="exit.relu3")
    x = _sepconv(b, x, 2048, prefix="exit.sep4")
    x = b.relu(x, name="exit.relu4")
    x = b.global_avgpool(x, name="avgpool")
    x = b.flatten(x, name="flatten")
    x = b.dense_block(x, num_classes, act=None, prefix="fc")
    b.output(x)
    return b.build()
