"""SqueezeNet v1.1 (Iandola et al., 2016), input 1x3x227x227 as in the paper.

Fire modules squeeze with 1x1 convolutions and expand with parallel 1x1 and
3x3 branches joined by a concat, so the backbone is a DAG.  The concat
outputs are the natural (width-1) partition candidates.  We use the v1.1
geometry (3x3 stem, early pooling): its mid-network cuts transmit less than
the input tensor, which is what lets the paper's SqueezeNet trace oscillate
between a mid-network partition point and local inference as the server
load varies (Fig. 9).
"""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationGraph

# (squeeze, expand1x1, expand3x3) per fire module, SqueezeNet v1.1.
_FIRE_CONFIGS = [
    (16, 64, 64),    # fire2
    (16, 64, 64),    # fire3
    (32, 128, 128),  # fire4
    (32, 128, 128),  # fire5
    (48, 192, 192),  # fire6
    (48, 192, 192),  # fire7
    (64, 256, 256),  # fire8
    (64, 256, 256),  # fire9
]

#: Fire modules followed by a max-pool in v1.1 (after fire3 and fire5;
#: the first pool follows conv1).
_POOL_AFTER = (3, 5)


def _fire(b: GraphBuilder, x: str, squeeze: int, e1: int, e3: int, prefix: str) -> str:
    s = b.conv_block(x, squeeze, kernel=1, prefix=f"{prefix}.squeeze")
    left = b.conv_block(s, e1, kernel=1, prefix=f"{prefix}.expand1x1")
    right = b.conv_block(s, e3, kernel=3, padding=1, prefix=f"{prefix}.expand3x3")
    return b.concat([left, right], axis=1, name=f"{prefix}.concat")


def build_squeezenet(num_classes: int = 1000) -> ComputationGraph:
    b = GraphBuilder("squeezenet", (1, 3, 227, 227))
    x = b.conv_block(b.input, 64, kernel=3, stride=2, prefix="conv1")
    x = b.maxpool(x, kernel=3, stride=2, name="maxpool1")
    for idx, cfg in enumerate(_FIRE_CONFIGS, start=2):
        x = _fire(b, x, *cfg, prefix=f"fire{idx}")
        if idx in _POOL_AFTER:
            x = b.maxpool(x, kernel=3, stride=2, name=f"maxpool{idx}")
    x = b.dropout(x, rate=0.5, name="dropout")
    x = b.conv_block(x, num_classes, kernel=1, prefix="conv10")
    x = b.global_avgpool(x, name="avgpool")
    x = b.flatten(x, name="flatten")
    b.output(x)
    return b.build()


def squeezenet_exit_specs():
    """Early-exit declarations for SqueezeNet (fire-module concats)."""
    from repro.graph.exits import ExitSpec

    specs = (
        ExitSpec(attach="fire4.concat", accuracy=0.44),
        ExitSpec(attach="fire6.concat", accuracy=0.51),
        ExitSpec(attach="fire8.concat", accuracy=0.55),
    )
    return specs, 0.58
