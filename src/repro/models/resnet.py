"""ResNet-18/50/101/152 (He et al., 2016).

ResNet-18 uses basic blocks, the deeper variants use bottleneck blocks.
Residual blocks contain branches, so these models exercise the DAG handling
of the partition algorithm: a cut inside a block crosses two tensors
(main path + shortcut), which is why the paper's block analysis rules such
cuts out (§III-D).
"""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationGraph

_LAYER_CONFIGS = {
    18: ("basic", [2, 2, 2, 2]),
    34: ("basic", [3, 4, 6, 3]),
    50: ("bottleneck", [3, 4, 6, 3]),
    101: ("bottleneck", [3, 4, 23, 3]),
    152: ("bottleneck", [3, 8, 36, 3]),
}


def _basic_block(b: GraphBuilder, x: str, channels: int, stride: int, prefix: str) -> str:
    identity = x
    out = b.conv_block(x, channels, kernel=3, stride=stride, padding=1, bn=True,
                       prefix=f"{prefix}.conv1")
    out = b.conv(out, channels, kernel=3, padding=1, name=f"{prefix}.conv2.conv")
    out = b.batchnorm(out, name=f"{prefix}.conv2.post")
    if stride != 1 or _in_channels(b, identity) != channels:
        identity = b.conv(identity, channels, kernel=1, stride=stride,
                          name=f"{prefix}.down.conv")
        identity = b.batchnorm(identity, name=f"{prefix}.down.post")
    out = b.add(out, identity, name=f"{prefix}.add")
    return b.relu(out, name=f"{prefix}.relu")


def _bottleneck_block(b: GraphBuilder, x: str, channels: int, stride: int, prefix: str) -> str:
    identity = x
    expanded = channels * 4
    out = b.conv_block(x, channels, kernel=1, bn=True, prefix=f"{prefix}.conv1")
    out = b.conv_block(out, channels, kernel=3, stride=stride, padding=1, bn=True,
                       prefix=f"{prefix}.conv2")
    out = b.conv(out, expanded, kernel=1, name=f"{prefix}.conv3.conv")
    out = b.batchnorm(out, name=f"{prefix}.conv3.post")
    if stride != 1 or _in_channels(b, identity) != expanded:
        identity = b.conv(identity, expanded, kernel=1, stride=stride,
                          name=f"{prefix}.down.conv")
        identity = b.batchnorm(identity, name=f"{prefix}.down.post")
    out = b.add(out, identity, name=f"{prefix}.add")
    return b.relu(out, name=f"{prefix}.relu")


def _in_channels(b: GraphBuilder, name: str) -> int:
    if name == b.input:
        return b.graph.input_spec.shape[1]
    node = b.graph.node(name)
    assert node.output is not None
    return node.output.shape[1]


def build_resnet(depth: int, num_classes: int = 1000) -> ComputationGraph:
    """Build a ResNet of the given ``depth`` (18, 34, 50, 101 or 152)."""
    try:
        kind, repeats = _LAYER_CONFIGS[depth]
    except KeyError:
        raise ValueError(f"unsupported ResNet depth {depth}; choose from {sorted(_LAYER_CONFIGS)}") from None
    block = _basic_block if kind == "basic" else _bottleneck_block

    b = GraphBuilder(f"resnet{depth}", (1, 3, 224, 224))
    x = b.conv_block(b.input, 64, kernel=7, stride=2, padding=3, bn=True, prefix="stem")
    x = b.maxpool(x, kernel=3, stride=2, padding=1, name="stem.maxpool")
    channels = 64
    for stage, count in enumerate(repeats, start=1):
        for i in range(1, count + 1):
            stride = 2 if (stage > 1 and i == 1) else 1
            x = block(b, x, channels, stride, prefix=f"layer{stage}.{i}")
        channels *= 2
    x = b.global_avgpool(x, name="avgpool")
    x = b.flatten(x, name="flatten")
    x = b.dense_block(x, num_classes, act=None, prefix="fc")
    b.output(x)
    return b.build()


def resnet_exit_specs(depth: int = 18):
    """Early-exit declarations for the ResNet family (stage boundaries).

    Returns ``(specs, final_accuracy)`` for
    :func:`repro.graph.exits.build_exit_branches`.  The side heads hang
    off the last block of stages 1-3; accuracy proxies are BranchyNet-
    style held-out top-1 stand-ins, nondecreasing toward the final exit.
    """
    from repro.graph.exits import ExitSpec

    try:
        _kind, repeats = _LAYER_CONFIGS[depth]
    except KeyError:
        raise ValueError(
            f"unsupported ResNet depth {depth}; choose from {sorted(_LAYER_CONFIGS)}"
        ) from None
    accuracies = (0.55, 0.62, 0.67)
    specs = tuple(
        ExitSpec(attach=f"layer{stage}.{repeats[stage - 1]}.relu", accuracy=acc)
        for stage, acc in zip((1, 2, 3), accuracies)
    )
    return specs, 0.70
