"""VGG16 (Simonyan & Zisserman, 2015).

13 convolutional layers in 5 stages plus 3 fully-connected layers.  On the
paper's testbed this model always fully offloads: the Raspberry-Pi-class
device is so slow that running *any* prefix locally loses to uploading the
raw input, even at 1 Mbps (paper §V-B).
"""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationGraph

_STAGES = [
    (64, 2),
    (128, 2),
    (256, 3),
    (512, 3),
    (512, 3),
]


def build_vgg16(num_classes: int = 1000) -> ComputationGraph:
    b = GraphBuilder("vgg16", (1, 3, 224, 224))
    x = b.input
    for stage, (channels, repeats) in enumerate(_STAGES, start=1):
        for layer in range(1, repeats + 1):
            x = b.conv_block(x, channels, kernel=3, padding=1, prefix=f"conv{stage}_{layer}")
        x = b.maxpool(x, kernel=2, stride=2, name=f"maxpool{stage}")
    x = b.flatten(x, name="flatten")
    x = b.dense_block(x, 4096, prefix="fc6")
    x = b.dense_block(x, 4096, prefix="fc7")
    x = b.dense_block(x, num_classes, act=None, prefix="fc8")
    b.output(x)
    return b.build()
