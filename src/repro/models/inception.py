"""InceptionV3 (Szegedy et al., 2016), input 1x3x299x299.

Used by the paper's §III-D block analysis: cutting *inside* an Inception
block always crosses several branch tensors, whose combined size exceeds
the 1.02 MB input, so the optimal partition point can never lie inside a
block — which justifies the linear scan over the topological order.
"""


from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationGraph


def _cbr(b: GraphBuilder, x: str, out_channels: int, kernel, prefix: str,
         stride=1, padding=0) -> str:
    return b.conv_block(x, out_channels, kernel=kernel, stride=stride,
                        padding=padding, bn=True, prefix=prefix)


def _inception_a(b: GraphBuilder, x: str, pool_channels: int, prefix: str) -> str:
    b1 = _cbr(b, x, 64, 1, f"{prefix}.b1")
    b2 = _cbr(b, x, 48, 1, f"{prefix}.b2a")
    b2 = _cbr(b, b2, 64, 5, f"{prefix}.b2b", padding=2)
    b3 = _cbr(b, x, 64, 1, f"{prefix}.b3a")
    b3 = _cbr(b, b3, 96, 3, f"{prefix}.b3b", padding=1)
    b3 = _cbr(b, b3, 96, 3, f"{prefix}.b3c", padding=1)
    b4 = b.avgpool(x, kernel=3, stride=1, padding=1, name=f"{prefix}.pool")
    b4 = _cbr(b, b4, pool_channels, 1, f"{prefix}.b4")
    return b.concat([b1, b2, b3, b4], name=f"{prefix}.concat")


def _reduction_a(b: GraphBuilder, x: str, prefix: str) -> str:
    b1 = _cbr(b, x, 384, 3, f"{prefix}.b1", stride=2)
    b2 = _cbr(b, x, 64, 1, f"{prefix}.b2a")
    b2 = _cbr(b, b2, 96, 3, f"{prefix}.b2b", padding=1)
    b2 = _cbr(b, b2, 96, 3, f"{prefix}.b2c", stride=2)
    b3 = b.maxpool(x, kernel=3, stride=2, name=f"{prefix}.pool")
    return b.concat([b1, b2, b3], name=f"{prefix}.concat")


def _inception_b(b: GraphBuilder, x: str, mid: int, prefix: str) -> str:
    b1 = _cbr(b, x, 192, 1, f"{prefix}.b1")
    b2 = _cbr(b, x, mid, 1, f"{prefix}.b2a")
    b2 = _cbr(b, b2, mid, (1, 7), f"{prefix}.b2b", padding=(0, 3))
    b2 = _cbr(b, b2, 192, (7, 1), f"{prefix}.b2c", padding=(3, 0))
    b3 = _cbr(b, x, mid, 1, f"{prefix}.b3a")
    b3 = _cbr(b, b3, mid, (7, 1), f"{prefix}.b3b", padding=(3, 0))
    b3 = _cbr(b, b3, mid, (1, 7), f"{prefix}.b3c", padding=(0, 3))
    b3 = _cbr(b, b3, mid, (7, 1), f"{prefix}.b3d", padding=(3, 0))
    b3 = _cbr(b, b3, 192, (1, 7), f"{prefix}.b3e", padding=(0, 3))
    b4 = b.avgpool(x, kernel=3, stride=1, padding=1, name=f"{prefix}.pool")
    b4 = _cbr(b, b4, 192, 1, f"{prefix}.b4")
    return b.concat([b1, b2, b3, b4], name=f"{prefix}.concat")


def _reduction_b(b: GraphBuilder, x: str, prefix: str) -> str:
    b1 = _cbr(b, x, 192, 1, f"{prefix}.b1a")
    b1 = _cbr(b, b1, 320, 3, f"{prefix}.b1b", stride=2)
    b2 = _cbr(b, x, 192, 1, f"{prefix}.b2a")
    b2 = _cbr(b, b2, 192, (1, 7), f"{prefix}.b2b", padding=(0, 3))
    b2 = _cbr(b, b2, 192, (7, 1), f"{prefix}.b2c", padding=(3, 0))
    b2 = _cbr(b, b2, 192, 3, f"{prefix}.b2d", stride=2)
    b3 = b.maxpool(x, kernel=3, stride=2, name=f"{prefix}.pool")
    return b.concat([b1, b2, b3], name=f"{prefix}.concat")


def _inception_c(b: GraphBuilder, x: str, prefix: str) -> str:
    b1 = _cbr(b, x, 320, 1, f"{prefix}.b1")
    b2 = _cbr(b, x, 384, 1, f"{prefix}.b2a")
    b2l = _cbr(b, b2, 384, (1, 3), f"{prefix}.b2b", padding=(0, 1))
    b2r = _cbr(b, b2, 384, (3, 1), f"{prefix}.b2c", padding=(1, 0))
    b2 = b.concat([b2l, b2r], name=f"{prefix}.b2concat")
    b3 = _cbr(b, x, 448, 1, f"{prefix}.b3a")
    b3 = _cbr(b, b3, 384, 3, f"{prefix}.b3b", padding=1)
    b3l = _cbr(b, b3, 384, (1, 3), f"{prefix}.b3c", padding=(0, 1))
    b3r = _cbr(b, b3, 384, (3, 1), f"{prefix}.b3d", padding=(1, 0))
    b3 = b.concat([b3l, b3r], name=f"{prefix}.b3concat")
    b4 = b.avgpool(x, kernel=3, stride=1, padding=1, name=f"{prefix}.pool")
    b4 = _cbr(b, b4, 192, 1, f"{prefix}.b4")
    return b.concat([b1, b2, b3, b4], name=f"{prefix}.concat")


def build_inception_v3(num_classes: int = 1000) -> ComputationGraph:
    b = GraphBuilder("inception_v3", (1, 3, 299, 299))
    x = _cbr(b, b.input, 32, 3, "stem1", stride=2)
    x = _cbr(b, x, 32, 3, "stem2")
    x = _cbr(b, x, 64, 3, "stem3", padding=1)
    x = b.maxpool(x, kernel=3, stride=2, name="stem.pool1")
    x = _cbr(b, x, 80, 1, "stem4")
    x = _cbr(b, x, 192, 3, "stem5")
    x = b.maxpool(x, kernel=3, stride=2, name="stem.pool2")
    for i, pool_channels in enumerate((32, 64, 64), start=1):
        x = _inception_a(b, x, pool_channels, prefix=f"mixedA{i}")
    x = _reduction_a(b, x, prefix="reductionA")
    for i, mid in enumerate((128, 160, 160, 192), start=1):
        x = _inception_b(b, x, mid, prefix=f"mixedB{i}")
    x = _reduction_b(b, x, prefix="reductionB")
    for i in range(1, 3):
        x = _inception_c(b, x, prefix=f"mixedC{i}")
    x = b.global_avgpool(x, name="avgpool")
    x = b.flatten(x, name="flatten")
    x = b.dense_block(x, num_classes, act=None, prefix="fc")
    b.output(x)
    return b.build()
