"""MobileNetV1/V2 (Howard et al., 2017; Sandler et al., 2018).

Not evaluated in the paper, but the natural stress test for its DWConv
prediction models (Tables I-III): almost every kernel is a depth-wise or
pointwise convolution.  V2's inverted residual blocks also exercise the
DAG machinery with skip connections around *narrow* bottlenecks, which is
where its cheap cuts live.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationGraph

# MobileNetV1: (out_channels, stride) per depth-wise separable block.
_V1_BLOCKS = [
    (64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
    (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2), (1024, 1),
]

# MobileNetV2: (expansion, out_channels, repeats, first_stride).
_V2_BLOCKS = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def _dw_separable(b: GraphBuilder, x: str, out_channels: int, stride: int,
                  prefix: str) -> str:
    x = b.dwconv(x, kernel=3, stride=stride, padding=1, name=f"{prefix}.dw")
    x = b.batchnorm(x, name=f"{prefix}.dwbn")
    x = b.relu(x, name=f"{prefix}.dwrelu")
    x = b.conv(x, out_channels, kernel=1, name=f"{prefix}.pw")
    x = b.batchnorm(x, name=f"{prefix}.pwbn")
    return b.relu(x, name=f"{prefix}.pwrelu")


def build_mobilenet_v1(num_classes: int = 1000) -> ComputationGraph:
    b = GraphBuilder("mobilenet_v1", (1, 3, 224, 224))
    x = b.conv_block(b.input, 32, kernel=3, stride=2, padding=1, bn=True, prefix="stem")
    for i, (channels, stride) in enumerate(_V1_BLOCKS, start=1):
        x = _dw_separable(b, x, channels, stride, prefix=f"block{i}")
    x = b.global_avgpool(x, name="avgpool")
    x = b.flatten(x, name="flatten")
    x = b.dense_block(x, num_classes, act=None, prefix="fc")
    b.output(x)
    return b.build()


def _channels_of(b: GraphBuilder, name: str) -> int:
    node = b.graph.node(name)
    assert node.output is not None
    return node.output.shape[1]


def _inverted_residual(b: GraphBuilder, x: str, expansion: int, out_channels: int,
                       stride: int, prefix: str) -> str:
    in_channels = _channels_of(b, x)
    identity = x
    out = x
    if expansion != 1:
        out = b.conv(out, in_channels * expansion, kernel=1, name=f"{prefix}.expand")
        out = b.batchnorm(out, name=f"{prefix}.expandbn")
        out = b.relu(out, name=f"{prefix}.expandrelu")
    out = b.dwconv(out, kernel=3, stride=stride, padding=1, name=f"{prefix}.dw")
    out = b.batchnorm(out, name=f"{prefix}.dwbn")
    out = b.relu(out, name=f"{prefix}.dwrelu")
    out = b.conv(out, out_channels, kernel=1, name=f"{prefix}.project")
    out = b.batchnorm(out, name=f"{prefix}.projectbn")
    if stride == 1 and in_channels == out_channels:
        out = b.add(out, identity, name=f"{prefix}.add")
    return out


def build_mobilenet_v2(num_classes: int = 1000) -> ComputationGraph:
    b = GraphBuilder("mobilenet_v2", (1, 3, 224, 224))
    x = b.conv_block(b.input, 32, kernel=3, stride=2, padding=1, bn=True, prefix="stem")
    block = 0
    for expansion, channels, repeats, first_stride in _V2_BLOCKS:
        for i in range(repeats):
            block += 1
            stride = first_stride if i == 0 else 1
            x = _inverted_residual(b, x, expansion, channels, stride,
                                   prefix=f"block{block}")
    x = b.conv_block(x, 1280, kernel=1, bn=True, prefix="head")
    x = b.global_avgpool(x, name="avgpool")
    x = b.flatten(x, name="flatten")
    x = b.dense_block(x, num_classes, act=None, prefix="fc")
    b.output(x)
    return b.build()


def mobilenet_exit_specs():
    """Early-exit declarations for MobileNetV1 (depthwise block tops)."""
    from repro.graph.exits import ExitSpec

    specs = (
        ExitSpec(attach="block3.pwrelu", accuracy=0.54),
        ExitSpec(attach="block7.pwrelu", accuracy=0.63),
        ExitSpec(attach="block11.pwrelu", accuracy=0.68),
    )
    return specs, 0.71
