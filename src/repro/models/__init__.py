"""Model zoo: the DNNs the paper evaluates or uses as background load.

Evaluated (paper §V): AlexNet, VGG16, ResNet18, ResNet50, SqueezeNet,
Xception.  Used elsewhere: ResNet101 (Fig. 2), ResNet152 (background load
generator), InceptionV3 (the §III-D block-cut analysis).

All models are built as :class:`~repro.graph.graph.ComputationGraph` objects
with batch size 1 and the input sizes of the paper: 1x3x227x227 for
SqueezeNet, 1x3x299x299 for Xception/InceptionV3, 1x3x224x224 otherwise.
"""

from typing import Callable, Dict, List, Tuple

from repro.graph.exits import ExitBranch, build_exit_branches
from repro.graph.graph import ComputationGraph
from repro.models.alexnet import build_alexnet
from repro.models.inception import build_inception_v3
from repro.models.mobilenet import (
    build_mobilenet_v1,
    build_mobilenet_v2,
    mobilenet_exit_specs,
)
from repro.models.resnet import build_resnet, resnet_exit_specs
from repro.models.squeezenet import build_squeezenet, squeezenet_exit_specs
from repro.models.vgg import build_vgg16
from repro.models.xception import build_xception

MODEL_BUILDERS: Dict[str, Callable[[], ComputationGraph]] = {
    "alexnet": build_alexnet,
    "vgg16": build_vgg16,
    "resnet18": lambda: build_resnet(18),
    "resnet50": lambda: build_resnet(50),
    "resnet101": lambda: build_resnet(101),
    "resnet152": lambda: build_resnet(152),
    "squeezenet": build_squeezenet,
    "xception": build_xception,
    "inception_v3": build_inception_v3,
    "mobilenet_v1": build_mobilenet_v1,
    "mobilenet_v2": build_mobilenet_v2,
}

#: The six DNNs of the paper's evaluation section, in its order.
EVALUATED_MODELS: List[str] = [
    "alexnet",
    "squeezenet",
    "vgg16",
    "resnet18",
    "resnet50",
    "xception",
]

#: Families carrying declared early-exit sets (BranchyNet-style heads).
#: Each entry maps to a zero-arg callable returning ``(specs, final_acc)``.
EXIT_MODEL_SPECS: Dict[str, Callable[[], tuple]] = {
    "resnet18": resnet_exit_specs,
    "mobilenet_v1": mobilenet_exit_specs,
    "squeezenet": squeezenet_exit_specs,
}

_CACHE: Dict[str, ComputationGraph] = {}


def build_model(name: str) -> ComputationGraph:
    """Build a fresh computation graph for ``name`` (no caching)."""
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown model {name!r}; available: {sorted(MODEL_BUILDERS)}") from None
    return builder()


def get_model(name: str) -> ComputationGraph:
    """Build-or-fetch a shared, read-only graph instance for ``name``."""
    if name not in _CACHE:
        _CACHE[name] = build_model(name)
    return _CACHE[name]


def list_models() -> List[str]:
    return sorted(MODEL_BUILDERS)


def build_exit_model(name: str) -> Tuple[ComputationGraph, Tuple[ExitBranch, ...]]:
    """Build ``name``'s backbone plus its declared early-exit branches.

    The returned branch tuple ends with the backbone itself (the final
    exit), ready to pass straight to ``LoADPartEngine(exits=...)``.
    """
    try:
        spec_fn = EXIT_MODEL_SPECS[name]
    except KeyError:
        raise KeyError(
            f"model {name!r} declares no exits; available: {sorted(EXIT_MODEL_SPECS)}"
        ) from None
    graph = build_model(name)
    specs, final_accuracy = spec_fn()
    return graph, build_exit_branches(graph, specs, final_accuracy)


def list_exit_models() -> List[str]:
    return sorted(EXIT_MODEL_SPECS)


__all__ = [
    "EVALUATED_MODELS",
    "EXIT_MODEL_SPECS",
    "MODEL_BUILDERS",
    "build_exit_model",
    "list_exit_models",
    "build_alexnet",
    "build_inception_v3",
    "build_mobilenet_v1",
    "build_mobilenet_v2",
    "build_model",
    "build_resnet",
    "build_squeezenet",
    "build_vgg16",
    "build_xception",
    "get_model",
    "list_models",
]
