"""AlexNet (Krizhevsky et al., 2012), torchvision-style geometry.

The backbone has exactly 27 computation nodes, matching the partition
indices the paper reports: p=4 is right after MaxPool-1, p=8 right after
MaxPool-2 (the sweet spot of Fig. 1), p=19 right after Flatten, and p=27 is
local inference.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationGraph


def build_alexnet(num_classes: int = 1000) -> ComputationGraph:
    b = GraphBuilder("alexnet", (1, 3, 224, 224))
    x = b.conv_block(b.input, 64, kernel=11, stride=4, padding=2, prefix="conv1")
    x = b.maxpool(x, kernel=3, stride=2, name="maxpool1")
    x = b.conv_block(x, 192, kernel=5, padding=2, prefix="conv2")
    x = b.maxpool(x, kernel=3, stride=2, name="maxpool2")
    x = b.conv_block(x, 384, kernel=3, padding=1, prefix="conv3")
    x = b.conv_block(x, 256, kernel=3, padding=1, prefix="conv4")
    x = b.conv_block(x, 256, kernel=3, padding=1, prefix="conv5")
    x = b.maxpool(x, kernel=3, stride=2, name="maxpool3")
    x = b.flatten(x, name="flatten")
    x = b.dense_block(x, 4096, prefix="fc6")
    x = b.dense_block(x, 4096, prefix="fc7")
    x = b.dense_block(x, num_classes, act=None, prefix="fc8")
    b.output(x)
    return b.build()
