"""Small helpers for rendering experiment results as text tables."""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Monospace table with per-column width fitting."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match headers")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def ms(value_s: float) -> str:
    """Seconds -> millisecond string."""
    return f"{value_s * 1e3:.1f}"


def pct(fraction: float) -> str:
    return f"{fraction * 100:.1f}%"
