"""Fig. 2 — motivation: full-offload latency under background load levels.

AlexNet, VGG16 and ResNet101 are fully offloaded to the edge server (input
shape 1x3x224x224, 8 Mbps) while the GPU runs background load at 30%, 50%,
70%, 90%, 100%(l) and 100%(h).  The paper samples each end-to-end latency
1000 times and shows: flat averages below ~50%, rising averages and strong
fluctuation at >=90%, and a dramatic difference between 100%(l) and
100%(h) despite equal utilisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.reporting import ms, render_table
from repro.hardware.background import IDLE, LoadLevel, fig2_levels
from repro.hardware.gpu_model import GpuModel
from repro.hardware.gpu_scheduler import GpuScheduler
from repro.models import build_model
from repro.network.channel import Channel
from repro.network.traces import ConstantTrace
from repro.profiling.features import profile_graph

FIG2_MODELS = ("alexnet", "vgg16", "resnet101")


@dataclass(frozen=True)
class LevelStats:
    level: str
    mean_s: float
    std_s: float
    p5_s: float
    p95_s: float


@dataclass(frozen=True)
class Fig2Result:
    samples_per_level: int
    stats: Dict[str, Tuple[LevelStats, ...]]  # model -> per-level stats


def run_fig2(
    models: Sequence[str] = FIG2_MODELS,
    samples: int = 1000,
    bandwidth_bps: float = 8e6,
    seed: int = 0,
    include_idle: bool = True,
) -> Fig2Result:
    gpu = GpuModel()
    scheduler = GpuScheduler()
    channel = Channel(ConstantTrace(bandwidth_bps))
    levels: List[LoadLevel] = ([IDLE] if include_idle else []) + fig2_levels()
    stats: Dict[str, Tuple[LevelStats, ...]] = {}
    for model in models:
        graph = build_model(model)
        profiles = profile_graph(graph)
        upload = channel.mean_upload_time(graph.input_spec.nbytes, 0.0)
        download = channel.mean_download_time(graph.output_spec.nbytes, 0.0)
        rng = np.random.default_rng(seed)
        per_level: List[LevelStats] = []
        for level in levels:
            lat = np.empty(samples)
            for i in range(samples):
                kernels = gpu.sample_kernel_times(profiles, rng)
                lat[i] = upload + scheduler.execute(kernels, level, rng) + download
            per_level.append(
                LevelStats(
                    level=level.name,
                    mean_s=float(lat.mean()),
                    std_s=float(lat.std()),
                    p5_s=float(np.percentile(lat, 5)),
                    p95_s=float(np.percentile(lat, 95)),
                )
            )
        stats[model] = tuple(per_level)
    return Fig2Result(samples_per_level=samples, stats=stats)


def format_fig2(result: Fig2Result) -> str:
    blocks = []
    for model, per_level in result.stats.items():
        table = render_table(
            ["load", "mean(ms)", "std(ms)", "p5(ms)", "p95(ms)"],
            [(s.level, ms(s.mean_s), ms(s.std_s), ms(s.p5_s), ms(s.p95_s)) for s in per_level],
        )
        blocks.append(f"{model} (n={result.samples_per_level} per level)\n{table}")
    blocks.append(
        "paper: averages flat below 50%, rising and fluctuating above 90%; "
        "100%(h) far worse than 100%(l) at equal utilisation"
    )
    return "\n\n".join(blocks)
