"""Timeline analysis: the paper's summary metrics, reusable.

Turns raw :class:`~repro.runtime.system.Timeline` objects into the numbers
the paper reports (mean/max latency reductions, per-window series,
partition-point dwell statistics) and exports timelines as CSV for
external plotting.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.runtime.messages import InferenceRecord
from repro.runtime.system import Timeline

CSV_COLUMNS = (
    "request_id", "start_s", "partition_point", "estimated_bandwidth_bps",
    "k_used", "device_s", "upload_s", "server_s", "download_s",
    "overhead_s", "total_s", "load_level",
)


def timeline_to_csv(timeline: Timeline) -> str:
    """Serialise a timeline as CSV (one row per inference)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(CSV_COLUMNS)
    for r in timeline:
        writer.writerow([getattr(r, col) for col in CSV_COLUMNS])
    return buffer.getvalue()


def timeline_from_csv(text: str) -> Timeline:
    """Rebuild a timeline from :func:`timeline_to_csv` output."""
    reader = csv.DictReader(io.StringIO(text))
    records: List[InferenceRecord] = []
    for row in reader:
        records.append(
            InferenceRecord(
                request_id=int(row["request_id"]),
                start_s=float(row["start_s"]),
                partition_point=int(row["partition_point"]),
                estimated_bandwidth_bps=float(row["estimated_bandwidth_bps"]),
                k_used=float(row["k_used"]),
                device_s=float(row["device_s"]),
                upload_s=float(row["upload_s"]),
                server_s=float(row["server_s"]),
                download_s=float(row["download_s"]),
                overhead_s=float(row["overhead_s"]),
                total_s=float(row["total_s"]),
                load_level=row["load_level"],
                device_cache_hit=True,
                server_cache_hit=True,
            )
        )
    return Timeline(records)


@dataclass(frozen=True)
class ComparisonStats:
    """LoADPart-vs-baseline numbers in the paper's reporting style."""

    mean_reduction: float        # "reduces end-to-end latency by X% on average"
    max_window_reduction: float  # "and up to Y% in some specific cases"
    p95_reduction: float
    windows: Tuple[Tuple[float, float, float], ...]  # (t, ours ms, baseline ms)


def compare_timelines(
    ours: Timeline,
    baseline: Timeline,
    duration_s: float,
    window_s: float = 10.0,
    min_window_samples: int = 3,
) -> ComparisonStats:
    """The paper's Fig. 9 headline statistics for any pair of runs."""
    if window_s <= 0:
        raise ValueError("window_s must be positive")
    if not len(ours) or not len(baseline):
        raise ValueError("both timelines must contain records")
    windows: List[Tuple[float, float, float]] = []
    best = 0.0
    t = 0.0
    while t < duration_s:
        lhs = ours.between(t, t + window_s)
        rhs = baseline.between(t, t + window_s)
        if len(lhs) >= min_window_samples and len(rhs) >= min_window_samples:
            a, b = lhs.mean_latency(), rhs.mean_latency()
            windows.append((t, a * 1e3, b * 1e3))
            best = max(best, 1.0 - a / b)
        t += window_s
    return ComparisonStats(
        mean_reduction=1.0 - ours.mean_latency() / baseline.mean_latency(),
        max_window_reduction=best,
        p95_reduction=1.0 - ours.percentile_latency(95) / baseline.percentile_latency(95),
        windows=tuple(windows),
    )


def dwell_statistics(timeline: Timeline) -> Dict[int, float]:
    """Fraction of requests served at each partition point."""
    points, counts = np.unique(timeline.points, return_counts=True)
    total = counts.sum()
    return {int(p): float(c) / total for p, c in zip(points, counts)}


def component_breakdown(timeline: Timeline) -> Dict[str, float]:
    """Mean per-request split across device/upload/server/download/overhead."""
    fields = ("device_s", "upload_s", "server_s", "download_s", "overhead_s")
    return {
        f: float(np.mean([getattr(r, f) for r in timeline])) for f in fields
    }
