"""Fig. 9 — load-aware partitioning vs Neurosurgeon under varying load.

The headline experiment.  Upload bandwidth is fixed at 8 Mbps; the server
GPU background load follows the schedule 0% -> 100%(l) -> 100%(h) -> 0%.
LoADPart and the Neurosurgeon baseline (bandwidth-aware, load-oblivious)
each run the full runtime; the result per model is the latency/partition
time series plus the paper's summary statistics:

- mean end-to-end latency reduction vs the baseline, and
- the maximum reduction over sliding windows (the paper's "up to X% in
  some specific cases").

Paper values: AlexNet -4.95% mean / -39.4% max; SqueezeNet -14.2% mean /
-32.3% max; VGG16, Xception and ResNet18 unchanged (their optimal policy
is load-independent); ResNet50 close to baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.context import default_engine
from repro.experiments.reporting import ms, pct, render_table
from repro.hardware.background import fig9_schedule
from repro.models import EVALUATED_MODELS
from repro.network.traces import ConstantTrace
from repro.runtime.system import OffloadingSystem, SystemConfig, Timeline


@dataclass(frozen=True)
class Fig9ModelResult:
    model: str
    loadpart: Timeline
    baseline: Timeline
    mean_reduction: float
    max_window_reduction: float
    loadpart_points: Tuple[int, ...]
    baseline_points: Tuple[int, ...]


@dataclass(frozen=True)
class Fig9Result:
    duration_s: float
    per_model: Dict[str, Fig9ModelResult]


def _window_reduction(loadpart: Timeline, baseline: Timeline,
                      duration_s: float, window_s: float = 10.0) -> float:
    """Max latency reduction over aligned time windows."""
    best = 0.0
    t = 0.0
    while t < duration_s:
        lp = loadpart.between(t, t + window_s)
        bl = baseline.between(t, t + window_s)
        if len(lp) >= 3 and len(bl) >= 3:
            reduction = 1.0 - lp.mean_latency() / bl.mean_latency()
            best = max(best, reduction)
        t += window_s
    return best


def run_fig9(
    models: Sequence[str] = tuple(EVALUATED_MODELS),
    duration_s: float = 260.0,
    bandwidth_bps: float = 8e6,
    seed: int = 0,
) -> Fig9Result:
    per_model: Dict[str, Fig9ModelResult] = {}
    for model in models:
        engine = default_engine(model)
        timelines: Dict[str, Timeline] = {}
        for policy in ("loadpart", "neurosurgeon"):
            system = OffloadingSystem(
                engine,
                bandwidth_trace=ConstantTrace(bandwidth_bps),
                load_schedule=fig9_schedule(),
                config=SystemConfig(policy=policy, seed=seed),
            )
            timelines[policy] = system.run(duration_s)
        lp, bl = timelines["loadpart"], timelines["neurosurgeon"]
        per_model[model] = Fig9ModelResult(
            model=model,
            loadpart=lp,
            baseline=bl,
            mean_reduction=1.0 - lp.mean_latency() / bl.mean_latency(),
            max_window_reduction=_window_reduction(lp, bl, duration_s),
            loadpart_points=tuple(sorted(set(lp.points.tolist()))),
            baseline_points=tuple(sorted(set(bl.points.tolist()))),
        )
    return Fig9Result(duration_s=duration_s, per_model=per_model)


PAPER_FIG9 = {
    "alexnet": (0.0495, 0.394),
    "squeezenet": (0.142, 0.323),
    "vgg16": (0.0, 0.0),
    "resnet18": (0.0, 0.0),
    "resnet50": (0.0, 0.0),
    "xception": (0.0, 0.0),
}


def format_fig9(result: Fig9Result) -> str:
    rows = []
    for model, r in result.per_model.items():
        paper_mean, paper_max = PAPER_FIG9.get(model, (float("nan"), float("nan")))
        rows.append(
            (
                model,
                ms(r.loadpart.mean_latency()),
                ms(r.baseline.mean_latency()),
                pct(r.mean_reduction),
                pct(r.max_window_reduction),
                f"{paper_mean * 100:.1f}%/{paper_max * 100:.1f}%",
                ",".join(map(str, r.loadpart_points)),
                ",".join(map(str, r.baseline_points)),
            )
        )
    table = render_table(
        [
            "model", "LoADPart(ms)", "baseline(ms)", "mean reduction",
            "max reduction", "paper mean/max", "LoADPart p", "baseline p",
        ],
        rows,
    )
    return table + (
        "\n(VGG16/Xception/ResNet18: paper reports no baseline difference; "
        "ResNet50 close to baseline)"
    )


def timeline_series(result: Fig9ModelResult, bucket_s: float = 5.0,
                    duration_s: float = 260.0) -> List[Tuple[float, float, float, int]]:
    """(time, loadpart ms, baseline ms, loadpart point) series for plotting."""
    series = []
    t = 0.0
    while t < duration_s:
        lp = result.loadpart.between(t, t + bucket_s)
        bl = result.baseline.between(t, t + bucket_s)
        if len(lp) and len(bl):
            point = int(np.median(lp.points))
            series.append((t, lp.mean_latency() * 1e3, bl.mean_latency() * 1e3, point))
        t += bucket_s
    return series
