"""Experiment regenerators: one module per table/figure of the paper.

Each module exposes ``run_*`` (returns a structured result) and
``format_*`` (renders the result as the rows/series the paper reports).
The benchmark harness under ``benchmarks/`` calls these; they can also be
driven directly, e.g.::

    from repro.experiments import fig9
    result = fig9.run_fig9(models=("squeezenet",))
    print(fig9.format_fig9(result))
"""

from repro.experiments import (  # noqa: F401
    context,
    fig1,
    fig2,
    fig6,
    fig7,
    fig8,
    fig9,
    table1,
    table2,
    table3,
    table4,
)

__all__ = [
    "context",
    "fig1",
    "fig2",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "table1",
    "table2",
    "table3",
    "table4",
]
