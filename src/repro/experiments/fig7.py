"""Figs. 7/8 — LoADPart vs local inference vs full offloading per bandwidth.

For AlexNet (Fig. 7) and SqueezeNet (Fig. 8), each policy runs at every
bandwidth of the sweep and the mean end-to-end latencies are compared.
The paper condenses these into speedup factors: AlexNet 6.96x mean /
21.98x max vs full offloading and 1.75x / 3.37x vs local; SqueezeNet
7.05x / 23.93x and 1.41x / 2.53x respectively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.context import default_engine
from repro.experiments.reporting import ms, render_table
from repro.network.traces import ConstantTrace
from repro.runtime.system import OffloadingSystem, SystemConfig

BANDWIDTHS_MBPS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64)
POLICIES: Tuple[str, ...] = ("local", "full", "loadpart")


@dataclass(frozen=True)
class BandwidthRow:
    bandwidth_mbps: float
    local_s: float
    full_s: float
    loadpart_s: float
    loadpart_point: int


@dataclass(frozen=True)
class PolicyComparison:
    model: str
    rows: Tuple[BandwidthRow, ...]

    def _speedups(self, attr: str) -> np.ndarray:
        return np.array([getattr(r, attr) / r.loadpart_s for r in self.rows])

    @property
    def mean_speedup_vs_full(self) -> float:
        return float(self._speedups("full_s").mean())

    @property
    def max_speedup_vs_full(self) -> float:
        return float(self._speedups("full_s").max())

    @property
    def mean_speedup_vs_local(self) -> float:
        return float(self._speedups("local_s").mean())

    @property
    def max_speedup_vs_local(self) -> float:
        return float(self._speedups("local_s").max())


def run_policy_comparison(
    model: str,
    bandwidths_mbps: Sequence[float] = BANDWIDTHS_MBPS,
    requests: int = 60,
    seed: int = 0,
) -> PolicyComparison:
    engine = default_engine(model)
    rows: List[BandwidthRow] = []
    for bw in bandwidths_mbps:
        means: Dict[str, float] = {}
        point = engine.num_nodes
        for policy in POLICIES:
            system = OffloadingSystem(
                engine,
                bandwidth_trace=ConstantTrace(bw * 1e6),
                config=SystemConfig(policy=policy, seed=seed),
            )
            timeline = system.run(duration_s=1e9, max_requests=requests)
            means[policy] = timeline.mean_latency()
            if policy == "loadpart":
                point = int(np.median(timeline.points))
        rows.append(
            BandwidthRow(
                bandwidth_mbps=bw,
                local_s=means["local"],
                full_s=means["full"],
                loadpart_s=means["loadpart"],
                loadpart_point=point,
            )
        )
    return PolicyComparison(model=model, rows=tuple(rows))


def run_fig7(**kwargs) -> PolicyComparison:
    """Fig. 7: AlexNet."""
    return run_policy_comparison("alexnet", **kwargs)


def format_comparison(result: PolicyComparison, paper: Dict[str, float] | None = None) -> str:
    table = render_table(
        ["Mbps", "local(ms)", "full(ms)", "LoADPart(ms)", "p"],
        [
            (f"{r.bandwidth_mbps:g}", ms(r.local_s), ms(r.full_s), ms(r.loadpart_s), r.loadpart_point)
            for r in result.rows
        ],
    )
    summary = (
        f"\nspeedup vs full offloading: {result.mean_speedup_vs_full:.2f}x mean, "
        f"{result.max_speedup_vs_full:.2f}x max\n"
        f"speedup vs local inference: {result.mean_speedup_vs_local:.2f}x mean, "
        f"{result.max_speedup_vs_local:.2f}x max"
    )
    if paper:
        summary += (
            f"\npaper ({result.model}): {paper['full_mean']:.2f}x/{paper['full_max']:.2f}x vs full, "
            f"{paper['local_mean']:.2f}x/{paper['local_max']:.2f}x vs local"
        )
    return table + summary


PAPER_FIG7 = {"full_mean": 6.96, "full_max": 21.98, "local_mean": 1.75, "local_max": 3.37}


def format_fig7(result: PolicyComparison) -> str:
    return format_comparison(result, PAPER_FIG7)
