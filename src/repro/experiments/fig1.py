"""Fig. 1 — motivation: AlexNet latency at every partition point, 8 Mbps.

Reproduces the stacked bars: for each partition point of AlexNet, the
device computation latency, the network transmission overhead, and the
edge-server computation latency, at 8 Mbps up/down on an idle server.  The
paper reads off two facts: the best point (right after MaxPool-2 in their
enumeration) is ~4x better than full offloading and ~30% better than local
inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.reporting import ms, render_table
from repro.hardware.device_model import DeviceModel
from repro.hardware.gpu_model import GpuModel
from repro.models import build_model
from repro.profiling.features import profile_graph

MBPS = 1e6


@dataclass(frozen=True)
class Fig1Row:
    point: int
    label: str
    device_s: float
    network_s: float
    server_s: float

    @property
    def total_s(self) -> float:
        return self.device_s + self.network_s + self.server_s


@dataclass(frozen=True)
class Fig1Result:
    rows: Tuple[Fig1Row, ...]
    best: Fig1Row
    speedup_vs_full: float
    speedup_vs_local: float


def run_fig1(bandwidth_bps: float = 8 * MBPS, model: str = "alexnet") -> Fig1Result:
    """True (noiseless) latency decomposition per partition point."""
    graph = build_model(model)
    profiles = profile_graph(graph)
    order = graph.topological_order()
    sizes = graph.transmission_sizes()
    device = DeviceModel()
    gpu = GpuModel()
    device_times = [device.mean_time(p) for p in profiles]
    server_times = gpu.kernel_times(profiles)
    n = len(profiles)

    rows: List[Fig1Row] = []
    for p in range(n + 1):
        label = "input" if p == 0 else order[p - 1]
        network = sizes[p] * 8 / bandwidth_bps if p < n else 0.0
        # The result download is included for Fig. 1 (the paper's bars show
        # transmission overhead for the full round trip).
        if p < n:
            network += graph.output_spec.nbytes * 8 / bandwidth_bps
        rows.append(
            Fig1Row(
                point=p,
                label=label,
                device_s=sum(device_times[:p]),
                network_s=network,
                server_s=sum(server_times[p:]),
            )
        )
    best = min(rows, key=lambda r: r.total_s)
    return Fig1Result(
        rows=tuple(rows),
        best=best,
        speedup_vs_full=rows[0].total_s / best.total_s,
        speedup_vs_local=rows[n].total_s / best.total_s,
    )


def format_fig1(result: Fig1Result) -> str:
    table = render_table(
        ["p", "after node", "device(ms)", "network(ms)", "server(ms)", "total(ms)"],
        [
            (r.point, r.label, ms(r.device_s), ms(r.network_s), ms(r.server_s), ms(r.total_s))
            for r in result.rows
        ],
    )
    summary = (
        f"\nbest point p={result.best.point} ({result.best.label}): "
        f"{ms(result.best.total_s)} ms  |  "
        f"{result.speedup_vs_full:.2f}x vs full offloading, "
        f"{result.speedup_vs_local:.2f}x vs local inference\n"
        "paper: ~4x vs full offloading, ~1.3x (30%) vs local inference"
    )
    return table + summary
