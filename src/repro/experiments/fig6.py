"""Fig. 6 — partition points and latency under varying upload bandwidth.

For each of the 6 DNNs, the upload bandwidth follows the paper's sweep
(8 -> 4 -> 2 -> 1 -> 2 -> 4 -> 8 -> 16 -> 32 -> 64 Mbps in 30 s segments)
while the full runtime — bandwidth estimator, probes, passive samples,
partition cache — runs live.  Reported per segment: the dominant partition
point and the median end-to-end latency, which is what the paper's
subfigures plot over time.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.experiments.context import default_engine
from repro.experiments.reporting import ms, render_table
from repro.models import EVALUATED_MODELS
from repro.network.traces import FIG6_BANDWIDTHS_MBPS, fig6_trace
from repro.runtime.system import OffloadingSystem, SystemConfig


@dataclass(frozen=True)
class SegmentStats:
    bandwidth_mbps: float
    dominant_point: int
    median_latency_s: float
    mean_latency_s: float
    requests: int


@dataclass(frozen=True)
class Fig6Result:
    segment_s: float
    per_model: Dict[str, Tuple[SegmentStats, ...]]
    num_nodes: Dict[str, int]


def run_fig6(
    models: Sequence[str] = tuple(EVALUATED_MODELS),
    segment_s: float = 30.0,
    seed: int = 0,
) -> Fig6Result:
    per_model: Dict[str, Tuple[SegmentStats, ...]] = {}
    num_nodes: Dict[str, int] = {}
    duration = segment_s * len(FIG6_BANDWIDTHS_MBPS)
    for model in models:
        engine = default_engine(model)
        num_nodes[model] = engine.num_nodes
        system = OffloadingSystem(
            engine,
            bandwidth_trace=fig6_trace(segment_s),
            config=SystemConfig(policy="loadpart", seed=seed),
        )
        timeline = system.run(duration)
        stats: List[SegmentStats] = []
        for i, bw in enumerate(FIG6_BANDWIDTHS_MBPS):
            # Skip the first seconds of each segment: the estimator needs a
            # probe period to notice the change, exactly as the real system
            # would (this lag is part of the paper's Fig. 6 traces too).
            window = timeline.between(i * segment_s + segment_s / 3, (i + 1) * segment_s)
            if len(window) == 0:
                window = timeline.between(i * segment_s, (i + 1) * segment_s)
            points = Counter(r.partition_point for r in window)
            stats.append(
                SegmentStats(
                    bandwidth_mbps=bw,
                    dominant_point=points.most_common(1)[0][0],
                    median_latency_s=float(np.median(window.latencies)),
                    mean_latency_s=window.mean_latency(),
                    requests=len(window),
                )
            )
        per_model[model] = tuple(stats)
    return Fig6Result(segment_s=segment_s, per_model=per_model, num_nodes=num_nodes)


def format_fig6(result: Fig6Result) -> str:
    blocks = []
    for model, stats in result.per_model.items():
        n = result.num_nodes[model]
        rows = []
        for s in stats:
            kind = "local" if s.dominant_point == n else (
                "full" if s.dominant_point == 0 else "partial"
            )
            rows.append(
                (f"{s.bandwidth_mbps:g}", s.dominant_point, kind,
                 ms(s.median_latency_s), s.requests)
            )
        table = render_table(
            ["Mbps", "p", "mode", "median(ms)", "requests"], rows
        )
        blocks.append(f"{model} (n={n})\n{table}")
    return "\n\n".join(blocks)
