"""Table III — RMSE / MAPE of the inference-time prediction models.

Runs the offline profiler pipeline (sample -> measure -> NNLS fit ->
held-out evaluation) and reports the accuracy per computation-node kind
for both the edge server and the user-end device, alongside the paper's
published values for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments.context import default_report
from repro.experiments.reporting import render_table
from repro.profiling.offline import ProfilerReport

#: Paper's Table III values: name -> (edge RMSE us, edge MAPE, dev RMSE us, dev MAPE).
PAPER_TABLE3: Dict[str, Tuple[float, float, float, float]] = {
    "Conv": (401.81, 0.1671, 41325.68, 0.4009),
    "DWConv": (11.95, 0.4158, 712.79, 0.3664),
    "Matmul": (3.41, 0.0533, 420.71, 0.0854),
    "AvgPooling": (6.90, 0.1356, 635.26, 0.1929),
    "MaxPooling": (6.19, 0.3423, 2375.42, 0.2025),
    "BiasAdd": (4.60, 0.0740, 690.55, 0.0480),
    "Elem-wise Add": (1.47, 0.0637, 1232.25, 0.0482),
    "BatchNorm": (24.34, 0.1097, 2023.16, 0.0936),
    "ReLU": (4.52, 0.1259, 1451.52, 0.1767),
}


@dataclass(frozen=True)
class Table3Result:
    report: ProfilerReport

    @property
    def device_conv_is_worst_mape(self) -> bool:
        """The paper's headline: device conv is among the hardest to predict."""
        convs = [r for r in self.report.rows if r.name in ("Conv", "DWConv")]
        others = [r for r in self.report.rows if r.name not in ("Conv", "DWConv")]
        best_conv = max(r.device_mape for r in convs)
        return best_conv >= max(o.device_mape for o in others) * 0.5

    @property
    def matmul_is_most_accurate_device(self) -> bool:
        rows = {r.name: r for r in self.report.rows}
        matmul = rows["Matmul"].device_mape
        return matmul == min(r.device_mape for r in self.report.rows)


def run_table3(samples: int = 400, seed: int = 7) -> Table3Result:
    return Table3Result(report=default_report(samples, seed))


def format_table3(result: Table3Result) -> str:
    rows = []
    for row in result.report.rows:
        paper = PAPER_TABLE3[row.name]
        rows.append(
            (
                row.name,
                f"{row.edge_rmse * 1e6:.1f}",
                f"{row.edge_mape * 100:.1f}%",
                f"{paper[1] * 100:.1f}%",
                f"{row.device_rmse * 1e6:.1f}",
                f"{row.device_mape * 100:.1f}%",
                f"{paper[3] * 100:.1f}%",
            )
        )
    return render_table(
        [
            "node", "edge RMSE(us)", "edge MAPE", "paper edge MAPE",
            "dev RMSE(us)", "dev MAPE", "paper dev MAPE",
        ],
        rows,
    )
