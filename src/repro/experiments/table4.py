"""Table IV — hardware specifications of the simulated testbed.

The physical table plus the calibrated simulation constants standing in
for each machine, so readers can see what the substitution actually is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.reporting import render_table
from repro.hardware.device_model import DeviceParams
from repro.hardware.gpu_model import GpuParams
from repro.hardware.specs import DEVICE_SPEC, EDGE_SERVER_SPEC, HardwareSpec


@dataclass(frozen=True)
class Table4Result:
    edge: HardwareSpec
    device: HardwareSpec
    device_params: DeviceParams
    gpu_params: GpuParams


def run_table4() -> Table4Result:
    return Table4Result(
        edge=EDGE_SERVER_SPEC,
        device=DEVICE_SPEC,
        device_params=DeviceParams(),
        gpu_params=GpuParams(),
    )


def format_table4(result: Table4Result) -> str:
    spec_rows = [
        ("System", result.edge.system, result.device.system),
        ("CPU", result.edge.cpu, result.device.cpu),
        ("Cores", result.edge.cpu_cores, result.device.cpu_cores),
        ("Clock (GHz)", result.edge.cpu_ghz, result.device.cpu_ghz),
        ("Memory", result.edge.memory, result.device.memory),
        ("Disk", result.edge.disk, result.device.disk),
        ("GPU", result.edge.gpu, result.device.gpu),
    ]
    specs = render_table(["Hardware", "Edge Server", "User-End Device"], spec_rows)
    dp, gp = result.device_params, result.gpu_params
    sim_rows = [
        ("conv peak rate", f"{gp.conv_rate / 1e12:.1f} TFLOP/s", f"{dp.conv_rate / 1e9:.1f} GFLOP/s"),
        ("memory bandwidth", f"{gp.mem_bandwidth / 1e9:.0f} GB/s", f"{dp.mem_bandwidth / 1e9:.1f} GB/s"),
        ("per-kernel overhead", f"{gp.launch_overhead * 1e6:.0f} us launch", f"{dp.node_overhead * 1e6:.0f} us dispatch"),
    ]
    sims = render_table(["Simulation constant", "Edge Server", "User-End Device"], sim_rows)
    return f"{specs}\n\ncalibrated simulation stand-ins:\n{sims}"
