"""Table I — FLOPs of the 8 typical kinds of computation nodes.

The formulas live in :mod:`repro.graph.ops`; this experiment renders them
and cross-checks the summed FLOPs of the model zoo against the well-known
reference totals (AlexNet ~0.72 GFLOPs multiply-accumulate, VGG16 ~15.5,
ResNet50 ~4.1, InceptionV3 ~5.7), which validates the per-node formulas
end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.experiments.reporting import render_table
from repro.models import build_model

#: The formula column of Table I, keyed by the paper's node names.
TABLE1_FORMULAS: Dict[str, str] = {
    "Conv": "N*C_in*H_out*W_out*K_H*K_W*C_out",
    "DWConv": "N*C_in*H_out*W_out*K_H*K_W",
    "Matmul": "N*C_in*C_out",
    "Pooling": "N*C_out*H_out*W_out*K_H*K_W",
    "BiasAdd": "prod(S_i)  (total input size)",
    "Element-wise": "prod(S_i)  (total input size)",
    "BatchNorm": "prod(S_i)  (total input size)",
    "Activation": "prod(S_i)  (total input size)",
}

#: Reference GFLOPs (multiply-accumulate counts) from the literature.
REFERENCE_GFLOPS: Dict[str, Tuple[float, float]] = {
    "alexnet": (0.65, 0.80),
    "vgg16": (15.0, 16.0),
    "resnet18": (1.7, 2.0),
    "resnet50": (3.8, 4.3),
    "inception_v3": (5.3, 6.0),
    "xception": (8.0, 9.0),
}


@dataclass(frozen=True)
class Table1Result:
    formulas: Dict[str, str]
    model_gflops: Dict[str, float]
    reference: Dict[str, Tuple[float, float]]

    @property
    def all_within_reference(self) -> bool:
        return all(
            lo <= self.model_gflops[m] <= hi for m, (lo, hi) in self.reference.items()
        )


def run_table1() -> Table1Result:
    gflops = {
        model: build_model(model).total_flops() / 1e9 for model in REFERENCE_GFLOPS
    }
    return Table1Result(
        formulas=dict(TABLE1_FORMULAS),
        model_gflops=gflops,
        reference=dict(REFERENCE_GFLOPS),
    )


def format_table1(result: Table1Result) -> str:
    formulas = render_table(
        ["Computation Node", "FLOPs"], list(result.formulas.items())
    )
    checks = render_table(
        ["model", "GFLOPs (ours)", "reference range", "ok"],
        [
            (m, f"{result.model_gflops[m]:.3f}", f"[{lo}, {hi}]",
             "yes" if lo <= result.model_gflops[m] <= hi else "NO")
            for m, (lo, hi) in result.reference.items()
        ],
    )
    return f"{formulas}\n\ncross-check against literature totals:\n{checks}"
