"""Fig. 8 — SqueezeNet: LoADPart vs local vs full offloading per bandwidth.

See :mod:`repro.experiments.fig7` for the shared machinery; the paper's
SqueezeNet speedups are 7.05x mean / 23.93x max vs full offloading and
1.41x / 2.53x vs local inference.
"""

from __future__ import annotations

from repro.experiments.fig7 import PolicyComparison, format_comparison, run_policy_comparison

PAPER_FIG8 = {"full_mean": 7.05, "full_max": 23.93, "local_mean": 1.41, "local_max": 2.53}


def run_fig8(**kwargs) -> PolicyComparison:
    """Fig. 8: SqueezeNet."""
    return run_policy_comparison("squeezenet", **kwargs)


def format_fig8(result: PolicyComparison) -> str:
    return format_comparison(result, PAPER_FIG8)
