"""Shared experiment context: trained predictors and engines, cached.

Every experiment needs the offline-trained prediction models; training
takes a fraction of a second but is cached here so a full experiment sweep
trains exactly once per (sample count, seed).
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.engine import LoADPartEngine
from repro.models import build_exit_model, build_model
from repro.profiling.offline import OfflineProfiler, ProfilerReport

DEFAULT_SAMPLES = 250
DEFAULT_SEED = 7


@lru_cache(maxsize=8)
def default_report(samples: int = DEFAULT_SAMPLES, seed: int = DEFAULT_SEED) -> ProfilerReport:
    """The trained M_user / M_edge bundle used across experiments."""
    return OfflineProfiler(samples_per_category=samples, seed=seed).run()


@lru_cache(maxsize=32)
def default_engine(model: str, samples: int = DEFAULT_SAMPLES, seed: int = DEFAULT_SEED) -> LoADPartEngine:
    """A decision engine for ``model`` built on the default predictors."""
    report = default_report(samples, seed)
    return LoADPartEngine(build_model(model), report.user_predictor, report.edge_predictor)


@lru_cache(maxsize=32)
def default_exit_engine(model: str, samples: int = DEFAULT_SAMPLES,
                        seed: int = DEFAULT_SEED) -> LoADPartEngine:
    """An exit-carrying engine for ``model`` (its declared branch set).

    Same predictors as :func:`default_engine`; the backbone graph and its
    exit branches come from :func:`repro.models.build_exit_model`.
    """
    report = default_report(samples, seed)
    graph, branches = build_exit_model(model)
    return LoADPartEngine(graph, report.user_predictor, report.edge_predictor,
                          exits=branches)
