"""Table II — feature selection for the inference-time prediction models.

The paper scores a pool of candidate features with XGBoost and keeps the
important ones per computation-node kind and side.  This experiment runs
the same procedure with our gradient-boosted trees over profiled samples
and reports, per (category, side), the importance ranking and how much of
the total gain the paper's selected features capture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.experiments.reporting import render_table
from repro.hardware.device_model import DeviceModel
from repro.hardware.gpu_model import GpuModel
from repro.profiling.features import CANDIDATE_FEATURES, FEATURE_NAMES, candidate_vector
from repro.profiling.gbt import rank_features
from repro.profiling.sampler import ConfigSampler

#: Categories with a non-trivial feature choice in Table II.
SELECTED_CATEGORIES = ("conv", "dwconv", "matmul", "pooling")


@dataclass(frozen=True)
class SelectionRow:
    category: str
    side: str
    ranking: Tuple[Tuple[str, float], ...]  # (feature, importance) sorted desc
    paper_features: Tuple[str, ...]
    paper_gain_share: float  # importance mass covered by the paper's choice


@dataclass(frozen=True)
class Table2Result:
    rows: Tuple[SelectionRow, ...]


def run_table2(samples: int = 400, seed: int = 11) -> Table2Result:
    sampler = ConfigSampler(seed=seed)
    rng = np.random.default_rng(seed + 1)
    device = DeviceModel()
    gpu = GpuModel()
    rows: List[SelectionRow] = []
    for category in SELECTED_CATEGORIES:
        profiles = sampler.sample_profiles(category, samples)
        X = np.stack([candidate_vector(p) for p in profiles])
        for side, model in (("edge", gpu), ("device", device)):
            y = np.array([model.sample_time(p, rng) for p in profiles])
            ranking = rank_features(X, y, CANDIDATE_FEATURES)
            paper = FEATURE_NAMES[(category, side)]
            share = sum(ranking.get(f, 0.0) for f in paper)
            rows.append(
                SelectionRow(
                    category=category,
                    side=side,
                    ranking=tuple(ranking.items()),
                    paper_features=tuple(paper),
                    paper_gain_share=share,
                )
            )
    return Table2Result(rows=tuple(rows))


def format_table2(result: Table2Result) -> str:
    out = []
    for row in result.rows:
        top = ", ".join(f"{name}={score:.2f}" for name, score in row.ranking[:4])
        out.append(
            (row.category, row.side, top, ", ".join(row.paper_features),
             f"{row.paper_gain_share * 100:.0f}%")
        )
    table = render_table(
        ["category", "side", "GBT top-4 importance", "Table II selection", "gain covered"],
        out,
    )
    return table + (
        "\npaper: high-importance features per kind were kept as the LR inputs "
        "(FLOPs always dominant)"
    )
