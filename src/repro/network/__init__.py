"""Network substrate: the WiFi link between device and edge server.

Provides the transfer-time model (:mod:`channel`), time-varying bandwidth
traces used by the experiments (:mod:`traces`), the paper's
sliding-window bandwidth estimator combining active probes with passive
measurements of offloading transfers (:mod:`estimator`, §IV), tensor
codecs for the cut tensors (:mod:`codec`) and the streaming-upload
configuration (:mod:`streaming`).
"""

from repro.network.channel import (
    Channel,
    NetworkParams,
    StreamResult,
    TransferResult,
)
from repro.network.codec import EncodedTensor, TensorCodec, decode_any
from repro.network.estimator import BandwidthEstimator
from repro.network.faults import FaultPlan, FaultyChannel, ServerFaultPlan
from repro.network.streaming import StreamingConfig, plan_chunks
from repro.network.traces import (
    BandwidthTrace,
    ConstantTrace,
    OutageTrace,
    RandomWalkTrace,
    StepTrace,
    fig6_trace,
)

__all__ = [
    "BandwidthEstimator",
    "BandwidthTrace",
    "Channel",
    "ConstantTrace",
    "EncodedTensor",
    "FaultPlan",
    "FaultyChannel",
    "TensorCodec",
    "NetworkParams",
    "OutageTrace",
    "RandomWalkTrace",
    "ServerFaultPlan",
    "StepTrace",
    "StreamResult",
    "StreamingConfig",
    "TransferResult",
    "decode_any",
    "fig6_trace",
    "plan_chunks",
]
