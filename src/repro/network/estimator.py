"""The device-side bandwidth estimator (paper §IV).

The runtime profiler thread measures the available upload bandwidth in two
ways: periodically sending probe packets whose size adapts to the sliding
window's history, and passively, from the measured upload durations of
actual offloading transfers in the main thread.  Both kinds of samples land
in one sliding window; the estimate is the window median (robust to the
heavy-tailed outliers that congested WiFi produces).

The window is bounded twice: by sample count (``window_size``) and — when
``window_s`` is given — by age, matching the paper's description of a
*time* window.  Age expiry matters under faults: after a link outage the
pre-outage samples are exactly the ones that must stop dominating the
median.

Failed transfers are evidence too: a transfer of ``n`` bytes that did not
complete within ``t`` seconds proves the usable bandwidth was below
``8n/t`` bit/s, so :meth:`BandwidthEstimator.add_failure` records that
upper bound as a (pessimistic) sample instead of discarding the
observation.  Degenerate measurements (zero bytes, non-positive or
infinite durations) are silently ignored rather than raised — a probe that
never completed must not crash the profiler thread.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Deque

import numpy as np


@dataclass(frozen=True)
class _Sample:
    time_s: float
    bandwidth_bps: float
    passive: bool
    failure: bool = False


class BandwidthEstimator:
    """Sliding-window upload-bandwidth estimator with adaptive probes."""

    def __init__(
        self,
        window_size: int = 8,
        initial_estimate_bps: float = 8e6,
        probe_target_duration_s: float = 0.05,
        min_probe_bytes: int = 4 * 1024,
        max_probe_bytes: int = 4 * 1024 * 1024,
        window_s: float | None = None,
    ) -> None:
        if window_size < 1:
            raise ValueError("window_size must be >= 1")
        if initial_estimate_bps <= 0:
            raise ValueError("initial estimate must be positive")
        if window_s is not None and window_s <= 0:
            raise ValueError("window_s must be positive (or None for no age bound)")
        self._window: Deque[_Sample] = deque(maxlen=window_size)
        self._initial = initial_estimate_bps
        self._probe_target_duration_s = probe_target_duration_s
        self._min_probe_bytes = min_probe_bytes
        self._max_probe_bytes = max_probe_bytes
        self._window_s = window_s
        self._last_time_s = -math.inf

    # -- measurement ingestion ---------------------------------------------------

    def add_probe(self, time_s: float, probe_bytes: int, duration_s: float) -> None:
        """Record one active probe: ``probe_bytes`` uploaded in ``duration_s``."""
        self._add(time_s, probe_bytes, duration_s, passive=False)

    def add_passive(self, time_s: float, nbytes: int, duration_s: float) -> None:
        """Record a passive measurement from an actual offloading upload."""
        self._add(time_s, nbytes, duration_s, passive=True)

    def add_failure(self, time_s: float, nbytes: int, elapsed_s: float) -> None:
        """Record a failed transfer: ``nbytes`` did NOT complete in ``elapsed_s``.

        The implied bandwidth upper bound enters the window as a pessimistic
        sample, so repeated failures drag the median down and push the
        partition decision toward local execution — the transfer's waiting
        time becomes evidence instead of being unrecordable.
        """
        self._add(time_s, nbytes, elapsed_s, passive=True, failure=True)

    def _add(self, time_s: float, nbytes: int, duration_s: float, passive: bool,
             failure: bool = False) -> None:
        if nbytes <= 0 or duration_s <= 0 or not math.isfinite(duration_s):
            return  # degenerate measurement: ignore, never crash the profiler
        self._last_time_s = max(self._last_time_s, time_s)
        self._evict(self._last_time_s)
        self._window.append(_Sample(time_s, nbytes * 8 / duration_s, passive, failure))

    def _evict(self, now_s: float) -> None:
        if self._window_s is None:
            return
        while self._window and self._window[0].time_s < now_s - self._window_s:
            self._window.popleft()

    def reset(self) -> None:
        """Forget all samples and return to the initial estimate.

        The fleet supervisor calls this when it detects a server restart:
        measurements taken against the pre-crash process (or during the
        outage, as failure upper bounds) say nothing about the fresh one.
        """
        self._window.clear()
        self._last_time_s = -math.inf

    # -- queries -------------------------------------------------------------------

    def estimate(self) -> float:
        """Current upload-bandwidth estimate in bit/s (median of the window)."""
        self._evict(self._last_time_s)
        if not self._window:
            return self._initial
        return float(np.median([s.bandwidth_bps for s in self._window]))

    def next_probe_bytes(self) -> int:
        """Probe size targeting ``probe_target_duration_s`` at the current estimate.

        This is the paper's "size of the probe package is adjusted according
        to the historical data in the sliding window".
        """
        target = self.estimate() * self._probe_target_duration_s / 8
        return int(np.clip(target, self._min_probe_bytes, self._max_probe_bytes))

    @property
    def sample_count(self) -> int:
        return len(self._window)

    @property
    def passive_fraction(self) -> float:
        """Fraction of window samples that came from passive measurement."""
        if not self._window:
            return 0.0
        return sum(1 for s in self._window if s.passive) / len(self._window)

    @property
    def failure_fraction(self) -> float:
        """Fraction of window samples that are failed-transfer upper bounds."""
        if not self._window:
            return 0.0
        return sum(1 for s in self._window if s.failure) / len(self._window)


class LinkEstimator:
    """Online estimator of one server link's base latency (EWMA, robust).

    The fleet supervisor decomposes each two-size probe into a bandwidth
    sample and a *link latency* sample (see
    :meth:`~repro.runtime.supervisor.FleetSupervisor.probe`); this class
    turns the noisy latency samples into a stable per-server estimate —
    the learned replacement for a configured ``extra_latencies_s`` entry.

    Mechanics: an EWMA of the samples plus an EWMA of their absolute
    deviation.  Once ``warmup`` samples are in, a sample further than
    ``outlier_factor`` deviations from the mean is rejected (one
    congestion spike must not smear a stable link's estimate) — but
    ``max_consecutive_rejects`` rejections in a row are read as a level
    shift (the path really changed: re-routing, new middlebox) and the
    next sample re-seeds the estimate instead of being discarded.

    ``estimate()`` returns the configured ``prior_s`` until the first
    accepted sample, which is exactly the config-as-prior fallback when
    probing is disabled.  Link latency is a property of the *path*, not
    the server process, so the supervisor deliberately does **not**
    reset this on a server restart.
    """

    def __init__(
        self,
        prior_s: float = 0.0,
        alpha: float = 0.25,
        outlier_factor: float = 4.0,
        warmup: int = 4,
        max_consecutive_rejects: int = 3,
    ) -> None:
        if prior_s < 0 or not math.isfinite(prior_s):
            raise ValueError("prior_s must be non-negative and finite")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if outlier_factor <= 0:
            raise ValueError("outlier_factor must be positive")
        if warmup < 1 or max_consecutive_rejects < 1:
            raise ValueError("warmup and max_consecutive_rejects must be >= 1")
        self._prior = prior_s
        self._alpha = alpha
        self._outlier_factor = outlier_factor
        self._warmup = warmup
        self._max_rejects = max_consecutive_rejects
        self.reset()

    def reset(self) -> None:
        """Forget everything and fall back to the prior."""
        self._mean = self._prior
        self._dev = 0.0
        self._accepted = 0
        self._rejected = 0
        self._consecutive_rejects = 0

    def add(self, latency_s: float) -> bool:
        """Feed one latency sample; returns True if it was accepted."""
        if not math.isfinite(latency_s) or latency_s < 0:
            return False
        if self._accepted >= self._warmup and self._is_outlier(latency_s):
            self._consecutive_rejects += 1
            if self._consecutive_rejects <= self._max_rejects:
                self._rejected += 1
                return False
            # Level shift: this is the (max+1)-th straight "outlier" —
            # the estimate is what's wrong.  Re-seed on the new regime.
            self._mean = latency_s
            self._dev = 0.0
            self._accepted = 1
            self._consecutive_rejects = 0
            return True
        self._consecutive_rejects = 0
        if self._accepted == 0:
            self._mean = latency_s
            self._dev = 0.0
        else:
            delta = latency_s - self._mean
            self._mean += self._alpha * delta
            self._dev += self._alpha * (abs(delta) - self._dev)
        self._accepted += 1
        return True

    def _is_outlier(self, latency_s: float) -> bool:
        # The deviation floor keeps a near-noiseless link from locking
        # out every future sample once its EWMA deviation collapses.
        floor = 0.05 * self._mean + 1e-6
        return abs(latency_s - self._mean) > self._outlier_factor * max(
            self._dev, floor)

    def estimate(self) -> float:
        """Current link-latency estimate in seconds (prior until a sample)."""
        return self._mean if self._accepted else self._prior

    @property
    def prior_s(self) -> float:
        return self._prior

    @property
    def sample_count(self) -> int:
        return self._accepted

    @property
    def rejected_count(self) -> int:
        return self._rejected
