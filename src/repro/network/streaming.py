"""Streaming offload configuration: chunked upload + codec selection.

The paper's 1-8 Mbps regime is transfer-dominated: uploading the whole
cut tensor before the server tail starts leaves the edge GPU idle for
hundreds of milliseconds.  :class:`StreamingConfig` opts a system into
the streaming pipeline:

- the cut tensors are encoded with one of ``codecs`` (chosen *jointly*
  with the partition point by
  :meth:`~repro.core.engine.LoADPartEngine.decide_joint`),
- the encoded byte stream is uploaded in ``chunk_bytes`` chunks
  (:meth:`~repro.network.channel.Channel.try_upload_stream`), and
- the server begins executing tail layers as soon as their boundary
  inputs have fully arrived (arrival-gated execution in
  :meth:`~repro.runtime.server.EdgeServer.handle_offload`).

Lossy codecs (``fp16``, ``int8``) are strictly opt-in via
``allow_lossy``; the default candidate set only ever produces bit-exact
results.  The degenerate config — identity codec, no chunking — is
byte-identical to not streaming at all, which the interaction tests pin
down.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.network.codec import TensorCodec


@dataclass(frozen=True)
class StreamingConfig:
    """Opt-in knobs for the streaming offload path.

    ``chunk_bytes``
        Wire chunk size; ``None`` uploads each request as one chunk
        (codec selection still applies).
    ``codecs``
        Candidate codecs the decision engine may pick from, in
        preference order (ties in predicted latency break toward the
        earlier entry).
    ``allow_lossy``
        Must be ``True`` to list a lossy codec (``fp16``/``int8``);
        results are then only tolerance-bounded, not bit-exact.
    ``chunk_overhead_s``
        Per-extra-chunk framing/syscall overhead the *decision model*
        charges for splitting an upload.  Chunks of one stream ride a
        single established connection back-to-back, so they do NOT pay
        ``NetworkParams.base_latency_s`` each — only the first chunk
        does (see ``Channel.stream_chunk_time``); this knob covers the
        residual per-message cost.
    ``max_chunk_retries``
        In-stream retry budget per chunk: a faulted chunk is retried
        this many times (each failure charging only that chunk's
        timeout share) before the stream aborts.
    ``min_chunk_timeout_s``
        Floor for the per-chunk timeout share, so tiny chunks are not
        starved by proportional budget splitting.
    """

    chunk_bytes: int | None = 32 * 1024
    codecs: Tuple[str, ...] = ("fp32", "zlib")
    allow_lossy: bool = False
    chunk_overhead_s: float = 5.0e-6
    max_chunk_retries: int = 1
    min_chunk_timeout_s: float = 0.05

    def __post_init__(self) -> None:
        object.__setattr__(self, "codecs", tuple(self.codecs))
        if self.chunk_bytes is not None and self.chunk_bytes < 1024:
            raise ValueError("chunk_bytes must be >= 1024 (or None for one chunk)")
        if not self.codecs:
            raise ValueError("codecs must name at least one codec")
        for name in self.codecs:
            if name not in TensorCodec.BYTES_PER_ELEMENT:
                raise ValueError(
                    f"unknown codec {name!r}; choose from "
                    f"{sorted(TensorCodec.BYTES_PER_ELEMENT)}")
            if not self.allow_lossy and name not in TensorCodec.LOSSLESS:
                raise ValueError(
                    f"codec {name!r} is lossy; set allow_lossy=True to opt in")
        if self.chunk_overhead_s < 0:
            raise ValueError("chunk_overhead_s must be non-negative")
        if self.max_chunk_retries < 0:
            raise ValueError("max_chunk_retries must be non-negative")
        if self.min_chunk_timeout_s < 0:
            raise ValueError("min_chunk_timeout_s must be non-negative")

    @property
    def is_degenerate(self) -> bool:
        """True when streaming can never change behaviour: identity codec
        only, no chunking."""
        return self.chunk_bytes is None and self.codecs == ("fp32",)

    def plan_chunks(self, total_bytes: int) -> Tuple[int, ...]:
        """Split ``total_bytes`` of wire payload into chunk sizes."""
        return plan_chunks(total_bytes, self.chunk_bytes)

    def num_chunks(self, total_bytes: int) -> int:
        if self.chunk_bytes is None or total_bytes <= self.chunk_bytes:
            return 1
        return -(-total_bytes // self.chunk_bytes)


def plan_chunks(total_bytes: int, chunk_bytes: int | None) -> Tuple[int, ...]:
    """Chunk sizes for ``total_bytes``: full chunks plus the remainder.

    Zero-byte payloads still produce one (empty) chunk so every request
    has at least one wire message.
    """
    if total_bytes < 0:
        raise ValueError("total_bytes must be non-negative")
    if chunk_bytes is None or total_bytes <= chunk_bytes:
        return (total_bytes,)
    full, rem = divmod(total_bytes, chunk_bytes)
    sizes = (chunk_bytes,) * full
    return sizes + (rem,) if rem else sizes
