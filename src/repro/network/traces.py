"""Time-varying bandwidth traces.

A :class:`BandwidthTrace` maps simulation time to the *true* available
upload/download bandwidth in bit/s.  The runtime never reads the trace
directly — the device only sees what its estimator measures, as on a real
link.
"""

from __future__ import annotations

import bisect
import math
from typing import List, Sequence, Tuple

import numpy as np

MBPS = 1e6


class BandwidthTrace:
    """Interface: true link bandwidth as a function of time."""

    def upload_at(self, t: float) -> float:
        raise NotImplementedError

    def download_at(self, t: float) -> float:
        # The paper's testbed link is symmetric; subclasses may override.
        return self.upload_at(t)


class ConstantTrace(BandwidthTrace):
    """Fixed bandwidth (the paper's §V-C setting: 8 Mbps upload)."""

    def __init__(self, upload_bps: float, download_bps: float | None = None) -> None:
        if upload_bps <= 0:
            raise ValueError("bandwidth must be positive")
        self._up = upload_bps
        self._down = download_bps if download_bps is not None else upload_bps

    def upload_at(self, t: float) -> float:
        return self._up

    def download_at(self, t: float) -> float:
        return self._down


class StepTrace(BandwidthTrace):
    """Piecewise-constant bandwidth: a list of ``(start_s, bps)`` steps."""

    def __init__(self, steps: Sequence[Tuple[float, float]]) -> None:
        if not steps:
            raise ValueError("StepTrace needs at least one step")
        starts = [t for t, _ in steps]
        if starts != sorted(starts) or starts[0] != 0.0:
            raise ValueError("steps must be sorted and start at t=0")
        if any(bw <= 0 for _, bw in steps):
            raise ValueError("bandwidth must be positive")
        self._starts = starts
        self._values = [bw for _, bw in steps]

    def upload_at(self, t: float) -> float:
        idx = bisect.bisect_right(self._starts, t) - 1
        return self._values[max(idx, 0)]

    @property
    def steps(self) -> List[Tuple[float, float]]:
        return list(zip(self._starts, self._values))


class RandomWalkTrace(BandwidthTrace):
    """Log-space random walk between hard bounds, for robustness tests.

    The walk is precomputed on a fixed grid so that lookups are pure
    (deterministic given the seed).
    """

    def __init__(
        self,
        mean_bps: float,
        sigma: float = 0.15,
        step_s: float = 1.0,
        duration_s: float = 600.0,
        min_bps: float = 0.5 * MBPS,
        max_bps: float = 100 * MBPS,
        seed: int = 0,
    ) -> None:
        if not min_bps <= mean_bps <= max_bps:
            raise ValueError("mean_bps must lie within [min_bps, max_bps]")
        rng = np.random.default_rng(seed)
        n = max(int(math.ceil(duration_s / step_s)) + 1, 2)
        log_bw = np.empty(n)
        log_bw[0] = math.log(mean_bps)
        for i in range(1, n):
            log_bw[i] = log_bw[i - 1] + rng.normal(0.0, sigma)
            # Mean reversion keeps the walk near the configured mean.
            log_bw[i] += 0.05 * (math.log(mean_bps) - log_bw[i])
        self._values = np.clip(np.exp(log_bw), min_bps, max_bps)
        self._step = step_s

    def upload_at(self, t: float) -> float:
        idx = min(int(max(t, 0.0) / self._step), len(self._values) - 1)
        return float(self._values[idx])


class OutageTrace(BandwidthTrace):
    """A base trace overlaid with hard link-outage windows.

    During an outage the link reports zero bandwidth — the channel maps
    that to an infinite (never-completing) transfer, which is what a dark
    access point looks like from the device.  Windows are ``(start_s,
    end_s)`` pairs, sorted and non-overlapping.
    """

    def __init__(self, base: BandwidthTrace,
                 windows: Sequence[Tuple[float, float]]) -> None:
        prev_end = -math.inf
        for window in windows:
            start, end = window
            if not start < end:
                raise ValueError(f"outage window must have start < end, got {window!r}")
            if start < prev_end:
                raise ValueError("outage windows must be sorted and non-overlapping")
            prev_end = end
        self.base = base
        self.windows = [tuple(w) for w in windows]

    def in_outage(self, t: float) -> bool:
        return any(start <= t < end for start, end in self.windows)

    def upload_at(self, t: float) -> float:
        return 0.0 if self.in_outage(t) else self.base.upload_at(t)

    def download_at(self, t: float) -> float:
        return 0.0 if self.in_outage(t) else self.base.download_at(t)


#: Upload bandwidths of the Fig. 6 sweep, in Mbps: starts at 8, decreases
#: to 1, then increases to 64 (paper §V-B).
FIG6_BANDWIDTHS_MBPS: Tuple[float, ...] = (8, 4, 2, 1, 2, 4, 8, 16, 32, 64)


def fig6_trace(segment_s: float = 30.0) -> StepTrace:
    """The bandwidth trajectory of Fig. 6: 8 -> 1 -> 64 Mbps in steps."""
    return StepTrace(
        [(i * segment_s, bw * MBPS) for i, bw in enumerate(FIG6_BANDWIDTHS_MBPS)]
    )
