"""Transfer-time model of the device-server link."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.hardware.device_model import lognormal_factor
from repro.network.traces import BandwidthTrace


@dataclass(frozen=True)
class NetworkParams:
    """Link constants beyond raw bandwidth."""

    base_latency_s: float = 2.0e-3   # per-message propagation + stack latency
    jitter_sigma: float = 0.05       # lognormal multiplicative jitter on transfers

    def __post_init__(self) -> None:
        if self.base_latency_s < 0:
            raise ValueError("base_latency_s must be non-negative")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one transfer attempt over the (possibly faulty) link.

    ``elapsed_s`` is always the wall time the *sender* spent on the attempt:
    the transfer duration when delivered, the time-to-timeout when not.
    A failed attempt with no timeout budget reports ``inf`` — the sender
    would wait forever (this is how a non-resilient client stalls).
    """

    delivered: bool
    elapsed_s: float
    nbytes: int = 0
    timed_out: bool = False

    @staticmethod
    def failed(nbytes: int, timeout_s: float | None = None) -> "TransferResult":
        elapsed = timeout_s if timeout_s is not None else math.inf
        return TransferResult(delivered=False, elapsed_s=elapsed,
                              nbytes=nbytes, timed_out=True)

    @staticmethod
    def from_elapsed(nbytes: int, elapsed_s: float,
                     timeout_s: float | None = None) -> "TransferResult":
        """Classify a raw duration against the timeout budget."""
        if not math.isfinite(elapsed_s) or (
                timeout_s is not None and elapsed_s > timeout_s):
            return TransferResult.failed(nbytes, timeout_s)
        return TransferResult(delivered=True, elapsed_s=elapsed_s, nbytes=nbytes)


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one chunked upload over the (possibly faulty) link.

    ``elapsed_s`` follows the :class:`TransferResult` convention — the
    wall time the sender spent on the stream, including the timeout
    share charged by every failed chunk attempt.  ``offsets_s`` are the
    cumulative arrival offsets of the *delivered* chunks relative to the
    stream start; on success the last offset is the total transfer time.
    """

    delivered: bool
    elapsed_s: float
    nbytes: int = 0
    offsets_s: Tuple[float, ...] = field(default=())
    timed_out: bool = False
    failed_chunk: int | None = None
    chunk_retries: int = 0

    @property
    def chunks(self) -> int:
        return len(self.offsets_s)


class Channel:
    """The WiFi link: computes transfer times against a bandwidth trace."""

    def __init__(self, trace: BandwidthTrace, params: NetworkParams | None = None) -> None:
        self.trace = trace
        self.params = params or NetworkParams()

    def mean_upload_time(self, nbytes: int, t: float) -> float:
        """Noiseless upload duration of ``nbytes`` starting at time ``t``.

        An outage-capable trace may report zero bandwidth, in which case the
        transfer never completes (``inf``).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        bandwidth = self.trace.upload_at(t)
        if bandwidth <= 0:
            return math.inf
        return self.params.base_latency_s + nbytes * 8 / bandwidth

    def mean_download_time(self, nbytes: int, t: float) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        bandwidth = self.trace.download_at(t)
        if bandwidth <= 0:
            return math.inf
        return self.params.base_latency_s + nbytes * 8 / bandwidth

    def upload_time(self, nbytes: int, t: float, rng: np.random.Generator) -> float:
        """One noisy upload duration sample."""
        return self.mean_upload_time(nbytes, t) * lognormal_factor(rng, self.params.jitter_sigma)

    def download_time(self, nbytes: int, t: float, rng: np.random.Generator) -> float:
        return self.mean_download_time(nbytes, t) * lognormal_factor(rng, self.params.jitter_sigma)

    def stream_chunk_time(self, nbytes: int, t: float, rng: np.random.Generator,
                          first: bool) -> float:
        """One noisy chunk duration inside an established stream.

        Only the first chunk pays ``base_latency_s`` — subsequent chunks
        ride the same connection back-to-back, so their cost is pure
        serialization time (plus jitter).
        """
        if first:
            return self.upload_time(nbytes, t, rng)
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        bandwidth = self.trace.upload_at(t)
        if bandwidth <= 0:
            return math.inf
        return nbytes * 8 / bandwidth * lognormal_factor(rng, self.params.jitter_sigma)

    # -- fault-aware attempt interface ---------------------------------------
    #
    # The plain channel never injects faults: an attempt only fails when the
    # trace itself reports a dead link (zero bandwidth) or the duration
    # exceeds the caller's timeout budget.  ``FaultyChannel`` overrides these
    # to consult a FaultPlan.

    def _attempt(self, elapsed_fn, nbytes: int, t: float,
                 timeout_s: float | None) -> TransferResult:
        """One transfer attempt: time the payload, classify against the
        budget.  ``FaultyChannel`` overrides this to consult its plan, so
        every attempt — monolithic or per-chunk — draws faults the same
        way."""
        return TransferResult.from_elapsed(nbytes, elapsed_fn(), timeout_s)

    def try_upload(self, nbytes: int, t: float, rng: np.random.Generator,
                   timeout_s: float | None = None) -> TransferResult:
        """One upload attempt under a timeout budget (None = wait forever)."""
        return self._attempt(
            lambda: self.upload_time(nbytes, t, rng), nbytes, t, timeout_s
        )

    def try_download(self, nbytes: int, t: float, rng: np.random.Generator,
                     timeout_s: float | None = None) -> TransferResult:
        return self._attempt(
            lambda: self.download_time(nbytes, t, rng), nbytes, t, timeout_s
        )

    def try_upload_stream(self, chunk_sizes, t: float, rng: np.random.Generator,
                          timeout_s: float | None = None,
                          max_chunk_retries: int = 0,
                          min_chunk_timeout_s: float = 0.0) -> StreamResult:
        """Chunked upload: each chunk is one :meth:`try_upload` attempt.

        The timeout budget is split across chunks proportionally to their
        size (with a ``min_chunk_timeout_s`` floor), so a mid-stream fault
        charges only the failed chunk's share — not the whole tensor's
        timeout.  A failed chunk is retried in-stream up to
        ``max_chunk_retries`` times (every attempt draws faults and jitter
        exactly like a standalone transfer, so the sequence is
        deterministic under a ``FaultPlan``); when the budget is exhausted
        the stream aborts with the partial elapsed time.

        A single-chunk stream delegates to :meth:`try_upload` verbatim —
        same RNG draws, same timeout semantics, no in-stream retries —
        which keeps the degenerate streaming config byte-identical to the
        monolithic path.
        """
        sizes = tuple(int(s) for s in chunk_sizes)
        if not sizes:
            raise ValueError("chunk_sizes must name at least one chunk")
        if any(s < 0 for s in sizes):
            raise ValueError("chunk sizes must be non-negative")
        total = sum(sizes)
        if len(sizes) == 1:
            res = self.try_upload(sizes[0], t, rng, timeout_s)
            return StreamResult(
                delivered=res.delivered, elapsed_s=res.elapsed_s, nbytes=total,
                offsets_s=(res.elapsed_s,) if res.delivered else (),
                timed_out=res.timed_out,
                failed_chunk=None if res.delivered else 0)

        offsets = []
        off = 0.0
        retries_used = 0
        for i, size in enumerate(sizes):
            chunk_timeout = None
            if timeout_s is not None:
                chunk_timeout = max(min_chunk_timeout_s,
                                    timeout_s * size / total if total else timeout_s)
            attempts = 0
            while True:
                start = t + off
                res = self._attempt(
                    lambda: self.stream_chunk_time(size, start, rng, i == 0),
                    size, start, chunk_timeout)
                off += res.elapsed_s
                if res.delivered:
                    offsets.append(off)
                    break
                if not math.isfinite(off) or attempts >= max_chunk_retries:
                    return StreamResult(
                        delivered=False, elapsed_s=off, nbytes=total,
                        offsets_s=tuple(offsets), timed_out=True,
                        failed_chunk=i, chunk_retries=retries_used)
                attempts += 1
                retries_used += 1
            if timeout_s is not None and off > timeout_s:
                # Delivered chunks notwithstanding, the stream as a whole
                # blew its budget: classify like a late monolithic upload.
                return StreamResult(
                    delivered=False, elapsed_s=off, nbytes=total,
                    offsets_s=tuple(offsets), timed_out=True,
                    failed_chunk=i, chunk_retries=retries_used)
        return StreamResult(delivered=True, elapsed_s=off, nbytes=total,
                            offsets_s=tuple(offsets),
                            chunk_retries=retries_used)
