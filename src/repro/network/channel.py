"""Transfer-time model of the device-server link."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.hardware.device_model import lognormal_factor
from repro.network.traces import BandwidthTrace


@dataclass(frozen=True)
class NetworkParams:
    """Link constants beyond raw bandwidth."""

    base_latency_s: float = 2.0e-3   # per-message propagation + stack latency
    jitter_sigma: float = 0.05       # lognormal multiplicative jitter on transfers

    def __post_init__(self) -> None:
        if self.base_latency_s < 0:
            raise ValueError("base_latency_s must be non-negative")
        if self.jitter_sigma < 0:
            raise ValueError("jitter_sigma must be non-negative")


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one transfer attempt over the (possibly faulty) link.

    ``elapsed_s`` is always the wall time the *sender* spent on the attempt:
    the transfer duration when delivered, the time-to-timeout when not.
    A failed attempt with no timeout budget reports ``inf`` — the sender
    would wait forever (this is how a non-resilient client stalls).
    """

    delivered: bool
    elapsed_s: float
    nbytes: int = 0
    timed_out: bool = False

    @staticmethod
    def failed(nbytes: int, timeout_s: float | None = None) -> "TransferResult":
        elapsed = timeout_s if timeout_s is not None else math.inf
        return TransferResult(delivered=False, elapsed_s=elapsed,
                              nbytes=nbytes, timed_out=True)

    @staticmethod
    def from_elapsed(nbytes: int, elapsed_s: float,
                     timeout_s: float | None = None) -> "TransferResult":
        """Classify a raw duration against the timeout budget."""
        if not math.isfinite(elapsed_s) or (
                timeout_s is not None and elapsed_s > timeout_s):
            return TransferResult.failed(nbytes, timeout_s)
        return TransferResult(delivered=True, elapsed_s=elapsed_s, nbytes=nbytes)


class Channel:
    """The WiFi link: computes transfer times against a bandwidth trace."""

    def __init__(self, trace: BandwidthTrace, params: NetworkParams | None = None) -> None:
        self.trace = trace
        self.params = params or NetworkParams()

    def mean_upload_time(self, nbytes: int, t: float) -> float:
        """Noiseless upload duration of ``nbytes`` starting at time ``t``.

        An outage-capable trace may report zero bandwidth, in which case the
        transfer never completes (``inf``).
        """
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        bandwidth = self.trace.upload_at(t)
        if bandwidth <= 0:
            return math.inf
        return self.params.base_latency_s + nbytes * 8 / bandwidth

    def mean_download_time(self, nbytes: int, t: float) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        bandwidth = self.trace.download_at(t)
        if bandwidth <= 0:
            return math.inf
        return self.params.base_latency_s + nbytes * 8 / bandwidth

    def upload_time(self, nbytes: int, t: float, rng: np.random.Generator) -> float:
        """One noisy upload duration sample."""
        return self.mean_upload_time(nbytes, t) * lognormal_factor(rng, self.params.jitter_sigma)

    def download_time(self, nbytes: int, t: float, rng: np.random.Generator) -> float:
        return self.mean_download_time(nbytes, t) * lognormal_factor(rng, self.params.jitter_sigma)

    # -- fault-aware attempt interface ---------------------------------------
    #
    # The plain channel never injects faults: an attempt only fails when the
    # trace itself reports a dead link (zero bandwidth) or the duration
    # exceeds the caller's timeout budget.  ``FaultyChannel`` overrides these
    # to consult a FaultPlan.

    def try_upload(self, nbytes: int, t: float, rng: np.random.Generator,
                   timeout_s: float | None = None) -> TransferResult:
        """One upload attempt under a timeout budget (None = wait forever)."""
        return TransferResult.from_elapsed(
            nbytes, self.upload_time(nbytes, t, rng), timeout_s
        )

    def try_download(self, nbytes: int, t: float, rng: np.random.Generator,
                     timeout_s: float | None = None) -> TransferResult:
        return TransferResult.from_elapsed(
            nbytes, self.download_time(nbytes, t, rng), timeout_s
        )
