"""Transfer-time model of the device-server link."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.device_model import lognormal_factor
from repro.network.traces import BandwidthTrace


@dataclass(frozen=True)
class NetworkParams:
    """Link constants beyond raw bandwidth."""

    base_latency_s: float = 2.0e-3   # per-message propagation + stack latency
    jitter_sigma: float = 0.05       # lognormal multiplicative jitter on transfers


class Channel:
    """The WiFi link: computes transfer times against a bandwidth trace."""

    def __init__(self, trace: BandwidthTrace, params: NetworkParams | None = None) -> None:
        self.trace = trace
        self.params = params or NetworkParams()

    def mean_upload_time(self, nbytes: int, t: float) -> float:
        """Noiseless upload duration of ``nbytes`` starting at time ``t``."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.params.base_latency_s + nbytes * 8 / self.trace.upload_at(t)

    def mean_download_time(self, nbytes: int, t: float) -> float:
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        if nbytes == 0:
            return 0.0
        return self.params.base_latency_s + nbytes * 8 / self.trace.download_at(t)

    def upload_time(self, nbytes: int, t: float, rng: np.random.Generator) -> float:
        """One noisy upload duration sample."""
        return self.mean_upload_time(nbytes, t) * lognormal_factor(rng, self.params.jitter_sigma)

    def download_time(self, nbytes: int, t: float, rng: np.random.Generator) -> float:
        return self.mean_download_time(nbytes, t) * lognormal_factor(rng, self.params.jitter_sigma)
