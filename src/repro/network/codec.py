"""Transmission codecs: compressing the tensors that cross the link.

The paper's related work (DeepWear, model-compression surveys) motivates
shrinking what gets transmitted.  This extension provides lossless-ish
codecs for the intermediate tensors of a partition:

- ``fp32`` — the identity baseline (4 B/element),
- ``fp16`` — half precision (2 B/element, ~1e-3 relative error),
- ``int8`` — per-tensor affine quantisation (1 B/element + 8 B header).

A codec plugs into :class:`~repro.core.engine.LoADPartEngine` (it scales
the ``s_i`` transmission sizes, which shifts the optimal partition point
toward earlier cuts) and into the executor path (encode on the device,
decode on the server), so both the *decision* and the *numerics* of
compression are testable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np


@dataclass(frozen=True)
class EncodedTensor:
    """Wire format: raw bytes plus the metadata needed to decode."""

    codec: str
    shape: Tuple[int, ...]
    payload: bytes
    scale: float = 1.0
    zero_point: float = 0.0

    @property
    def nbytes(self) -> int:
        return len(self.payload)


class TensorCodec:
    """Encode/decode float32 tensors for transmission."""

    #: codec name -> payload bytes per element
    BYTES_PER_ELEMENT: Dict[str, float] = {"fp32": 4.0, "fp16": 2.0, "int8": 1.0}

    def __init__(self, name: str = "fp32") -> None:
        if name not in self.BYTES_PER_ELEMENT:
            raise ValueError(
                f"unknown codec {name!r}; choose from {sorted(self.BYTES_PER_ELEMENT)}"
            )
        self.name = name

    @property
    def bytes_per_element(self) -> float:
        return self.BYTES_PER_ELEMENT[self.name]

    @property
    def compression_ratio(self) -> float:
        """Upload-size reduction factor relative to float32."""
        return 4.0 / self.bytes_per_element

    def wire_bytes(self, fp32_bytes: int) -> int:
        """Transmitted size for a tensor that is ``fp32_bytes`` in float32."""
        if fp32_bytes < 0:
            raise ValueError("sizes must be non-negative")
        return int(np.ceil(fp32_bytes / self.compression_ratio))

    # -- numerics -------------------------------------------------------------

    def encode(self, tensor: np.ndarray) -> EncodedTensor:
        arr = np.ascontiguousarray(tensor, dtype=np.float32)
        if self.name == "fp32":
            return EncodedTensor("fp32", arr.shape, arr.tobytes())
        if self.name == "fp16":
            return EncodedTensor("fp16", arr.shape, arr.astype(np.float16).tobytes())
        # int8: per-tensor affine quantisation over the observed range.
        lo, hi = float(arr.min()), float(arr.max())
        scale = (hi - lo) / 255.0 if hi > lo else 1.0
        quantised = np.clip(np.round((arr - lo) / scale), 0, 255).astype(np.uint8)
        return EncodedTensor("int8", arr.shape, quantised.tobytes(),
                             scale=scale, zero_point=lo)

    def decode(self, encoded: EncodedTensor) -> np.ndarray:
        if encoded.codec != self.name:
            raise ValueError(f"codec mismatch: {encoded.codec!r} vs {self.name!r}")
        if self.name == "fp32":
            return np.frombuffer(encoded.payload, dtype=np.float32).reshape(encoded.shape).copy()
        if self.name == "fp16":
            half = np.frombuffer(encoded.payload, dtype=np.float16).reshape(encoded.shape)
            return half.astype(np.float32)
        raw = np.frombuffer(encoded.payload, dtype=np.uint8).reshape(encoded.shape)
        return (raw.astype(np.float32) * encoded.scale + encoded.zero_point)

    def round_trip(self, tensor: np.ndarray) -> np.ndarray:
        return self.decode(self.encode(tensor))

    def max_abs_error(self, tensor: np.ndarray) -> float:
        """Worst-case reconstruction error on one tensor."""
        return float(np.abs(self.round_trip(tensor) - tensor).max())
