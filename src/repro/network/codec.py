"""Transmission codecs: compressing the tensors that cross the link.

The paper's related work (DeepWear, model-compression surveys) motivates
shrinking what gets transmitted.  This extension provides codecs for the
intermediate tensors of a partition:

- ``fp32`` — the identity baseline (4 B/element, free to encode/decode),
- ``zlib`` — byte-shuffle + DEFLATE over the raw float32 bytes
  (lossless; the shuffle groups exponent bytes, and feature maps behind
  a ReLU are zero-heavy, so they deflate well),
- ``fp16`` — half precision (2 B/element, ~2^-11 relative error),
- ``int8`` — per-tensor affine quantisation (1 B/element + 8 B header).

A codec plugs into :class:`~repro.core.engine.LoADPartEngine` (it scales
the ``s_i`` transmission sizes and adds encode/decode terms, which shifts
the optimal partition point) and into the streamed executor path (encode
on the device, decode on the server), so both the *decision* and the
*numerics* of compression are testable.

Accounting note: the simulated timeline must be independent of functional
execution, so wire sizes and codec times come from **declared constants**
(bytes-per-element ratios, encode/decode throughputs), never from measured
payload lengths.  For ``zlib`` the achievable ratio depends strongly on
the producing op — ReLU outputs are ~50% zeros, dense conv/matmul outputs
are mantissa noise — so the declared ratio is keyed on the producer op
kind, which is a *static* graph property.  The table was calibrated on
functional cut tensors of the model zoo (p90-conservative; see
``tests/test_codec.py``).  Actual payload lengths vary per tensor, which
only matters on the real-socket transport, never in simulation.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

#: Compression level for the ``zlib`` codec: level 1 keeps device-side
#: encode cheap while capturing most of the zero-run redundancy.
_ZLIB_LEVEL = 1


def _byte_shuffle(raw: np.ndarray) -> bytes:
    """Transpose the 4 byte planes of a float32 array (HDF5-style filter)."""
    planes = raw.view(np.uint8).reshape(-1, 4)
    return np.ascontiguousarray(planes.T).tobytes()


def _byte_unshuffle(data: bytes, shape: Tuple[int, ...]) -> np.ndarray:
    planes = np.frombuffer(data, dtype=np.uint8).reshape(4, -1)
    flat = np.ascontiguousarray(planes.T).reshape(-1).view(np.float32)
    return flat.reshape(shape).copy()


@dataclass(frozen=True)
class EncodedTensor:
    """Wire format: raw bytes plus the metadata needed to decode."""

    codec: str
    shape: Tuple[int, ...]
    payload: bytes
    scale: float = 1.0
    zero_point: float = 0.0

    @property
    def nbytes(self) -> int:
        return len(self.payload)


class TensorCodec:
    """Encode/decode float32 tensors for transmission."""

    #: codec name -> *declared* payload bytes per element, used for all
    #: simulated wire accounting.  The zlib figure is the dense-tensor
    #: (conv/matmul/bn output) calibration; sparsity-aware refinements
    #: live in :data:`ZLIB_OP_BYTES_PER_ELEMENT`.
    BYTES_PER_ELEMENT: Dict[str, float] = {
        "fp32": 4.0, "zlib": 3.7, "fp16": 2.0, "int8": 1.0,
    }

    #: Declared zlib bytes/element by *producer op kind* — a static graph
    #: property, so the simulated wire size never depends on tensor
    #: content.  Calibrated p90-conservative on functional zoo cuts:
    #: ReLU outputs are ~50% zeros, pools concentrate them, the graph
    #: input is modelled as incompressible.
    ZLIB_OP_BYTES_PER_ELEMENT: Dict[str, float] = {
        "relu": 2.4, "concat": 2.4, "maxpool2d": 3.0, "dwconv2d": 3.4,
        "input": 4.0,
    }

    #: Codecs whose round trip is bit-exact on float32 input.
    LOSSLESS = frozenset({"fp32", "zlib"})

    #: Device-side encode throughput (bytes of float32 input per second).
    #: Pi-class CPU figures; ``fp32`` is the identity and costs nothing.
    ENCODE_BYTES_PER_S: Dict[str, float] = {
        "fp32": float("inf"), "zlib": 8.0e7, "fp16": 4.0e8, "int8": 3.0e8,
    }

    #: Server-side decode throughput (bytes of float32 output per second).
    DECODE_BYTES_PER_S: Dict[str, float] = {
        "fp32": float("inf"), "zlib": 4.0e8, "fp16": 1.2e9, "int8": 1.0e9,
    }

    def __init__(self, name: str = "fp32") -> None:
        if name not in self.BYTES_PER_ELEMENT:
            raise ValueError(
                f"unknown codec {name!r}; choose from {sorted(self.BYTES_PER_ELEMENT)}"
            )
        self.name = name

    @property
    def bytes_per_element(self) -> float:
        return self.BYTES_PER_ELEMENT[self.name]

    @property
    def lossless(self) -> bool:
        """True when the round trip is bit-exact on float32 input."""
        return self.name in self.LOSSLESS

    @property
    def compression_ratio(self) -> float:
        """Upload-size reduction factor relative to float32 (dense case)."""
        return 4.0 / self.bytes_per_element

    def _bytes_per_element_for(self, producer_op: str | None) -> float:
        if self.name == "zlib" and producer_op is not None:
            key = "relu" if producer_op.startswith("relu") else producer_op
            return self.ZLIB_OP_BYTES_PER_ELEMENT.get(key, self.bytes_per_element)
        return self.bytes_per_element

    def wire_bytes(self, fp32_bytes, producer_op: str | None = None):
        """Declared transmitted size for a tensor of ``fp32_bytes`` raw bytes.

        ``producer_op`` is the op kind of the node that produced the
        tensor (``None`` for unknown); it refines the zlib ratio.
        Accepts a scalar or an ndarray of sizes.
        """
        sizes = np.asarray(fp32_bytes)
        if np.any(sizes < 0):
            raise ValueError("sizes must be non-negative")
        ratio = 4.0 / self._bytes_per_element_for(producer_op)
        wire = np.ceil(sizes / ratio).astype(np.int64)
        return int(wire) if np.isscalar(fp32_bytes) else wire

    # -- time model -----------------------------------------------------------

    def encode_time_s(self, fp32_bytes):
        """Device-side encode time for ``fp32_bytes`` of raw tensor data.

        Scalar in → float out; ndarray in → ndarray out.  ``fp32`` is the
        identity codec and costs exactly 0.0 — required so a degenerate
        streaming config stays byte-identical to the non-streaming path.
        """
        return self._codec_time(fp32_bytes, self.ENCODE_BYTES_PER_S[self.name])

    def decode_time_s(self, fp32_bytes):
        """Server-side decode time for ``fp32_bytes`` of raw tensor data."""
        return self._codec_time(fp32_bytes, self.DECODE_BYTES_PER_S[self.name])

    @staticmethod
    def _codec_time(fp32_bytes, rate: float):
        if np.isscalar(fp32_bytes):
            return 0.0 if rate == float("inf") else fp32_bytes / rate
        sizes = np.asarray(fp32_bytes, dtype=np.float64)
        return np.zeros_like(sizes) if rate == float("inf") else sizes / rate

    # -- numerics -------------------------------------------------------------

    def encode(self, tensor: np.ndarray) -> EncodedTensor:
        arr = np.ascontiguousarray(tensor, dtype=np.float32)
        if self.name == "fp32":
            return EncodedTensor("fp32", arr.shape, arr.tobytes())
        if self.name == "zlib":
            return EncodedTensor(
                "zlib", arr.shape, zlib.compress(_byte_shuffle(arr), _ZLIB_LEVEL))
        if self.name == "fp16":
            return EncodedTensor("fp16", arr.shape, arr.astype(np.float16).tobytes())
        # int8: per-tensor affine quantisation over the observed range.
        lo = float(arr.min()) if arr.size else 0.0
        hi = float(arr.max()) if arr.size else 0.0
        scale = (hi - lo) / 255.0 if hi > lo else 1.0
        quantised = np.clip(np.round((arr - lo) / scale), 0, 255).astype(np.uint8)
        return EncodedTensor("int8", arr.shape, quantised.tobytes(),
                             scale=scale, zero_point=lo)

    def decode(self, encoded: EncodedTensor) -> np.ndarray:
        if encoded.codec != self.name:
            raise ValueError(f"codec mismatch: {encoded.codec!r} vs {self.name!r}")
        if self.name == "fp32":
            return np.frombuffer(encoded.payload, dtype=np.float32).reshape(encoded.shape).copy()
        if self.name == "zlib":
            return _byte_unshuffle(zlib.decompress(encoded.payload), encoded.shape)
        if self.name == "fp16":
            half = np.frombuffer(encoded.payload, dtype=np.float16).reshape(encoded.shape)
            return half.astype(np.float32)
        raw = np.frombuffer(encoded.payload, dtype=np.uint8).reshape(encoded.shape)
        return (raw.astype(np.float32) * encoded.scale + encoded.zero_point)

    def round_trip(self, tensor: np.ndarray) -> np.ndarray:
        return self.decode(self.encode(tensor))

    def max_abs_error(self, tensor: np.ndarray) -> float:
        """Worst-case reconstruction error on one tensor."""
        if tensor.size == 0:
            return 0.0
        return float(np.abs(self.round_trip(tensor)
                            - np.asarray(tensor, dtype=np.float32)).max())

    def error_bound(self, tensor: np.ndarray) -> float:
        """Declared a-priori bound on ``max_abs_error`` for this tensor.

        Lossless codecs bound at exactly 0.0.  ``fp16`` rounds to 11
        significand bits (relative 2^-11 plus the subnormal floor);
        ``int8`` rounds to half a quantisation step.
        """
        if self.lossless:
            return 0.0
        arr = np.asarray(tensor, dtype=np.float32)
        peak = float(np.abs(arr).max()) if arr.size else 0.0
        if self.name == "fp16":
            return peak * 2.0 ** -11 + 2.0 ** -24
        lo = float(arr.min()) if arr.size else 0.0
        hi = float(arr.max()) if arr.size else 0.0
        scale = (hi - lo) / 255.0 if hi > lo else 1.0
        # Half a quantisation step, plus the float32 rounding incurred by
        # the ``raw * scale + lo`` reconstruction (a few ulps at ``peak``).
        return scale / 2.0 + peak * 2.0 ** -21 + 1e-7


def decode_any(encoded: EncodedTensor) -> np.ndarray:
    """Decode with whatever codec the wire header declares."""
    return TensorCodec(encoded.codec).decode(encoded)
