"""Deterministic fault injection for the device-server link and the server.

The paper's premise is that conditions *degrade* — WiFi bandwidth collapses,
the edge GPU saturates — but a production runtime must also survive
conditions that *break*: links that drop packets, access points that go
dark, servers that crash and restart, queues that overflow.  This module
provides the seed-reproducible fault model:

- :class:`FaultPlan` — link faults: hard outage windows, per-transfer drop
  probability, latency spikes.  All randomness comes from the plan's own
  dedicated RNG stream, so a plan with all rates at zero is *byte-identical*
  to no plan at all (it never draws), and two runs with the same seed and
  plan produce identical fault sequences.
- :class:`TransferResult` — what a transfer attempt actually did: whether
  the bytes arrived and how long the sender spent finding out.  A failed
  transfer carries the elapsed time-to-timeout, because the waiting is real
  latency the device experienced (it counts toward observed totals).
- :class:`FaultyChannel` — a :class:`~repro.network.channel.Channel` whose
  :meth:`~repro.network.channel.Channel.try_upload` /
  :meth:`~repro.network.channel.Channel.try_download` consult the plan.
- :class:`ServerFaultPlan` — server faults: crash/restart windows (a
  restart wipes the partition cache and the load-factor window) and
  admission control (a bounded queue that rejects with
  :class:`~repro.runtime.messages.BusyReply` instead of absorbing
  unbounded load).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Tuple

import numpy as np

from repro.network.channel import Channel, NetworkParams, TransferResult
from repro.network.traces import BandwidthTrace


def _validate_windows(windows: Tuple[Tuple[float, float], ...], label: str) -> None:
    prev_end = -math.inf
    for window in windows:
        if len(window) != 2:
            raise ValueError(f"{label} must be (start_s, end_s) pairs, got {window!r}")
        start, end = window
        if not start < end:
            raise ValueError(f"{label} window must have start < end, got {window!r}")
        if start < prev_end:
            raise ValueError(f"{label} windows must be sorted and non-overlapping")
        prev_end = end


def _in_window(windows: Tuple[Tuple[float, float], ...], t: float) -> bool:
    return any(start <= t < end for start, end in windows)


def _derive_seed(seed: int, server_id: int) -> int:
    """Independent RNG seed for server ``server_id`` of a sharded fleet.

    :class:`numpy.random.SeedSequence` keyed by ``(seed, server_id)``
    spawns statistically independent streams per server, and — unlike
    ``seed + server_id`` arithmetic — adding a server to the fleet can
    never collide with (and therefore perturb) another server's stream.
    """
    if server_id < 0:
        raise ValueError("server_id must be non-negative")
    return int(np.random.SeedSequence((seed, server_id)).generate_state(1)[0])


@dataclass(frozen=True)
class FaultPlan:
    """Link-fault schedule: outages, random drops, latency spikes.

    ``outages`` are hard windows during which no transfer can start (the
    access point is dark); ``drop_prob`` drops individual transfers at
    random; ``latency_spike_prob`` adds ``latency_spike_s`` to a transfer
    (a retransmission burst).  Random faults draw from a dedicated
    ``seed``-keyed stream, never from the caller's RNG, so injection is
    deterministic given ``(seed, FaultPlan)`` and a plan with all rates
    zero perturbs nothing.
    """

    outages: Tuple[Tuple[float, float], ...] = ()
    drop_prob: float = 0.0
    latency_spike_prob: float = 0.0
    latency_spike_s: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "outages", tuple(tuple(w) for w in self.outages))
        _validate_windows(self.outages, "outage")
        if not 0.0 <= self.drop_prob <= 1.0:
            raise ValueError("drop_prob must be in [0, 1]")
        if not 0.0 <= self.latency_spike_prob <= 1.0:
            raise ValueError("latency_spike_prob must be in [0, 1]")
        if self.latency_spike_s < 0:
            raise ValueError("latency_spike_s must be non-negative")

    def in_outage(self, t: float) -> bool:
        """True when a transfer starting at ``t`` finds the link dark."""
        return _in_window(self.outages, t)

    @property
    def is_null(self) -> bool:
        """True when the plan can never produce a fault."""
        return not self.outages and self.drop_prob == 0.0 and self.latency_spike_prob == 0.0

    def for_server(self, server_id: int) -> "FaultPlan":
        """The same fault *rates* on server ``server_id``'s own RNG stream.

        Server 0 gets the plan verbatim (identity — a 1-server fleet is
        byte-identical to the direct single-server path); every other
        server draws its drops and spikes from an independent
        ``(seed, server_id)``-keyed stream, so adding or removing a server
        never perturbs a sibling's fault sequence.
        """
        if server_id == 0:
            return self
        return replace(self, seed=_derive_seed(self.seed, server_id))


class FaultyChannel(Channel):
    """A channel that injects the faults of a :class:`FaultPlan`.

    Fault draws come from the plan's own RNG (one draw per configured
    nonzero rate per transfer); the timing noise draw still comes from the
    caller's RNG exactly as in the fault-free channel, so a null plan
    leaves every caller-visible random stream untouched.
    """

    def __init__(self, trace: BandwidthTrace, plan: FaultPlan,
                 params: NetworkParams | None = None) -> None:
        super().__init__(trace, params)
        self.plan = plan
        self._fault_rng = np.random.default_rng(plan.seed)

    def _attempt(self, elapsed_fn, nbytes: int, t: float,
                 timeout_s: float | None) -> TransferResult:
        """Every transfer attempt — monolithic upload/download or one chunk
        of a stream — consults the plan at its own start time, so a
        mid-stream outage faults exactly the chunks inside the window."""
        plan = self.plan
        if plan.in_outage(t):
            return TransferResult.failed(nbytes, timeout_s)
        if plan.drop_prob > 0.0 and self._fault_rng.random() < plan.drop_prob:
            return TransferResult.failed(nbytes, timeout_s)
        elapsed = elapsed_fn()
        if plan.latency_spike_prob > 0.0 and self._fault_rng.random() < plan.latency_spike_prob:
            elapsed += plan.latency_spike_s
        return TransferResult.from_elapsed(nbytes, elapsed, timeout_s)


@dataclass(frozen=True)
class ServerFaultPlan:
    """Server-fault schedule: crash/restart windows and admission control.

    During a ``crash_windows`` interval the server answers nothing (offloads
    and load queries get no reply); the first request after a window ends
    hits a freshly *restarted* server — the partition cache and the
    load-factor window are gone.  ``queue_limit`` bounds how many offloads
    the server accepts per ``admission_window_s`` sliding window (or, under
    dynamic batching, per partition-point queue); excess requests are
    rejected immediately with ``BusyReply(retry_after_s)`` instead of being
    absorbed.
    """

    crash_windows: Tuple[Tuple[float, float], ...] = ()
    queue_limit: int | None = None
    retry_after_s: float = 0.05
    admission_window_s: float = 0.25
    #: Base seed of the chaos stream this plan was generated from (see
    #: :meth:`chaos`); hand-written plans keep the default 0.
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "crash_windows", tuple(tuple(w) for w in self.crash_windows)
        )
        _validate_windows(self.crash_windows, "crash")
        if self.queue_limit is not None and self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1 (or None for unbounded)")
        if self.retry_after_s < 0:
            raise ValueError("retry_after_s must be non-negative")
        if self.admission_window_s <= 0:
            raise ValueError("admission_window_s must be positive")

    def is_down(self, t: float) -> bool:
        return _in_window(self.crash_windows, t)

    def restarts_before(self, t: float) -> int:
        """Number of crash windows fully elapsed by ``t`` (restart count)."""
        return sum(1 for _start, end in self.crash_windows if end <= t)

    @classmethod
    def chaos(
        cls,
        seed: int,
        server_id: int,
        horizon_s: float,
        crashes: int = 1,
        mean_downtime_s: float = 2.0,
        queue_limit: int | None = None,
        retry_after_s: float = 0.05,
        admission_window_s: float = 0.25,
    ) -> "ServerFaultPlan":
        """Generate ``crashes`` crash/restart windows for one fleet server.

        The windows draw from a ``(seed, server_id)``-keyed
        :class:`numpy.random.SeedSequence` stream, so a multi-server chaos
        run is deterministic per server and growing the fleet never
        changes an existing server's crash schedule.  Crash starts are
        uniform over ``[0, horizon_s)``; downtimes are exponential around
        ``mean_downtime_s``, clipped to end inside the horizon (every
        crash is followed by a restart the run can observe).
        """
        if horizon_s <= 0:
            raise ValueError("horizon_s must be positive")
        if crashes < 0:
            raise ValueError("crashes must be non-negative")
        if mean_downtime_s <= 0:
            raise ValueError("mean_downtime_s must be positive")
        rng = np.random.default_rng(_derive_seed(seed, server_id))
        windows = []
        for start in sorted(rng.uniform(0.0, horizon_s, size=crashes)):
            down = float(rng.exponential(mean_downtime_s))
            end = min(start + max(down, 1e-3), horizon_s * (1 - 1e-6))
            if windows and start <= windows[-1][1]:
                start = windows[-1][1] + 1e-3  # keep windows disjoint
                if start >= end:
                    continue
            windows.append((float(start), float(end)))
        return cls(
            crash_windows=tuple(windows),
            queue_limit=queue_limit,
            retry_after_s=retry_after_s,
            admission_window_s=admission_window_s,
            seed=seed,
        )
