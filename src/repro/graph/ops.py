"""Operator registry: shape inference, FLOPs (Table I) and parameter rules.

Every operator the model zoo uses is described by an :class:`OpSpec` in
:data:`OP_REGISTRY`.  An OpSpec knows

- how to infer the output :class:`~repro.graph.node.TensorSpec` from the
  input specs and the node attributes,
- which :class:`~repro.graph.node.Parameter` tensors the op carries,
- its FLOPs, following Table I of the paper exactly, and
- its *category*: the prediction-model kind (``conv``, ``dwconv``,
  ``matmul``, ``pooling``, ``bias_add``, ``elementwise``, ``batchnorm``,
  ``activation``) or ``None`` for ops without a prediction model — the paper
  assigns those zero predicted time (§IV).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.graph.node import Parameter, TensorSpec

# The 8 prediction-model categories of Tables I-III.
CATEGORIES = (
    "conv",
    "dwconv",
    "matmul",
    "pooling",
    "bias_add",
    "elementwise",
    "batchnorm",
    "activation",
)

# Categories for fused kernels (the paper's §VI extension): one per anchor
# kind.  Optional — the paper-faithful pipeline uses only CATEGORIES.
FUSED_CATEGORIES = (
    "conv_fused",
    "dwconv_fused",
    "matmul_fused",
)

#: Maps a fused category back to its anchor category (used for features).
FUSED_ANCHOR_CATEGORY = {
    "conv_fused": "conv",
    "dwconv_fused": "dwconv",
    "matmul_fused": "matmul",
}


def _pair(value: Any, name: str) -> Tuple[int, int]:
    """Normalise an int-or-pair attribute to an ``(h, w)`` tuple."""
    if isinstance(value, int):
        if value < 0:
            raise ValueError(f"{name} must be non-negative, got {value}")
        return (value, value)
    pair = tuple(int(v) for v in value)
    if len(pair) != 2 or any(v < 0 for v in pair):
        raise ValueError(f"{name} must be an int or a pair of ints, got {value!r}")
    return pair  # type: ignore[return-value]


def _require_rank(spec: TensorSpec, rank: int, op: str) -> None:
    if spec.rank != rank:
        raise ValueError(f"{op} expects a rank-{rank} input, got {spec}")


def _conv_out_hw(
    h: int, w: int, kernel: Tuple[int, int], stride: Tuple[int, int], padding: Tuple[int, int]
) -> Tuple[int, int]:
    h_out = (h + 2 * padding[0] - kernel[0]) // stride[0] + 1
    w_out = (w + 2 * padding[1] - kernel[1]) // stride[1] + 1
    if h_out <= 0 or w_out <= 0:
        raise ValueError(
            f"spatial dims collapse to {h_out}x{w_out} "
            f"(in={h}x{w}, k={kernel}, s={stride}, p={padding})"
        )
    return h_out, w_out


ShapeFn = Callable[[Sequence[TensorSpec], Dict[str, Any]], TensorSpec]
ParamsFn = Callable[[str, Sequence[TensorSpec], Dict[str, Any]], List[Parameter]]
FlopsFn = Callable[[Sequence[TensorSpec], TensorSpec, Dict[str, Any]], int]


@dataclass(frozen=True)
class OpSpec:
    """Static description of an operator kind."""

    name: str
    category: str | None
    min_inputs: int
    max_inputs: int  # -1 means unbounded (concat, make_tuple)
    infer_shape: ShapeFn
    flops: FlopsFn
    make_params: ParamsFn | None = None

    def check_arity(self, n_inputs: int) -> None:
        if n_inputs < self.min_inputs:
            raise ValueError(f"{self.name} needs >= {self.min_inputs} inputs, got {n_inputs}")
        if self.max_inputs >= 0 and n_inputs > self.max_inputs:
            raise ValueError(f"{self.name} takes <= {self.max_inputs} inputs, got {n_inputs}")


# ---------------------------------------------------------------------------
# Shape inference
# ---------------------------------------------------------------------------


def _conv2d_shape(inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> TensorSpec:
    spec = inputs[0]
    _require_rank(spec, 4, "conv2d")
    n, _c, h, w = spec.shape
    kernel = _pair(attrs["kernel"], "kernel")
    stride = _pair(attrs.get("stride", 1), "stride")
    padding = _pair(attrs.get("padding", 0), "padding")
    h_out, w_out = _conv_out_hw(h, w, kernel, stride, padding)
    return TensorSpec((n, int(attrs["out_channels"]), h_out, w_out), spec.dtype)


def _dwconv2d_shape(inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> TensorSpec:
    spec = inputs[0]
    _require_rank(spec, 4, "dwconv2d")
    n, c, h, w = spec.shape
    kernel = _pair(attrs["kernel"], "kernel")
    stride = _pair(attrs.get("stride", 1), "stride")
    padding = _pair(attrs.get("padding", 0), "padding")
    mult = int(attrs.get("channel_multiplier", 1))
    h_out, w_out = _conv_out_hw(h, w, kernel, stride, padding)
    return TensorSpec((n, c * mult, h_out, w_out), spec.dtype)


def _matmul_shape(inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> TensorSpec:
    spec = inputs[0]
    _require_rank(spec, 2, "matmul")
    n, _c_in = spec.shape
    return TensorSpec((n, int(attrs["out_features"])), spec.dtype)


def _pool2d_shape(inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> TensorSpec:
    spec = inputs[0]
    _require_rank(spec, 4, "pooling")
    n, c, h, w = spec.shape
    kernel = _pair(attrs["kernel"], "kernel")
    stride = _pair(attrs.get("stride", kernel), "stride")
    padding = _pair(attrs.get("padding", 0), "padding")
    h_out, w_out = _conv_out_hw(h, w, kernel, stride, padding)
    return TensorSpec((n, c, h_out, w_out), spec.dtype)


def _global_avgpool_shape(inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> TensorSpec:
    spec = inputs[0]
    _require_rank(spec, 4, "global_avgpool")
    n, c, _h, _w = spec.shape
    return TensorSpec((n, c, 1, 1), spec.dtype)


def _same_shape(inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> TensorSpec:
    return inputs[0]


def _binary_shape(inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> TensorSpec:
    a, b = inputs[0], inputs[1]
    if a.shape != b.shape:
        raise ValueError(f"element-wise op on mismatched shapes {a.shape} vs {b.shape}")
    return a


def _concat_shape(inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> TensorSpec:
    axis = int(attrs.get("axis", 1))
    base = inputs[0].shape
    axis = axis % len(base)
    total = 0
    for spec in inputs:
        shape = spec.shape
        if len(shape) != len(base):
            raise ValueError("concat inputs must share rank")
        for i, (da, db) in enumerate(zip(base, shape)):
            if i != axis and da != db:
                raise ValueError(f"concat mismatch on axis {i}: {base} vs {shape}")
        total += shape[axis]
    out = list(base)
    out[axis] = total
    return TensorSpec(tuple(out), inputs[0].dtype)


def _flatten_shape(inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> TensorSpec:
    spec = inputs[0]
    n = spec.shape[0]
    rest = spec.numel // n
    return TensorSpec((n, rest), spec.dtype)


def _make_tuple_shape(inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> TensorSpec:
    # A tuple is summarised as a flat spec carrying the combined payload; the
    # executor special-cases the actual tuple-of-arrays value.
    total = sum(spec.numel for spec in inputs)
    return TensorSpec((total,), inputs[0].dtype)


# ---------------------------------------------------------------------------
# Parameters
# ---------------------------------------------------------------------------


def _conv2d_params(name: str, inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> List[Parameter]:
    c_in = inputs[0].shape[1]
    kernel = _pair(attrs["kernel"], "kernel")
    c_out = int(attrs["out_channels"])
    spec = TensorSpec((c_out, c_in, kernel[0], kernel[1]))
    return [Parameter(f"{name}.weight", spec, role="weight")]


def _dwconv2d_params(name: str, inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> List[Parameter]:
    c_in = inputs[0].shape[1]
    kernel = _pair(attrs["kernel"], "kernel")
    mult = int(attrs.get("channel_multiplier", 1))
    spec = TensorSpec((c_in * mult, 1, kernel[0], kernel[1]))
    return [Parameter(f"{name}.weight", spec, role="weight")]


def _matmul_params(name: str, inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> List[Parameter]:
    c_in = inputs[0].shape[1]
    c_out = int(attrs["out_features"])
    return [Parameter(f"{name}.weight", TensorSpec((c_in, c_out)), role="weight")]


def _bias_add_params(name: str, inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> List[Parameter]:
    channels = inputs[0].shape[1]
    return [Parameter(f"{name}.bias", TensorSpec((channels,)), role="bias")]


def _batchnorm_params(name: str, inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> List[Parameter]:
    channels = inputs[0].shape[1]
    return [
        Parameter(f"{name}.gamma", TensorSpec((channels,)), role="gamma"),
        Parameter(f"{name}.beta", TensorSpec((channels,)), role="beta"),
        Parameter(f"{name}.mean", TensorSpec((channels,)), role="mean"),
        Parameter(f"{name}.var", TensorSpec((channels,)), role="var"),
    ]


# ---------------------------------------------------------------------------
# FLOPs (Table I)
# ---------------------------------------------------------------------------


def _conv2d_flops(inputs: Sequence[TensorSpec], out: TensorSpec, attrs: Dict[str, Any]) -> int:
    n, c_in = inputs[0].shape[0], inputs[0].shape[1]
    _n, c_out, h_out, w_out = out.shape
    kh, kw = _pair(attrs["kernel"], "kernel")
    return n * c_in * h_out * w_out * kh * kw * c_out


def _dwconv2d_flops(inputs: Sequence[TensorSpec], out: TensorSpec, attrs: Dict[str, Any]) -> int:
    n, c_in = inputs[0].shape[0], inputs[0].shape[1]
    _n, _c, h_out, w_out = out.shape
    kh, kw = _pair(attrs["kernel"], "kernel")
    return n * c_in * h_out * w_out * kh * kw


def _matmul_flops(inputs: Sequence[TensorSpec], out: TensorSpec, attrs: Dict[str, Any]) -> int:
    n, c_in = inputs[0].shape
    c_out = out.shape[1]
    return n * c_in * c_out


def _pool_flops(inputs: Sequence[TensorSpec], out: TensorSpec, attrs: Dict[str, Any]) -> int:
    n, c_out, h_out, w_out = out.shape
    kh, kw = _pair(attrs["kernel"], "kernel")
    return n * c_out * h_out * w_out * kh * kw


def _global_pool_flops(inputs: Sequence[TensorSpec], out: TensorSpec, attrs: Dict[str, Any]) -> int:
    n, c, h, w = inputs[0].shape
    return n * c * h * w


def _elementwise_flops(inputs: Sequence[TensorSpec], out: TensorSpec, attrs: Dict[str, Any]) -> int:
    return inputs[0].numel


def _zero_flops(inputs: Sequence[TensorSpec], out: TensorSpec, attrs: Dict[str, Any]) -> int:
    return 0


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

OP_REGISTRY: Dict[str, OpSpec] = {}


def _register(spec: OpSpec) -> None:
    if spec.name in OP_REGISTRY:
        raise ValueError(f"duplicate op {spec.name!r}")
    OP_REGISTRY[spec.name] = spec


_register(OpSpec("conv2d", "conv", 1, 1, _conv2d_shape, _conv2d_flops, _conv2d_params))
_register(OpSpec("dwconv2d", "dwconv", 1, 1, _dwconv2d_shape, _dwconv2d_flops, _dwconv2d_params))
_register(OpSpec("matmul", "matmul", 1, 1, _matmul_shape, _matmul_flops, _matmul_params))
_register(OpSpec("maxpool2d", "pooling", 1, 1, _pool2d_shape, _pool_flops))
_register(OpSpec("avgpool2d", "pooling", 1, 1, _pool2d_shape, _pool_flops))
_register(OpSpec("global_avgpool", "pooling", 1, 1, _global_avgpool_shape, _global_pool_flops))
_register(OpSpec("bias_add", "bias_add", 1, 1, _same_shape, _elementwise_flops, _bias_add_params))
_register(OpSpec("add", "elementwise", 2, 2, _binary_shape, _elementwise_flops))
_register(OpSpec("mul", "elementwise", 2, 2, _binary_shape, _elementwise_flops))
_register(OpSpec("lrn", "elementwise", 1, 1, _same_shape, _elementwise_flops))
_register(OpSpec("batchnorm", "batchnorm", 1, 1, _same_shape, _elementwise_flops, _batchnorm_params))
_register(OpSpec("relu", "activation", 1, 1, _same_shape, _elementwise_flops))
_register(OpSpec("sigmoid", "activation", 1, 1, _same_shape, _elementwise_flops))
_register(OpSpec("tanh", "activation", 1, 1, _same_shape, _elementwise_flops))
_register(OpSpec("softmax", "activation", 1, 1, _same_shape, _elementwise_flops))
# Fused kernels (§VI extension): an anchor plus an element-wise epilogue.
# The ``epilogue`` attr is a tuple of absorbed op names; shape inference is
# the anchor's (epilogues preserve shape), FLOPs are the exact sum of the
# unfused parts, and parameters concatenate anchor + epilogue parameters.


def _epilogue_ops(attrs: Dict[str, Any]) -> Tuple[str, ...]:
    return tuple(attrs.get("epilogue", ()))


def _fused_flops(anchor_flops: FlopsFn) -> FlopsFn:
    def flops(inputs: Sequence[TensorSpec], out: TensorSpec, attrs: Dict[str, Any]) -> int:
        return anchor_flops(inputs, out, attrs) + len(_epilogue_ops(attrs)) * out.numel
    return flops


def _make_fused_params(anchor_op: str) -> ParamsFn:
    anchor_spec_params = OP_REGISTRY[anchor_op].make_params
    anchor_shape = OP_REGISTRY[anchor_op].infer_shape

    def make(name: str, inputs: Sequence[TensorSpec], attrs: Dict[str, Any]) -> List[Parameter]:
        assert anchor_spec_params is not None
        params = list(anchor_spec_params(name, inputs, attrs))
        out = anchor_shape(inputs, attrs)
        for i, op in enumerate(_epilogue_ops(attrs)):
            spec = OP_REGISTRY[op]
            if spec.make_params is not None:
                params.extend(spec.make_params(f"{name}.ep{i}", [out], {}))
        return params

    return make


_register(OpSpec("fused_conv2d", "conv_fused", 1, 1, _conv2d_shape,
                 _fused_flops(_conv2d_flops), _make_fused_params("conv2d")))
_register(OpSpec("fused_dwconv2d", "dwconv_fused", 1, 1, _dwconv2d_shape,
                 _fused_flops(_dwconv2d_flops), _make_fused_params("dwconv2d")))
_register(OpSpec("fused_matmul", "matmul_fused", 1, 1, _matmul_shape,
                 _fused_flops(_matmul_flops), _make_fused_params("matmul")))

# Ops without a prediction model (paper §IV assigns them zero predicted time).
_register(OpSpec("concat", None, 2, -1, _concat_shape, _zero_flops))
_register(OpSpec("flatten", None, 1, 1, _flatten_shape, _zero_flops))
_register(OpSpec("dropout", None, 1, 1, _same_shape, _zero_flops))
_register(OpSpec("make_tuple", None, 1, -1, _make_tuple_shape, _zero_flops))
_register(OpSpec("return", None, 1, 1, _same_shape, _zero_flops))


def op_spec(op: str) -> OpSpec:
    """Look up an operator, with a helpful error on unknown names."""
    try:
        return OP_REGISTRY[op]
    except KeyError:
        raise KeyError(f"unknown op {op!r}; known ops: {sorted(OP_REGISTRY)}") from None


def node_flops(op: str, inputs: Sequence[TensorSpec], out: TensorSpec, attrs: Dict[str, Any]) -> int:
    """FLOPs of one node per Table I of the paper."""
    return op_spec(op).flops(inputs, out, attrs)
