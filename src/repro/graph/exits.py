"""Early-exit branches: BranchyNet-style side heads on a backbone graph.

An *exit* is a small classifier head (conv + pool + fc) hanging off an
intermediate backbone node.  A request served at exit ``e`` executes only
the backbone prefix that exit depends on plus its head — cheaper and less
accurate than the full network.  Each exit declares an **accuracy proxy**
(a scalar in ``(0, 1]``, e.g. held-out top-1): the engine maximises this
proxy subject to a latency SLA (see
:meth:`repro.core.engine.LoADPartEngine.decide_exit`).

Representation: every exit is its *own* :class:`ComputationGraph` — the
ancestor closure of the attach node (re-added in backbone topological
order, preserving node names) plus the head nodes.  Because executor
parameters are seeded per *name* (``nn.executor._param_rng``), the shared
backbone nodes carry bit-identical weights in every exit graph, and the
final exit — the backbone itself, unchanged — is byte-identical to the
plain model by construction.  Each exit graph is a valid partitionable
graph, so Algorithm 1's prefix/suffix machinery applies per exit without
modification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.graph.graph import ComputationGraph, GraphError
from repro.graph.node import CNode


@dataclass(frozen=True)
class ExitSpec:
    """Declaration of one early exit on a backbone.

    ``attach`` names the backbone node the head hangs off; ``accuracy``
    is the exit's declared accuracy proxy; ``head_channels`` sizes the
    head's 1x1 conv (clamped to the attach tensor's channel count).
    """

    attach: str
    accuracy: float
    head_channels: int = 32

    def __post_init__(self) -> None:
        if not 0.0 < self.accuracy <= 1.0:
            raise ValueError(f"accuracy proxy must be in (0, 1], got {self.accuracy}")
        if self.head_channels < 1:
            raise ValueError("head_channels must be positive")


@dataclass(frozen=True)
class ExitBranch:
    """One realised exit: a standalone graph plus its metadata.

    ``index`` orders exits from earliest (0) to the final exit
    (``num_exits - 1``); the final branch's ``graph`` *is* the backbone
    object and its ``attach`` is ``None``.  ``accuracy`` values are
    nondecreasing in ``index`` — a later exit never loses accuracy.
    """

    index: int
    name: str
    attach: str | None
    accuracy: float
    graph: ComputationGraph

    @property
    def is_final(self) -> bool:
        return self.attach is None


def _ancestor_closure(backbone: ComputationGraph, attach: str) -> set:
    """All backbone nodes the ``attach`` node transitively depends on."""
    if attach not in backbone.nodes:
        raise GraphError(f"exit attach node {attach!r} not in {backbone.name!r}")
    keep = {attach}
    stack = [attach]
    while stack:
        for dep in backbone.node(stack.pop()).inputs:
            if dep != backbone.input_name and dep not in keep:
                keep.add(dep)
                stack.append(dep)
    return keep


def _clone_node(node: CNode) -> CNode:
    return CNode(name=node.name, op=node.op, inputs=list(node.inputs),
                 attrs=dict(node.attrs))


def build_exit_graph(
    backbone: ComputationGraph,
    spec: ExitSpec,
    name: str,
    num_classes: int,
) -> ComputationGraph:
    """Standalone graph for one exit: backbone prefix + classifier head.

    The kept backbone nodes are exactly the attach node's ancestor
    closure, re-added in backbone topological order under their original
    names (so per-name parameter seeding regenerates identical weights).
    The head is conv1x1+bias+relu → global_avgpool → flatten → fc when
    the attach tensor is 4-D, and just the fc when it is already flat.
    """
    keep = _ancestor_closure(backbone, spec.attach)
    g = ComputationGraph(f"{backbone.name}:{name}", backbone.input_spec,
                         backbone.input_name)
    for node_name in backbone.topological_order():
        if node_name in keep:
            g.add_node(_clone_node(backbone.node(node_name)))

    x = spec.attach
    attach_spec = backbone.node(spec.attach).output
    if len(attach_spec.shape) == 4:
        channels = min(spec.head_channels, attach_spec.shape[1])
        g.add_node(CNode(name=f"{name}.conv", op="conv2d", inputs=[x],
                         attrs={"out_channels": channels, "kernel": 1,
                                "stride": 1, "padding": 0}))
        g.add_node(CNode(name=f"{name}.bias", op="bias_add",
                         inputs=[f"{name}.conv"], attrs={}))
        g.add_node(CNode(name=f"{name}.relu", op="relu",
                         inputs=[f"{name}.bias"], attrs={}))
        g.add_node(CNode(name=f"{name}.pool", op="global_avgpool",
                         inputs=[f"{name}.relu"], attrs={}))
        g.add_node(CNode(name=f"{name}.flat", op="flatten",
                         inputs=[f"{name}.pool"], attrs={}))
        x = f"{name}.flat"
    g.add_node(CNode(name=f"{name}.fc", op="matmul", inputs=[x],
                     attrs={"out_features": num_classes}))
    g.add_node(CNode(name=f"{name}.fcbias", op="bias_add",
                     inputs=[f"{name}.fc"], attrs={}))
    g.set_output(f"{name}.fcbias")
    g.validate()
    return g


def build_exit_branches(
    backbone: ComputationGraph,
    specs: Sequence[ExitSpec],
    final_accuracy: float,
    num_classes: int = 1000,
) -> Tuple[ExitBranch, ...]:
    """Realise a backbone's exit set as standalone branch graphs.

    Returns one :class:`ExitBranch` per spec — ordered by backbone
    position of the attach node — plus the final branch, whose graph is
    the backbone object itself.  Accuracies must be nondecreasing from
    earliest exit to the final one.
    """
    if not 0.0 < final_accuracy <= 1.0:
        raise ValueError(f"final accuracy proxy must be in (0, 1], got {final_accuracy}")
    order = {n: i for i, n in enumerate(backbone.topological_order())}
    for spec in specs:
        if spec.attach not in order:
            raise GraphError(
                f"exit attach node {spec.attach!r} not in {backbone.name!r}")
    ranked = sorted(specs, key=lambda s: order[s.attach])
    if len({s.attach for s in ranked}) != len(ranked):
        raise ValueError("duplicate exit attach nodes")
    branches = []
    for i, spec in enumerate(ranked):
        name = f"exit{i}"
        branches.append(ExitBranch(
            index=i, name=name, attach=spec.attach, accuracy=spec.accuracy,
            graph=build_exit_graph(backbone, spec, name, num_classes)))
    branches.append(ExitBranch(
        index=len(ranked), name="final", attach=None,
        accuracy=final_accuracy, graph=backbone))
    accs = [b.accuracy for b in branches]
    if any(a > b for a, b in zip(accs, accs[1:])):
        raise ValueError(
            f"exit accuracies must be nondecreasing backbone-order, got {accs}")
    return tuple(branches)


def validate_exits(graph: ComputationGraph,
                   exits: Sequence[ExitBranch]) -> Tuple[ExitBranch, ...]:
    """Check an exit set against the backbone it claims to extend.

    Used by the engine: indices must run 0..m-1, the final branch must be
    the backbone graph itself (that is what makes the final-exit path
    byte-identical to the plain model), every branch must share the
    backbone's input, and accuracies must be nondecreasing.
    """
    exits = tuple(exits)
    if not exits:
        return exits
    if [b.index for b in exits] != list(range(len(exits))):
        raise ValueError("exit indices must run 0..m-1 in order")
    last = exits[-1]
    if last.graph is not graph or not last.is_final:
        raise ValueError("the last exit branch must be the backbone itself")
    for b in exits[:-1]:
        if b.is_final:
            raise ValueError("only the last branch may be the final exit")
        if b.graph.input_spec != graph.input_spec or \
                b.graph.input_name != graph.input_name:
            raise ValueError(f"exit {b.name!r} does not share the backbone input")
        if b.attach not in graph.nodes:
            raise ValueError(f"exit {b.name!r} attach {b.attach!r} not in backbone")
    accs = [b.accuracy for b in exits]
    if any(a > b for a, b in zip(accs, accs[1:])):
        raise ValueError(f"exit accuracies must be nondecreasing, got {accs}")
    return exits
