"""Node types of the computation-graph IR.

The IR mirrors MindSpore's MindIR taxonomy used by the paper:

- ``CNode`` — a computation node (one operator application).
- ``Parameter`` — a weight/bias node.  The *backbone DAG* the partition
  algorithm works on is the graph formed by the CNodes only (paper §III-D);
  Parameters are restored when a segment is materialised into a subgraph.
- ``TensorSpec`` — static shape/dtype metadata; transmission sizes are
  computed from it (float32, so 4 bytes per element).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

DTYPE_SIZES = {"float32": 4, "float16": 2, "int8": 1, "int32": 4}


@dataclass(frozen=True)
class TensorSpec:
    """Static description of a tensor: shape and dtype.

    Shapes follow the NCHW convention for 4-D feature maps and ``(N, C)``
    for 2-D activations.
    """

    shape: Tuple[int, ...]
    dtype: str = "float32"

    def __post_init__(self) -> None:
        if not self.shape:
            raise ValueError("TensorSpec shape must be non-empty")
        if any((not isinstance(d, int)) or d <= 0 for d in self.shape):
            raise ValueError(f"TensorSpec shape must be positive ints, got {self.shape}")
        if self.dtype not in DTYPE_SIZES:
            raise ValueError(f"unsupported dtype {self.dtype!r}")

    @property
    def numel(self) -> int:
        """Number of elements in the tensor."""
        n = 1
        for d in self.shape:
            n *= d
        return n

    @property
    def nbytes(self) -> int:
        """Size of the tensor in bytes."""
        return self.numel * DTYPE_SIZES[self.dtype]

    @property
    def rank(self) -> int:
        return len(self.shape)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.dtype}{list(self.shape)}"


@dataclass(frozen=True)
class Parameter:
    """A weight node (e.g. a convolution filter or a bias vector).

    Parameters hang off CNodes; they are not part of the backbone DAG.
    ``role`` records the operand slot ("weight", "bias", "gamma", ...).
    """

    name: str
    spec: TensorSpec
    role: str = "weight"

    @property
    def nbytes(self) -> int:
        return self.spec.nbytes


@dataclass
class CNode:
    """A computation node: one application of an operator.

    Attributes
    ----------
    name:
        Unique identifier within the graph.
    op:
        Operator name; must exist in :data:`repro.graph.ops.OP_REGISTRY`.
    inputs:
        Names of the producer CNodes (or the graph input placeholder).
        Order matters for non-commutative ops.
    attrs:
        Operator attributes (kernel size, stride, padding, ...).
    output:
        Inferred output :class:`TensorSpec`.
    params:
        Parameters attached to this node, in operand order.
    """

    name: str
    op: str
    inputs: List[str]
    attrs: Dict[str, Any] = field(default_factory=dict)
    output: TensorSpec | None = None
    params: List[Parameter] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("CNode name must be non-empty")
        if len(set(self.inputs)) != len(self.inputs) and self.op not in ("add", "mul", "matmul"):
            # Duplicated inputs are legal only for ops that may square a value.
            raise ValueError(f"node {self.name!r} has duplicate inputs {self.inputs}")

    @property
    def param_bytes(self) -> int:
        """Total size of the attached parameters in bytes."""
        return sum(p.nbytes for p in self.params)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        out = str(self.output) if self.output is not None else "?"
        return f"CNode({self.name!r}, op={self.op!r}, inputs={self.inputs}, out={out})"
