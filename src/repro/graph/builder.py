"""Fluent graph builder used by the model zoo.

Each builder method appends one CNode and returns its name, so networks read
top-to-bottom::

    b = GraphBuilder("alexnet", (1, 3, 224, 224))
    x = b.conv(b.input, 64, kernel=11, stride=4, padding=2)
    x = b.bias_add(x)
    x = b.relu(x)
    ...
    b.output(x)
    graph = b.build()
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Dict, Sequence, Tuple

from repro.graph.graph import ComputationGraph
from repro.graph.node import CNode, TensorSpec


class GraphBuilder:
    """Incrementally builds a validated :class:`ComputationGraph`."""

    def __init__(self, name: str, input_shape: Tuple[int, ...], dtype: str = "float32") -> None:
        self._graph = ComputationGraph(name, TensorSpec(tuple(input_shape), dtype))
        self._counts: Counter[str] = Counter()
        self._output_set = False

    @property
    def input(self) -> str:
        """Name of the graph input placeholder."""
        return self._graph.input_name

    @property
    def graph(self) -> ComputationGraph:
        return self._graph

    def _autoname(self, op: str, name: str | None) -> str:
        if name is not None:
            return name
        self._counts[op] += 1
        return f"{op}_{self._counts[op]}"

    def node(self, op: str, inputs: Sequence[str], name: str | None = None, **attrs: Any) -> str:
        """Append a node of arbitrary ``op``; returns the node name."""
        cnode = CNode(name=self._autoname(op, name), op=op, inputs=list(inputs), attrs=dict(attrs))
        self._graph.add_node(cnode)
        return cnode.name

    # -- convolution stacks -------------------------------------------------

    def conv(self, x: str, out_channels: int, kernel: int | Tuple[int, int],
             stride: int | Tuple[int, int] = 1, padding: int | Tuple[int, int] = 0,
             name: str | None = None) -> str:
        return self.node("conv2d", [x], name=name, out_channels=out_channels,
                         kernel=kernel, stride=stride, padding=padding)

    def dwconv(self, x: str, kernel: int | Tuple[int, int],
               stride: int | Tuple[int, int] = 1, padding: int | Tuple[int, int] = 0,
               channel_multiplier: int = 1, name: str | None = None) -> str:
        return self.node("dwconv2d", [x], name=name, kernel=kernel, stride=stride,
                         padding=padding, channel_multiplier=channel_multiplier)

    def matmul(self, x: str, out_features: int, name: str | None = None) -> str:
        return self.node("matmul", [x], name=name, out_features=out_features)

    def bias_add(self, x: str, name: str | None = None) -> str:
        return self.node("bias_add", [x], name=name)

    # -- pooling -------------------------------------------------------------

    def maxpool(self, x: str, kernel: int | Tuple[int, int],
                stride: int | Tuple[int, int] | None = None,
                padding: int | Tuple[int, int] = 0, name: str | None = None) -> str:
        attrs: Dict[str, Any] = {"kernel": kernel, "padding": padding}
        if stride is not None:
            attrs["stride"] = stride
        return self.node("maxpool2d", [x], name=name, **attrs)

    def avgpool(self, x: str, kernel: int | Tuple[int, int],
                stride: int | Tuple[int, int] | None = None,
                padding: int | Tuple[int, int] = 0, name: str | None = None) -> str:
        attrs: Dict[str, Any] = {"kernel": kernel, "padding": padding}
        if stride is not None:
            attrs["stride"] = stride
        return self.node("avgpool2d", [x], name=name, **attrs)

    def global_avgpool(self, x: str, name: str | None = None) -> str:
        return self.node("global_avgpool", [x], name=name)

    # -- element-wise ---------------------------------------------------------

    def add(self, a: str, b: str, name: str | None = None) -> str:
        return self.node("add", [a, b], name=name)

    def mul(self, a: str, b: str, name: str | None = None) -> str:
        return self.node("mul", [a, b], name=name)

    def batchnorm(self, x: str, name: str | None = None) -> str:
        return self.node("batchnorm", [x], name=name)

    def relu(self, x: str, name: str | None = None) -> str:
        return self.node("relu", [x], name=name)

    def sigmoid(self, x: str, name: str | None = None) -> str:
        return self.node("sigmoid", [x], name=name)

    def tanh(self, x: str, name: str | None = None) -> str:
        return self.node("tanh", [x], name=name)

    def softmax(self, x: str, name: str | None = None) -> str:
        return self.node("softmax", [x], name=name)

    def lrn(self, x: str, size: int = 5, alpha: float = 1e-4, beta: float = 0.75,
            k: float = 2.0, name: str | None = None) -> str:
        return self.node("lrn", [x], name=name, size=size, alpha=alpha, beta=beta, k=k)

    # -- structure ------------------------------------------------------------

    def concat(self, inputs: Sequence[str], axis: int = 1, name: str | None = None) -> str:
        return self.node("concat", list(inputs), name=name, axis=axis)

    def flatten(self, x: str, name: str | None = None) -> str:
        return self.node("flatten", [x], name=name)

    def dropout(self, x: str, rate: float = 0.5, name: str | None = None) -> str:
        return self.node("dropout", [x], name=name, rate=rate)

    # -- composites -----------------------------------------------------------

    def conv_block(self, x: str, out_channels: int, kernel: int | Tuple[int, int],
                   stride: int | Tuple[int, int] = 1, padding: int | Tuple[int, int] = 0,
                   prefix: str | None = None, bn: bool = False, act: str = "relu") -> str:
        """Conv (+ BiasAdd or BatchNorm) + activation, the standard stack."""
        names = {}
        if prefix is not None:
            names = {"conv": f"{prefix}.conv", "post": f"{prefix}.post", "act": f"{prefix}.{act}"}
        x = self.conv(x, out_channels, kernel, stride, padding, name=names.get("conv"))
        if bn:
            x = self.batchnorm(x, name=names.get("post"))
        else:
            x = self.bias_add(x, name=names.get("post"))
        if act:
            x = self.node(act, [x], name=names.get("act"))
        return x

    def dense_block(self, x: str, out_features: int, act: str | None = "relu",
                    prefix: str | None = None) -> str:
        """MatMul + BiasAdd (+ activation): one fully-connected layer."""
        names = {}
        if prefix is not None:
            names = {"fc": f"{prefix}.fc", "bias": f"{prefix}.bias", "act": f"{prefix}.{act}"}
        x = self.matmul(x, out_features, name=names.get("fc"))
        x = self.bias_add(x, name=names.get("bias"))
        if act:
            x = self.node(act, [x], name=names.get("act"))
        return x

    # -- finalisation -----------------------------------------------------------

    def output(self, x: str) -> None:
        self._graph.set_output(x)
        self._output_set = True

    def build(self) -> ComputationGraph:
        """Validate and return the graph."""
        if not self._output_set:
            raise ValueError(f"graph {self._graph.name!r}: call output() before build()")
        self._graph.validate()
        return self._graph
