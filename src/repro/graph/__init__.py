"""Computation-graph IR: the MindIR-equivalent substrate.

This package provides the graph representation that LoADPart partitions:

- :mod:`repro.graph.node` — ``TensorSpec``, ``CNode`` (computation node) and
  ``Parameter`` (weight node), mirroring MindSpore's MindIR taxonomy.
- :mod:`repro.graph.ops` — the op registry with shape inference, FLOPs
  (Table I of the paper) and parameter-shape rules for every supported op.
- :mod:`repro.graph.graph` — ``ComputationGraph`` with a deterministic
  topological order and cut/transmission-size analysis.
- :mod:`repro.graph.builder` — a fluent ``GraphBuilder`` used by the model zoo.
- :mod:`repro.graph.partitioner` — the segment-to-subgraph procedure of the
  paper's Fig. 5 (Parameter generation, MakeTuple/Return synthesis).
- :mod:`repro.graph.serialize` — JSON round-tripping of graphs.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.fusion import detect_fusion_groups, fuse_graph, fusion_summary
from repro.graph.graph import ComputationGraph, Cut
from repro.graph.node import CNode, Parameter, TensorSpec
from repro.graph.ops import OP_REGISTRY, OpSpec, node_flops
from repro.graph.partitioner import GraphPartitioner, PartitionedGraph, Segment
from repro.graph.serialize import graph_from_json, graph_to_json

__all__ = [
    "CNode",
    "ComputationGraph",
    "Cut",
    "GraphBuilder",
    "GraphPartitioner",
    "OP_REGISTRY",
    "OpSpec",
    "Parameter",
    "PartitionedGraph",
    "Segment",
    "TensorSpec",
    "detect_fusion_groups",
    "fuse_graph",
    "fusion_summary",
    "graph_from_json",
    "graph_to_json",
    "node_flops",
]
