"""Segment-to-subgraph partitioning (the paper's Fig. 5 procedure).

Given a computation graph and a partition point ``p`` on its topological
order, :class:`GraphPartitioner` materialises two executable *segments*:

- the **head** (positions ``1..p``, runs on the user-end device), and
- the **tail** (positions ``p+1..n``, runs on the edge server).

Following the paper, for every CNode in a segment whose direct predecessor
lies outside the segment, a boundary *Parameter* is generated (here:
a named boundary input with the predecessor's TensorSpec).  If more than one
tensor leaves a segment, a ``MakeTuple`` node is synthesised and linked to a
``Return`` node; otherwise the single leaving tensor feeds ``Return``
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.graph.graph import ComputationGraph, GraphError
from repro.graph.node import CNode, TensorSpec


@dataclass
class Segment:
    """An executable slice of a computation graph.

    ``boundary_inputs`` are the tensors the segment receives from outside
    (the generated Parameters of Fig. 5); ``nodes`` are the computation
    nodes in topological order, including the synthesised MakeTuple/Return
    pair; ``result_names`` are the producer names whose tensors leave the
    segment, in a stable order.
    """

    name: str
    boundary_inputs: Dict[str, TensorSpec]
    nodes: List[CNode] = field(default_factory=list)
    result_names: Tuple[str, ...] = ()

    @property
    def is_empty(self) -> bool:
        return not any(n.op not in ("make_tuple", "return") for n in self.nodes)

    @property
    def compute_nodes(self) -> List[CNode]:
        """Nodes excluding the synthesised MakeTuple/Return scaffolding."""
        return [n for n in self.nodes if n.op not in ("make_tuple", "return")]

    @property
    def has_make_tuple(self) -> bool:
        return any(n.op == "make_tuple" for n in self.nodes)

    @property
    def result_bytes(self) -> int:
        specs = {name: spec for name, spec in self.boundary_inputs.items()}
        for node in self.compute_nodes:
            assert node.output is not None
            specs[node.name] = node.output
        return sum(specs[name].nbytes for name in self.result_names)


@dataclass(frozen=True)
class PartitionedGraph:
    """The result of splitting a graph after topological position ``p``."""

    graph_name: str
    partition_point: int
    head: Segment
    tail: Segment
    transfer_specs: Dict[str, TensorSpec]

    @property
    def upload_bytes(self) -> int:
        return sum(spec.nbytes for spec in self.transfer_specs.values())


def _finalise(segment: Segment, results: List[Tuple[str, TensorSpec]]) -> None:
    """Attach MakeTuple/Return scaffolding for the tensors leaving a segment."""
    segment.result_names = tuple(name for name, _spec in results)
    if not results:
        return
    if len(results) > 1:
        tuple_name = f"{segment.name}.make_tuple"
        make_tuple = CNode(
            name=tuple_name,
            op="make_tuple",
            inputs=[name for name, _spec in results],
        )
        total = sum(spec.numel for _name, spec in results)
        make_tuple.output = TensorSpec((total,), results[0][1].dtype)
        segment.nodes.append(make_tuple)
        ret_input, ret_spec = tuple_name, make_tuple.output
    else:
        ret_input, ret_spec = results[0]
    ret = CNode(name=f"{segment.name}.return", op="return", inputs=[ret_input])
    ret.output = ret_spec
    segment.nodes.append(ret)


class GraphPartitioner:
    """Splits computation graphs into device/server segments."""

    def __init__(self, graph: ComputationGraph) -> None:
        graph.validate()
        self._graph = graph
        self._order = graph.topological_order()
        self._cuts = graph.cuts()

    @property
    def graph(self) -> ComputationGraph:
        return self._graph

    @property
    def num_points(self) -> int:
        """Number of valid partition points (``0..n`` inclusive -> n+1)."""
        return len(self._order) + 1

    def partition(self, p: int) -> PartitionedGraph:
        """Split after topological position ``p`` (0 = full offload, n = local)."""
        n = len(self._order)
        if not 0 <= p <= n:
            raise GraphError(f"partition point {p} out of range [0, {n}]")
        graph = self._graph
        head_names = set(self._order[:p])

        specs: Dict[str, TensorSpec] = {graph.input_name: graph.input_spec}
        for name in self._order:
            node = graph.node(name)
            assert node.output is not None
            specs[name] = node.output

        # Tensors crossing the cut, as computed by the graph's cut analysis.
        crossing = list(self._cuts[p].crossing)
        transfer_specs = {name: specs[name] for name in crossing}

        # --- head segment (user-end device) -------------------------------
        head = Segment(name=f"{graph.name}.head@{p}", boundary_inputs={})
        if p > 0:
            head.boundary_inputs[graph.input_name] = graph.input_spec
        head_results: List[Tuple[str, TensorSpec]] = []
        for name in self._order[:p]:
            head.nodes.append(graph.node(name))
        for name in crossing:
            if name == graph.input_name:
                continue  # the raw input is forwarded, not recomputed
            head_results.append((name, specs[name]))
        # The graph output may already be produced by the head even when p<n.
        out_name = graph.output_name
        if out_name in head_names and out_name not in crossing:
            head_results.append((out_name, specs[out_name]))
        _finalise(head, head_results)

        # --- tail segment (edge server) ------------------------------------
        tail = Segment(
            name=f"{graph.name}.tail@{p}",
            boundary_inputs=dict(transfer_specs),
        )
        tail_results: List[Tuple[str, TensorSpec]] = []
        for name in self._order[p:]:
            tail.nodes.append(graph.node(name))
        if out_name not in head_names:
            tail_results.append((out_name, specs[out_name]))
        _finalise(tail, tail_results)

        return PartitionedGraph(
            graph_name=graph.name,
            partition_point=p,
            head=head,
            tail=tail,
            transfer_specs=transfer_specs,
        )
