"""``ComputationGraph``: the backbone DAG plus attached Parameters.

The graph owns a single input placeholder (the paper's virtual node ``L_0``
corresponds to this placeholder) and a single output CNode.  The partition
algorithm consumes two things from it:

- a *deterministic* topological order ``L_1 .. L_n`` of the CNodes, and
- the *transmission size* ``s_i`` of every cut of that order: the number of
  bytes that must cross the device-to-server link when the graph is split
  right after position ``i`` (``s_0`` is the input tensor size).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graph.node import CNode, TensorSpec
from repro.graph.ops import node_flops, op_spec

INPUT_NAME = "input"


class GraphError(ValueError):
    """Structural problem in a computation graph."""


@dataclass(frozen=True)
class Cut:
    """A cut of the topological order right after position ``index``.

    ``index`` ranges over ``0..n``: 0 means "before any computation" (full
    offloading), ``n`` means "after every node" (local inference).
    ``crossing`` lists the producer nodes whose output tensors must be
    transmitted; ``width`` is ``len(crossing)``.
    """

    index: int
    crossing: Tuple[str, ...]
    upload_bytes: int

    @property
    def width(self) -> int:
        return len(self.crossing)


class ComputationGraph:
    """A DAG of CNodes with a single input placeholder and a single output."""

    def __init__(self, name: str, input_spec: TensorSpec, input_name: str = INPUT_NAME) -> None:
        self.name = name
        self.input_name = input_name
        self.input_spec = input_spec
        self._nodes: Dict[str, CNode] = {}
        self._output_name: str | None = None
        self._topo_cache: List[str] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_node(self, node: CNode) -> CNode:
        """Insert ``node``, inferring its output spec and parameters.

        All of the node's inputs must already exist (the graph input
        placeholder counts), which guarantees acyclicity by construction.
        """
        if node.name in self._nodes or node.name == self.input_name:
            raise GraphError(f"duplicate node name {node.name!r}")
        spec = op_spec(node.op)
        spec.check_arity(len(node.inputs))
        input_specs = [self._spec_of(name, node.name) for name in node.inputs]
        node.output = spec.infer_shape(input_specs, node.attrs)
        if spec.make_params is not None and not node.params:
            node.params = spec.make_params(node.name, input_specs, node.attrs)
        self._nodes[node.name] = node
        self._topo_cache = None
        return node

    def set_output(self, name: str) -> None:
        if name not in self._nodes:
            raise GraphError(f"output node {name!r} does not exist")
        self._output_name = name

    def _spec_of(self, name: str, consumer: str) -> TensorSpec:
        if name == self.input_name:
            return self.input_spec
        try:
            producer = self._nodes[name]
        except KeyError:
            raise GraphError(f"node {consumer!r} references unknown input {name!r}") from None
        assert producer.output is not None
        return producer.output

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Dict[str, CNode]:
        return self._nodes

    @property
    def output_name(self) -> str:
        if self._output_name is None:
            raise GraphError(f"graph {self.name!r} has no output set")
        return self._output_name

    @property
    def output_spec(self) -> TensorSpec:
        out = self._nodes[self.output_name].output
        assert out is not None
        return out

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> CNode:
        return self._nodes[name]

    def input_specs_of(self, node: CNode) -> List[TensorSpec]:
        return [self._spec_of(name, node.name) for name in node.inputs]

    def flops_of(self, name: str) -> int:
        node = self._nodes[name]
        assert node.output is not None
        return node_flops(node.op, self.input_specs_of(node), node.output, node.attrs)

    def total_flops(self) -> int:
        return sum(self.flops_of(name) for name in self._nodes)

    def total_param_bytes(self) -> int:
        return sum(node.param_bytes for node in self._nodes.values())

    def consumers(self) -> Dict[str, List[str]]:
        """Map producer name -> consumer node names (graph input included)."""
        out: Dict[str, List[str]] = {self.input_name: []}
        for name in self._nodes:
            out[name] = []
        for node in self._nodes.values():
            for dep in node.inputs:
                out[dep].append(node.name)
        return out

    # ------------------------------------------------------------------
    # Topological order and cuts
    # ------------------------------------------------------------------

    def topological_order(self) -> List[str]:
        """Deterministic topological order of the backbone DAG.

        Kahn's algorithm with a FIFO over insertion order, so the order is
        stable across runs — partition indices in experiment output are
        therefore reproducible.
        """
        if self._topo_cache is not None:
            return list(self._topo_cache)
        indegree = {name: 0 for name in self._nodes}
        for node in self._nodes.values():
            for dep in node.inputs:
                if dep != self.input_name:
                    indegree[node.name] += 1
        consumers = self.consumers()
        ready = deque(name for name in self._nodes if indegree[name] == 0)
        order: List[str] = []
        while ready:
            name = ready.popleft()
            order.append(name)
            for consumer in consumers[name]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self._nodes):
            raise GraphError(f"graph {self.name!r} contains a cycle")
        self._topo_cache = order
        return list(order)

    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphError` if violated."""
        order = self.topological_order()
        if not order:
            raise GraphError(f"graph {self.name!r} is empty")
        out = self.output_name  # raises if unset
        consumers = self.consumers()
        for name in order:
            if name != out and not consumers[name]:
                raise GraphError(f"node {name!r} is dead (no consumers, not the output)")
        if consumers[out]:
            raise GraphError(f"output node {out!r} has consumers {consumers[out]}")
        if not consumers[self.input_name]:
            raise GraphError("graph input is unused")

    def cuts(self) -> List[Cut]:
        """All cuts of the topological order: positions ``0..n``.

        ``cuts()[i].upload_bytes`` is the paper's ``s_i``: the total size of
        the tensors produced at positions ``<= i`` that are consumed at
        positions ``> i``.  ``s_0`` is the graph input size and ``s_n`` is 0
        (nothing to upload under local inference; the download of the result
        is accounted separately via :attr:`output_spec`).
        """
        order = self.topological_order()
        n = len(order)
        position = {name: idx + 1 for idx, name in enumerate(order)}
        position[self.input_name] = 0
        # last_consumer[p] = max position of a consumer of the tensor produced
        # at position p (0 = graph input).
        last_consumer = [0] * (n + 1)
        for node in self._nodes.values():
            for dep in node.inputs:
                p = position[dep]
                last_consumer[p] = max(last_consumer[p], position[node.name])
        sizes = [self.input_spec.nbytes] + [
            self._nodes[name].output.nbytes  # type: ignore[union-attr]
            for name in order
        ]
        names = [self.input_name] + order
        cuts: List[Cut] = []
        for i in range(n + 1):
            crossing = tuple(names[p] for p in range(i + 1) if last_consumer[p] > i)
            upload = sum(sizes[p] for p in range(i + 1) if last_consumer[p] > i)
            cuts.append(Cut(index=i, crossing=crossing, upload_bytes=upload))
        return cuts

    def transmission_sizes(self) -> List[int]:
        """The ``s_i`` array of the paper: upload bytes per cut position."""
        return [cut.upload_bytes for cut in self.cuts()]

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> str:
        """Human-readable per-node table (name, op, output shape, MFLOPs)."""
        lines = [f"graph {self.name}: input {self.input_spec}"]
        for idx, name in enumerate(self.topological_order(), start=1):
            node = self._nodes[name]
            mflops = self.flops_of(name) / 1e6
            lines.append(f"  L{idx:<4d} {name:<28s} {node.op:<14s} {str(node.output):<22s} {mflops:10.2f} MFLOPs")
        lines.append(f"  total {self.total_flops() / 1e9:.3f} GFLOPs, params {self.total_param_bytes() / 1e6:.2f} MB")
        return "\n".join(lines)
