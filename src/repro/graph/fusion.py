"""Layer fusion: the paper's stated extension (§VI).

Inference frameworks fuse a convolution/matmul *anchor* with its
element-wise epilogue (BiasAdd/BatchNorm/activation) into one kernel, so
summing single-layer predictions over-counts memory passes and kernel
launches.  The paper notes its procedure extends to fused layers given a
fusion-detection pass — this module provides that pass:

- :func:`detect_fusion_groups` finds anchor+epilogue chains whose
  intermediate tensors have no other consumers (the safety condition), and
- :func:`fuse_graph` rewrites the graph with fused operators
  (``fused_conv2d`` / ``fused_dwconv2d`` / ``fused_matmul``), preserving
  shapes, parameters and total FLOPs.

Fused operators carry an ``epilogue`` attribute (the tuple of absorbed op
names); they have their own prediction-model categories (``conv_fused``
etc., see :data:`repro.graph.ops.FUSED_CATEGORIES`) so the offline
profiler can train dedicated LR models for them, exactly as §VI suggests.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.graph.graph import ComputationGraph
from repro.graph.node import CNode

#: Ops that can anchor a fusion group, and the fused op they become.
FUSABLE_ANCHORS: Dict[str, str] = {
    "conv2d": "fused_conv2d",
    "dwconv2d": "fused_dwconv2d",
    "matmul": "fused_matmul",
}

#: Element-wise ops a fused kernel can absorb as its epilogue.
FUSABLE_EPILOGUE = ("bias_add", "batchnorm", "relu", "sigmoid", "tanh")

#: Maximum epilogue length (anchor + epilogue = one fused kernel).
MAX_EPILOGUE = 3


def detect_fusion_groups(graph: ComputationGraph) -> List[List[str]]:
    """Partition the node set into fusion groups, in topological order.

    Each group is an anchor followed by a maximal chain of fusable
    element-wise ops, where every intermediate tensor is consumed *only*
    by the next op in the chain (otherwise the intermediate must
    materialise and fusion is unsafe).  Non-fusable nodes form singleton
    groups.
    """
    order = graph.topological_order()
    consumers = graph.consumers()
    groups: List[List[str]] = []
    absorbed: set[str] = set()
    for name in order:
        if name in absorbed:
            continue
        node = graph.node(name)
        if node.op not in FUSABLE_ANCHORS:
            groups.append([name])
            continue
        group = [name]
        current = name
        while len(group) <= MAX_EPILOGUE:
            next_consumers = consumers[current]
            if len(next_consumers) != 1:
                break
            candidate = graph.node(next_consumers[0])
            if candidate.op not in FUSABLE_EPILOGUE:
                break
            group.append(candidate.name)
            absorbed.add(candidate.name)
            current = candidate.name
        groups.append(group)
    return groups


def fuse_graph(graph: ComputationGraph) -> ComputationGraph:
    """Rewrite ``graph`` with fused operators.

    The fused graph computes the identical function: every fused node
    carries the anchor's attributes plus an ``epilogue`` tuple, and its
    parameters are the concatenation of the group's parameters in
    execution order.  Node names: the fused node takes the *last* group
    member's name, so downstream references (including the graph output)
    stay valid without rewiring.
    """
    graph.validate()
    groups = detect_fusion_groups(graph)
    fused = ComputationGraph(f"{graph.name}.fused", graph.input_spec, graph.input_name)
    # Map original producer name -> name in the fused graph.
    alias: Dict[str, str] = {graph.input_name: graph.input_name}

    for group in groups:
        anchor = graph.node(group[0])
        inputs = [alias[dep] for dep in anchor.inputs]
        if len(group) == 1:
            fused.add_node(
                CNode(name=anchor.name, op=anchor.op, inputs=inputs,
                      attrs=dict(anchor.attrs))
            )
            alias[anchor.name] = anchor.name
            continue
        tail_name = group[-1]
        epilogue = tuple(graph.node(n).op for n in group[1:])
        attrs = dict(anchor.attrs)
        attrs["epilogue"] = epilogue
        params = []
        for member in group:
            params.extend(graph.node(member).params)
        node = CNode(
            name=tail_name,
            op=FUSABLE_ANCHORS[anchor.op],
            inputs=inputs,
            attrs=attrs,
            params=list(params),
        )
        fused.add_node(node)
        for member in group:
            alias[member] = tail_name

    fused.set_output(alias[graph.output_name])
    fused.validate()
    return fused


def fusion_summary(graph: ComputationGraph) -> Tuple[int, int, int]:
    """(original nodes, fused nodes, groups with epilogue) for reporting."""
    groups = detect_fusion_groups(graph)
    fused_groups = sum(1 for g in groups if len(g) > 1)
    return len(graph), len(groups), fused_groups
