"""JSON serialisation of computation graphs.

The on-the-wire model format used by the device/server runtime: both sides
load the same model file, so a partition point is enough to agree on the
split (paper §III-A).
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.graph.graph import ComputationGraph
from repro.graph.node import CNode, TensorSpec

FORMAT_VERSION = 1


def graph_to_json(graph: ComputationGraph) -> str:
    """Serialise a graph to a JSON string (deterministic key order)."""
    payload: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "name": graph.name,
        "input": {
            "name": graph.input_name,
            "shape": list(graph.input_spec.shape),
            "dtype": graph.input_spec.dtype,
        },
        "output": graph.output_name,
        "nodes": [
            {
                "name": node.name,
                "op": node.op,
                "inputs": list(node.inputs),
                "attrs": _encode_attrs(node.attrs),
            }
            for node in (graph.node(n) for n in graph.topological_order())
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def graph_from_json(text: str) -> ComputationGraph:
    """Rebuild a graph from :func:`graph_to_json` output.

    Shapes and parameters are re-inferred, so a round-trip also re-validates
    the graph.
    """
    payload = json.loads(text)
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported graph format version {version!r}")
    spec = TensorSpec(tuple(payload["input"]["shape"]), payload["input"]["dtype"])
    graph = ComputationGraph(payload["name"], spec, input_name=payload["input"]["name"])
    for entry in payload["nodes"]:
        graph.add_node(
            CNode(
                name=entry["name"],
                op=entry["op"],
                inputs=list(entry["inputs"]),
                attrs=_decode_attrs(entry["attrs"]),
            )
        )
    graph.set_output(payload["output"])
    graph.validate()
    return graph


def _encode_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, tuple):
            out[key] = {"__tuple__": list(value)}
        else:
            out[key] = value
    return out


def _decode_attrs(attrs: Dict[str, Any]) -> Dict[str, Any]:
    out: Dict[str, Any] = {}
    for key, value in attrs.items():
        if isinstance(value, dict) and "__tuple__" in value:
            out[key] = tuple(value["__tuple__"])
        else:
            out[key] = value
    return out
