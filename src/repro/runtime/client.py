"""The user-end device runtime.

Runs the partition decision algorithm per request (on the device, to avoid
extra round-trips, §III-A), executes head segments on the local CPU,
uploads intermediate tensors, and hosts the runtime-profiler activities:
adaptive bandwidth probes, passive bandwidth measurements from actual
uploads, and the periodic load query that fetches the server's ``k``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Protocol, Tuple

import numpy as np

from repro.core.cache import PartitionCache
from repro.core.engine import LoADPartEngine
from repro.core.partition_algorithm import PartitionDecision
from repro.graph.partitioner import GraphPartitioner, PartitionedGraph
from repro.hardware.device_model import DeviceModel
from repro.network.channel import Channel
from repro.network.estimator import BandwidthEstimator
from repro.nn.executor import SegmentExecutor, _check_backend, init_parameters
from repro.runtime.messages import InferenceRecord, OffloadReply
from repro.runtime.server import PARTITION_OVERHEAD_S, EdgeServer


class DecisionPolicy(Protocol):
    """Pluggable decision strategies (LoADPart, Neurosurgeon, local, full)."""

    def decide(self, bandwidth_up: float, k: float = 1.0) -> PartitionDecision: ...


@dataclass
class PendingOffload:
    """Device-side state of one offload whose server reply is outstanding.

    Produced by :meth:`UserDevice.begin_inference` when the decision is to
    offload; the batched fleet driver parks it in the server's batch queue
    and finishes the record via :meth:`UserDevice.complete_inference` once
    the batch flushes.
    """

    request_id: int
    start_s: float
    partition_point: int
    estimated_bandwidth_bps: float
    k_used: float
    device_s: float
    upload_s: float
    overhead_s: float
    device_cache_hit: bool
    arrive_s: float                       # when the upload lands at the server
    transfers: Dict[str, np.ndarray] | None
    head_outputs: Dict[str, np.ndarray] | None


class UserDevice:
    """Simulated user-end device (Raspberry Pi 4 class)."""

    def __init__(
        self,
        engine: LoADPartEngine,
        server: EdgeServer,
        channel: Channel,
        policy: DecisionPolicy | None = None,
        device_model: DeviceModel | None = None,
        estimator: BandwidthEstimator | None = None,
        seed: int = 1,
        backend: str = "naive",
        functional: bool = False,
        model_seed: int = 0,
    ) -> None:
        self.engine = engine
        self.server = server
        self.channel = channel
        self.policy = policy if policy is not None else engine
        self.device_model = device_model or DeviceModel()
        self.estimator = estimator or BandwidthEstimator()
        self.cache = PartitionCache(GraphPartitioner(engine.graph))
        self._rng = np.random.default_rng(seed)
        self._latest_k = 1.0
        self._request_seq = 0
        self.backend = _check_backend(backend)
        self.functional = functional
        self._model_seed = model_seed
        self._model_params: Dict[str, np.ndarray] | None = None
        self._head_executors: Dict[int, SegmentExecutor] = {}
        # Functional inputs come from a dedicated stream: ``self._rng`` keeps
        # driving the simulated timing draws, so InferenceRecords are
        # identical whether functional execution is on or off (and across
        # executor backends).
        self._data_rng = np.random.default_rng(seed + 0x5EED)
        #: Output tensor of the most recent functional inference.
        self.last_output: np.ndarray | None = None

    # -- runtime profiler activities (the paper's profiler thread) ------------

    @property
    def latest_k(self) -> float:
        return self._latest_k

    def send_probe(self, now_s: float) -> float:
        """Upload an adaptive-size probe packet; returns its duration."""
        probe_bytes = self.estimator.next_probe_bytes()
        duration = self.channel.upload_time(probe_bytes, now_s, self._rng)
        self.estimator.add_probe(now_s, probe_bytes, duration)
        return duration

    def query_load(self, now_s: float) -> float:
        """Fetch the most recent influential factor from the server."""
        reply = self.server.handle_load_query(now_s)
        self._latest_k = max(reply.k, 1.0)
        return self._latest_k

    def profiler_tick(self, now_s: float) -> None:
        """One period of the runtime profiler: probe + load query (§IV)."""
        self.send_probe(now_s)
        self.query_load(now_s)

    # -- functional execution --------------------------------------------------

    @property
    def model_params(self) -> Dict[str, np.ndarray]:
        """Parameters materialised from the preloaded model file (§III-A)."""
        if self._model_params is None:
            graph = self.engine.graph
            self._model_params = init_parameters(
                (graph.node(n) for n in graph.topological_order()), self._model_seed
            )
        return self._model_params

    def _run_head(self, partitioned: PartitionedGraph) -> Tuple[
            Dict[str, np.ndarray], Dict[str, np.ndarray]]:
        """Draw an input and execute the head; returns (outputs, transfers).

        ``outputs`` are the head's leaving tensors by producer name;
        ``transfers`` are the tensors that cross the cut (the raw input is
        forwarded, not recomputed, when it crosses).
        """
        graph = self.engine.graph
        x = self._data_rng.standard_normal(graph.input_spec.shape).astype(np.float32)
        outputs: Dict[str, np.ndarray] = {}
        if not partitioned.head.is_empty:
            point = partitioned.partition_point
            executor = self._head_executors.get(point)
            if executor is None:
                executor = SegmentExecutor(
                    partitioned.head, params=self.model_params, backend=self.backend
                )
                self._head_executors[point] = executor
            boundary = {name: x for name in partitioned.head.boundary_inputs}
            outputs = executor.run(boundary)
        transfers = {
            name: (x if name == graph.input_name else outputs[name])
            for name in partitioned.transfer_specs
        }
        return outputs, transfers

    # -- inference path ------------------------------------------------------

    def begin_inference(self, now_s: float) -> InferenceRecord | PendingOffload:
        """Decide, run the head, and upload; stop short of the server call.

        Local decisions complete immediately and return the finished
        :class:`InferenceRecord`; offload decisions return a
        :class:`PendingOffload` whose server reply the caller must obtain
        (synchronously via ``handle_offload`` or through a batch queue) and
        feed to :meth:`complete_inference`.
        """
        self._request_seq += 1
        request_id = self._request_seq
        bandwidth = self.estimator.estimate()
        k = self._latest_k
        decision = self.policy.decide(bandwidth, k=k)
        point = decision.point
        n = self.engine.num_nodes

        device_cache_hit = point in self.cache
        partitioned = self.cache.get(point)
        overhead = 0.0 if device_cache_hit else PARTITION_OVERHEAD_S

        head_outputs: dict | None = None
        transfers: dict | None = None
        if self.functional:
            head_outputs, transfers = self._run_head(partitioned)

        device_s = float(
            self.device_model.sample_graph_time(self.engine.head_profiles(point), self._rng)
        )

        if point == n:
            # Local inference: no network, no server involvement.
            if head_outputs is not None:
                self.last_output = head_outputs[self.engine.graph.output_name]
            return InferenceRecord(
                request_id=request_id,
                start_s=now_s,
                partition_point=point,
                estimated_bandwidth_bps=bandwidth,
                k_used=k,
                device_s=device_s,
                upload_s=0.0,
                server_s=0.0,
                download_s=0.0,
                overhead_s=overhead,
                total_s=device_s + overhead,
                load_level=self.server.load_schedule.level_at(now_s).name,
                device_cache_hit=device_cache_hit,
                server_cache_hit=True,
            )

        upload_bytes = partitioned.upload_bytes
        upload_s = self.channel.upload_time(upload_bytes, now_s, self._rng)
        # Passive bandwidth measurement from the real transfer (§IV).
        self.estimator.add_passive(now_s, upload_bytes, upload_s)

        return PendingOffload(
            request_id=request_id,
            start_s=now_s,
            partition_point=point,
            estimated_bandwidth_bps=bandwidth,
            k_used=k,
            device_s=device_s,
            upload_s=upload_s,
            overhead_s=overhead,
            device_cache_hit=device_cache_hit,
            arrive_s=now_s + device_s + upload_s,
            transfers=transfers,
            head_outputs=head_outputs,
        )

    def complete_inference(self, pending: PendingOffload, reply: OffloadReply,
                           download_at_s: float | None = None) -> InferenceRecord:
        """Finish a pending offload from the server's reply.

        ``download_at_s`` is when the result starts downloading — the upload
        arrival time in the synchronous path, the batch completion time
        under dynamic batching.
        """
        if download_at_s is None:
            download_at_s = pending.arrive_s
        download_s = self.channel.download_time(
            reply.result_bytes, download_at_s, self._rng
        )

        if reply.tensors is not None:
            out_name = self.engine.graph.output_name
            self.last_output = (
                reply.tensors[out_name] if out_name in reply.tensors
                else pending.head_outputs[out_name]  # output produced before the cut
            )

        total = (
            pending.device_s
            + pending.upload_s
            + reply.server_exec_s
            + download_s
            + pending.overhead_s
            + reply.partition_overhead_s
        )
        return InferenceRecord(
            request_id=pending.request_id,
            start_s=pending.start_s,
            partition_point=pending.partition_point,
            estimated_bandwidth_bps=pending.estimated_bandwidth_bps,
            k_used=pending.k_used,
            device_s=pending.device_s,
            upload_s=pending.upload_s,
            server_s=reply.server_exec_s,
            download_s=download_s,
            overhead_s=pending.overhead_s + reply.partition_overhead_s,
            total_s=total,
            load_level=self.server.load_schedule.level_at(download_at_s).name,
            device_cache_hit=pending.device_cache_hit,
            server_cache_hit=reply.cache_hit,
            server_queue_s=reply.queue_s,
            batch_size=reply.batch_size,
        )

    def request_inference(self, now_s: float) -> InferenceRecord:
        """Run one end-to-end inference starting at ``now_s``."""
        pending = self.begin_inference(now_s)
        if isinstance(pending, InferenceRecord):
            return pending
        reply = self.server.handle_offload(
            pending.arrive_s, pending.request_id, pending.partition_point,
            tensors=pending.transfers,
        )
        return self.complete_inference(pending, reply)
