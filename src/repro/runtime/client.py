"""The user-end device runtime.

Runs the partition decision algorithm per request (on the device, to avoid
extra round-trips, §III-A), executes head segments on the local CPU,
uploads intermediate tensors, and hosts the runtime-profiler activities:
adaptive bandwidth probes, passive bandwidth measurements from actual
uploads, and the periodic load query that fetches the server's ``k``.

With a :class:`~repro.runtime.resilience.ResilienceConfig` the device also
survives a *broken* offload path instead of hanging on it: every offload
attempt carries a deadline derived from the engine's own latency
prediction, failures are retried with exponential backoff at the
re-decided partition point, a circuit breaker pins ``point = n`` after
consecutive failures (the §IV profiler tick doubles as the half-open
health probe), failed transfers feed the bandwidth estimator as evidence,
and a stale load factor stops steering decisions after a TTL.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from itertools import accumulate
from typing import Dict, Protocol, Tuple

import numpy as np

from repro.core.cache import PartitionCache
from repro.core.engine import JointDecision, LoADPartEngine
from repro.core.partition_algorithm import PartitionDecision
from repro.graph.partitioner import GraphPartitioner, PartitionedGraph
from repro.hardware.device_model import DeviceModel
from repro.network.channel import Channel, StreamResult
from repro.network.estimator import BandwidthEstimator
from repro.network.streaming import StreamingConfig
from repro.nn.executor import SegmentExecutor, _check_backend, init_parameters
from repro.nn.parallel import CompileOnceCache, ParallelConfig
from repro.runtime.messages import BusyReply, InferenceRecord, OffloadReply
from repro.runtime.resilience import CircuitBreaker, ResilienceConfig
from repro.runtime.server import PARTITION_OVERHEAD_S, EdgeServer


class DecisionPolicy(Protocol):
    """Pluggable decision strategies (LoADPart, Neurosurgeon, local, full)."""

    def decide(self, bandwidth_up: float, k: float = 1.0) -> PartitionDecision: ...


@dataclass
class PendingOffload:
    """Device-side state of one offload whose server reply is outstanding.

    Produced by :meth:`UserDevice.begin_inference` when the decision is to
    offload; the batched fleet driver parks it in the server's batch queue
    and finishes the record via :meth:`UserDevice.complete_inference` once
    the batch flushes.

    Under a resilient configuration ``timeout_s`` is the attempt's
    network-side deadline (upload + server + download budget, armed when
    the upload starts) and ``delivered`` records whether the upload made it
    at all — an undelivered offload's ``arrive_s`` is the instant the
    device gives up waiting, not a server arrival.
    """

    request_id: int
    start_s: float
    partition_point: int
    estimated_bandwidth_bps: float
    k_used: float
    device_s: float
    upload_s: float
    overhead_s: float
    device_cache_hit: bool
    arrive_s: float                       # when the upload lands at the server
    transfers: Dict[str, np.ndarray] | None
    head_outputs: Dict[str, np.ndarray] | None
    timeout_s: float = 0.0
    delivered: bool = True
    #: Streaming-path metadata (defaults describe the classic fp32
    #: monolithic upload, so non-streaming callers are untouched).
    #: ``decode_s`` is the *exposed* decode time beyond the upload's end;
    #: ``arrivals`` maps crossing-tensor producer name to the absolute
    #: instant it became available (decoded) on the server, feeding the
    #: server's arrival-gated execution.
    codec: str = "fp32"
    encode_s: float = 0.0
    decode_s: float = 0.0
    chunks: int = 1
    wire_bytes: int = 0
    arrivals: Dict[str, float] | None = None
    #: SLA class the request carries and the early exit the decision chose
    #: (``None``/``None`` on the classic full-network path).
    sla_s: float | None = None
    exit_index: int | None = None

    @property
    def deadline_s(self) -> float:
        """Absolute instant the device abandons this attempt."""
        if self.timeout_s <= 0:
            return math.inf
        return self.start_s + self.device_s + self.encode_s + self.timeout_s


class UserDevice:
    """Simulated user-end device (Raspberry Pi 4 class)."""

    def __init__(
        self,
        engine: LoADPartEngine,
        server: EdgeServer,
        channel: Channel,
        policy: DecisionPolicy | None = None,
        device_model: DeviceModel | None = None,
        estimator: BandwidthEstimator | None = None,
        seed: int = 1,
        backend: str = "naive",
        functional: bool = False,
        model_seed: int = 0,
        resilience: ResilienceConfig | None = None,
        parallelism: ParallelConfig | None = None,
        streaming: StreamingConfig | None = None,
        sla_s: float | None = None,
    ) -> None:
        self.engine = engine
        self.server = server
        self.channel = channel
        self.policy = policy if policy is not None else engine
        self.streaming = streaming
        if streaming is not None and not hasattr(self.policy, "decide_joint"):
            raise ValueError(
                "streaming requires a policy with decide_joint (the "
                "LoADPart engine or a pinned joint policy); "
                f"got {type(self.policy).__name__}")
        self.sla_s = sla_s
        if sla_s is not None:
            if not math.isfinite(sla_s) or sla_s <= 0:
                raise ValueError(f"sla_s must be positive and finite, got {sla_s}")
            if streaming is not None:
                raise ValueError(
                    "per-request SLA classes are incompatible with streaming "
                    "uploads (the streamed joint decision has no exit axis)")
        self.device_model = device_model or DeviceModel()
        self.resilience = resilience
        if estimator is not None:
            self.estimator = estimator
        elif resilience is not None:
            # Failed transfers make old samples lie; bound their age.
            self.estimator = BandwidthEstimator(window_s=resilience.bandwidth_window_s)
        else:
            self.estimator = BandwidthEstimator()
        self.breaker: CircuitBreaker | None = None
        if resilience is not None:
            self.breaker = CircuitBreaker(
                resilience.failure_threshold, resilience.cooldown_s
            )
        self.cache = PartitionCache(GraphPartitioner(engine.graph))
        self._rng = np.random.default_rng(seed)
        self._latest_k = 1.0
        self._k_time_s = -math.inf
        self._request_seq = 0
        self.backend = _check_backend(backend)
        self.functional = functional
        self.parallelism = parallelism
        self._model_seed = model_seed
        self._model_params: Dict[str, np.ndarray] | None = None
        self._head_executors: CompileOnceCache = CompileOnceCache()
        # Early-exit state, lazy: per-exit partition caches and parameters.
        # Exit-free devices (and the final exit, whose graph *is* the
        # backbone) use ``self.cache`` / ``self.model_params`` directly.
        self._exit_caches: Dict[int, PartitionCache] = {}
        self._exit_params: Dict[int, Dict[str, np.ndarray]] = {}
        # Functional inputs come from a dedicated stream: ``self._rng`` keeps
        # driving the simulated timing draws, so InferenceRecords are
        # identical whether functional execution is on or off (and across
        # executor backends).
        self._data_rng = np.random.default_rng(seed + 0x5EED)
        #: Output tensor of the most recent functional inference.
        self.last_output: np.ndarray | None = None

    # -- runtime profiler activities (the paper's profiler thread) ------------

    @property
    def latest_k(self) -> float:
        return self._latest_k

    def send_probe(self, now_s: float) -> float:
        """Upload an adaptive-size probe packet; returns its duration.

        In resilient mode the probe runs under ``probe_timeout_s`` and a
        failed probe is recorded as bandwidth *evidence* (an upper bound)
        instead of being silently unmeasurable.
        """
        probe_bytes = self.estimator.next_probe_bytes()
        if self.resilience is None:
            duration = self.channel.upload_time(probe_bytes, now_s, self._rng)
            self.estimator.add_probe(now_s, probe_bytes, duration)
            return duration
        result = self.channel.try_upload(
            probe_bytes, now_s, self._rng, timeout_s=self.resilience.probe_timeout_s
        )
        if result.delivered:
            self.estimator.add_probe(now_s, probe_bytes, result.elapsed_s)
        else:
            self.estimator.add_failure(now_s, probe_bytes, result.elapsed_s)
        self._last_probe_ok = result.delivered
        return result.elapsed_s

    def query_load(self, now_s: float) -> float:
        """Fetch the most recent influential factor from the server.

        A crashed server answers nothing; the device keeps its last ``k``
        (subject to the staleness TTL in resilient mode).
        """
        reply = self.server.handle_load_query(now_s)
        if reply is not None:
            self._latest_k = max(reply.k, 1.0)
            self._k_time_s = now_s
        return self._latest_k

    def profiler_tick(self, now_s: float) -> None:
        """One period of the runtime profiler: probe + load query (§IV).

        In resilient mode this tick is also the circuit breaker's half-open
        health probe: a tick whose probe *and* load query both succeed
        counts as path health (and closes an open breaker once the cooldown
        has elapsed); a failed tick counts as a path failure.
        """
        self._last_probe_ok = True
        self.send_probe(now_s)
        if self.resilience is None:
            self.query_load(now_s)
            return
        reply = self.server.handle_load_query(now_s) if self._last_probe_ok else None
        if reply is not None:
            self._latest_k = max(reply.k, 1.0)
            self._k_time_s = now_s
            assert self.breaker is not None
            self.breaker.record_success(now_s)
        else:
            assert self.breaker is not None
            self.breaker.record_failure(now_s)

    def _current_k(self, now_s: float) -> float:
        """The load factor the decision should use right now.

        Resilient mode expires ``k`` after ``k_ttl_s`` without a successful
        load query — a dead server's last (possibly huge) ``k`` must stop
        steering decisions once it can no longer be refreshed.
        """
        if (self.resilience is not None
                and now_s - self._k_time_s > self.resilience.k_ttl_s):
            return 1.0
        return self._latest_k

    # -- early exits -----------------------------------------------------------

    def _engine_for(self, exit_index: int | None) -> LoADPartEngine:
        if exit_index is None:
            return self.engine
        return self.engine.exit_engine(exit_index)

    def _cache_for(self, exit_index: int | None) -> PartitionCache:
        """Partition cache of one exit's graph (final exit == backbone ==
        :attr:`cache`, so exit-free and final-exit traffic share entries)."""
        if exit_index is None or exit_index == self.engine.num_exits - 1:
            return self.cache
        cache = self._exit_caches.get(exit_index)
        if cache is None:
            cache = PartitionCache(GraphPartitioner(
                self.engine.exit_engine(exit_index).graph))
            self._exit_caches[exit_index] = cache
        return cache

    def _params_for(self, exit_index: int | None) -> Dict[str, np.ndarray]:
        """Parameters of one exit's graph; the shared backbone prefix is
        bit-identical across exits (parameters are seeded per name)."""
        if exit_index is None or exit_index == self.engine.num_exits - 1:
            return self.model_params
        params = self._exit_params.get(exit_index)
        if params is None:
            graph = self.engine.exit_engine(exit_index).graph
            params = init_parameters(
                (graph.node(n) for n in graph.topological_order()),
                self._model_seed,
            )
            self._exit_params[exit_index] = params
        return params

    def _finalize_sla(self, record: InferenceRecord) -> InferenceRecord:
        """Re-stamp ``met_sla`` after any adjustment to ``total_s``."""
        if record.sla_s is None:
            return record
        met = record.completed and record.total_s <= record.sla_s
        if met == record.met_sla:
            return record
        return replace(record, met_sla=met)

    # -- functional execution --------------------------------------------------

    @property
    def model_params(self) -> Dict[str, np.ndarray]:
        """Parameters materialised from the preloaded model file (§III-A)."""
        if self._model_params is None:
            graph = self.engine.graph
            self._model_params = init_parameters(
                (graph.node(n) for n in graph.topological_order()), self._model_seed
            )
        return self._model_params

    def _run_head(self, partitioned: PartitionedGraph,
                  exit_index: int | None = None) -> Tuple[
            Dict[str, np.ndarray], Dict[str, np.ndarray]]:
        """Draw an input and execute the head; returns (outputs, transfers).

        ``outputs`` are the head's leaving tensors by producer name;
        ``transfers`` are the tensors that cross the cut (the raw input is
        forwarded, not recomputed, when it crosses).
        """
        graph = self._engine_for(exit_index).graph
        x = self._data_rng.standard_normal(graph.input_spec.shape).astype(np.float32)
        outputs: Dict[str, np.ndarray] = {}
        if not partitioned.head.is_empty:
            point = partitioned.partition_point
            final = exit_index is None or exit_index == self.engine.num_exits - 1
            key = point if final else ("exit", exit_index, point)
            params = self._params_for(exit_index)
            executor = self._head_executors.get_or_create(
                key, lambda: SegmentExecutor(
                    partitioned.head, params=params,
                    backend=self.backend, parallelism=self.parallelism,
                )
            )
            boundary = {name: x for name in partitioned.head.boundary_inputs}
            outputs = executor.run(boundary)
        transfers = {
            name: (x if name == graph.input_name else outputs[name])
            for name in partitioned.transfer_specs
        }
        return outputs, transfers

    # -- inference path ------------------------------------------------------

    def begin_inference(self, now_s: float, *, request_id: int | None = None,
                        force_local: bool = False,
                        sla_budget_s: float | None = None,
                        ) -> InferenceRecord | PendingOffload:
        """Decide, run the head, and upload; stop short of the server call.

        Local decisions complete immediately and return the finished
        :class:`InferenceRecord`; offload decisions return a
        :class:`PendingOffload` whose server reply the caller must obtain
        (synchronously via ``handle_offload`` or through a batch queue) and
        feed to :meth:`complete_inference`.

        ``request_id`` reuses an existing id (retries of the same logical
        request); ``force_local`` pins ``point = n`` regardless of the
        policy (open circuit breaker, fallback after failures).  In
        resilient mode a dropped/timed-out upload returns a
        :class:`PendingOffload` with ``delivered=False``; without
        resilience it returns a ``status="failed"`` record whose total is
        infinite — the device would wait forever.

        ``sla_budget_s`` is this attempt's remaining SLA budget (retries
        have already burned part of the class SLA); ``None`` means the full
        class SLA :attr:`sla_s` — which is also ``None`` on SLA-free
        devices, reproducing the classic path verbatim.
        """
        if request_id is None:
            self._request_seq += 1
            request_id = self._request_seq
        bandwidth = self.estimator.estimate()
        k = self._current_k(now_s)
        budget = self.sla_s if sla_budget_s is None else sla_budget_s
        n = self.engine.num_nodes
        timeout_s = 0.0
        joint: JointDecision | None = None
        exit_index: int | None = None
        active = self.engine
        if force_local:
            # Degraded path: the full network, like any SLA-free fallback —
            # accuracy is never sacrificed blind (without a live decision).
            point = n
        else:
            if self.streaming is not None:
                joint = self.policy.decide_joint(bandwidth, k=k,
                                                 streaming=self.streaming)
                decision = joint
            elif (self.sla_s is not None
                    and hasattr(self.policy, "decide_exit")):
                ed = self.policy.decide_exit(budget, bandwidth, k=k)
                decision = ed.decision
                if self.engine.has_exits:
                    exit_index = ed.exit_index
                    active = self.engine.exit_engine(exit_index)
            else:
                decision = self.policy.decide(bandwidth, k=k)
            point = decision.point
            if self.resilience is not None and point < active.num_nodes:
                timeout_s = self.resilience.timeout_for(
                    decision.predicted_latency, budget)

        cache = self._cache_for(exit_index)
        device_cache_hit = point in cache
        partitioned = cache.get(point)
        overhead = 0.0 if device_cache_hit else PARTITION_OVERHEAD_S

        head_outputs: dict | None = None
        transfers: dict | None = None
        if self.functional:
            head_outputs, transfers = self._run_head(partitioned, exit_index)

        device_s = float(
            self.device_model.sample_graph_time(active.head_profiles(point), self._rng)
        )

        if point == active.num_nodes:
            # Local inference: no network, no server involvement.
            if head_outputs is not None:
                self.last_output = head_outputs[active.graph.output_name]
            total = device_s + overhead
            return InferenceRecord(
                request_id=request_id,
                start_s=now_s,
                partition_point=point,
                estimated_bandwidth_bps=bandwidth,
                k_used=k,
                device_s=device_s,
                upload_s=0.0,
                server_s=0.0,
                download_s=0.0,
                overhead_s=overhead,
                total_s=total,
                load_level=self.server.load_schedule.level_at(now_s).name,
                device_cache_hit=device_cache_hit,
                server_cache_hit=True,
                sla_s=self.sla_s,
                exit_index=exit_index,
                met_sla=(total <= self.sla_s
                         if self.sla_s is not None else None),
            )

        codec_name = joint.codec if joint is not None else "fp32"
        encode_s = joint.predicted_encode_s if joint is not None else 0.0
        decode_s = joint.predicted_decode_s if joint is not None else 0.0
        wire_bytes = (joint.wire_bytes if joint is not None
                      else partitioned.upload_bytes)
        streamed = joint is not None and joint.streamed
        if transfers is not None and codec_name != "fp32":
            # The functional payload really goes through the codec, so
            # lossy results are genuinely tolerance-bounded and lossless
            # ones genuinely bit-exact; simulated timing uses the declared
            # constants above, never these payloads.
            codec = self.engine.codec(codec_name)
            transfers = {name: codec.encode(arr)
                         for name, arr in transfers.items()}

        budget = timeout_s if self.resilience is not None else None
        arrivals: Dict[str, float] | None = None
        if streamed:
            assert self.streaming is not None
            chunk_sizes = self.streaming.plan_chunks(wire_bytes)
            result = self.channel.try_upload_stream(
                chunk_sizes, now_s, self._rng, timeout_s=budget,
                max_chunk_retries=self.streaming.max_chunk_retries,
                min_chunk_timeout_s=self.streaming.min_chunk_timeout_s,
            )
            if result.delivered:
                arrivals, decode_s = self._stream_arrivals(
                    point, codec_name, chunk_sizes, result,
                    now_s + device_s + encode_s)
        else:
            result = self.channel.try_upload(wire_bytes, now_s, self._rng,
                                             timeout_s=budget)
        if result.delivered:
            # Passive bandwidth measurement from the real transfer (§IV).
            self.estimator.add_passive(now_s, wire_bytes, result.elapsed_s)
        elif self.resilience is not None:
            # The failed transfer is still evidence: bandwidth was below
            # 8*bytes/elapsed, or the link is dark.
            self.estimator.add_failure(now_s, wire_bytes, result.elapsed_s)
        else:
            # A non-resilient device blocks on the dead transfer forever.
            return self._failed_record(
                request_id, now_s, point, bandwidth, k,
                device_s=device_s, upload_s=result.elapsed_s, overhead_s=overhead,
                device_cache_hit=device_cache_hit,
                codec=codec_name, encode_s=encode_s,
                chunks=getattr(result, "chunks", 1) or 1,
                exit_index=exit_index,
            )

        return PendingOffload(
            request_id=request_id,
            start_s=now_s,
            partition_point=point,
            estimated_bandwidth_bps=bandwidth,
            k_used=k,
            device_s=device_s,
            upload_s=result.elapsed_s,
            overhead_s=overhead,
            device_cache_hit=device_cache_hit,
            arrive_s=now_s + device_s + encode_s + result.elapsed_s + decode_s,
            transfers=transfers,
            head_outputs=head_outputs,
            timeout_s=timeout_s,
            delivered=result.delivered,
            codec=codec_name,
            encode_s=encode_s,
            decode_s=decode_s,
            chunks=len(chunk_sizes) if streamed else 1,
            wire_bytes=wire_bytes,
            arrivals=arrivals,
            sla_s=self.sla_s,
            exit_index=exit_index,
        )

    def _stream_arrivals(self, point: int, codec_name: str,
                         chunk_sizes, result: StreamResult, base_s: float,
                         ) -> Tuple[Dict[str, float], float]:
        """Per-tensor availability of a delivered stream.

        A crossing tensor is *available* once the chunk carrying its last
        wire byte has landed and the server's decoder — which works through
        tensors in wire order — has decoded it:
        ``avail_v = max(arrival_v, avail_{v-1}) + decode_v``.  Returns the
        absolute availability map (keyed by producer name) and the exposed
        decode time — how far the last availability trails the upload's
        end; earlier decodes hid behind the stream.
        """
        codec = self.engine.codec(codec_name)
        chunk_cum = list(accumulate(chunk_sizes))
        arrivals: Dict[str, float] = {}
        avail = 0.0
        wire_cum = 0
        ci = 0
        for name, nbytes, op in self.engine.cut_tensors(point):
            wire_cum += codec.wire_bytes(nbytes, op)
            while ci < len(chunk_cum) - 1 and chunk_cum[ci] < wire_cum:
                ci += 1
            arrival = result.offsets_s[ci]
            avail = max(arrival, avail) + codec.decode_time_s(float(nbytes))
            arrivals[name] = base_s + avail
        return arrivals, max(avail - result.elapsed_s, 0.0)

    def _failed_record(self, request_id: int, start_s: float, point: int,
                       bandwidth: float, k: float, *, device_s: float,
                       upload_s: float, overhead_s: float,
                       device_cache_hit: bool, server_s: float = 0.0,
                       codec: str = "fp32", encode_s: float = 0.0,
                       chunks: int = 1, exit_index: int | None = None,
                       ) -> InferenceRecord:
        """A request a non-resilient device can never finish (total = inf)."""
        return InferenceRecord(
            request_id=request_id,
            start_s=start_s,
            partition_point=point,
            estimated_bandwidth_bps=bandwidth,
            k_used=k,
            device_s=device_s,
            upload_s=upload_s,
            server_s=server_s,
            download_s=0.0,
            overhead_s=overhead_s,
            total_s=math.inf,
            load_level=self.server.load_schedule.level_at(start_s).name,
            device_cache_hit=device_cache_hit,
            server_cache_hit=False,
            status="failed",
            codec=codec,
            chunks=chunks,
            encode_s=encode_s,
            server_id=self.server.server_id,
            sla_s=self.sla_s,
            exit_index=exit_index,
            met_sla=False if self.sla_s is not None else None,
        )

    def complete_inference(self, pending: PendingOffload, reply: OffloadReply,
                           download_at_s: float | None = None,
                           download_timeout_s: float | None = None,
                           ) -> InferenceRecord:
        """Finish a pending offload from the server's reply.

        ``download_at_s`` is when the result starts downloading — the upload
        arrival time in the synchronous path, the batch completion time
        under dynamic batching.  A download that misses
        ``download_timeout_s`` (or never completes) yields a
        ``status="failed"`` record; the resilient retry loop turns that
        into another attempt.
        """
        if download_at_s is None:
            download_at_s = pending.arrive_s
        result = self.channel.try_download(
            reply.result_bytes, download_at_s, self._rng,
            timeout_s=download_timeout_s,
        )
        if not result.delivered:
            return self._failed_record(
                pending.request_id, pending.start_s, pending.partition_point,
                pending.estimated_bandwidth_bps, pending.k_used,
                device_s=pending.device_s, upload_s=pending.upload_s,
                overhead_s=pending.overhead_s + reply.partition_overhead_s,
                device_cache_hit=pending.device_cache_hit,
                server_s=reply.server_exec_s,
                codec=pending.codec, encode_s=pending.encode_s,
                chunks=pending.chunks,
                exit_index=pending.exit_index,
            )
        download_s = result.elapsed_s

        if reply.tensors is not None:
            out_name = self._engine_for(pending.exit_index).graph.output_name
            self.last_output = (
                reply.tensors[out_name] if out_name in reply.tensors
                else pending.head_outputs[out_name]  # output produced before the cut
            )

        total = (
            pending.device_s
            + pending.encode_s
            + pending.upload_s
            + pending.decode_s
            + reply.server_exec_s
            + download_s
            + pending.overhead_s
            + reply.partition_overhead_s
        )
        return InferenceRecord(
            request_id=pending.request_id,
            start_s=pending.start_s,
            partition_point=pending.partition_point,
            estimated_bandwidth_bps=pending.estimated_bandwidth_bps,
            k_used=pending.k_used,
            device_s=pending.device_s,
            upload_s=pending.upload_s,
            server_s=reply.server_exec_s,
            download_s=download_s,
            overhead_s=pending.overhead_s + reply.partition_overhead_s,
            total_s=total,
            load_level=self.server.load_schedule.level_at(download_at_s).name,
            device_cache_hit=pending.device_cache_hit,
            server_cache_hit=reply.cache_hit,
            server_queue_s=reply.queue_s,
            batch_size=reply.batch_size,
            timeout_s=pending.timeout_s,
            codec=pending.codec,
            chunks=pending.chunks,
            encode_s=pending.encode_s,
            decode_s=pending.decode_s,
            server_id=self.server.server_id,
            sla_s=pending.sla_s,
            exit_index=pending.exit_index,
            met_sla=(total <= pending.sla_s
                     if pending.sla_s is not None else None),
        )

    def fallback_record(self, request_id: int, start_s: float, now_s: float, *,
                        retries: int = 0, timeout_s: float = 0.0,
                        status: str = "fallback_local") -> InferenceRecord:
        """Resolve a failed offload by running the whole model locally.

        ``now_s - start_s`` is the time already burned on the offload path
        (timeouts waited out, backoff, rejections); it lands in ``wasted_s``
        and in the total, because the user experienced it.
        """
        record = self.begin_inference(now_s, request_id=request_id,
                                      force_local=True)
        assert isinstance(record, InferenceRecord)
        wasted = now_s - start_s
        return self._finalize_sla(replace(
            record,
            start_s=start_s,
            total_s=record.total_s + wasted,
            wasted_s=wasted,
            retries=retries,
            timeout_s=timeout_s,
            status=status,
        ))

    def request_inference(self, now_s: float) -> InferenceRecord:
        """Run one end-to-end inference starting at ``now_s``."""
        if self.resilience is not None:
            return self._request_resilient(now_s)
        pending = self.begin_inference(now_s)
        if isinstance(pending, InferenceRecord):
            return pending
        reply = self.server.handle_offload(
            pending.arrive_s, pending.request_id, pending.partition_point,
            tensors=pending.transfers, arrivals=pending.arrivals,
            exit_index=pending.exit_index,
        )
        if not isinstance(reply, OffloadReply):
            # Crashed (None) or shedding (BusyReply): a non-resilient device
            # understands neither and waits forever.
            return self._failed_record(
                pending.request_id, pending.start_s, pending.partition_point,
                pending.estimated_bandwidth_bps, pending.k_used,
                device_s=pending.device_s, upload_s=pending.upload_s,
                overhead_s=pending.overhead_s,
                device_cache_hit=pending.device_cache_hit,
                exit_index=pending.exit_index,
            )
        return self.complete_inference(pending, reply)

    def _request_resilient(self, now_s: float) -> InferenceRecord:
        """Deadline + retry + circuit-breaker wrapper around one inference."""
        cfg = self.resilience
        breaker = self.breaker
        assert cfg is not None and breaker is not None

        clock = now_s
        retries = 0
        rejected = False
        timeout_seen = 0.0
        request_id: int | None = None
        sla = self.sla_s

        if not breaker.allow_offload(clock):
            record = self.begin_inference(clock, force_local=True)
            assert isinstance(record, InferenceRecord)
            return self._finalize_sla(replace(record, status="fallback_local"))

        while True:
            # Retries have already burned part of the class SLA; the
            # attempt's decision and deadline run on what is left.
            budget = None if sla is None else max(sla - (clock - now_s), 0.0)
            pending = self.begin_inference(clock, request_id=request_id,
                                           sla_budget_s=budget)
            if isinstance(pending, InferenceRecord):
                # The decision itself chose local.  On the first attempt
                # that is normal operation; after failures it is the
                # degraded path (the failures fed the estimator/k).
                if retries == 0:
                    return pending
                wasted = clock - now_s
                return self._finalize_sla(replace(
                    pending,
                    start_s=now_s,
                    total_s=pending.total_s + wasted,
                    wasted_s=wasted,
                    retries=retries,
                    timeout_s=timeout_seen,
                    status="rejected" if rejected else "fallback_local",
                ))
            request_id = pending.request_id
            timeout_seen = pending.timeout_s

            failed_at = None  # when the device learned this attempt died
            if not pending.delivered:
                failed_at = pending.deadline_s
            else:
                reply = self.server.handle_offload(
                    pending.arrive_s, pending.request_id,
                    pending.partition_point, tensors=pending.transfers,
                    arrivals=pending.arrivals,
                    exit_index=pending.exit_index,
                )
                if isinstance(reply, OffloadReply):
                    remaining = (pending.timeout_s - pending.upload_s
                                 - pending.decode_s - reply.server_exec_s)
                    if remaining > 0:
                        record = self.complete_inference(
                            pending, reply, download_timeout_s=remaining
                        )
                        if record.status != "failed":
                            finish_s = pending.arrive_s + reply.server_exec_s
                            breaker.record_success(finish_s)
                            wasted = clock - now_s
                            return self._finalize_sla(replace(
                                record,
                                start_s=now_s,
                                total_s=record.total_s + wasted,
                                wasted_s=wasted,
                                retries=retries,
                                status="retried" if retries else "ok",
                            ))
                    failed_at = pending.deadline_s
                elif isinstance(reply, BusyReply):
                    # Fast shed: the rejection round-trips immediately; the
                    # device honours retry_after before trying again.
                    rejected = True
                    clock = (pending.arrive_s + self.channel.params.base_latency_s
                             + reply.retry_after_s)
                else:
                    # Crashed server: no reply ever comes; the deadline fires.
                    failed_at = pending.deadline_s

            if failed_at is not None:
                clock = failed_at
                breaker.record_failure(clock)

            if (retries >= cfg.max_retries
                    or not breaker.allow_offload(clock)
                    # An exhausted SLA ends the retry loop: another attempt
                    # cannot meet the deadline, only waste more latency.
                    or (sla is not None and clock - now_s >= sla)):
                return self.fallback_record(
                    request_id, now_s, clock, retries=retries,
                    timeout_s=timeout_seen,
                    status="rejected" if rejected else "fallback_local",
                )
            retries += 1
            if failed_at is not None:
                clock += cfg.backoff_s(retries, float(self._rng.random()))
