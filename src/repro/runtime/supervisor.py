"""Fleet supervisor: per-server health probing, ``k_s`` tracking, breakers.

The paper's §IV runtime profiler lives on the *device*: one probe stream,
one load query, one ``k``.  With N edge servers behind a gateway that
design stops scaling — every device probing every server multiplies the
probe traffic by ``clients × servers``, and a device that stopped
offloading to a server never learns it recovered.  The supervisor
centralises the profiler instead: one probe loop per *server*, feeding

- a per-server :class:`~repro.network.estimator.BandwidthEstimator`
  (probe successes as samples, failures as upper bounds),
- a per-server :class:`~repro.network.estimator.LinkEstimator` fed by the
  two-size probe decomposition (see :meth:`FleetSupervisor.probe`): the
  learned link base latency that replaces a configured
  ``extra_latencies_s`` entry, with the channel's declared base latency
  as the prior,
- a per-server influential factor ``k_s`` with a freshness timestamp
  (the same §IV load query, now asked on the clients' behalf),
- a per-server :class:`~repro.runtime.resilience.CircuitBreaker` whose
  half-open probe is the supervisor's own tick,
- a live/suspect/dead state machine driven by missed probes and by the
  gateway's observations of real request outcomes (``note_ok`` /
  ``note_failure`` / ``note_busy``).

Crash/restart detection reuses :class:`~repro.network.faults.ServerFaultPlan`
as the chaos source: when a server's restart count advances, the
supervisor wipes its bandwidth window and resets ``k_s`` to 1 — the fresh
process has an empty load-factor window, so pre-crash measurements are
lies.

All supervisor randomness (probe timing draws through the channel) comes
from its own RNG stream; with probing disabled the supervisor draws
nothing and mutates nothing, which is what makes the 1-server degenerate
gateway byte-identical to the direct client↔server path.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.network.channel import Channel
from repro.network.estimator import BandwidthEstimator, LinkEstimator
from repro.runtime.messages import ProbeReport
from repro.runtime.resilience import CircuitBreaker
from repro.runtime.server import EdgeServer

#: Health states of one fleet server, as the supervisor sees it.
LIVE = "live"        # answering probes/requests
SUSPECT = "suspect"  # missed at least one probe, not yet declared dead
DEAD = "dead"        # missed ``dead_after_misses`` probes in a row


@dataclass
class ServerHealth:
    """Mutable per-server health record."""

    server_id: int
    state: str = LIVE
    k: float = 1.0
    k_time_s: float = -math.inf
    misses: int = 0
    restarts_seen: int = 0
    probes_sent: int = 0
    probe_failures: int = 0
    busy_count: int = 0

    @property
    def is_dead(self) -> bool:
        return self.state == DEAD


@dataclass(frozen=True)
class SupervisorConfig:
    """Knobs of the supervisor loop (probe cadence and thresholds)."""

    probe_period_s: float = 5.0       # §IV profiler period, per server
    probe_timeout_s: float = 1.0      # deadline on each health probe
    dead_after_misses: int = 2        # consecutive misses before DEAD
    breaker_threshold: int = 3        # failures that open a server's breaker
    breaker_cooldown_s: float = 10.0  # open time before a probe may close it
    k_ttl_s: float = 30.0             # k_s older than this stops steering
    bandwidth_window_s: float = 30.0  # age bound on per-server bw samples
    learn_links: bool = True          # decompose probes into (latency, bw)
    ping_bytes: int = 2048            # small-upload size of the probe pair
    link_alpha: float = 0.25          # EWMA gain of the link estimator
    link_outlier_factor: float = 4.0  # deviations before a sample is rejected

    def __post_init__(self) -> None:
        if self.probe_period_s <= 0 or self.probe_timeout_s <= 0:
            raise ValueError("probe_period_s and probe_timeout_s must be positive")
        if self.dead_after_misses < 1:
            raise ValueError("dead_after_misses must be >= 1")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if self.breaker_cooldown_s < 0:
            raise ValueError("breaker_cooldown_s must be non-negative")
        if self.k_ttl_s <= 0 or self.bandwidth_window_s <= 0:
            raise ValueError("k_ttl_s and bandwidth_window_s must be positive")
        if self.ping_bytes < 1:
            raise ValueError("ping_bytes must be >= 1")
        if not 0 < self.link_alpha <= 1:
            raise ValueError("link_alpha must be in (0, 1]")
        if self.link_outlier_factor <= 0:
            raise ValueError("link_outlier_factor must be positive")


class FleetSupervisor:
    """Keeps per-server health state fresh for the gateway's routing."""

    def __init__(
        self,
        servers: Sequence[EdgeServer],
        channels: Sequence[Channel],
        config: SupervisorConfig | None = None,
        seed: int = 0,
    ) -> None:
        if len(servers) != len(channels):
            raise ValueError("one channel per server required")
        if not servers:
            raise ValueError("need at least one server")
        self.config = config or SupervisorConfig()
        self.servers = list(servers)
        self.channels = list(channels)
        self._rng = np.random.default_rng(seed)
        self.health: Dict[int, ServerHealth] = {}
        self.estimators: Dict[int, BandwidthEstimator] = {}
        self.links: Dict[int, LinkEstimator] = {}
        self.breakers: Dict[int, CircuitBreaker] = {}
        self.last_probe: Dict[int, ProbeReport] = {}
        self._by_id: Dict[int, Tuple[EdgeServer, Channel]] = {}
        for server, channel in zip(self.servers, self.channels):
            sid = server.server_id
            if sid in self.health:
                raise ValueError(f"duplicate server_id {sid}")
            self._by_id[sid] = (server, channel)
            self.health[sid] = ServerHealth(server_id=sid)
            self.estimators[sid] = BandwidthEstimator(
                window_s=self.config.bandwidth_window_s)
            # The channel's declared base latency is the *prior*; probe
            # decomposition replaces it with a learned estimate.
            self.links[sid] = LinkEstimator(
                prior_s=channel.params.base_latency_s,
                alpha=self.config.link_alpha,
                outlier_factor=self.config.link_outlier_factor)
            self.breakers[sid] = CircuitBreaker(
                self.config.breaker_threshold, self.config.breaker_cooldown_s)

    def _server(self, server_id: int) -> EdgeServer:
        return self._by_id[server_id][0]

    # -- probe loop -----------------------------------------------------------

    def tick(self, now_s: float) -> None:
        """One supervisor period: probe every server (in id order)."""
        for server in self.servers:
            self.probe(server.server_id, now_s)

    def probe(self, server_id: int, now_s: float) -> bool:
        """One §IV-style health probe against ``server_id``.

        With ``learn_links`` (the default) the probe is *two* uploads —
        a fixed small ping plus the adaptive bulk packet — whose elapsed
        difference isolates the transfer term: the bandwidth sample is
        ``(bulk_bytes - ping_bytes) * 8 / (bulk_s - ping_s)``, so the
        link's base latency cancels instead of biasing it low, and the
        ping's residual ``ping_s - ping_bytes*8/B`` feeds that server's
        :class:`~repro.network.estimator.LinkEstimator`.  A single timed
        upload cannot tell a slow link from a thin one — that confusion
        previously leaked link latency into the bandwidth estimate (and
        through routing into apparent load).  With ``learn_links=False``
        the probe is the original single upload.

        Success refreshes ``k_s`` and the estimators and closes the
        breaker (after its cooldown); failure records a bandwidth upper
        bound, counts a miss, and feeds the breaker.  Returns True on
        success.
        """
        health = self.health[server_id]
        self.detect_restart(server_id, now_s)
        server, channel = self._by_id[server_id]
        estimator = self.estimators[server_id]
        breaker = self.breakers[server_id]
        health.probes_sent += 1
        ping = None
        if self.config.learn_links:
            ping = channel.try_upload(
                self.config.ping_bytes, now_s, self._rng,
                timeout_s=self.config.probe_timeout_s)
            if not ping.delivered:
                estimator.add_failure(
                    now_s, self.config.ping_bytes, ping.elapsed_s)
                return self._probe_missed(health, breaker, now_s)
        probe_bytes = estimator.next_probe_bytes()
        result = channel.try_upload(
            probe_bytes, now_s, self._rng,
            timeout_s=self.config.probe_timeout_s)
        reply = (server.handle_load_query(now_s)
                 if result.delivered else None)
        if result.delivered and reply is not None:
            self._ingest_timings(server_id, now_s, ping, probe_bytes,
                                 result.elapsed_s)
            health.k = max(reply.k, 1.0)
            health.k_time_s = now_s
            health.misses = 0
            health.state = LIVE
            breaker.record_success(now_s)
            return True
        if result.delivered:
            # The link works but the server answered nothing: it is the
            # process that is gone, not the path.
            self._ingest_timings(server_id, now_s, ping, probe_bytes,
                                 result.elapsed_s)
        else:
            estimator.add_failure(now_s, probe_bytes, result.elapsed_s)
        return self._probe_missed(health, breaker, now_s)

    def _probe_missed(self, health: ServerHealth, breaker: CircuitBreaker,
                      now_s: float) -> bool:
        health.probe_failures += 1
        health.misses += 1
        health.state = (DEAD if health.misses >= self.config.dead_after_misses
                        else SUSPECT)
        breaker.record_failure(now_s)
        return False

    def _ingest_timings(self, server_id: int, now_s: float, ping,
                        probe_bytes: int, bulk_s: float) -> None:
        """Fold one delivered probe's timings into the estimators."""
        estimator = self.estimators[server_id]
        if ping is None:
            estimator.add_probe(now_s, probe_bytes, bulk_s)
            return
        delta_bytes = probe_bytes - self.config.ping_bytes
        delta_s = bulk_s - ping.elapsed_s
        if delta_bytes <= 0 or delta_s <= 0:
            # Degenerate pair (jitter inverted the ordering, or the bulk
            # size collapsed onto the ping): keep the uncorrected sample
            # rather than inventing a negative bandwidth.
            estimator.add_probe(now_s, probe_bytes, bulk_s)
            return
        estimator.add_probe(now_s, delta_bytes, delta_s)
        bandwidth = delta_bytes * 8 / delta_s
        latency = max(
            ping.elapsed_s - self.config.ping_bytes * 8 / bandwidth, 0.0)
        accepted = self.links[server_id].add(latency)
        self.last_probe[server_id] = ProbeReport(
            server_id=server_id, time_s=now_s, ping_s=ping.elapsed_s,
            bulk_s=bulk_s, bulk_bytes=probe_bytes, latency_s=latency,
            bandwidth_bps=bandwidth, accepted=accepted)

    def detect_restart(self, server_id: int, now_s: float) -> bool:
        """Notice a crash/restart cycle and wipe per-server learned state.

        A restarted server process has an empty load-factor window and a
        cold partition cache; the supervisor mirrors that by resetting
        ``k_s`` to 1 (stale immediately) and clearing the bandwidth
        window.  Returns True when a restart was detected.
        """
        plan = self._server(server_id).fault_plan
        if plan is None:
            return False
        health = self.health[server_id]
        restarts = plan.restarts_before(now_s)
        if restarts <= health.restarts_seen:
            return False
        health.restarts_seen = restarts
        health.k = 1.0
        health.k_time_s = -math.inf
        self.estimators[server_id].reset()
        # ``self.links`` deliberately survives the wipe: link latency is a
        # property of the *path*, not the server process, so everything
        # learned about it before the crash still holds after the restart.
        return True

    # -- request-outcome observations (fed by the gateway ports) ---------------

    def note_ok(self, server_id: int, now_s: float) -> None:
        """A real request (offload or load query) got a healthy reply."""
        health = self.health[server_id]
        health.misses = 0
        health.state = LIVE
        self.breakers[server_id].record_success(now_s)

    def note_failure(self, server_id: int, now_s: float) -> None:
        """A real request got no reply (crashed server or dead path)."""
        health = self.health[server_id]
        health.misses += 1
        health.state = (DEAD if health.misses >= self.config.dead_after_misses
                        else SUSPECT)
        self.breakers[server_id].record_failure(now_s)

    def note_busy(self, server_id: int, now_s: float) -> None:
        """A request was shed with BusyReply: alive, but saturated."""
        health = self.health[server_id]
        health.busy_count += 1
        health.misses = 0
        health.state = LIVE  # a rejection is still an answer

    # -- routing inputs ---------------------------------------------------------

    def k_for(self, server_id: int, now_s: float, fallback: float) -> float:
        """Freshest known ``k_s``, or ``fallback`` when unknown/expired."""
        health = self.health[server_id]
        if now_s - health.k_time_s > self.config.k_ttl_s:
            return fallback
        return health.k

    def bandwidth_for(self, server_id: int, fallback: float) -> float:
        """Per-server bandwidth estimate, or ``fallback`` with no samples."""
        estimator = self.estimators[server_id]
        if estimator.sample_count == 0:
            return fallback
        return estimator.estimate()

    def latency_for(self, server_id: int) -> float:
        """Learned link base latency of ``server_id`` (prior until probed)."""
        return self.links[server_id].estimate()

    def routable(self, server_id: int) -> bool:
        """May the gateway route new offloads to this server right now?"""
        return (not self.health[server_id].is_dead
                and not self.breakers[server_id].is_open)

    def live_servers(self) -> Tuple[int, ...]:
        """Server ids currently believed alive (LIVE or SUSPECT)."""
        return tuple(s.server_id for s in self.servers
                     if not self.health[s.server_id].is_dead)

    def snapshot(self, now_s: float) -> Dict[int, Dict[str, object]]:
        """Observability dump: one row per server (state, k, breaker, ...)."""
        rows: Dict[int, Dict[str, object]] = {}
        for server in self.servers:
            sid = server.server_id
            health = self.health[sid]
            rows[sid] = {
                "state": health.state,
                "k": health.k,
                "k_age_s": now_s - health.k_time_s,
                "monitor_age_s": server.monitor.age_s(now_s),
                "breaker": self.breakers[sid].state,
                "misses": health.misses,
                "restarts_seen": health.restarts_seen,
                "probes_sent": health.probes_sent,
                "probe_failures": health.probe_failures,
                "busy_count": health.busy_count,
                "bandwidth_bps": self.bandwidth_for(sid, float("nan")),
                "link_latency_s": self.latency_for(sid),
                "link_samples": self.links[sid].sample_count,
            }
        return rows
