"""Multi-client extension: several devices sharing one edge server.

The paper's motivation is that "the increasing offloaded tasks on an edge
server are gradually facing the contention of both the network and
computation resources" — its experiments emulate that contention with
synthetic background load.  This module closes the loop instead: the
server's contention level is *endogenous*, derived from the offload
traffic the clients themselves generate, so a fleet of load-aware clients
exhibits the interesting emergent behaviour — when the server saturates,
``k`` rises, some clients retreat to local inference, and the server
recovers.

- :class:`SharedLoadTracker` — sliding-window estimate of GPU busy time.
- :class:`EndogenousLoad` — adapts the tracker to the ``level_at`` protocol
  of :class:`~repro.hardware.background.LoadSchedule`, synthesising a
  :class:`~repro.hardware.background.LoadLevel` from current utilisation.
- :class:`SharedEdgeServer` — an :class:`~repro.runtime.server.EdgeServer`
  that feeds its own execution times back into the tracker.
- :class:`MultiClientSystem` — N devices, one server, one event loop.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, List, Tuple

import numpy as np

from repro.core.engine import LoADPartEngine
from repro.hardware.background import LoadLevel
from repro.network.channel import Channel, NetworkParams
from repro.network.faults import FaultyChannel
from repro.network.traces import BandwidthTrace, ConstantTrace
from repro.runtime.batching import DynamicBatcher, PendingRequest
from repro.runtime.client import PendingOffload, UserDevice
from repro.runtime.events import EventLoop
from repro.runtime.messages import InferenceRecord, OffloadReply
from repro.runtime.server import EdgeServer
from repro.runtime.system import OffloadingSystem, SystemConfig, Timeline


class SharedLoadTracker:
    """Sliding-window GPU busy-time tracker shared by all clients."""

    def __init__(self, window_s: float = 3.0) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self._busy: Deque[Tuple[float, float]] = deque()

    def record(self, time_s: float, busy_s: float) -> None:
        if busy_s < 0:
            raise ValueError("busy time must be non-negative")
        self._busy.append((time_s, busy_s))
        self._evict(time_s)

    def _evict(self, now_s: float) -> None:
        while self._busy and self._busy[0][0] < now_s - self.window_s:
            self._busy.popleft()

    def utilization(self, now_s: float) -> float:
        """Fraction of the window the GPU spent on offloaded work (capped)."""
        self._evict(now_s)
        busy = sum(b for _, b in self._busy)
        return min(busy / self.window_s, 1.0)


class EndogenousLoad:
    """Synthesises a LoadLevel from the tracker's current utilisation.

    Quacks like :class:`~repro.hardware.background.LoadSchedule` so the
    unmodified :class:`EdgeServer` machinery (watchdog, utilisation
    queries) keeps working.  Contention parameters interpolate between the
    calibrated idle and 100%(l) regimes as utilisation grows.
    """

    def __init__(self, tracker: SharedLoadTracker) -> None:
        self.tracker = tracker

    def level_at(self, t: float) -> LoadLevel:
        util = self.tracker.utilization(t)
        # Queueing-flavoured growth: waits diverge as the GPU saturates
        # (residual service time / (1 - utilisation), capped).
        wait = (0.15e-3 + 0.6e-3 * util) / (1.0 - min(util, 0.9))
        return LoadLevel(
            name=f"shared({util * 100:.0f}%)",
            utilization=util,
            contend_prob=min(0.8 * util, 0.8),
            wait_mean_s=wait,
            wait_cv=1.2,
            initial_wait_s=2.0 * util * wait,
        )


class SharedEdgeServer(EdgeServer):
    """EdgeServer whose contention comes from its own offload traffic."""

    def __init__(self, engine: LoADPartEngine, tracker: SharedLoadTracker,
                 **kwargs) -> None:
        super().__init__(engine, load_schedule=EndogenousLoad(tracker), **kwargs)
        self.tracker = tracker

    def handle_offload(self, now_s: float, request_id: int, point: int,
                       tensors=None, arrivals=None, exit_index=None):
        reply = super().handle_offload(now_s, request_id, point,
                                       tensors=tensors, arrivals=arrivals,
                                       exit_index=exit_index)
        # The executed tail occupies the shared GPU; later requests see it.
        # A crash (None) or rejection (BusyReply) executed nothing.  Under
        # arrival-gated streaming the exposed server time under-reports
        # occupancy, so the busy figure wins when present.
        if isinstance(reply, OffloadReply):
            busy = (reply.gpu_busy_s if reply.gpu_busy_s is not None
                    else reply.server_exec_s)
            self.tracker.record(now_s, busy)
        return reply

    def handle_offload_batch(self, now_s, requests, point, batching,
                             exit_index=None):
        replies = super().handle_offload_batch(now_s, requests, point, batching,
                                               exit_index=exit_index)
        if replies:
            # The GPU runs the batch once: busy time is the shared execution
            # time (queueing delay is waiting, not occupancy).
            self.tracker.record(now_s, replies[0].server_exec_s - replies[0].queue_s)
        return replies


@dataclass(frozen=True)
class ServerStats:
    """Per-server slice of a fleet run (nan-safe when a server sat idle).

    ``requests`` counts records whose (final) attempt was sent to this
    server; purely-local records belong to no server and appear in no
    breakdown row.  Latency statistics cover completed requests only, so
    an empty or all-failed server reports ``nan`` rather than raising —
    mirroring the nan-on-empty convention of the fleet aggregates.
    """

    server_id: int
    requests: int
    completed: int
    availability: float
    mean_latency: float
    p95_latency: float
    rejected: int
    failed: int
    fallbacks: int

    @staticmethod
    def from_records(server_id: int, records: List[InferenceRecord]) -> "ServerStats":
        completed = [r for r in records if r.completed]
        lat = np.array([r.total_s for r in completed])
        return ServerStats(
            server_id=server_id,
            requests=len(records),
            completed=len(completed),
            availability=(len(completed) / len(records) if records
                          else float("nan")),
            mean_latency=float(lat.mean()) if lat.size else float("nan"),
            p95_latency=(float(np.percentile(lat, 95)) if lat.size
                         else float("nan")),
            rejected=sum(1 for r in records if r.status == "rejected"),
            failed=sum(1 for r in records if r.status == "failed"),
            fallbacks=sum(1 for r in records if r.status == "fallback_local"),
        )


@dataclass(frozen=True)
class FleetResult:
    """Per-client timelines plus fleet-level aggregates."""

    timelines: Tuple[Timeline, ...]
    policy: str
    #: Edge servers behind the run (1 for the classic shared-server fleet).
    num_servers: int = 1

    def _latencies(self) -> np.ndarray:
        arrays = [t.latencies for t in self.timelines]
        return np.concatenate(arrays) if arrays else np.array([])

    @property
    def mean_latency(self) -> float:
        lat = self._latencies()
        if lat.size == 0:
            return float("nan")
        return float(lat.mean())

    @property
    def p95_latency(self) -> float:
        lat = self._latencies()
        if lat.size == 0:
            return float("nan")
        return float(np.percentile(lat, 95))

    @property
    def local_fraction(self) -> float:
        records = [r for t in self.timelines for r in t]
        return sum(1 for r in records if r.is_local) / max(len(records), 1)

    @property
    def total_requests(self) -> int:
        return sum(len(t) for t in self.timelines)

    @property
    def availability(self) -> float:
        """Fraction of issued requests (fleet-wide) that completed."""
        records = [r for t in self.timelines for r in t]
        if not records:
            return float("nan")
        return sum(1 for r in records if r.completed) / len(records)

    @property
    def fallback_rate(self) -> float:
        """Fraction of requests resolved by local fallback or rejection."""
        records = [r for t in self.timelines for r in t]
        if not records:
            return float("nan")
        return sum(1 for r in records if r.fell_back) / len(records)

    def completed_latencies(self) -> np.ndarray:
        """Latencies of the completed requests only (finite by construction)."""
        records = [r for t in self.timelines for r in t if r.completed]
        return np.array([r.total_s for r in records])

    def sla_attainment(self) -> float:
        """Fraction of SLA-carrying requests (fleet-wide) that met their
        deadline; NaN when no request carried an SLA."""
        carrying = [r for t in self.timelines for r in t if r.sla_s is not None]
        if not carrying:
            return float("nan")
        return sum(1 for r in carrying if r.met_sla) / len(carrying)

    def exit_counts(self) -> dict:
        """Fleet-wide histogram of served exits (``None`` = full network)."""
        counts: dict = {}
        for t in self.timelines:
            for r in t:
                counts[r.exit_index] = counts.get(r.exit_index, 0) + 1
        return counts

    @property
    def local_requests(self) -> int:
        """Requests resolved with no server involved at all."""
        return sum(1 for t in self.timelines for r in t if r.server_id is None)

    def server_breakdown(self) -> Tuple[ServerStats, ...]:
        """One :class:`ServerStats` row per server id ``0..num_servers-1``.

        Servers that never saw a request still get a row (with ``nan``
        statistics), so dashboards and gates can iterate the fleet without
        existence checks.
        """
        by_server: dict[int, List[InferenceRecord]] = {
            sid: [] for sid in range(self.num_servers)}
        for timeline in self.timelines:
            for r in timeline:
                if r.server_id is not None and r.server_id in by_server:
                    by_server[r.server_id].append(r)
        return tuple(ServerStats.from_records(sid, by_server[sid])
                     for sid in range(self.num_servers))


class MultiClientSystem:
    """N user-end devices sharing one edge server over one access point."""

    def __init__(
        self,
        engine: LoADPartEngine,
        num_clients: int,
        bandwidth_trace: BandwidthTrace | None = None,
        config: SystemConfig | None = None,
        tracker_window_s: float = 3.0,
    ) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        self.config = config or SystemConfig()
        self.engine = engine
        self.tracker = SharedLoadTracker(window_s=tracker_window_s)
        self.server = SharedEdgeServer(
            engine,
            self.tracker,
            monitor_window_s=self.config.monitor_window_s,
            watchdog_threshold=self.config.watchdog_threshold,
            watchdog_period_s=self.config.watchdog_period_s,
            seed=self.config.seed + 100,
            backend=self.config.backend,
            functional=self.config.functional,
            model_seed=self.config.seed,
            fault_plan=self.config.server_faults,
            parallelism=self.config.parallelism,
        )
        trace = bandwidth_trace or ConstantTrace(8e6)
        if self.config.faults is not None:
            self.channel = FaultyChannel(trace, self.config.faults, NetworkParams())
        else:
            self.channel = Channel(trace, NetworkParams())
        self.policy = self.config.policy
        self.clients: List[UserDevice] = []
        sla_classes = self.config.sla_classes
        for i in range(num_clients):
            client_policy = OffloadingSystem._make_policy(self.config.policy, engine)
            self.clients.append(
                UserDevice(
                    engine,
                    self.server,
                    self.channel,
                    policy=client_policy,
                    seed=self.config.seed + 200 + i,
                    backend=self.config.backend,
                    functional=self.config.functional,
                    model_seed=self.config.seed,
                    resilience=self.config.resilience,
                    parallelism=self.config.parallelism,
                    streaming=self.config.streaming,
                    sla_s=(sla_classes[i % len(sla_classes)]
                           if sla_classes else None),
                )
            )
        self.loop = EventLoop()

    def run(self, duration_s: float) -> FleetResult:
        """Simulate all clients issuing requests back-to-back."""
        if self.config.batching is not None:
            return self._run_batched(duration_s)
        loop = self.loop
        records: List[List[InferenceRecord]] = [[] for _ in self.clients]

        for i, client in enumerate(self.clients):
            client.profiler_tick(0.0)
            # Stagger profiler periods so clients don't probe in lockstep.
            offset = (i + 1) * self.config.profiler_period_s / (len(self.clients) + 1)
            loop.schedule_every(
                self.config.profiler_period_s,
                lambda c=client: c.profiler_tick(loop.now),
                start_s=offset,
            )
        loop.schedule_every(self.config.watchdog_period_s,
                            lambda: self.server.watchdog_tick(loop.now))

        # Per-client next-request times; process in global time order so the
        # shared tracker sees interleaved arrivals.
        next_at = [i * 0.003 for i in range(len(self.clients))]
        while True:
            idx = int(np.argmin(next_at))
            t = next_at[idx]
            if t >= duration_s:
                break
            loop.run_until(t)
            record = self.clients[idx].request_inference(t)
            records[idx].append(record)
            next_at[idx] = t + record.total_s + self.config.think_time_s
        return FleetResult(
            timelines=tuple(Timeline(r) for r in records),
            policy=self.policy,
        )

    def _run_batched(self, duration_s: float) -> FleetResult:
        """Event-driven fleet run with dynamic batching at the server.

        Requests split into an asynchronous begin (decide + head + upload)
        and complete (reply + download) pair: the upload's arrival enqueues
        the request at its partition point, and the queue flushes when the
        batching window expires or ``max_batch`` requests have gathered.
        All requests of a flush share one batched tail execution and finish
        together; queueing delay lands in each record's ``server_s``, so a
        client's next request is scheduled exactly as in the sequential
        driver — ``start + total + think``.  Under
        ``SystemConfig(parallelism=...)`` that shared execution schedules
        per-sample slices concurrently (2-D sample × chain), which changes
        wall-clock cost only — records and outputs are bit-identical.
        """
        cfg = self.config.batching
        loop = self.loop
        batcher = DynamicBatcher(cfg)
        records: List[List[InferenceRecord]] = [[] for _ in self.clients]
        in_flight = [0]

        for i, client in enumerate(self.clients):
            client.profiler_tick(0.0)
            offset = (i + 1) * self.config.profiler_period_s / (len(self.clients) + 1)
            loop.schedule_every(
                self.config.profiler_period_s,
                lambda c=client: c.profiler_tick(loop.now),
                start_s=offset,
            )
        loop.schedule_every(self.config.watchdog_period_s,
                            lambda: self.server.watchdog_tick(loop.now))

        def finish(idx: int, record: InferenceRecord) -> None:
            records[idx].append(record)
            next_t = record.start_s + record.total_s + self.config.think_time_s
            # A failed (infinite) record never schedules again: the naive
            # client is stalled, exactly as a blocking RPC would leave it.
            if next_t < duration_s:
                loop.schedule_at(max(next_t, loop.now), lambda: issue(idx))

        def fail_offload(idx: int, pending: PendingOffload,
                         status: str = "fallback_local") -> None:
            """Resolve a doomed offload: local fallback or a stalled record.

            Batched mode fails fast — no retries through the queue; a
            resilient client falls back to local inference at the moment
            its deadline fires (or immediately for a rejection).
            """
            in_flight[0] -= 1
            client = self.clients[idx]
            if client.resilience is None:
                finish(idx, client._failed_record(
                    pending.request_id, pending.start_s, pending.partition_point,
                    pending.estimated_bandwidth_bps, pending.k_used,
                    device_s=pending.device_s, upload_s=pending.upload_s,
                    overhead_s=pending.overhead_s,
                    device_cache_hit=pending.device_cache_hit,
                    exit_index=pending.exit_index,
                ))
                return
            resolve_s = loop.now if status == "rejected" else max(
                pending.deadline_s, loop.now)
            assert client.breaker is not None
            client.breaker.record_failure(resolve_s)

            def resolve() -> None:
                finish(idx, client.fallback_record(
                    pending.request_id, pending.start_s, loop.now,
                    timeout_s=pending.timeout_s, status=status,
                ))

            loop.schedule_at(resolve_s, resolve)

        def issue(idx: int) -> None:
            client = self.clients[idx]
            if client.breaker is not None and not client.breaker.allow_offload(loop.now):
                record = client.begin_inference(loop.now, force_local=True)
                assert isinstance(record, InferenceRecord)
                finish(idx, replace(record, status="fallback_local"))
                return
            pending = client.begin_inference(loop.now)
            if isinstance(pending, InferenceRecord):
                finish(idx, pending)
                return
            in_flight[0] += 1
            if not pending.delivered:
                # The upload never made it; the device notices at its
                # deadline and falls back.
                fail_offload(idx, pending)
                return
            loop.schedule_at(pending.arrive_s,
                             lambda: arrive(idx, pending))

        def arrive(idx: int, pending) -> None:
            # Requests co-batch only within one (exit, point) cell: tails of
            # different exit graphs (or cut depths) cannot share a batched
            # execution.  Exit-free requests key as exit -1, so mixed
            # traffic keeps every queue key mutually sortable.
            key = (-1 if pending.exit_index is None else pending.exit_index,
                   pending.partition_point)
            if not self.server.available_at(loop.now):
                fail_offload(idx, pending)
                return
            sf = self.server.fault_plan
            if (sf is not None and sf.queue_limit is not None
                    and batcher.queue_depth(key) >= sf.queue_limit):
                # Admission control sheds the request before it queues.
                self.server.rejected_count += 1
                fail_offload(idx, pending, status="rejected")
                return
            request = PendingRequest(
                request_id=pending.request_id,
                enqueue_s=loop.now,
                tensors=pending.transfers,
                context=(idx, pending),
            )
            flush_now, epoch = batcher.enqueue(key, request)
            if flush_now:
                flush(key)
            elif batcher.queue_depth(key) == 1:
                # This request opened the queue: arm its window timer.
                loop.schedule_at(loop.now + cfg.window_s,
                                 lambda: flush(key, epoch))

        def flush(key: Tuple[int, int], epoch: int | None = None) -> None:
            exit_key, point = key
            batch = batcher.take(key, epoch)
            if not batch:
                return
            replies = self.server.handle_offload_batch(
                loop.now, batch, point, cfg,
                exit_index=None if exit_key < 0 else exit_key,
            )
            if replies is None:
                # The server crashed between arrival and flush: the whole
                # batch dies; each client resolves at its own deadline.
                for request in batch:
                    idx, pending = request.context
                    fail_offload(idx, pending)
                return
            # All requests leave the GPU together, one batch execution later.
            done_s = loop.now + replies[0].server_exec_s - replies[0].queue_s
            for request, reply in zip(batch, replies):
                idx, pending = request.context
                client = self.clients[idx]
                if done_s > pending.deadline_s:
                    # Queueing + execution overshot this request's deadline:
                    # the device already gave up waiting.
                    fail_offload(idx, pending)
                    continue
                budget = None
                if client.resilience is not None:
                    budget = pending.deadline_s - done_s
                record = client.complete_inference(
                    pending, reply, download_at_s=done_s,
                    download_timeout_s=budget,
                )
                if record.status == "failed" and client.resilience is not None:
                    fail_offload(idx, pending)
                    continue
                if client.breaker is not None and record.status != "failed":
                    client.breaker.record_success(done_s)
                in_flight[0] -= 1
                finish(idx, record)

        for i in range(len(self.clients)):
            start = i * 0.003
            if start < duration_s:
                loop.schedule_at(start, lambda i=i: issue(i))

        loop.run_until(duration_s)
        # Drain in-flight requests (arrivals and window flushes may land
        # shortly after the horizon); no request is ever dropped.
        while in_flight[0] > 0:
            loop.run_until(loop.now + max(cfg.window_s, 1e-3))
        return FleetResult(
            timelines=tuple(Timeline(r) for r in records),
            policy=self.policy,
        )
