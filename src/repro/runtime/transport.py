"""Asyncio streaming transport: the real-socket face of the offload path.

The simulation (:mod:`repro.runtime.client` / :mod:`repro.runtime.server`)
models chunked uploads and arrival-gated tail execution with declared
constants; this module is the same protocol over real TCP sockets, promoted
from ``examples/distributed_sockets.py``:

- length-prefixed frames (``!II`` header/payload lengths + JSON header),
- per-tensor codec encode on the device and decode on the server
  (:class:`~repro.network.codec.TensorCodec` — lossless codecs arrive
  bit-exact),
- a **streamed** mode that splits the concatenated encoded payload into
  chunks; the server decodes each crossing tensor as soon as its bytes are
  complete and feeds it into the tail plan's
  :meth:`~repro.nn.plan.SegmentPlan.begin_streaming` stream, so tail
  chains start while later tensors are still on the wire (the real-world
  counterpart of the engine's release-schedule pipelining).

Both endpoints build identical weights from the shared model definition
and seed, so no parameters cross the wire.  The server compiles one
:class:`~repro.nn.plan.SegmentPlan` per partition point through a
:class:`~repro.nn.parallel.CompileOnceCache` and serves requests
sequentially per connection.
"""

from __future__ import annotations

import asyncio
import json
import struct
import time
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.graph.partitioner import GraphPartitioner
from repro.models import build_model
from repro.network.channel import TransferResult
from repro.network.codec import EncodedTensor, TensorCodec, decode_any
from repro.network.streaming import plan_chunks
from repro.nn.executor import GraphExecutor
from repro.nn.parallel import CompileOnceCache, ParallelConfig
from repro.nn.plan import SegmentPlan

__all__ = [
    "OffloadOutcome",
    "TransportClient",
    "TransportFailure",
    "TransportServer",
    "recv_frame",
    "run_server",
    "send_frame",
]


class TransportFailure(RuntimeError):
    """A request died mid-connection (reset, truncation, timeout).

    Carries a failed :class:`~repro.network.channel.TransferResult` whose
    ``elapsed_s`` is the wall time the client spent before learning the
    request was lost — the same shape the simulated channel reports, so
    resilient callers handle real-socket failures and simulated ones with
    one code path.  The client never hangs: a dropped socket raises
    immediately, a silent server raises at ``timeout_s``.
    """

    def __init__(self, message: str, result: TransferResult) -> None:
        super().__init__(message)
        self.result = result

_LEN = struct.Struct("!II")


async def send_frame(writer: asyncio.StreamWriter, header: dict,
                     payload: bytes = b"") -> None:
    """One length-prefixed frame: JSON header + opaque payload bytes."""
    head = json.dumps(header).encode()
    writer.write(_LEN.pack(len(head), len(payload)))
    writer.write(head)
    writer.write(payload)
    await writer.drain()


async def recv_frame(reader: asyncio.StreamReader) -> Tuple[dict, bytes]:
    head_len, payload_len = _LEN.unpack(await reader.readexactly(_LEN.size))
    header = json.loads((await reader.readexactly(head_len)).decode())
    payload = await reader.readexactly(payload_len) if payload_len else b""
    return header, payload


def _tensor_meta(name: str, enc: EncodedTensor) -> dict:
    return {
        "name": name,
        "codec": enc.codec,
        "shape": list(enc.shape),
        "scale": enc.scale,
        "zero_point": enc.zero_point,
        "nbytes": enc.nbytes,
    }


def _meta_tensor(meta: dict, payload: bytes) -> np.ndarray:
    return decode_any(EncodedTensor(
        codec=meta["codec"],
        shape=tuple(meta["shape"]),
        payload=payload,
        scale=float(meta.get("scale", 1.0)),
        zero_point=float(meta.get("zero_point", 0.0)),
    ))


@dataclass(frozen=True)
class OffloadOutcome:
    """One completed request as seen by the client."""

    result: np.ndarray
    #: Server wall time from request start to reply ready.
    server_s: float
    #: Server time exposed *after* the last payload byte arrived — the
    #: un-overlapped tail.  Streamed requests shrink this, monolithic
    #: requests pay the whole decode+execute here.
    tail_s: float
    wire_bytes: int
    chunks: int
    codec: str


class TransportServer:
    """Serves partition tails over TCP, monolithic or streamed."""

    def __init__(self, model: str, seed: int = 0,
                 parallelism: ParallelConfig | None = None,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.graph = build_model(model)
        self.params = GraphExecutor(self.graph, seed=seed).params
        self.partitioner = GraphPartitioner(self.graph)
        self.parallelism = parallelism
        self.host = host
        self.port = port
        self._plans = CompileOnceCache()
        self._server: asyncio.AbstractServer | None = None
        self._closed = asyncio.Event()

    def _tail_plan(self, point: int) -> SegmentPlan:
        def build() -> SegmentPlan:
            part = self.partitioner.partition(point)
            return SegmentPlan(part.tail, params=self.params,
                               parallel=self.parallelism)
        return self._plans.get_or_create(point, build)

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]
        return self.host, self.port

    async def wait_closed(self) -> None:
        await self._closed.wait()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    header, payload = await recv_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                op = header.get("op")
                if op == "shutdown":
                    self._closed.set()
                    break
                try:
                    if op == "offload":
                        reply, body = self._offload(header, payload)
                    elif op == "begin":
                        reply, body = await self._streamed(header, reader)
                    else:
                        raise ValueError(f"unknown op {op!r}")
                except asyncio.IncompleteReadError:
                    break
                except Exception as exc:  # report, keep serving
                    reply, body = {"op": "error",
                                   "request_id": header.get("request_id"),
                                   "message": f"{type(exc).__name__}: {exc}"}, b""
                await send_frame(writer, reply, body)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _reply(self, header: dict, result: np.ndarray, t0: float,
               t_last_byte: float) -> Tuple[dict, bytes]:
        done = time.perf_counter()
        out = np.ascontiguousarray(result)
        return {
            "op": "result",
            "request_id": header.get("request_id"),
            "shape": list(out.shape),
            "server_s": done - t0,
            "tail_s": done - t_last_byte,
        }, out.tobytes()

    def _offload(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        """Monolithic request: the whole payload precedes any execution."""
        t0 = time.perf_counter()
        plan = self._tail_plan(int(header["point"]))
        boundary: Dict[str, np.ndarray] = {}
        cursor = 0
        for meta in header["tensors"]:
            nbytes = int(meta["nbytes"])
            boundary[meta["name"]] = _meta_tensor(
                meta, payload[cursor:cursor + nbytes])
            cursor += nbytes
        results = plan.run(boundary)
        return self._reply(header, results[self.graph.output_name], t0, t0)

    async def _streamed(self, header: dict, reader: asyncio.StreamReader,
                        ) -> Tuple[dict, bytes]:
        """Streamed request: decode and feed tensors as their bytes land."""
        t0 = time.perf_counter()
        request_id = header.get("request_id")
        plan = self._tail_plan(int(header["point"]))
        metas: List[dict] = list(header["tensors"])
        ends = list(np.cumsum([int(m["nbytes"]) for m in metas]))
        stream = plan.begin_streaming()
        buf = bytearray()
        next_tensor = 0
        t_last = t0
        try:
            while True:
                chunk_header, chunk = await recv_frame(reader)
                cop = chunk_header.get("op")
                if chunk_header.get("request_id") != request_id:
                    raise ValueError("interleaved request ids on one stream")
                if cop == "chunk":
                    buf.extend(chunk)
                    t_last = time.perf_counter()
                    while next_tensor < len(metas) and ends[next_tensor] <= len(buf):
                        meta = metas[next_tensor]
                        start = ends[next_tensor] - int(meta["nbytes"])
                        stream.feed(meta["name"], _meta_tensor(
                            meta, bytes(buf[start:ends[next_tensor]])))
                        next_tensor += 1
                elif cop == "end":
                    break
                else:
                    raise ValueError(f"unexpected op {cop!r} mid-stream")
            if next_tensor < len(metas):
                raise ValueError("stream ended before all tensors arrived")
            results = stream.finish()
        except BaseException:
            stream.abort()
            raise
        return self._reply(header, results[self.graph.output_name], t0, t_last)


class TransportClient:
    """Device side: encodes crossing tensors and ships them, whole or chunked."""

    def __init__(self, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self._reader = reader
        self._writer = writer
        self._next_id = 0

    @classmethod
    async def connect(cls, host: str, port: int) -> "TransportClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def offload(self, point: int, boundary: Dict[str, np.ndarray],
                      codec: str = "fp32", chunk_bytes: int | None = None,
                      order: Sequence[str] | None = None,
                      timeout_s: float | None = None) -> OffloadOutcome:
        """Ship one request; ``chunk_bytes`` selects the streamed mode.

        ``order`` fixes the wire order of the crossing tensors (the engine's
        first-consumer order maximises server-side overlap); default is the
        dict's own order.  ``timeout_s`` bounds the whole request: a reply
        that has not arrived by then — or a connection that resets mid-way
        — raises :class:`TransportFailure` carrying a failed
        :class:`~repro.network.channel.TransferResult`, never hangs.
        """
        self._next_id += 1
        request_id = self._next_id
        names = list(order) if order is not None else list(boundary)
        if set(names) != set(boundary):
            raise ValueError("order must cover exactly the boundary tensors")
        enc = TensorCodec(codec)
        encoded = [(name, enc.encode(boundary[name])) for name in names]
        metas = [_tensor_meta(name, e) for name, e in encoded]
        payload = b"".join(e.payload for _name, e in encoded)
        header = {
            "request_id": request_id,
            "point": int(point),
            "tensors": metas,
        }
        t0 = time.perf_counter()

        async def exchange() -> Tuple[dict, bytes, int]:
            if chunk_bytes is None:
                header["op"] = "offload"
                await send_frame(self._writer, header, payload)
                nchunks = 1
            else:
                header["op"] = "begin"
                await send_frame(self._writer, header)
                sizes = plan_chunks(len(payload), chunk_bytes)
                cursor = 0
                for size in sizes:
                    await send_frame(
                        self._writer,
                        {"op": "chunk", "request_id": request_id},
                        payload[cursor:cursor + size])
                    cursor += size
                await send_frame(self._writer,
                                 {"op": "end", "request_id": request_id})
                nchunks = max(len(sizes), 1)
            return *(await recv_frame(self._reader)), nchunks

        try:
            if timeout_s is not None:
                reply, body, chunks = await asyncio.wait_for(
                    exchange(), timeout=timeout_s)
            else:
                reply, body, chunks = await exchange()
        except asyncio.TimeoutError as exc:
            # Checked first: TimeoutError is an OSError subclass on
            # modern Pythons, and a silent server is not a dead link.
            raise TransportFailure(
                f"no reply within {timeout_s}s",
                TransferResult.failed(len(payload), timeout_s),
            ) from exc
        except (asyncio.IncompleteReadError, ConnectionError, OSError) as exc:
            elapsed = time.perf_counter() - t0
            raise TransportFailure(
                f"connection lost mid-request: {type(exc).__name__}",
                TransferResult(delivered=False, elapsed_s=elapsed,
                               nbytes=len(payload)),
            ) from exc
        if reply.get("op") == "error":
            raise RuntimeError(f"server error: {reply.get('message')}")
        if reply.get("request_id") != request_id:
            raise RuntimeError("out-of-order reply")
        result = np.frombuffer(body, dtype=np.float32).reshape(reply["shape"])
        return OffloadOutcome(
            result=result,
            server_s=float(reply["server_s"]),
            tail_s=float(reply["tail_s"]),
            wire_bytes=len(payload),
            chunks=chunks,
            codec=codec,
        )

    async def shutdown_server(self) -> None:
        await send_frame(self._writer, {"op": "shutdown"})

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def run_server(model: str, seed: int, port: int, ready=None,
               parallelism: ParallelConfig | None = None,
               host: str = "127.0.0.1") -> None:
    """Blocking entry point for a server process (``multiprocessing`` target).

    ``ready`` is an optional ``multiprocessing.Event`` set once the socket
    is listening; the server exits after a client sends ``shutdown``.
    """
    async def main() -> None:
        server = TransportServer(model, seed=seed, parallelism=parallelism,
                                 host=host, port=port)
        await server.start()
        if ready is not None:
            ready.set()
        await server.wait_closed()

    asyncio.run(main())
