"""Device-server runtime emulation.

Reproduces the online system of Fig. 3 as a discrete-event simulation:

- :class:`~repro.runtime.events.EventLoop` — the simulated clock.
- :class:`~repro.runtime.client.UserDevice` — runs the partition decision
  algorithm, the bandwidth-probing profiler thread, executes head segments
  and offloads tails.
- :class:`~repro.runtime.server.EdgeServer` — executes tail segments on the
  contended GPU, maintains the influential factor ``k`` and the
  GPU-utilisation watchdog.
- :class:`~repro.runtime.system.OffloadingSystem` — wires both ends to a
  channel and a load schedule and produces per-request timelines.

The emulation replaces the paper's physical Pi-to-server WiFi deployment;
all latencies come from :mod:`repro.hardware` and :mod:`repro.network`,
while the *protocol* (periods, staleness, cache behaviour) is faithfully
event-driven.
"""

from repro.runtime.client import UserDevice
from repro.runtime.multi import (
    FleetResult,
    MultiClientSystem,
    ServerStats,
    SharedLoadTracker,
)
from repro.runtime.events import EventLoop
from repro.runtime.gateway import (
    EdgeGateway,
    GatewayConfig,
    GatewayDevice,
    GatewayFleetSystem,
)
from repro.runtime.messages import BusyReply, InferenceRecord, LoadReply, OffloadReply
from repro.runtime.resilience import CircuitBreaker, ResilienceConfig
from repro.runtime.server import EdgeServer
from repro.runtime.supervisor import FleetSupervisor, ServerHealth, SupervisorConfig
from repro.runtime.system import OffloadingSystem, SystemConfig, Timeline

__all__ = [
    "BusyReply",
    "CircuitBreaker",
    "EdgeGateway",
    "EdgeServer",
    "FleetResult",
    "FleetSupervisor",
    "GatewayConfig",
    "GatewayDevice",
    "GatewayFleetSystem",
    "MultiClientSystem",
    "ServerHealth",
    "ServerStats",
    "SharedLoadTracker",
    "SupervisorConfig",
    "EventLoop",
    "InferenceRecord",
    "LoadReply",
    "OffloadReply",
    "OffloadingSystem",
    "ResilienceConfig",
    "SystemConfig",
    "Timeline",
    "UserDevice",
]
