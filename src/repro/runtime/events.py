"""A minimal deterministic discrete-event loop."""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Tuple


class EventLoop:
    """Priority-queue event loop with a monotonically advancing clock.

    Events scheduled for the same instant fire in scheduling order (a
    sequence number breaks ties), so runs are fully deterministic.
    """

    def __init__(self, start_s: float = 0.0) -> None:
        self._now = start_s
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = itertools.count()

    @property
    def now(self) -> float:
        return self._now

    def schedule_at(self, time_s: float, callback: Callable[[], None]) -> None:
        if time_s < self._now:
            raise ValueError(f"cannot schedule in the past ({time_s} < {self._now})")
        heapq.heappush(self._queue, (time_s, next(self._seq), callback))

    def schedule_after(self, delay_s: float, callback: Callable[[], None]) -> None:
        if delay_s < 0:
            raise ValueError("delay must be non-negative")
        self.schedule_at(self._now + delay_s, callback)

    def schedule_every(self, period_s: float, callback: Callable[[], None],
                       start_s: float | None = None) -> None:
        """Schedule ``callback`` periodically, forever (until run horizon)."""
        if period_s <= 0:
            raise ValueError("period must be positive")

        first = self._now + period_s if start_s is None else start_s

        def tick() -> None:
            callback()
            self.schedule_at(self._now + period_s, tick)

        self.schedule_at(first, tick)

    def run_until(self, end_s: float) -> None:
        """Process events up to and including ``end_s``."""
        while self._queue and self._queue[0][0] <= end_s:
            time_s, _seq, callback = heapq.heappop(self._queue)
            self._now = time_s
            callback()
        self._now = max(self._now, end_s)

    def advance_to(self, time_s: float) -> None:
        """Move the clock forward without processing events (request handling)."""
        if time_s < self._now:
            raise ValueError("clock cannot move backwards")
        self._now = time_s
