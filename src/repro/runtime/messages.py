"""Protocol records exchanged between the device and the edge server."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict


@dataclass(frozen=True)
class OffloadReply:
    """Server's answer to one offloading request."""

    request_id: int
    partition_point: int
    server_exec_s: float       # time at the server incl. contention (and,
                               # under dynamic batching, queueing delay)
    result_bytes: int          # size of the result tensor to download
    cache_hit: bool            # server-side partition cache
    partition_overhead_s: float
    queue_s: float = 0.0       # batching queue delay folded into server_exec_s
    batch_size: int = 1        # requests co-executed in this batch
    #: Tail-segment output tensors (producer name -> array) when the system
    #: runs in functional mode; None in pure-simulation runs.  Excluded from
    #: equality/repr so timing-level semantics are unchanged.
    tensors: Dict[str, Any] | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class LoadReply:
    """Server's answer to the device profiler's load query (§IV)."""

    k: float
    gpu_utilization: float


@dataclass(frozen=True)
class InferenceRecord:
    """Everything measured about one end-to-end inference."""

    request_id: int
    start_s: float
    partition_point: int
    estimated_bandwidth_bps: float
    k_used: float
    device_s: float
    upload_s: float
    server_s: float
    download_s: float
    overhead_s: float
    total_s: float
    load_level: str
    device_cache_hit: bool
    server_cache_hit: bool
    server_queue_s: float = 0.0   # batching queue delay (part of server_s)
    batch_size: int = 1           # requests co-executed with this one

    @property
    def is_local(self) -> bool:
        return self.upload_s == 0.0 and self.server_s == 0.0
