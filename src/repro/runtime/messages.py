"""Protocol records exchanged between the device and the edge server."""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict

#: Request outcome taxonomy shared by :class:`OffloadReply` and
#: :class:`InferenceRecord`:
#:
#: - ``ok`` — completed on the first attempt (offloaded or locally, as decided).
#: - ``retried`` — offload completed after at least one retry.
#: - ``fallback_local`` — offload path failed (timeouts, dead server, open
#:   circuit breaker); the device degraded to full local execution.
#: - ``rejected`` — the server's admission control turned the request away
#:   (BusyReply) and the retry budget ran out; resolved locally.
#: - ``failed`` — a non-resilient client hit a fault it cannot handle: the
#:   request never completes (``total_s`` is ``inf``).
STATUSES = ("ok", "retried", "fallback_local", "rejected", "failed")


@dataclass(frozen=True)
class OffloadReply:
    """Server's answer to one offloading request."""

    request_id: int
    partition_point: int
    server_exec_s: float       # time at the server incl. contention (and,
                               # under dynamic batching, queueing delay)
    result_bytes: int          # size of the result tensor to download
    cache_hit: bool            # server-side partition cache
    partition_overhead_s: float
    queue_s: float = 0.0       # batching queue delay folded into server_exec_s
    batch_size: int = 1        # requests co-executed in this batch
    status: str = "ok"
    #: GPU occupancy of this request.  Under arrival-gated (streamed)
    #: execution the *exposed* ``server_exec_s`` can be much smaller than
    #: the compute actually burned, because tail segments overlapped the
    #: upload; this field carries the busy time for load accounting.
    #: ``None`` means no overlap happened: busy time == ``server_exec_s``.
    gpu_busy_s: float | None = None
    #: Early exit whose tail this reply executed; ``None`` means the full
    #: network (exit-free request), matching every pre-exit record.
    exit_index: int | None = None
    #: Tail-segment output tensors (producer name -> array) when the system
    #: runs in functional mode; None in pure-simulation runs.  Excluded from
    #: equality/repr so timing-level semantics are unchanged.
    tensors: Dict[str, Any] | None = field(default=None, compare=False, repr=False)


@dataclass(frozen=True)
class BusyReply:
    """Admission-control rejection: the server's queue is full.

    Instead of absorbing unbounded load (and letting every client's latency
    diverge), a bounded server sheds it — the client should retry after
    ``retry_after_s`` or fall back to local execution.
    """

    request_id: int
    retry_after_s: float
    status: str = "rejected"


@dataclass(frozen=True)
class LoadReply:
    """Server's answer to the device profiler's load query (§IV)."""

    k: float
    gpu_utilization: float


@dataclass(frozen=True)
class ProbeReport:
    """Decomposition of one two-size supervisor health probe.

    The supervisor times a small ping upload and a bulk upload on the
    same tick; their *difference* isolates the transfer term (the link's
    base latency cancels), so ``bandwidth_bps`` is latency-corrected and
    ``latency_s`` is the residual base latency implied by the ping —
    the raw material of the learned per-server link penalties.
    ``accepted`` records whether the link estimator kept the latency
    sample or rejected it as an outlier.
    """

    server_id: int
    time_s: float
    ping_s: float              # elapsed of the small ping upload
    bulk_s: float              # elapsed of the bulk probe upload
    bulk_bytes: int
    latency_s: float           # implied link base latency (>= 0)
    bandwidth_bps: float       # latency-corrected bandwidth sample
    accepted: bool


@dataclass(frozen=True)
class InferenceRecord:
    """Everything measured about one end-to-end inference."""

    request_id: int
    start_s: float
    partition_point: int
    estimated_bandwidth_bps: float
    k_used: float
    device_s: float
    upload_s: float
    server_s: float
    download_s: float
    overhead_s: float
    total_s: float
    load_level: str
    device_cache_hit: bool
    server_cache_hit: bool
    server_queue_s: float = 0.0   # batching queue delay (part of server_s)
    batch_size: int = 1           # requests co-executed with this one
    status: str = "ok"            # one of STATUSES
    codec: str = "fp32"           # wire codec of the upload (streaming path)
    chunks: int = 1               # upload chunks (1 = monolithic transfer)
    #: Device-side encode time charged before the upload starts, and the
    #: *exposed* server-side decode time beyond the upload's end (per-tensor
    #: decodes that overlapped the stream are already hidden).  Both are 0
    #: on the classic fp32 monolithic path, keeping
    #: ``total = device + encode + upload + decode + server + download +
    #: overhead + wasted`` backward compatible.
    encode_s: float = 0.0
    decode_s: float = 0.0
    retries: int = 0              # offload attempts beyond the first
    timeout_s: float = 0.0        # per-attempt deadline (0 = no deadline)
    #: Wall time burned on failed attempts before the recorded (final) one:
    #: timeouts waited out, backoff sleeps, busy-rejection round trips.  The
    #: waiting is latency the user experienced, so it is part of
    #: ``total_s`` (total = device + encode + upload + decode + server
    #: + download + overhead + wasted).
    wasted_s: float = 0.0
    #: Edge server this request was (last) sent to; ``None`` for requests
    #: resolved purely locally (no server involved).  The single-server
    #: runtime stamps 0, so fleet-routed and direct records compare equal.
    server_id: int | None = None
    #: Per-request latency SLA this request carried (``None`` = no SLA;
    #: every pre-exit record compares equal to the defaults below).
    sla_s: float | None = None
    #: Early exit the request was served at (``None`` = full network).
    exit_index: int | None = None
    #: ``total_s <= sla_s`` for SLA-carrying requests, ``None`` otherwise.
    met_sla: bool | None = None

    @property
    def is_local(self) -> bool:
        return self.upload_s == 0.0 and self.server_s == 0.0

    @property
    def completed(self) -> bool:
        """True when the request produced a result (locally or offloaded)."""
        return self.status != "failed" and math.isfinite(self.total_s)

    @property
    def fell_back(self) -> bool:
        """True when the request was resolved by degrading to local."""
        return self.status in ("fallback_local", "rejected")
