"""``OffloadingSystem``: wires device, server, channel and load schedule.

Drives the event loop: periodic profiler ticks on the device (default 5 s,
§V-A), the periodic GPU watchdog on the server (default 10 s), and a
request generator that issues inferences back-to-back (plus an optional
think time).  Produces a :class:`Timeline` of per-request records — the raw
material of the Fig. 6/7/8/9 experiments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List

import numpy as np

from repro.core.baselines import FullOffloadStrategy, LocalStrategy, NeurosurgeonStrategy
from repro.core.engine import LoADPartEngine
from repro.hardware.background import IDLE, LoadSchedule
from repro.network.channel import Channel, NetworkParams
from repro.network.faults import FaultPlan, FaultyChannel, ServerFaultPlan
from repro.network.traces import BandwidthTrace, ConstantTrace
from repro.network.streaming import StreamingConfig
from repro.nn.executor import BACKENDS
from repro.nn.parallel import ParallelConfig
from repro.profiling.predictor import LatencyPredictor
from repro.runtime.batching import BatchingConfig
from repro.runtime.client import UserDevice
from repro.runtime.events import EventLoop
from repro.runtime.messages import InferenceRecord
from repro.runtime.resilience import ResilienceConfig
from repro.runtime.server import EdgeServer

POLICIES = ("loadpart", "neurosurgeon", "local", "full")


@dataclass(frozen=True)
class SystemConfig:
    """Knobs of one emulation run (defaults follow §V-A of the paper)."""

    policy: str = "loadpart"
    profiler_period_s: float = 5.0
    watchdog_period_s: float = 10.0
    watchdog_threshold: float = 0.90
    think_time_s: float = 0.015      # gap between consecutive requests
    monitor_window_s: float = 5.0
    seed: int = 0
    backend: str = "naive"           # executor backend for functional runs
    functional: bool = False         # actually execute segments on arrays
    #: Opt-in dynamic batching of concurrent offloads (multi-client only);
    #: None keeps the one-request-at-a-time behaviour of the paper.
    batching: BatchingConfig | None = None
    #: Opt-in fault injection on the channel (drops, outages, spikes).
    faults: FaultPlan | None = None
    #: Opt-in server fault model (crash windows, admission control).
    server_faults: ServerFaultPlan | None = None
    #: Opt-in resilient client (deadlines, retries, circuit breaker,
    #: local fallback).  None keeps the paper's trusting offload path.
    resilience: ResilienceConfig | None = None
    #: Opt-in parallel plan execution (planned backend only): independent
    #: DAG chains — and, for batched plans, per-sample slices — run as
    #: (sample × chain) tasks on a shared thread pool, bit-identical to
    #: serial execution.  None keeps plans serial.
    parallelism: ParallelConfig | None = None
    #: Opt-in streaming pipelined transport: chunked uploads, codec-aware
    #: joint (point, codec, chunking) decisions, arrival-gated tail
    #: execution on the server.  None keeps the monolithic fp32 upload.
    #: Requires the ``loadpart`` policy (the joint scan lives in the
    #: LoADPart engine).
    streaming: StreamingConfig | None = None
    #: Opt-in per-request SLA classes: a tuple of latency deadlines in
    #: seconds (``None`` entries = no SLA, full accuracy), assigned to
    #: clients round-robin by client index.  Devices with an SLA run the
    #: SLA-aware (exit, point) decision when the engine carries exit
    #: branches.  ``None`` keeps the classic SLA-free runtime verbatim.
    sla_classes: tuple | None = None

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {self.policy!r}")
        if self.backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {self.backend!r}")
        if self.parallelism is not None:
            if not isinstance(self.parallelism, ParallelConfig):
                raise ValueError("parallelism must be a ParallelConfig or None")
            if self.backend != "planned":
                raise ValueError(
                    "parallelism requires backend='planned' "
                    f"(got backend={self.backend!r})"
                )
        if self.batching is not None and not isinstance(self.batching, BatchingConfig):
            raise ValueError("batching must be a BatchingConfig or None")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            raise ValueError("faults must be a FaultPlan or None")
        if (self.server_faults is not None
                and not isinstance(self.server_faults, ServerFaultPlan)):
            raise ValueError("server_faults must be a ServerFaultPlan or None")
        if (self.resilience is not None
                and not isinstance(self.resilience, ResilienceConfig)):
            raise ValueError("resilience must be a ResilienceConfig or None")
        if self.streaming is not None:
            if not isinstance(self.streaming, StreamingConfig):
                raise ValueError("streaming must be a StreamingConfig or None")
            if self.policy != "loadpart":
                raise ValueError(
                    "streaming requires policy='loadpart' (the joint "
                    f"(point, codec) scan); got policy={self.policy!r}")
        if self.sla_classes is not None:
            if (not isinstance(self.sla_classes, tuple)
                    or not self.sla_classes):
                raise ValueError("sla_classes must be a non-empty tuple or None")
            for sla in self.sla_classes:
                if sla is None:
                    continue
                if (not isinstance(sla, (int, float)) or not sla > 0
                        or not math.isfinite(sla)):
                    raise ValueError(
                        f"sla_classes entries must be positive or None, got {sla!r}")
            if self.streaming is not None:
                raise ValueError(
                    "sla_classes are incompatible with streaming uploads "
                    "(the streamed joint decision has no exit axis)")


class Timeline:
    """The per-request records of one run, with summary helpers."""

    def __init__(self, records: List[InferenceRecord]) -> None:
        self.records = records

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def latencies(self) -> np.ndarray:
        return np.array([r.total_s for r in self.records])

    @property
    def points(self) -> np.ndarray:
        return np.array([r.partition_point for r in self.records])

    @property
    def times(self) -> np.ndarray:
        return np.array([r.start_s for r in self.records])

    def mean_latency(self) -> float:
        if not self.records:
            return float("nan")
        return float(self.latencies.mean())

    def percentile_latency(self, q: float) -> float:
        if not self.records:
            return float("nan")
        return float(np.percentile(self.latencies, q))

    def between(self, start_s: float, end_s: float) -> "Timeline":
        return Timeline([r for r in self.records if start_s <= r.start_s < end_s])

    def for_server(self, server_id: int | None) -> "Timeline":
        """Only the requests whose final attempt went to ``server_id``
        (``None`` selects the purely-local records)."""
        return Timeline([r for r in self.records if r.server_id == server_id])

    # -- resilience summaries ------------------------------------------------

    @property
    def completed(self) -> "Timeline":
        """Only the requests that produced an answer (finite latency)."""
        return Timeline([r for r in self.records if r.completed])

    def availability(self) -> float:
        """Fraction of issued requests that completed."""
        if not self.records:
            return float("nan")
        return sum(1 for r in self.records if r.completed) / len(self.records)

    def fallback_rate(self) -> float:
        """Fraction of issued requests resolved by local fallback/rejection."""
        if not self.records:
            return float("nan")
        return sum(1 for r in self.records if r.fell_back) / len(self.records)

    def retry_rate(self) -> float:
        """Mean number of retries per issued request."""
        if not self.records:
            return float("nan")
        return sum(r.retries for r in self.records) / len(self.records)

    # -- SLA summaries -------------------------------------------------------

    def sla_attainment(self) -> float:
        """Fraction of SLA-carrying requests that met their deadline
        (NaN when no request carried an SLA)."""
        carrying = [r for r in self.records if r.sla_s is not None]
        if not carrying:
            return float("nan")
        return sum(1 for r in carrying if r.met_sla) / len(carrying)

    def exit_counts(self) -> dict:
        """Histogram of served exits (``None`` = full network)."""
        counts: dict = {}
        for r in self.records:
            counts[r.exit_index] = counts.get(r.exit_index, 0) + 1
        return counts


class OffloadingSystem:
    """One device + one server + one link, runnable as a simulation."""

    def __init__(
        self,
        engine: LoADPartEngine,
        bandwidth_trace: BandwidthTrace | None = None,
        load_schedule: LoadSchedule | None = None,
        config: SystemConfig | None = None,
        network_params: NetworkParams | None = None,
    ) -> None:
        self.config = config or SystemConfig()
        if self.config.batching is not None:
            raise ValueError(
                "dynamic batching needs concurrent clients; use MultiClientSystem"
            )
        self.engine = engine
        trace = bandwidth_trace or ConstantTrace(8e6)
        if self.config.faults is not None:
            self.channel = FaultyChannel(trace, self.config.faults, network_params)
        else:
            self.channel = Channel(trace, network_params)
        self.server = EdgeServer(
            engine,
            load_schedule=load_schedule or LoadSchedule([(0.0, IDLE)]),
            monitor_window_s=self.config.monitor_window_s,
            watchdog_threshold=self.config.watchdog_threshold,
            watchdog_period_s=self.config.watchdog_period_s,
            seed=self.config.seed + 100,
            backend=self.config.backend,
            functional=self.config.functional,
            model_seed=self.config.seed,
            fault_plan=self.config.server_faults,
            parallelism=self.config.parallelism,
        )
        policy = self._make_policy(self.config.policy, engine)
        self.device = UserDevice(
            engine,
            self.server,
            self.channel,
            policy=policy,
            seed=self.config.seed + 200,
            backend=self.config.backend,
            functional=self.config.functional,
            model_seed=self.config.seed,
            resilience=self.config.resilience,
            parallelism=self.config.parallelism,
            streaming=self.config.streaming,
            sla_s=(self.config.sla_classes[0]
                   if self.config.sla_classes else None),
        )
        self.loop = EventLoop()

    @staticmethod
    def _make_policy(name: str, engine: LoADPartEngine):
        if name == "loadpart":
            return engine
        if name == "neurosurgeon":
            return NeurosurgeonStrategy(engine)
        if name == "local":
            return LocalStrategy(engine)
        return FullOffloadStrategy(engine)

    @classmethod
    def build(
        cls,
        graph,
        user_predictor: LatencyPredictor,
        edge_predictor: LatencyPredictor,
        **kwargs,
    ) -> "OffloadingSystem":
        """Convenience constructor from a graph and trained predictors."""
        return cls(LoADPartEngine(graph, user_predictor, edge_predictor), **kwargs)

    def run(
        self,
        duration_s: float,
        max_requests: int | None = None,
        on_record: Callable[[InferenceRecord], None] | None = None,
    ) -> Timeline:
        """Simulate ``duration_s`` seconds of operation."""
        loop = self.loop
        records: List[InferenceRecord] = []

        # Warm up the profiler state once at t=0 (models load + first probe,
        # Fig. 3's "load models" step), then run periodically.
        self.device.profiler_tick(loop.now)
        loop.schedule_every(self.config.profiler_period_s, lambda: self.device.profiler_tick(loop.now))
        loop.schedule_every(self.config.watchdog_period_s, lambda: self.server.watchdog_tick(loop.now))

        next_request_s = 0.0
        while next_request_s < duration_s:
            if max_requests is not None and len(records) >= max_requests:
                break
            loop.run_until(next_request_s)
            record = self.device.request_inference(loop.now)
            records.append(record)
            if on_record is not None:
                on_record(record)
            next_request_s = loop.now + record.total_s + self.config.think_time_s
        loop.run_until(min(next_request_s, duration_s))
        return Timeline(records)
