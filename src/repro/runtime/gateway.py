"""Sharded edge fleet: a gateway fronting N edge servers.

The runtime so far is one device ↔ one edge server; a crash leaves only
local fallback.  This module shards the edge side: N
:class:`~repro.runtime.multi.SharedEdgeServer` instances — each with its
own GPU, load-factor monitor, fault plan and link — sit behind an
:class:`EdgeGateway` that routes every offload by solving the joint
``(partition point, server)`` decision
(:meth:`~repro.core.engine.LoADPartEngine.decide_fleet`): Algorithm 1's
prefix/suffix arrays are scanned once per candidate server with that
server's influential factor ``k_s``, bandwidth estimate and link base
latency, and the global minimum wins.  Per-server inputs come from the
:class:`~repro.runtime.supervisor.FleetSupervisor`; where the supervisor
has no data (probing disabled, or a cold start) the client's own §IV
estimates are the fallback — which is exactly what makes a 1-server
gateway with probes disabled *byte-identical* to the direct
client↔server path.

Failover: a retry of a failed request re-enters the router, which
excludes the previously-routed server (as a preference, not a hard ban —
a 1-server fleet still retries its only server), so retries re-route to
a live sibling instead of falling straight back to local.  Dead servers
(missed heartbeats, open per-server breakers) leave the candidate pool
entirely until the supervisor's probes revive them.

Admission lives at the gateway: an ``admission_limit`` bounds how many
offloads each server is routed per sliding window, so a saturated server
is simply skipped and the request re-planned on the next-best
``(point, server)``; only when *every* live server is saturated does the
gateway resolve the request locally (counted in ``rejected_count``).

Per-server link base latencies enter the decision *relative to the
fleet minimum*: a common offset cannot change any within-server argmin
but would bias local-vs-offload against the whole fleet in a way the
single-server Algorithm 1 never charges, so the nearest server is the
zero-extra reference and farther servers pay the difference.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Sequence, Tuple

import numpy as np

from repro.core.engine import (
    ExitDecision,
    FleetDecision,
    LoADPartEngine,
    ServerProfile,
)
from repro.core.partition_algorithm import PartitionDecision
from repro.network.channel import Channel, NetworkParams
from repro.network.faults import FaultyChannel, ServerFaultPlan
from repro.network.traces import BandwidthTrace, ConstantTrace
from repro.runtime.client import UserDevice
from repro.runtime.events import EventLoop
from repro.runtime.messages import BusyReply, InferenceRecord
from repro.runtime.multi import FleetResult, SharedEdgeServer, SharedLoadTracker
from repro.runtime.server import EdgeServer
from repro.runtime.supervisor import FleetSupervisor, SupervisorConfig
from repro.runtime.system import SystemConfig, Timeline


@dataclass(frozen=True)
class GatewayConfig:
    """Knobs of the fleet gateway.

    ``probes`` is the supervisor configuration; ``None`` disables the
    supervisor loop entirely (no probes, no RNG draws — required for the
    degenerate 1-server identity).  ``admission_limit`` bounds routed
    offloads per server per ``admission_window_s`` sliding window
    (``None`` = unbounded, the default).
    """

    probes: SupervisorConfig | None = None
    admission_limit: int | None = None
    admission_window_s: float = 0.25
    #: Servers whose predicted latency is within this relative band of
    #: the best one rotate round-robin instead of always losing to the
    #: earliest index.  The supervisor's ``k_s`` only refreshes once per
    #: probe period, so between probes a saturated homogeneous fleet
    #: looks near-identical from every client; a strict argmin would
    #: herd every offload onto one server per probe window.  0 restores
    #: exact-tie-only rotation.
    rebalance_tolerance: float = 0.05

    def __post_init__(self) -> None:
        if self.probes is not None and not isinstance(self.probes, SupervisorConfig):
            raise ValueError("probes must be a SupervisorConfig or None")
        if self.admission_limit is not None and self.admission_limit < 1:
            raise ValueError("admission_limit must be >= 1 (or None)")
        if self.admission_window_s <= 0:
            raise ValueError("admission_window_s must be positive")
        if self.rebalance_tolerance < 0:
            raise ValueError("rebalance_tolerance must be non-negative")


class GatewayPort:
    """The gateway-side proxy of one edge server.

    Quacks like an :class:`~repro.runtime.server.EdgeServer` to the
    device (``handle_offload`` / ``handle_load_query`` / attribute
    delegation), while reporting every observed outcome to the
    supervisor — a crashed server's silence, a BusyReply, a healthy
    answer.  Observation never touches any RNG stream, so routing
    through a port is invisible to the simulation's determinism.
    """

    def __init__(self, server: EdgeServer, supervisor: FleetSupervisor) -> None:
        self._server = server
        self._supervisor = supervisor
        self.server_id = server.server_id

    def handle_offload(self, now_s: float, request_id: int, point: int,
                       tensors=None, arrivals=None, exit_index=None):
        reply = self._server.handle_offload(
            now_s, request_id, point, tensors=tensors, arrivals=arrivals,
            exit_index=exit_index)
        if reply is None:
            self._supervisor.note_failure(self.server_id, now_s)
        elif isinstance(reply, BusyReply):
            self._supervisor.note_busy(self.server_id, now_s)
        else:
            self._supervisor.note_ok(self.server_id, now_s)
        return reply

    def handle_load_query(self, now_s: float):
        reply = self._server.handle_load_query(now_s)
        if reply is None:
            self._supervisor.note_failure(self.server_id, now_s)
        else:
            self._supervisor.note_ok(self.server_id, now_s)
        return reply

    def __getattr__(self, name: str):
        return getattr(self._server, name)


class EdgeGateway:
    """Routes each offload to the best ``(partition point, server)``."""

    def __init__(
        self,
        engine: LoADPartEngine,
        servers: Sequence[EdgeServer],
        channels: Sequence[Channel],
        config: GatewayConfig | None = None,
        supervisor_seed: int = 0,
        profiles: Sequence[ServerProfile | None] | None = None,
    ) -> None:
        if not servers:
            raise ValueError("need at least one server")
        if len(servers) != len(channels):
            raise ValueError("one channel per server required")
        if profiles is not None and len(profiles) != len(servers):
            raise ValueError("profiles must name one entry per server")
        self.engine = engine
        self.config = config or GatewayConfig()
        self.channels = list(channels)
        #: Per-server :class:`~repro.core.engine.ServerProfile` sequence
        #: (``None`` = homogeneous fleet, today's behaviour bit-for-bit).
        self.profiles = list(profiles) if profiles is not None else None
        self.supervisor = FleetSupervisor(
            servers, channels,
            config=self.config.probes or SupervisorConfig(),
            seed=supervisor_seed,
        )
        self.probing_enabled = self.config.probes is not None
        self.ports = [GatewayPort(s, self.supervisor) for s in servers]
        self._ids = [s.server_id for s in servers]
        # Relative link penalties: nearest server is the zero reference.
        # This is the *config prior*; with probing + link learning the
        # supervisor's learned latencies replace it (see :meth:`route`).
        bases = [c.params.base_latency_s for c in channels]
        floor = min(bases)
        self._extra_latency = [b - floor for b in bases]
        self._admitted: Dict[int, Deque[float]] = {
            sid: deque() for sid in self._ids}
        #: Rotation counter for the equal-cost tie-break (see :meth:`route`).
        self._rotation = 0
        #: Smooth-WRR credit per server index, for load-weighted rotation.
        self._credits: Dict[int, float] = {}
        self.routed_counts: Dict[int, int] = {sid: 0 for sid in self._ids}
        #: Requests resolved locally because every live server was saturated.
        self.rejected_count = 0
        self.last_decision: FleetDecision | None = None

    def _extra_latencies(self) -> List[float]:
        """Per-server relative link penalties for the fleet scan.

        With probing and link learning on, each server's penalty is the
        supervisor's learned base latency relative to the fleet's learned
        minimum; before any probe lands the learned estimate *is* the
        channel prior, so this degrades gracefully to the config values.
        With probes disabled (or ``learn_links=False``) the config prior
        is used directly — no supervisor state is read at all, keeping
        the degenerate path untouched.
        """
        if not (self.probing_enabled and self.supervisor.config.learn_links):
            return self._extra_latency
        learned = [self.supervisor.latency_for(sid) for sid in self._ids]
        floor = min(learned)
        return [lat - floor for lat in learned]

    def _index(self, server_id: int) -> int:
        return self._ids.index(server_id)

    def _has_room(self, server_id: int, now_s: float) -> bool:
        limit = self.config.admission_limit
        if limit is None:
            return True
        window = self._admitted[server_id]
        while window and window[0] < now_s - self.config.admission_window_s:
            window.popleft()
        return len(window) < limit

    def _bandwidth_prior(self, index: int, client_fallback: float) -> float:
        """Bandwidth fallback for one server with no supervisor samples.

        A profile's ``bandwidth_bps`` prior beats the requesting client's
        own estimate (which was measured against whichever server that
        client last talked to); without a profile, the client estimate is
        all there is — today's behaviour.
        """
        if self.profiles is not None:
            profile = self.profiles[index]
            if profile is not None and profile.bandwidth_bps is not None:
                return profile.bandwidth_bps
        return client_fallback

    def _pick_tied(self, ties: List[int], ks: Sequence[float]) -> int:
        """Pick one server index from the near-tie band.

        Equal weights (every tied server reports the same ``k_s`` — the
        homogeneous fleet between probe refreshes, or probing disabled)
        take the original round-robin path unchanged.  Otherwise servers
        rotate by predicted residual capacity ``1/k_s`` via smooth
        weighted round-robin: each tied server earns its weight in
        credits, the richest (ties → lowest index) pays the round's total
        and wins — over time server ``i`` receives a ``w_i / Σw`` share
        of the near-tie traffic instead of a flat ``1/len(ties)``.
        """
        weights = [1.0 / max(float(ks[i]), 1.0) for i in ties]
        if len(set(weights)) <= 1:
            index = ties[self._rotation % len(ties)]
            self._rotation += 1
            return index
        for i, w in zip(ties, weights):
            self._credits[i] = self._credits.get(i, 0.0) + w
        index = max(ties, key=lambda i: (self._credits[i], -i))
        self._credits[index] -= sum(weights)
        return index

    def _local_decision(self, bandwidth_up: float, k: float) -> PartitionDecision:
        d = self.engine.decide(bandwidth_up, k=k)
        n = self.engine.num_nodes
        return PartitionDecision(point=n,
                                 predicted_latency=float(d.candidates[n]),
                                 candidates=d.candidates)

    def route(self, now_s: float, bandwidth_fallback: float, k_fallback: float,
              exclude: Sequence[int] = (),
              ) -> Tuple[int | None, PartitionDecision]:
        """Pick ``(server, partition decision)`` for one offload request.

        ``bandwidth_fallback`` / ``k_fallback`` are the requesting
        client's own §IV estimates, used for any server the supervisor
        has no fresh data about.  ``exclude`` lists servers the caller
        would rather avoid (the previously-failed server of a retry); it
        is a preference — when it empties the candidate pool, the full
        pool is used instead.  Returns ``(None, local decision)`` when
        the whole fleet is dark or saturated, or when local inference
        wins on merit.
        """
        sup = self.supervisor
        for sid in self._ids:
            sup.detect_restart(sid, now_s)
        pool = [sid for sid in self._ids if sup.routable(sid)]
        if not pool:
            # Breakers all open: fall back to merely not-dead servers so a
            # lone-server fleet keeps retrying its only path.
            pool = list(sup.live_servers())
        if not pool:
            self.last_decision = None
            return None, self._local_decision(bandwidth_fallback, k_fallback)
        preferred = [sid for sid in pool if sid not in exclude] or pool
        admitted = [sid for sid in preferred if self._has_room(sid, now_s)]
        if not admitted:
            admitted = [sid for sid in pool if self._has_room(sid, now_s)]
        if not admitted:
            self.rejected_count += 1
            self.last_decision = None
            return None, self._local_decision(bandwidth_fallback, k_fallback)

        bandwidths = [
            sup.bandwidth_for(sid, self._bandwidth_prior(i, bandwidth_fallback))
            for i, sid in enumerate(self._ids)]
        ks = [sup.k_for(sid, now_s, k_fallback) for sid in self._ids]
        decision = self.engine.decide_fleet(
            bandwidths, ks,
            extra_latencies_s=self._extra_latencies(),
            allowed=[self._index(sid) for sid in admitted],
            profiles=self.profiles,
        )
        self.last_decision = decision
        if decision.server is None:
            # Local inference won on merit; hand back the winning vector.
            best = next((d for d in decision.decisions if d is not None), None)
            if best is None:
                return None, self._local_decision(bandwidth_fallback, k_fallback)
            return None, PartitionDecision(
                point=self.engine.num_nodes,
                predicted_latency=decision.predicted_latency,
                candidates=best.candidates)
        # Rotate among near-tied servers (see
        # ``GatewayConfig.rebalance_tolerance``): a strictly-better
        # server (beyond the band) still wins outright, and a 1-server
        # fleet has no siblings to rotate to — the degenerate identity
        # is untouched.
        band = decision.predicted_latency * (1.0 + self.config.rebalance_tolerance)
        ties = [i for i, d in enumerate(decision.decisions)
                if d is not None and d.point < self.engine.num_nodes
                and d.predicted_latency <= band]
        index = self._pick_tied(ties, ks)
        sid = self._ids[index]
        if self.config.admission_limit is not None:
            self._admitted[sid].append(now_s)
        self.routed_counts[sid] += 1
        chosen = decision.decisions[index]
        assert chosen is not None
        return sid, chosen

    # -- SLA-aware routing -----------------------------------------------------

    def _local_exit_decision(self, sla_s: float | None, bandwidth_up: float,
                             k: float) -> Tuple[int, PartitionDecision, bool]:
        """Local resolution of an SLA request: the exit rule over the
        fully-local candidates of every exit (latest exit whose local time
        meets the SLA, else the fastest local exit)."""
        latencies: List[float] = []
        pds: List[PartitionDecision] = []
        for e in range(self.engine.num_exits):
            eng = self.engine.exit_engine(e)
            d = eng.decide(bandwidth_up, k=k)
            n = eng.num_nodes
            pds.append(PartitionDecision(
                point=n, predicted_latency=float(d.candidates[n]),
                candidates=d.candidates))
            latencies.append(float(d.candidates[n]))
        if sla_s is None:
            return len(pds) - 1, pds[-1], True
        e, feasible = self.engine._pick_exit(sla_s, latencies)
        return e, pds[e], feasible

    def route_exit(self, now_s: float, sla_s: float | None,
                   bandwidth_fallback: float, k_fallback: float,
                   exclude: Sequence[int] = (),
                   ) -> Tuple[int | None, int, PartitionDecision, bool]:
        """SLA-aware routing: the joint ``(exit, point, server)`` decision.

        Mirrors :meth:`route` with the exit axis on top: one fleet scan per
        exit sub-graph, then the engine's exit rule (latest SLA-feasible
        exit, else the globally fastest).  Near-tie rotation happens
        *within* the chosen exit's per-server scans, and — when the exit is
        SLA-feasible — only among servers still predicted to meet the SLA,
        so rotation never trades a met deadline for load spreading.
        Returns ``(server_id | None, exit_index, decision, feasible)``.
        """
        sup = self.supervisor
        for sid in self._ids:
            sup.detect_restart(sid, now_s)
        pool = [sid for sid in self._ids if sup.routable(sid)]
        if not pool:
            pool = list(sup.live_servers())
        if not pool:
            self.last_decision = None
            return (None,) + self._local_exit_decision(
                sla_s, bandwidth_fallback, k_fallback)
        preferred = [sid for sid in pool if sid not in exclude] or pool
        admitted = [sid for sid in preferred if self._has_room(sid, now_s)]
        if not admitted:
            admitted = [sid for sid in pool if self._has_room(sid, now_s)]
        if not admitted:
            self.rejected_count += 1
            self.last_decision = None
            return (None,) + self._local_exit_decision(
                sla_s, bandwidth_fallback, k_fallback)

        bandwidths = [
            sup.bandwidth_for(sid, self._bandwidth_prior(i, bandwidth_fallback))
            for i, sid in enumerate(self._ids)]
        ks = [sup.k_for(sid, now_s, k_fallback) for sid in self._ids]
        fd = self.engine.decide_exit_fleet(
            sla_s, bandwidths, ks,
            extra_latencies_s=self._extra_latencies(),
            allowed=[self._index(sid) for sid in admitted],
            profiles=self.profiles,
        )
        chosen_fleet = fd.decision
        self.last_decision = chosen_fleet
        n_e = self.engine.exit_engine(fd.exit_index).num_nodes
        if chosen_fleet.server is None:
            best = next((d for d in chosen_fleet.decisions if d is not None),
                        None)
            if best is None:
                return (None,) + self._local_exit_decision(
                    sla_s, bandwidth_fallback, k_fallback)
            return None, fd.exit_index, PartitionDecision(
                point=n_e,
                predicted_latency=chosen_fleet.predicted_latency,
                candidates=best.candidates), fd.feasible
        band = chosen_fleet.predicted_latency * (
            1.0 + self.config.rebalance_tolerance)
        if sla_s is not None and fd.feasible:
            band = min(band, sla_s)
        ties = [i for i, d in enumerate(chosen_fleet.decisions)
                if d is not None and d.point < n_e
                and d.predicted_latency <= band]
        index = self._pick_tied(ties, ks)
        sid = self._ids[index]
        if self.config.admission_limit is not None:
            self._admitted[sid].append(now_s)
        self.routed_counts[sid] += 1
        chosen = chosen_fleet.decisions[index]
        assert chosen is not None
        return sid, fd.exit_index, chosen, fd.feasible


class _GatewayPolicy:
    """DecisionPolicy adapter: ``decide`` asks the gateway to route.

    Routing mutates the owning device's ``server``/``channel`` to the
    chosen sibling *before* the upload starts — the decision IS the
    routing step, exactly where the single-server runtime runs
    Algorithm 1.
    """

    def __init__(self, device: "GatewayDevice") -> None:
        self._device = device

    def decide(self, bandwidth_up: float, k: float = 1.0) -> PartitionDecision:
        return self._device._route_decide(bandwidth_up, k)

    def decide_exit(self, sla_s: float | None, bandwidth_up: float,
                    k: float = 1.0) -> ExitDecision:
        return self._device._route_decide_exit(sla_s, bandwidth_up, k)


class GatewayDevice(UserDevice):
    """A user device whose offloads go through an :class:`EdgeGateway`."""

    def __init__(self, engine: LoADPartEngine, gateway: EdgeGateway,
                 **kwargs) -> None:
        super().__init__(engine, gateway.ports[0], gateway.channels[0],
                         policy=None, **kwargs)
        self.gateway = gateway
        self.policy = _GatewayPolicy(self)
        self._now_s = 0.0
        self._retrying = False
        self._routed_request_id: int | None = None
        self._routed_server_id: int | None = None

    def begin_inference(self, now_s: float, *, request_id: int | None = None,
                        force_local: bool = False,
                        sla_budget_s: float | None = None):
        self._now_s = now_s
        self._retrying = (request_id is not None
                          and request_id == self._routed_request_id)
        result = super().begin_inference(now_s, request_id=request_id,
                                         force_local=force_local,
                                         sla_budget_s=sla_budget_s)
        if not force_local and not isinstance(result, InferenceRecord):
            self._routed_request_id = result.request_id
        return result

    def _route_decide(self, bandwidth_up: float, k: float) -> PartitionDecision:
        exclude: Tuple[int, ...] = ()
        if self._retrying and self._routed_server_id is not None:
            exclude = (self._routed_server_id,)
        sid, decision = self.gateway.route(
            self._now_s, bandwidth_up, k, exclude=exclude)
        if sid is not None:
            index = self.gateway._index(sid)
            self.server = self.gateway.ports[index]
            self.channel = self.gateway.channels[index]
            self._routed_server_id = sid
        return decision

    def _route_decide_exit(self, sla_s: float | None, bandwidth_up: float,
                           k: float) -> ExitDecision:
        exclude: Tuple[int, ...] = ()
        if self._retrying and self._routed_server_id is not None:
            exclude = (self._routed_server_id,)
        sid, exit_index, decision, feasible = self.gateway.route_exit(
            self._now_s, sla_s, bandwidth_up, k, exclude=exclude)
        if sid is not None:
            index = self.gateway._index(sid)
            self.server = self.gateway.ports[index]
            self.channel = self.gateway.channels[index]
            self._routed_server_id = sid
        return ExitDecision(
            exit_index=exit_index,
            point=decision.point,
            predicted_latency=decision.predicted_latency,
            accuracy=self.engine.exit_accuracy(
                exit_index if self.engine.has_exits else None),
            sla_s=sla_s,
            feasible=feasible,
            decision=decision,
            decisions=(None,) * self.engine.num_exits,
        )


class GatewayFleetSystem:
    """N clients × M servers behind one gateway, on one event loop.

    The sequential driver mirrors
    :class:`~repro.runtime.multi.MultiClientSystem` exactly — same client
    seeds, same profiler stagger, same global-time-order request loop —
    so a 1-server fleet with probing disabled produces records
    byte-identical to the direct path.  Each server gets its own
    :class:`~repro.runtime.multi.SharedLoadTracker` (contention is
    per-GPU), its own channel (per-link fault streams via
    :meth:`~repro.network.faults.FaultPlan.for_server`), and a
    ``config.seed``-derived RNG that matches the direct path for server 0.
    """

    def __init__(
        self,
        engine: LoADPartEngine,
        num_clients: int,
        num_servers: int = 1,
        bandwidth_trace: BandwidthTrace | None = None,
        config: SystemConfig | None = None,
        gateway_config: GatewayConfig | None = None,
        server_faults: Sequence[ServerFaultPlan | None] | None = None,
        network_params: Sequence[NetworkParams] | None = None,
        tracker_window_s: float = 3.0,
        profiles: Sequence[ServerProfile | None] | None = None,
        gpu_models: Sequence[object | None] | None = None,
        bandwidth_traces: Sequence[BandwidthTrace] | None = None,
    ) -> None:
        if num_clients < 1:
            raise ValueError("need at least one client")
        if num_servers < 1:
            raise ValueError("need at least one server")
        self.config = config or SystemConfig()
        if self.config.batching is not None:
            raise ValueError("dynamic batching is not supported behind the "
                             "gateway; use MultiClientSystem")
        if self.config.streaming is not None:
            raise ValueError("streaming uploads are not supported behind the "
                             "gateway yet")
        if server_faults is not None and len(server_faults) != num_servers:
            raise ValueError("server_faults must name one plan per server")
        if network_params is not None and len(network_params) != num_servers:
            raise ValueError("network_params must name one entry per server")
        if profiles is not None and len(profiles) != num_servers:
            raise ValueError("profiles must name one entry per server")
        if gpu_models is not None and len(gpu_models) != num_servers:
            raise ValueError("gpu_models must name one entry per server")
        if bandwidth_traces is not None and len(bandwidth_traces) != num_servers:
            raise ValueError("bandwidth_traces must name one entry per server")
        self.engine = engine
        self.num_servers = num_servers

        trace = bandwidth_trace or ConstantTrace(8e6)
        servers: List[SharedEdgeServer] = []
        channels: List[Channel] = []
        self.trackers: List[SharedLoadTracker] = []
        for s in range(num_servers):
            tracker = SharedLoadTracker(window_s=tracker_window_s)
            self.trackers.append(tracker)
            fault_plan = None
            if server_faults is not None:
                fault_plan = server_faults[s]
            elif self.config.server_faults is not None and s == 0:
                # A single plan in the SystemConfig lands on server 0 (the
                # direct path's only server); siblings stay healthy.
                fault_plan = self.config.server_faults
            servers.append(SharedEdgeServer(
                engine,
                tracker,
                monitor_window_s=self.config.monitor_window_s,
                watchdog_threshold=self.config.watchdog_threshold,
                watchdog_period_s=self.config.watchdog_period_s,
                # Server 0 matches the direct path's seed; siblings get
                # widely-separated streams.
                seed=self.config.seed + 100 + 1000 * s,
                backend=self.config.backend,
                functional=self.config.functional,
                model_seed=self.config.seed,
                fault_plan=fault_plan,
                parallelism=self.config.parallelism,
                server_id=s,
                # Heterogeneous truth and belief: the GPU model is what
                # the simulated silicon *does*; the profile is what the
                # router (and the server's own k monitor) *believes*.
                gpu_model=(gpu_models[s] if gpu_models is not None else None),
                profile=(profiles[s] if profiles is not None else None),
            ))
            server_trace = (bandwidth_traces[s] if bandwidth_traces is not None
                            else trace)
            params = (network_params[s] if network_params is not None
                      else NetworkParams())
            if self.config.faults is not None:
                channels.append(FaultyChannel(
                    server_trace, self.config.faults.for_server(s), params))
            else:
                channels.append(Channel(server_trace, params))
        self.servers = servers
        self.channels = channels
        self.gateway = EdgeGateway(
            engine, servers, channels,
            config=gateway_config,
            supervisor_seed=self.config.seed + 300,
            profiles=profiles,
        )
        self.policy = self.config.policy
        if self.config.policy != "loadpart":
            raise ValueError("the fleet gateway requires policy='loadpart' "
                             "(the joint (point, server) scan)")
        self.clients: List[GatewayDevice] = []
        sla_classes = self.config.sla_classes
        for i in range(num_clients):
            self.clients.append(GatewayDevice(
                engine,
                self.gateway,
                seed=self.config.seed + 200 + i,
                backend=self.config.backend,
                functional=self.config.functional,
                model_seed=self.config.seed,
                resilience=self.config.resilience,
                parallelism=self.config.parallelism,
                sla_s=(sla_classes[i % len(sla_classes)]
                       if sla_classes else None),
            ))
        self.loop = EventLoop()

    @property
    def supervisor(self) -> FleetSupervisor:
        return self.gateway.supervisor

    def run(self, duration_s: float) -> FleetResult:
        """Simulate all clients issuing requests back-to-back."""
        loop = self.loop
        records: List[List[InferenceRecord]] = [[] for _ in self.clients]

        for i, client in enumerate(self.clients):
            client.profiler_tick(0.0)
            # Stagger profiler periods so clients don't probe in lockstep
            # (identical to MultiClientSystem).
            offset = (i + 1) * self.config.profiler_period_s / (len(self.clients) + 1)
            loop.schedule_every(
                self.config.profiler_period_s,
                lambda c=client: c.profiler_tick(loop.now),
                start_s=offset,
            )
        for server in self.servers:
            loop.schedule_every(
                self.config.watchdog_period_s,
                lambda s=server: s.watchdog_tick(loop.now))
        if self.gateway.probing_enabled:
            probe_period = self.supervisor.config.probe_period_s
            self.supervisor.tick(0.0)
            loop.schedule_every(probe_period,
                                lambda: self.supervisor.tick(loop.now))

        next_at = [i * 0.003 for i in range(len(self.clients))]
        while True:
            idx = int(np.argmin(next_at))
            t = next_at[idx]
            if t >= duration_s:
                break
            loop.run_until(t)
            record = self.clients[idx].request_inference(t)
            records[idx].append(record)
            next_at[idx] = t + record.total_s + self.config.think_time_s
        return FleetResult(
            timelines=tuple(Timeline(r) for r in records),
            policy=self.policy,
            num_servers=self.num_servers,
        )
