"""The edge-server runtime.

Executes offloaded tail segments on the (contended) GPU, maintains the
influential factor ``k`` via :class:`~repro.core.load_factor.LoadFactorMonitor`,
runs the GPU-utilisation watchdog, and keeps a partition cache so repeated
partition points skip graph surgery (§III-A, §IV).

With a :class:`~repro.network.faults.ServerFaultPlan` the server can also
*break*: during a crash window every handler returns ``None`` (no reply —
the client's deadline is its only recourse), the first request after the
window hits a freshly restarted process (partition cache and load-factor
window wiped), and admission control bounds the accepted offload rate,
shedding excess load with :class:`~repro.runtime.messages.BusyReply`.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from typing import Deque, Dict, List, Sequence

import numpy as np

from repro.core.cache import PartitionCache
from repro.core.engine import LoADPartEngine
from repro.core.load_factor import GpuWatchdog, LoadFactorMonitor
from repro.graph.partitioner import GraphPartitioner
from repro.hardware.background import IDLE, LoadSchedule
from repro.hardware.gpu_model import GpuModel
from repro.hardware.gpu_scheduler import GpuScheduler
from repro.network.codec import EncodedTensor, decode_any
from repro.network.faults import ServerFaultPlan
from repro.nn.executor import (
    SegmentExecutor,
    _check_backend,
    graph_signature,
    init_parameters,
)
from repro.nn.parallel import CompileOnceCache, ParallelConfig
from repro.runtime.batching import BatchingConfig, PendingRequest
from repro.runtime.messages import BusyReply, LoadReply, OffloadReply

#: Cost of partitioning the graph + preparing the runtime on a cache miss.
#: The paper reports the amortised overhead is ~1% of inference time over
#: ~100 requests, which puts the one-off cost in the millisecond range.
PARTITION_OVERHEAD_S = 2.5e-3


class EdgeServer:
    """Simulated edge server: GPU execution, k monitoring, watchdog."""

    def __init__(
        self,
        engine: LoADPartEngine,
        load_schedule: LoadSchedule | None = None,
        gpu_model: GpuModel | None = None,
        scheduler: GpuScheduler | None = None,
        monitor_window_s: float = 5.0,
        watchdog_threshold: float = 0.90,
        watchdog_period_s: float = 10.0,
        seed: int = 0,
        backend: str = "naive",
        functional: bool = False,
        model_seed: int = 0,
        fault_plan: ServerFaultPlan | None = None,
        parallelism: ParallelConfig | None = None,
        server_id: int = 0,
        profile=None,
    ) -> None:
        self.engine = engine
        #: Identity of this server inside a sharded fleet (0 when alone).
        self.server_id = server_id
        #: This server's :class:`~repro.core.engine.ServerProfile` in a
        #: heterogeneous fleet (``None`` = the engine's shared model).
        #: Load monitoring divides observed by *this server's* predicted
        #: tail time — against the shared model, slow silicon would read
        #: as permanent queueing (k ≈ hardware scale even when idle).
        self.profile = profile
        self.load_schedule = load_schedule or LoadSchedule([(0.0, IDLE)])
        self.gpu_model = gpu_model or GpuModel()
        self.scheduler = scheduler or GpuScheduler()
        self.monitor = LoadFactorMonitor(window_s=monitor_window_s)
        self.watchdog = GpuWatchdog(self.monitor, watchdog_threshold, watchdog_period_s)
        self.cache = PartitionCache(GraphPartitioner(engine.graph))
        self._rng = np.random.default_rng(seed)
        self.offload_count = 0
        self.fault_plan = fault_plan
        self._restarts_seen = 0
        self.rejected_count = 0
        self._admitted: Deque[float] = deque()
        self.backend = _check_backend(backend)
        self.functional = functional
        self.parallelism = parallelism
        self._model_seed = model_seed
        self._model_params: Dict[str, np.ndarray] | None = None
        self._model_params_lock = threading.Lock()
        # Compiled tail executors keyed by (graph signature, partition
        # point, batch size): plans compile once and are reused across
        # requests and across the batching ladder's rungs.  The cache is
        # raced by parallel chains and the batching event loop, so it is a
        # build-once cache: one compile per key, all racers share it.
        self._graph_sig = graph_signature(engine.graph)
        self._tail_executors: CompileOnceCache = CompileOnceCache()
        # Early-exit state, all lazy: per-exit partition caches, graph
        # signatures and head parameters.  Requests without an exit index
        # never touch any of it (the exit-free path is unchanged).
        self._exit_caches: Dict[int, PartitionCache] = {}
        self._exit_sigs: Dict[int, str] = {}
        self._exit_params: Dict[int, Dict[str, np.ndarray]] = {}

    # -- early exits -----------------------------------------------------------

    def _engine_for(self, exit_index: int | None) -> LoADPartEngine:
        if exit_index is None:
            return self.engine
        return self.engine.exit_engine(exit_index)

    def _cache_for(self, exit_index: int | None) -> PartitionCache:
        """Partition cache of one exit's graph (the backbone shares
        :attr:`cache` with exit-free traffic — same graph, same cuts)."""
        if exit_index is None or exit_index == self.engine.num_exits - 1:
            return self.cache
        cache = self._exit_caches.get(exit_index)
        if cache is None:
            cache = PartitionCache(GraphPartitioner(
                self.engine.exit_engine(exit_index).graph))
            self._exit_caches[exit_index] = cache
        return cache

    def _sig_for(self, exit_index: int | None) -> str:
        if exit_index is None or exit_index == self.engine.num_exits - 1:
            return self._graph_sig
        sig = self._exit_sigs.get(exit_index)
        if sig is None:
            sig = graph_signature(self.engine.exit_engine(exit_index).graph)
            self._exit_sigs[exit_index] = sig
        return sig

    def _params_for(self, exit_index: int | None) -> Dict[str, np.ndarray]:
        """Model parameters of one exit's graph.

        Backbone nodes are seeded per parameter *name*, so the shared
        prefix of every exit graph carries bit-identical weights; only the
        exit's own head adds new entries.
        """
        if exit_index is None or exit_index == self.engine.num_exits - 1:
            return self.model_params
        params = self._exit_params.get(exit_index)
        if params is None:
            with self._model_params_lock:
                params = self._exit_params.get(exit_index)
                if params is None:
                    graph = self.engine.exit_engine(exit_index).graph
                    params = init_parameters(
                        (graph.node(n) for n in graph.topological_order()),
                        self._model_seed,
                    )
                    self._exit_params[exit_index] = params
        return params

    # -- functional execution --------------------------------------------------

    @property
    def model_params(self) -> Dict[str, np.ndarray]:
        """Parameters materialised from the preloaded model file (§III-A)."""
        if self._model_params is None:
            with self._model_params_lock:
                if self._model_params is None:
                    graph = self.engine.graph
                    self._model_params = init_parameters(
                        (graph.node(n) for n in graph.topological_order()),
                        self._model_seed,
                    )
        return self._model_params

    def _tail_executor(self, point: int, batch: int = 1,
                       exit_index: int | None = None) -> SegmentExecutor:
        key = (self._sig_for(exit_index), point, batch)
        cache = self._cache_for(exit_index)
        params = self._params_for(exit_index)
        return self._tail_executors.get_or_create(key, lambda: SegmentExecutor(
            cache.get(point).tail, params=params,
            backend=self.backend, batch=batch, parallelism=self.parallelism,
        ))

    @staticmethod
    def _decode_boundary(tensors: Dict[str, object]) -> Dict[str, np.ndarray]:
        """Materialise uploaded tensors: codec-encoded payloads are decoded
        on arrival, raw fp32 arrays pass through untouched."""
        return {
            name: decode_any(value) if isinstance(value, EncodedTensor)
            else value
            for name, value in tensors.items()
        }

    def _execute_tail(self, point: int, tensors: Dict[str, np.ndarray],
                      exit_index: int | None = None) -> Dict[str, np.ndarray]:
        """Run the tail segment on the uploaded boundary tensors."""
        partitioned = self._cache_for(exit_index).get(point)
        if partitioned.tail.is_empty:
            return {}
        decoded = self._decode_boundary(tensors)
        boundary = {name: decoded[name] for name in partitioned.tail.boundary_inputs}
        return self._tail_executor(point, exit_index=exit_index).run(boundary)

    def _execute_tail_batch(
        self, point: int, tensors_list: Sequence[Dict[str, np.ndarray]], padded: int,
        exit_index: int | None = None,
    ) -> List[Dict[str, np.ndarray]]:
        """Run one ``padded``-sample batched tail over stacked boundaries.

        The ``len(tensors_list)`` real samples are stacked along the batch
        axis and zero-padded up to ``padded``; per-request output slices
        keep their leading batch-1 axis, so each reply looks exactly like a
        solo :meth:`_execute_tail` result.

        With a :class:`~repro.nn.parallel.ParallelConfig` the cached
        batched tail plan compiles per-sample step slices and this call
        runs them as 2-D (sample × chain) tasks on the shared pool —
        per-sample bit-identity makes that invisible in the replies.
        """
        partitioned = self._cache_for(exit_index).get(point)
        if partitioned.tail.is_empty:
            return [{} for _ in tensors_list]
        executor = self._tail_executor(point, batch=padded, exit_index=exit_index)
        b = len(tensors_list)
        decoded_list = [self._decode_boundary(tensors) for tensors in tensors_list]
        boundary: Dict[str, np.ndarray] = {}
        for name, spec in partitioned.tail.boundary_inputs.items():
            stack = [np.asarray(tensors[name]) for tensors in decoded_list]
            if padded > b:
                stack.append(np.zeros(
                    ((padded - b) * spec.shape[0],) + tuple(spec.shape[1:]),
                    dtype=stack[0].dtype,
                ))
            boundary[name] = np.concatenate(stack, axis=0)
        outputs = executor.run(boundary)
        return [
            {name: out[i:i + 1] for name, out in outputs.items()}
            for i in range(b)
        ]

    # -- fault model ----------------------------------------------------------

    def available_at(self, now_s: float) -> bool:
        """Is the server process alive (not inside a crash window)?"""
        return self.fault_plan is None or not self.fault_plan.is_down(now_s)

    def _maybe_restart(self, now_s: float) -> None:
        """Wipe crash-volatile state when a crash window has elapsed.

        A restarted server has no partition cache (graph surgery redone on
        demand — the next request pays ``PARTITION_OVERHEAD_S`` again) and
        an empty load-factor window (``k`` restarts at 1 and must re-learn
        the load).  Model parameters reload from the preloaded file
        (§III-A), so functional outputs are unchanged.
        """
        if self.fault_plan is None:
            return
        restarts = self.fault_plan.restarts_before(now_s)
        if restarts > self._restarts_seen:
            self._restarts_seen = restarts
            self.cache.clear()
            for cache in self._exit_caches.values():
                cache.clear()
            self.monitor.reset()
            self._admitted.clear()

    def _admit(self, now_s: float, request_id: int) -> BusyReply | None:
        """Admission control: bounded accept rate, or a BusyReply."""
        plan = self.fault_plan
        if plan is None or plan.queue_limit is None:
            return None
        while self._admitted and self._admitted[0] < now_s - plan.admission_window_s:
            self._admitted.popleft()
        if len(self._admitted) >= plan.queue_limit:
            self.rejected_count += 1
            return BusyReply(request_id=request_id, retry_after_s=plan.retry_after_s)
        self._admitted.append(now_s)
        return None

    # -- request path ---------------------------------------------------------

    def handle_offload(self, now_s: float, request_id: int, point: int,
                       tensors: Dict[str, np.ndarray] | None = None,
                       arrivals: Dict[str, float] | None = None,
                       exit_index: int | None = None,
                       ) -> OffloadReply | BusyReply | None:
        """Execute the tail of partition ``point`` arriving at ``now_s``.

        When the server runs in functional mode and the device uploaded real
        boundary ``tensors``, the tail segment is actually executed and its
        outputs travel back on the reply; simulated timing is unaffected.

        ``arrivals`` is the streaming pipeline's gift: per-crossing-tensor
        availability instants (absolute, all ``<= now_s``, which is when the
        *last* tensor became available).  The tail then executes
        arrival-gated — each run of the release schedule starts as soon as
        its gating tensor has landed — so compute that overlapped the
        upload is hidden from ``server_exec_s``.  The reply's
        ``gpu_busy_s`` still carries the full occupancy for load
        accounting.  Without ``arrivals`` (monolithic upload) nothing
        changes: one scheduler pass, ``server_exec_s`` == busy time.

        Without a fault plan the return is always an :class:`OffloadReply`.
        With one, a crashed server returns ``None`` (no reply ever comes —
        the caller's deadline is its only recourse) and an overloaded one
        returns a :class:`BusyReply` instead of queueing without bound.
        """
        if not self.available_at(now_s):
            return None
        self._maybe_restart(now_s)
        busy = self._admit(now_s, request_id)
        if busy is not None:
            return busy
        engine = self._engine_for(exit_index)
        cache = self._cache_for(exit_index)
        cache_hit = point in cache
        partitioned = cache.get(point)
        overhead = 0.0 if cache_hit else PARTITION_OVERHEAD_S

        result_tensors = (
            self._execute_tail(point, tensors, exit_index=exit_index)
            if self.functional and tensors is not None
            else None
        )

        profiles = engine.tail_profiles(point)
        kernel_times = self.gpu_model.sample_kernel_times(profiles, self._rng)
        level = self.load_schedule.level_at(now_s)
        gpu_busy_s: float | None = None
        schedule = engine.release_schedule(point) if arrivals else ()
        if len(schedule) > 1:
            # Arrival-gated execution: split the kernel sequence at the
            # release gates; each segment starts at max(gate, previous
            # segment's finish).  A single-entry schedule degenerates to
            # the monolithic path below (same scheduler call, same RNG
            # draws).
            bounds = [j for _name, j in schedule] + [point + len(kernel_times)]
            busy_end = -math.inf
            gpu_busy = 0.0
            for (gate_name, jstart), jend in zip(schedule, bounds[1:]):
                seg = kernel_times[jstart - point:jend - point]
                seg_exec = self.scheduler.execute(seg, level, self._rng)
                gpu_busy += seg_exec
                start = max(arrivals.get(gate_name, now_s), busy_end)
                busy_end = start + seg_exec
            actual = max(busy_end - now_s, 0.0)
            gpu_busy_s = gpu_busy
        else:
            actual = self.scheduler.execute(kernel_times, level, self._rng)

        predicted = engine.predicted_server_time(point, profile=self.profile)
        if predicted > 0:
            # k tracks compute slowdown, so it is fed GPU occupancy — the
            # exposed (overlap-credited) time would make a loaded server
            # look idle whenever uploads hide its queueing.
            observed = gpu_busy_s if gpu_busy_s is not None else actual
            self.monitor.record(now_s, observed, predicted)
        self.offload_count += 1
        return OffloadReply(
            request_id=request_id,
            partition_point=point,
            server_exec_s=actual,
            result_bytes=partitioned.tail.result_bytes if not partitioned.tail.is_empty
            else 0,
            cache_hit=cache_hit,
            partition_overhead_s=overhead,
            tensors=result_tensors,
            gpu_busy_s=gpu_busy_s,
            exit_index=exit_index,
        )

    def handle_offload_batch(
        self,
        now_s: float,
        requests: Sequence[PendingRequest],
        point: int,
        batching: BatchingConfig,
        exit_index: int | None = None,
    ) -> List[OffloadReply] | None:
        """Execute one batched tail flush for ``requests`` at ``now_s``.

        The batch is padded up to the nearest ladder rung and runs once on
        the GPU; all requests finish together.  Each reply's
        ``server_exec_s`` is that request's *time at the server* — its
        queueing delay (``now_s - enqueue_s``) plus the shared batch
        execution time — and that same sum feeds the load-factor monitor,
        so ``k = observed/predicted`` keeps reflecting what clients truly
        experience under batching.  Replies are returned in request order.
        """
        if not requests:
            return []
        if not self.available_at(now_s):
            return None
        self._maybe_restart(now_s)
        engine = self._engine_for(exit_index)
        cache = self._cache_for(exit_index)
        cache_hit = point in cache
        partitioned = cache.get(point)
        overhead = 0.0 if cache_hit else PARTITION_OVERHEAD_S

        results: List[Dict[str, np.ndarray] | None]
        if self.functional and all(r.tensors is not None for r in requests):
            padded = batching.padded_size(len(requests))
            results = list(self._execute_tail_batch(
                point, [r.tensors for r in requests], padded,
                exit_index=exit_index,
            ))
        else:
            results = [None] * len(requests)

        profiles = engine.tail_profiles(point)
        kernel_times = self.gpu_model.sample_kernel_times(profiles, self._rng)
        scale = batching.batch_time_scale(batching.padded_size(len(requests)))
        level = self.load_schedule.level_at(now_s)
        exec_s = self.scheduler.execute(
            [kt * scale for kt in kernel_times], level, self._rng
        )

        predicted = engine.predicted_server_time(point, profile=self.profile)
        result_bytes = partitioned.tail.result_bytes if not partitioned.tail.is_empty else 0
        replies: List[OffloadReply] = []
        for i, request in enumerate(requests):
            queue_s = max(now_s - request.enqueue_s, 0.0)
            observed = queue_s + exec_s
            if predicted > 0:
                self.monitor.record(now_s, observed, predicted)
            self.offload_count += 1
            replies.append(OffloadReply(
                request_id=request.request_id,
                partition_point=point,
                server_exec_s=observed,
                result_bytes=result_bytes,
                cache_hit=cache_hit if i == 0 else True,
                partition_overhead_s=overhead if i == 0 else 0.0,
                tensors=results[i],
                queue_s=queue_s,
                batch_size=len(requests),
                exit_index=exit_index,
            ))
        return replies

    # -- profiler path -----------------------------------------------------------

    def handle_load_query(self, now_s: float) -> LoadReply | None:
        """The device profiler asks for the current load factor (§IV).

        Returns ``None`` when the server is inside a crash window (the
        query, like any other message, gets no reply).
        """
        if not self.available_at(now_s):
            return None
        self._maybe_restart(now_s)
        k = self.monitor.refresh(now_s)
        return LoadReply(k=k, gpu_utilization=self.gpu_utilization(now_s))

    def gpu_utilization(self, now_s: float) -> float:
        return self.load_schedule.level_at(now_s).utilization

    def watchdog_tick(self, now_s: float) -> bool:
        """Periodic GPU-utilisation check; resets k when the GPU recovers."""
        return self.watchdog.maybe_check(now_s, self.gpu_utilization(now_s))
