"""Client-side resilience: deadlines, retries, circuit breaking.

The paper's runtime assumes the offload path always answers — a slow
server shows up in ``k``, a slow link in the bandwidth estimate, but a
*dead* one would block the device forever.  This module holds the policy
knobs and the circuit-breaker state machine that let
:class:`~repro.runtime.client.UserDevice` degrade gracefully instead:

- **Deadline** — each offload attempt gets ``deadline_margin ×`` the
  engine's own predicted end-to-end latency for the chosen partition point
  (Algorithm 1's objective value).  The prediction the device already
  computes is exactly the right yardstick: a request that overshoots its
  own prediction several-fold is lost, not slow.
- **Retry with exponential backoff + jitter** — a failed attempt is
  retried at the *re-decided* partition point (bandwidth and ``k`` may
  have changed — indeed the failure itself fed the bandwidth estimator),
  with a budget so latency stays bounded.
- **Circuit breaker** — after ``failure_threshold`` consecutive failures
  the breaker opens and the device pins ``point = n`` (full local
  inference).  The paper's §IV profiler tick doubles as the half-open
  health probe: once ``cooldown_s`` has elapsed, a successful probe +
  load query closes the breaker and offloading resumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs of the resilient offload path (None on the device = legacy)."""

    deadline_margin: float = 3.0      # timeout = margin x predicted total latency
    min_timeout_s: float = 0.05       # floor, so tiny predictions don't flap
    max_retries: int = 2              # offload attempts beyond the first
    backoff_base_s: float = 0.05
    backoff_factor: float = 2.0
    backoff_jitter: float = 0.5       # +/- uniform fraction of the delay
    failure_threshold: int = 3        # consecutive failures that open the breaker
    cooldown_s: float = 20.0          # open time before a probe may close it
    probe_timeout_s: float = 1.0      # deadline on the profiler's health probe
    k_ttl_s: float = 30.0             # load factor older than this is ignored
    bandwidth_window_s: float = 30.0  # age bound on bandwidth samples

    def __post_init__(self) -> None:
        if self.deadline_margin <= 0:
            raise ValueError("deadline_margin must be positive")
        if self.min_timeout_s <= 0:
            raise ValueError("min_timeout_s must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if self.backoff_base_s < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff_base_s >= 0 and backoff_factor >= 1 required")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_s < 0 or self.probe_timeout_s <= 0:
            raise ValueError("cooldown_s >= 0 and probe_timeout_s > 0 required")
        if self.k_ttl_s <= 0 or self.bandwidth_window_s <= 0:
            raise ValueError("k_ttl_s and bandwidth_window_s must be positive")

    def timeout_for(self, predicted_total_s: float,
                    sla_s: float | None = None) -> float:
        """Per-attempt deadline from the engine's own latency prediction.

        ``sla_s`` is the request's remaining SLA budget, honoured as a
        *ceiling* on the margin-derived deadline: an attempt must never be
        allowed to run past the point where the SLA is already lost (the
        retry budget would overshoot it).  The ``min_timeout_s`` floor
        still applies — a nearly-exhausted budget degrades to one short
        attempt, not a zero-length one.
        """
        if not math.isfinite(predicted_total_s) or predicted_total_s <= 0:
            timeout = self.min_timeout_s
        else:
            timeout = max(self.deadline_margin * predicted_total_s,
                          self.min_timeout_s)
        if sla_s is not None:
            timeout = max(min(timeout, sla_s), self.min_timeout_s)
        return timeout

    def backoff_s(self, attempt: int, unit_jitter: float) -> float:
        """Delay before retry ``attempt`` (1-based); ``unit_jitter`` in [0, 1)."""
        base = self.backoff_base_s * self.backoff_factor ** (attempt - 1)
        return base * (1.0 + self.backoff_jitter * (2.0 * unit_jitter - 1.0))


class CircuitBreaker:
    """Consecutive-failure breaker guarding the offload path.

    Closed: offloading allowed.  Open: every decision is forced to
    ``point = n`` (full local).  Half-open is *probe-driven*, not
    request-driven — after ``cooldown_s`` the periodic profiler tick
    (§IV) tests the path, and only its success closes the breaker, so
    user requests never pay to rediscover a dead server.
    """

    def __init__(self, failure_threshold: int, cooldown_s: float) -> None:
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be non-negative")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._consecutive_failures = 0
        self._opened_at_s: float | None = None
        #: Counters for observability.
        self.open_count = 0
        self.failure_count = 0

    @property
    def is_open(self) -> bool:
        return self._opened_at_s is not None

    @property
    def state(self) -> str:
        """``"closed"`` or ``"open"`` — for supervisor observability.

        Half-open is not a stored state: an open breaker past its cooldown
        simply *lets the next probe's success close it*
        (:meth:`probe_may_close`), so externally it is still ``"open"``.
        """
        return "open" if self.is_open else "closed"

    def allow_offload(self, now_s: float) -> bool:
        """May a user request take the offload path right now?"""
        del now_s  # requests never half-open the breaker; probes do
        return self._opened_at_s is None

    def probe_may_close(self, now_s: float) -> bool:
        """Has the cooldown elapsed, so a successful probe closes the breaker?"""
        return (self._opened_at_s is not None
                and now_s - self._opened_at_s >= self.cooldown_s)

    def record_failure(self, now_s: float) -> None:
        self.failure_count += 1
        self._consecutive_failures += 1
        if self._consecutive_failures >= self.failure_threshold:
            if self._opened_at_s is None:
                self.open_count += 1
            # (Re)open: every further failure restarts the cooldown clock.
            self._opened_at_s = now_s

    def record_success(self, now_s: float) -> None:
        """A successful offload, or a successful probe after the cooldown."""
        if self._opened_at_s is not None and not self.probe_may_close(now_s):
            # Within the cooldown the breaker stays open (flap damping);
            # the success still clears the consecutive-failure streak.
            self._consecutive_failures = 0
            return
        self._consecutive_failures = 0
        self._opened_at_s = None
