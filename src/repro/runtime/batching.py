"""Dynamic request batching for the shared edge server.

Serving-style batching (cf. the Edge AI serving literature in PAPERS.md):
offload requests that arrive at the server within a short window *at the
same partition point* are stacked into one ``n > 1`` planned tail
execution, amortising per-request GEMM setup across clients.  Three rules
keep the paper's load-feedback loop honest:

- **Ladder + padding.**  Batched plans compile per batch size, so sizes are
  drawn from a small ladder (default 1/2/4/8) and the last partial batch is
  zero-padded up to the nearest rung.  Every op in the planned backend is
  per-sample independent (per-sample GEMM slabs, per-row GEMVs, inference-
  mode batchnorm), so pad samples cannot perturb real ones and per-sample
  outputs stay bit-identical to the naive executor.
- **Queueing delay is server time.**  A request that waits ``w`` seconds for
  its batch to fill experienced ``w + exec`` seconds of server latency.
  That sum — not bare ``exec`` — is what
  :class:`~repro.core.load_factor.LoadFactorMonitor` must observe, or the
  influential factor ``k = observed/predicted`` would under-report load
  precisely when batching queues build up.
- **Busy time is counted once.**  The GPU runs the batch once, so
  :class:`~repro.runtime.multi.SharedLoadTracker` records the batch
  execution time once per flush, not once per request.

Batching composes with parallel plan execution: when the system carries a
:class:`~repro.nn.parallel.ParallelConfig`, the server's batched tail
plans compile per-sample step slices and the flush executes them as 2-D
(sample × chain) tasks on the shared pool — per-sample outputs stay
bit-identical either way, so the composition is invisible to clients.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

#: Default batch-size ladder; plans are compiled (and cached) per rung.
DEFAULT_LADDER: Tuple[int, ...] = (1, 2, 4, 8)


@dataclass(frozen=True)
class BatchingConfig:
    """Dynamic-batching knobs for the multi-client runtime.

    ``marginal_sample_cost`` models GPU batching efficiency: a batch of
    ``b`` samples costs ``1 + (b - 1) * marginal_sample_cost`` times one
    sample (0 = perfectly parallel, 1 = purely sequential).  The default
    0.35 is in the range batched GEMMs achieve on a T4-class part.
    """

    window_s: float = 0.005
    max_batch: int = 8
    ladder: Tuple[int, ...] = DEFAULT_LADDER
    marginal_sample_cost: float = 0.35

    def __post_init__(self) -> None:
        if self.window_s < 0:
            raise ValueError("window_s must be non-negative")
        ladder = tuple(sorted(set(int(b) for b in self.ladder)))
        if not ladder or ladder[0] < 1:
            raise ValueError("ladder must contain positive batch sizes")
        object.__setattr__(self, "ladder", ladder)
        if not 1 <= self.max_batch <= ladder[-1]:
            raise ValueError(
                f"max_batch must be in [1, max(ladder)={ladder[-1]}], got {self.max_batch}"
            )
        if self.marginal_sample_cost < 0:
            raise ValueError("marginal_sample_cost must be non-negative")

    def padded_size(self, n: int) -> int:
        """Smallest ladder rung holding ``n`` samples."""
        if n < 1:
            raise ValueError("batch must hold at least one sample")
        for rung in self.ladder:
            if rung >= n:
                return rung
        raise ValueError(f"batch of {n} exceeds ladder maximum {self.ladder[-1]}")

    def batch_time_scale(self, padded: int) -> float:
        """Execution-time multiplier of a ``padded``-sample batch vs one sample."""
        return 1.0 + (padded - 1) * self.marginal_sample_cost


@dataclass
class PendingRequest:
    """One offload request waiting in a partition point's batch queue."""

    request_id: int
    enqueue_s: float                      # arrival time at the server
    tensors: Dict[str, Any] | None = None  # boundary tensors (functional mode)
    context: Any = None                    # opaque driver payload (e.g. client)


@dataclass
class _PointQueue:
    pending: List[PendingRequest] = field(default_factory=list)
    epoch: int = 0


class DynamicBatcher:
    """Per-partition-point FIFO queues with window/size flush triggers.

    The batcher only holds state; *when* to flush is the driver's call via
    the return values of :meth:`enqueue` (the event loop owns time).  Epochs
    guard against stale timer events: a window timer scheduled for a queue
    that was flushed early (by reaching ``max_batch``) must not fire twice.
    """

    def __init__(self, config: BatchingConfig) -> None:
        self.config = config
        self._queues: Dict[int, _PointQueue] = {}

    def enqueue(self, point: int, request: PendingRequest) -> Tuple[bool, int]:
        """Queue a request; returns ``(flush_now, epoch)``.

        ``flush_now`` is True when the queue just reached ``max_batch`` and
        must be flushed immediately.  Otherwise the caller should arm a
        window timer for ``epoch`` iff this request opened the queue.
        """
        q = self._queues.setdefault(point, _PointQueue())
        q.pending.append(request)
        return len(q.pending) >= self.config.max_batch, q.epoch

    def queue_depth(self, point: int) -> int:
        q = self._queues.get(point)
        return len(q.pending) if q is not None else 0

    def current_epoch(self, point: int) -> int:
        return self._queues.setdefault(point, _PointQueue()).epoch

    def take(self, point: int, epoch: int | None = None) -> List[PendingRequest]:
        """Drain the queue at ``point`` (FIFO order) and bump its epoch.

        With ``epoch`` given, a stale flush (the queue was already flushed
        since the timer was armed) drains nothing.
        """
        q = self._queues.get(point)
        if q is None or not q.pending:
            return []
        if epoch is not None and epoch != q.epoch:
            return []
        batch, q.pending = q.pending, []
        q.epoch += 1
        return batch

    def drain_all(self) -> List[Tuple[int, List[PendingRequest]]]:
        """Drain every non-empty queue (end-of-run cleanup)."""
        out: List[Tuple[int, List[PendingRequest]]] = []
        for point in sorted(self._queues):
            batch = self.take(point)
            if batch:
                out.append((point, batch))
        return out
