"""``LatencyPredictor``: the paper's M_user / M_edge model bundles.

One NNLS model per computation-node category, for one side (device or
edge).  Nodes without a category (concat, flatten, dropout, ...) predict
zero, exactly as the paper's implementation assigns them (§IV).  The bundle
serialises to JSON so that both the device and the server can load the same
trained models, as in Fig. 3.
"""

from __future__ import annotations

import json
import math
from typing import Dict, Iterable, Sequence

import numpy as np

from repro.graph.ops import CATEGORIES
from repro.profiling.features import FEATURE_NAMES, NodeProfile, feature_vector
from repro.profiling.regression import NNLSModel


class LatencyPredictor:
    """Per-category latency models for one side ("edge" or "device")."""

    def __init__(self, side: str, models: Dict[str, NNLSModel]) -> None:
        if side not in ("edge", "device"):
            raise ValueError(f"side must be 'edge' or 'device', got {side!r}")
        missing = set(CATEGORIES) - set(models)
        if missing:
            raise ValueError(f"missing models for categories: {sorted(missing)}")
        self.side = side
        self.models = dict(models)

    def predict(self, profile: NodeProfile) -> float:
        """Predicted execution time of one node, in seconds (>= 0)."""
        if profile.category is None:
            return 0.0
        try:
            model = self.models[profile.category]
        except KeyError:
            raise KeyError(
                f"no model for category {profile.category!r}; train the "
                "profiler with include_fused=True to predict fused kernels"
            ) from None
        return max(model.predict_one(feature_vector(profile, self.side)), 0.0)

    @property
    def supports_fused(self) -> bool:
        """True if this bundle can predict fused kernels (§VI extension)."""
        from repro.graph.ops import FUSED_CATEGORIES

        return all(cat in self.models for cat in FUSED_CATEGORIES)

    def predict_nodes(self, profiles: Sequence[NodeProfile]) -> np.ndarray:
        """Per-node predictions for a node sequence (the f(L_i) / g(L_i) array)."""
        return np.array([self.predict(p) for p in profiles], dtype=np.float64)

    def predict_total(self, profiles: Iterable[NodeProfile]) -> float:
        return float(sum(self.predict(p) for p in profiles))

    # -- persistence ------------------------------------------------------------

    def to_json(self) -> str:
        payload = {
            "side": self.side,
            "models": {cat: model.to_dict() for cat, model in self.models.items()},
        }
        return json.dumps(payload, indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "LatencyPredictor":
        payload = json.loads(text)
        models = {
            cat: NNLSModel.from_dict(entry) for cat, entry in payload["models"].items()
        }
        return cls(payload["side"], models)

    # -- construction helpers ------------------------------------------------------

    def scaled(self, scale: float) -> "ScaledPredictor":
        """This bundle's predictions uniformly scaled by ``scale``."""
        return ScaledPredictor(self, scale)

    @classmethod
    def fit(
        cls,
        side: str,
        samples_by_category: Dict[str, Sequence],
    ) -> "LatencyPredictor":
        """Fit one NNLS model per category from profiled samples.

        ``samples_by_category`` maps category to a sequence of
        :class:`~repro.profiling.sampler.ProfiledSample`.  The 8 paper
        categories are required; fused categories are optional extras.
        """
        missing = set(CATEGORIES) - set(samples_by_category)
        if missing:
            raise ValueError(f"no samples for categories: {sorted(missing)}")
        models: Dict[str, NNLSModel] = {}
        for category, samples in samples_by_category.items():
            if not samples:
                raise ValueError(f"no samples for category {category!r}")
            names = FEATURE_NAMES[(category, side)]
            X = np.stack([feature_vector(s.profile, side) for s in samples])
            y = np.array(
                [s.device_time if side == "device" else s.edge_time for s in samples]
            )
            models[category] = NNLSModel(names).fit(X, y)
        return cls(side, models)


class ScaledPredictor:
    """A predictor proxy whose every prediction is scaled by a constant.

    Models a machine that is uniformly ``scale``x slower (``scale > 1``)
    or faster (``scale < 1``) than the hardware the wrapped bundle was
    profiled on — the cheapest honest way to describe a heterogeneous
    fleet whose servers share an architecture but not a clock.  A
    :class:`~repro.core.engine.ServerProfile` carries one of these as
    its per-server edge model; ``scale == 1`` predicts bit-identically
    to the wrapped bundle (``predict_nodes`` multiplies by exactly 1.0).
    """

    def __init__(self, base, scale: float) -> None:
        if not math.isfinite(scale) or scale <= 0:
            raise ValueError(f"scale must be positive and finite, got {scale}")
        self.base = base
        self.scale = float(scale)

    @property
    def side(self) -> str:
        return self.base.side

    def predict(self, profile: NodeProfile) -> float:
        return self.base.predict(profile) * self.scale

    def predict_nodes(self, profiles: Sequence[NodeProfile]) -> np.ndarray:
        return self.base.predict_nodes(profiles) * self.scale

    def predict_total(self, profiles: Iterable[NodeProfile]) -> float:
        return float(self.base.predict_total(profiles) * self.scale)
