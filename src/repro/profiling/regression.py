"""Non-negative least-squares linear regression (paper §III-B, step 3).

The paper fits the LR models "by fitting the non-negative least squares
(NNLS) to keep all its regression coefficients positive and not fitting the
intercept, to make sure when the input feature is a zero vector, the
predicted inference time is zero".  :class:`NNLSModel` does exactly that,
with internal column scaling for numerical conditioning (feature magnitudes
span ~1 .. 1e10).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.optimize import nnls


class NNLSModel:
    """Linear model ``y = X @ coef`` with ``coef >= 0`` and no intercept."""

    def __init__(self, feature_names: Sequence[str]) -> None:
        self.feature_names = tuple(feature_names)
        self.coef: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.coef is not None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "NNLSModel":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or X.shape[1] != len(self.feature_names):
            raise ValueError(
                f"X must be (n, {len(self.feature_names)}), got {X.shape}"
            )
        if y.shape != (X.shape[0],):
            raise ValueError(f"y must be ({X.shape[0]},), got {y.shape}")
        if X.shape[0] < X.shape[1]:
            raise ValueError("need at least as many samples as features")
        # Column scaling: NNLS operates on O(1) columns, coefficients are
        # rescaled back, preserving non-negativity.
        scales = np.abs(X).max(axis=0)
        scales[scales == 0] = 1.0
        coef_scaled, _residual = nnls(X / scales, y)
        self.coef = coef_scaled / scales
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        if self.coef is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        if X.ndim == 1:
            X = X[None, :]
        return X @ self.coef

    def predict_one(self, x: np.ndarray) -> float:
        return float(self.predict(x)[0])

    def to_dict(self) -> dict:
        """Serialisable form, stored on both device and server (§III-A)."""
        if self.coef is None:
            raise RuntimeError("model is not fitted")
        return {
            "feature_names": list(self.feature_names),
            "coef": [float(c) for c in self.coef],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "NNLSModel":
        model = cls(payload["feature_names"])
        coef = np.asarray(payload["coef"], dtype=np.float64)
        if np.any(coef < 0):
            raise ValueError("NNLS coefficients must be non-negative")
        model.coef = coef
        return model
