"""The offline profiler: end-to-end model development (paper Fig. 4).

Runs the three-step pipeline per computation-node category:

1. sample layer configurations and "measure" them on the hardware models
   (the stand-in for profiling the physical Pi and T4),
2. assemble the Table II feature vectors,
3. fit NNLS models and evaluate RMSE / MAPE on a held-out test split.

The result is a pair of :class:`~repro.profiling.predictor.LatencyPredictor`
bundles (M_user, M_edge) plus a :class:`ProfilerReport` that regenerates
Table III.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.graph.ops import CATEGORIES, FUSED_CATEGORIES
from repro.hardware.device_model import DeviceModel
from repro.hardware.gpu_model import GpuModel
from repro.profiling.metrics import mape, rmse
from repro.profiling.predictor import LatencyPredictor
from repro.profiling.sampler import ConfigSampler, ProfiledSample

#: The rows of Table III: (display name, category, op filter or None).
TABLE3_ROWS: Tuple[Tuple[str, str, str | None], ...] = (
    ("Conv", "conv", None),
    ("DWConv", "dwconv", None),
    ("Matmul", "matmul", None),
    ("AvgPooling", "pooling", "avgpool2d"),
    ("MaxPooling", "pooling", "maxpool2d"),
    ("BiasAdd", "bias_add", None),
    ("Elem-wise Add", "elementwise", "add"),
    ("BatchNorm", "batchnorm", None),
    ("ReLU", "activation", "relu"),
)


@dataclass(frozen=True)
class RowMetrics:
    """One Table III row: per-side RMSE (seconds) and MAPE (fraction)."""

    name: str
    edge_rmse: float
    edge_mape: float
    device_rmse: float
    device_mape: float


@dataclass(frozen=True)
class ProfilerReport:
    """Trained predictors plus held-out accuracy metrics (Table III)."""

    user_predictor: LatencyPredictor
    edge_predictor: LatencyPredictor
    rows: Tuple[RowMetrics, ...]
    train_counts: Dict[str, int]
    test_counts: Dict[str, int]

    def format_table3(self) -> str:
        lines = [
            f"{'Computation Node':<16s} {'Edge RMSE(us)':>14s} {'Edge MAPE':>10s} "
            f"{'Dev RMSE(us)':>14s} {'Dev MAPE':>10s}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.name:<16s} {row.edge_rmse * 1e6:>14.2f} {row.edge_mape * 100:>9.2f}% "
                f"{row.device_rmse * 1e6:>14.2f} {row.device_mape * 100:>9.2f}%"
            )
        return "\n".join(lines)


class OfflineProfiler:
    """Profiles sampled configurations and trains the prediction models."""

    def __init__(
        self,
        device_model: DeviceModel | None = None,
        gpu_model: GpuModel | None = None,
        samples_per_category: int = 300,
        repeats: int = 3,
        test_fraction: float = 0.25,
        seed: int = 0,
        include_fused: bool = False,
    ) -> None:
        if not 0.0 < test_fraction < 1.0:
            raise ValueError("test_fraction must be in (0, 1)")
        self.device_model = device_model or DeviceModel()
        self.gpu_model = gpu_model or GpuModel()
        self.samples_per_category = samples_per_category
        self.repeats = repeats
        self.test_fraction = test_fraction
        self.seed = seed
        self.include_fused = include_fused

    @property
    def categories(self) -> Tuple[str, ...]:
        if self.include_fused:
            return tuple(CATEGORIES) + tuple(FUSED_CATEGORIES)
        return tuple(CATEGORIES)

    def collect(self) -> Dict[str, List[ProfiledSample]]:
        """Step 1: sample configurations and measure them (with noise)."""
        sampler = ConfigSampler(seed=self.seed)
        rng = np.random.default_rng(self.seed + 1)
        out: Dict[str, List[ProfiledSample]] = {}
        for category in self.categories:
            samples: List[ProfiledSample] = []
            for profile in sampler.sample_profiles(category, self.samples_per_category):
                device_time = float(
                    np.mean([self.device_model.sample_time(profile, rng) for _ in range(self.repeats)])
                )
                edge_time = float(
                    np.mean([self.gpu_model.sample_time(profile, rng) for _ in range(self.repeats)])
                )
                samples.append(ProfiledSample(profile, device_time, edge_time))
            out[category] = samples
        return out

    def run(self) -> ProfilerReport:
        """Full pipeline: collect, split, fit both sides, evaluate Table III."""
        data = self.collect()
        rng = np.random.default_rng(self.seed + 2)
        train: Dict[str, List[ProfiledSample]] = {}
        test: Dict[str, List[ProfiledSample]] = {}
        for category, samples in data.items():
            idx = rng.permutation(len(samples))
            n_test = max(int(len(samples) * self.test_fraction), 1)
            test_ids = set(idx[:n_test].tolist())
            train[category] = [s for i, s in enumerate(samples) if i not in test_ids]
            test[category] = [s for i, s in enumerate(samples) if i in test_ids]

        user = LatencyPredictor.fit("device", train)
        edge = LatencyPredictor.fit("edge", train)

        rows: List[RowMetrics] = []
        for name, category, op_filter in TABLE3_ROWS:
            subset = [
                s for s in test[category] if op_filter is None or s.profile.op == op_filter
            ]
            if not subset:
                raise RuntimeError(f"no test samples for Table III row {name!r}")
            actual_dev = np.array([s.device_time for s in subset])
            actual_edge = np.array([s.edge_time for s in subset])
            pred_dev = np.array([user.predict(s.profile) for s in subset])
            pred_edge = np.array([edge.predict(s.profile) for s in subset])
            rows.append(
                RowMetrics(
                    name=name,
                    edge_rmse=rmse(actual_edge, pred_edge),
                    edge_mape=mape(actual_edge, pred_edge),
                    device_rmse=rmse(actual_dev, pred_dev),
                    device_mape=mape(actual_dev, pred_dev),
                )
            )
        return ProfilerReport(
            user_predictor=user,
            edge_predictor=edge,
            rows=tuple(rows),
            train_counts={c: len(v) for c, v in train.items()},
            test_counts={c: len(v) for c, v in test.items()},
        )
