"""Uniform sampling of layer configurations for offline profiling.

The paper "investigates some common DNNs to decide the value ranges of
attributes of different computation nodes", then samples uniformly within
those ranges and profiles the sampled configurations (§III-B, step 3).
:class:`ConfigSampler` reproduces this: the ranges below are taken from the
model zoo (channels 3..1024, maps 7..224, kernels 1..11), and each draw is
turned into a :class:`~repro.profiling.features.NodeProfile` via the same
shape rules the real graphs use.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.graph.graph import ComputationGraph
from repro.graph.node import CNode
from repro.profiling.features import NodeProfile, profile_node

#: Op kinds sampled per category; Table III reports some of them separately
#: (AvgPooling vs MaxPooling, Elem-wise Add vs other element-wise ops).
CATEGORY_OPS: Dict[str, Sequence[str]] = {
    "conv": ("conv2d",),
    "dwconv": ("dwconv2d",),
    "matmul": ("matmul",),
    "pooling": ("maxpool2d", "avgpool2d"),
    "bias_add": ("bias_add",),
    "elementwise": ("add",),
    "batchnorm": ("batchnorm",),
    "activation": ("relu", "sigmoid", "tanh"),
    # Fused kernels (§VI extension).
    "conv_fused": ("fused_conv2d",),
    "dwconv_fused": ("fused_dwconv2d",),
    "matmul_fused": ("fused_matmul",),
}

#: Epilogue chains sampled for fused kernels (as produced by the fusion pass).
_EPILOGUE_CHOICES = (
    ("bias_add",),
    ("bias_add", "relu"),
    ("batchnorm",),
    ("batchnorm", "relu"),
    ("bias_add", "sigmoid"),
)

_CHANNEL_CHOICES = (3, 16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 728, 1024)
_MAP_CHOICES = (7, 13, 14, 19, 27, 28, 37, 55, 56, 75, 112, 149, 224)
_CONV_KERNELS = (1, 3, 5, 7, 11)
_FC_FEATURES = (256, 512, 1000, 1024, 2048, 4096, 9216)

#: Realism bounds mirroring the model zoo: real CNN activations stay within
#: a few MB and single layers below a few GFLOPs.  Without these bounds the
#: independent draws above produce configurations (e.g. 1024 channels at
#: 224x224) that no common DNN contains, and the paper explicitly restricts
#: ranges to those found in common DNNs.
_MAX_ACTIVATION_ELEMS = 1_200_000
_MIN_ACTIVATION_ELEMS = 4_000
_MAX_CONV_FLOPS = 2.5e9


@dataclass(frozen=True)
class ProfiledSample:
    """One profiled configuration: geometry plus a measured time per side."""

    profile: NodeProfile
    device_time: float
    edge_time: float


@dataclass(frozen=True)
class TimedSample:
    """A sampled configuration with a real wall-clock measurement."""

    profile: NodeProfile
    wall_s: float


def measure_graph_wall_time(graph: ComputationGraph, backend: str = "naive",
                            repeats: int = 3, input_seed: int = 0,
                            seed: int = 0, batch: int = 1) -> float:
    """Median wall-clock seconds of one real executor run of ``graph``.

    One warm-up run pays compile/allocation costs (for the planned backend,
    the compile-once half of its contract), then the median of ``repeats``
    timed runs is returned.  The backend only changes how fast the sample is
    measured — the profile geometry recorded next to it is untouched.
    ``batch=n`` times an ``n``-sample stacked run (whole-batch seconds, not
    per-sample).
    """
    from repro.nn.executor import GraphExecutor

    executor = GraphExecutor(graph, seed=seed, backend=backend, batch=batch)
    shape = (graph.input_spec.shape[0] * batch,) + graph.input_spec.shape[1:]
    x = np.random.default_rng(input_seed).standard_normal(shape).astype(np.float32)
    executor.run(x)
    times = []
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        executor.run(x)
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


class ConfigSampler:
    """Draws random-but-valid node configurations per category."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._last_graph: ComputationGraph | None = None

    def sample_profiles(self, category: str, count: int) -> List[NodeProfile]:
        """``count`` profiles of the given category, ops cycled uniformly."""
        try:
            ops = CATEGORY_OPS[category]
        except KeyError:
            raise KeyError(f"unknown category {category!r}; known: {sorted(CATEGORY_OPS)}") from None
        return [self._sample_one(ops[i % len(ops)]) for i in range(count)]

    def sample_timed(self, category: str, count: int, backend: str = "naive",
                     repeats: int = 3, batch: int = 1) -> List[TimedSample]:
        """Sampled configurations measured on a real executor backend.

        The drawn geometry is identical to :meth:`sample_profiles` with the
        same seed state; the backend selector (and batch size) affect only
        the wall-clock attached to each sample.
        """
        samples: List[TimedSample] = []
        for i in range(count):
            ops = CATEGORY_OPS[category]
            profile = self._sample_one(ops[i % len(ops)])
            assert self._last_graph is not None
            wall = measure_graph_wall_time(self._last_graph, backend=backend,
                                           repeats=repeats, batch=batch)
            samples.append(TimedSample(profile=profile, wall_s=wall))
        return samples

    # -- internals ------------------------------------------------------------

    def _sample_one(self, op: str) -> NodeProfile:
        rng = self._rng
        if op.startswith("fused_"):
            base = self._sample_one(op.removeprefix("fused_"))
            epilogue = _EPILOGUE_CHOICES[int(rng.integers(0, len(_EPILOGUE_CHOICES)))]
            attrs = self._attrs_from_profile(base)
            attrs["epilogue"] = epilogue
            shape = (base.n, base.c_in) if base.op == "matmul" else (
                base.n, base.c_in, base.h_in, base.w_in
            )
            return self._build(op, shape, **attrs)
        if op == "conv2d":
            while True:
                c_in = int(rng.choice(_CHANNEL_CHOICES))
                c_out = int(rng.choice(_CHANNEL_CHOICES[1:]))
                kernel = int(rng.choice(_CONV_KERNELS))
                hw = int(rng.choice([m for m in _MAP_CHOICES if m >= kernel]))
                stride = int(rng.choice((1, 1, 2, 4)))
                if not self._realistic(c_in, hw):
                    continue
                flops = c_in * (hw // stride) ** 2 * kernel * kernel * c_out
                if flops <= _MAX_CONV_FLOPS:
                    break
            return self._build(op, (1, c_in, hw, hw), out_channels=c_out,
                               kernel=kernel, stride=stride, padding=kernel // 2)
        if op == "dwconv2d":
            while True:
                c_in = int(rng.choice(_CHANNEL_CHOICES[1:]))
                kernel = int(rng.choice((3, 5)))
                hw = int(rng.choice([m for m in _MAP_CHOICES if m >= kernel]))
                stride = int(rng.choice((1, 1, 2)))
                if self._realistic(c_in, hw):
                    break
            return self._build(op, (1, c_in, hw, hw), kernel=kernel,
                               stride=stride, padding=kernel // 2)
        if op == "matmul":
            c_in = int(rng.choice(_FC_FEATURES))
            c_out = int(rng.choice(_FC_FEATURES))
            return self._build(op, (1, c_in), out_features=c_out)
        if op in ("maxpool2d", "avgpool2d"):
            while True:
                kernel = int(rng.choice((2, 3)))
                c = int(rng.choice(_CHANNEL_CHOICES[1:]))
                hw = int(rng.choice([m for m in _MAP_CHOICES if m > kernel]))
                if self._realistic(c, hw):
                    break
            return self._build(op, (1, c, hw, hw), kernel=kernel, stride=2)
        # Element-wise family: bias_add, add, batchnorm, activations.
        while True:
            c = int(rng.choice(_CHANNEL_CHOICES))
            hw = int(rng.choice(_MAP_CHOICES))
            if self._realistic(c, hw):
                break
        shape = (1, c, hw, hw)
        if op == "add":
            return self._build(op, shape, n_inputs=2)
        return self._build(op, shape)

    @staticmethod
    def _attrs_from_profile(profile: NodeProfile) -> dict:
        """Reconstruct sampler attrs from an anchor profile (fused sampling)."""
        if profile.op == "matmul":
            return {"out_features": profile.c_out}
        # conv2d / dwconv2d share the spatial attribute set.
        stride_h = max(round((profile.h_in + 2 * profile.pad_h - profile.k_h)
                             / max(profile.h_out - 1, 1)), 1) if profile.h_out > 1 else 1
        attrs = {
            "kernel": (profile.k_h, profile.k_w),
            "stride": stride_h,
            "padding": (profile.pad_h, profile.pad_w),
        }
        if profile.op == "conv2d":
            attrs["out_channels"] = profile.c_out
        return attrs

    @staticmethod
    def _realistic(channels: int, hw: int) -> bool:
        elems = channels * hw * hw
        return _MIN_ACTIVATION_ELEMS <= elems <= _MAX_ACTIVATION_ELEMS

    def _build(self, op: str, input_shape, n_inputs: int = 1, **attrs) -> NodeProfile:
        graph = ComputationGraph(f"sample_{op}", _spec(input_shape))
        inputs = [graph.input_name] * n_inputs
        node = graph.add_node(CNode(name="sample", op=op, inputs=inputs, attrs=attrs))
        graph.set_output(node.name)
        self._last_graph = graph
        return profile_node(node, graph.input_specs_of(node))


def _spec(shape):
    from repro.graph.node import TensorSpec

    return TensorSpec(tuple(int(d) for d in shape))
