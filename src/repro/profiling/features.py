"""Per-node profiles and the hand-designed feature vectors of Table II.

A :class:`NodeProfile` condenses one computation node into the quantities
both the hardware cost models and the prediction models consume: FLOPs
(Table I), tensor geometry, and byte counts.  :func:`feature_vector` turns a
profile into the exact feature set of Table II for a given side
(``"edge"`` or ``"device"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.graph.graph import ComputationGraph
from repro.graph.node import CNode, TensorSpec
from repro.graph.ops import node_flops, op_spec

SIDES = ("edge", "device")


def _pair(value) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    return (int(value[0]), int(value[1]))


@dataclass(frozen=True)
class NodeProfile:
    """Geometry and cost-relevant metadata of one computation node."""

    op: str
    category: str | None
    flops: int
    n: int
    c_in: int
    c_out: int
    h_in: int
    w_in: int
    h_out: int
    w_out: int
    k_h: int
    k_w: int
    pad_h: int
    pad_w: int
    input_bytes: int
    output_bytes: int
    param_bytes: int
    #: number of element-wise ops absorbed into a fused kernel (§VI ext.)
    epilogue_len: int = 0

    @property
    def anchor_flops(self) -> int:
        """FLOPs of the anchor alone (fused kernels exclude the epilogue)."""
        return self.flops - self.epilogue_len * self.output_elems

    @property
    def s_f(self) -> int:
        """Size of a single filter: C_in * K_H * K_W (paper §III-B)."""
        return self.c_in * self.k_h * self.k_w

    @property
    def padded_size(self) -> int:
        """Total size of the padded input feature map (DWConv feature)."""
        return self.n * self.c_in * (self.h_in + 2 * self.pad_h) * (self.w_in + 2 * self.pad_w)

    @property
    def input_elems(self) -> int:
        return self.input_bytes // 4

    @property
    def output_elems(self) -> int:
        return self.output_bytes // 4


def profile_node(node: CNode, input_specs: Sequence[TensorSpec]) -> NodeProfile:
    """Build a :class:`NodeProfile` from a node and its input specs."""
    assert node.output is not None
    spec = op_spec(node.op)
    first = input_specs[0]
    out = node.output
    n = first.shape[0]
    c_in = first.shape[1] if first.rank >= 2 else 1
    h_in, w_in = (first.shape[2], first.shape[3]) if first.rank == 4 else (1, 1)
    c_out = out.shape[1] if out.rank >= 2 else 1
    h_out, w_out = (out.shape[2], out.shape[3]) if out.rank == 4 else (1, 1)
    if node.op == "global_avgpool":
        k_h, k_w = h_in, w_in
        pad_h = pad_w = 0
    elif "kernel" in node.attrs:
        k_h, k_w = _pair(node.attrs["kernel"])
        pad_h, pad_w = _pair(node.attrs.get("padding", 0))
    else:
        k_h = k_w = 1
        pad_h = pad_w = 0
    return NodeProfile(
        op=node.op,
        category=spec.category,
        flops=node_flops(node.op, input_specs, out, node.attrs),
        n=n,
        c_in=c_in,
        c_out=c_out,
        h_in=h_in,
        w_in=w_in,
        h_out=h_out,
        w_out=w_out,
        k_h=k_h,
        k_w=k_w,
        pad_h=pad_h,
        pad_w=pad_w,
        input_bytes=sum(s.nbytes for s in input_specs),
        output_bytes=out.nbytes,
        param_bytes=node.param_bytes,
        epilogue_len=len(node.attrs.get("epilogue", ())),
    )


def profile_graph(graph: ComputationGraph) -> List[NodeProfile]:
    """Profiles for every node, in topological order (the paper's L_1..L_n)."""
    return [
        profile_node(graph.node(name), graph.input_specs_of(graph.node(name)))
        for name in graph.topological_order()
    ]


# ---------------------------------------------------------------------------
# Table II feature vectors
# ---------------------------------------------------------------------------

#: Feature names per (category, side); identical across sides except for the
#: convolution kinds, exactly as laid out in Table II.
FEATURE_NAMES: Dict[Tuple[str, str], Tuple[str, ...]] = {
    ("conv", "edge"): ("flops", "s_f", "h_in*s_f", "c_out*s_f"),
    ("conv", "device"): ("flops", "n*c_out*s_f"),
    ("dwconv", "edge"): ("flops", "s_f", "padded_size"),
    ("dwconv", "device"): ("flops", "n*c_out*s_f"),
    ("matmul", "edge"): ("flops", "n*c_in", "n*c_out", "c_in*c_out"),
    ("matmul", "device"): ("flops", "n*c_in", "n*c_out", "c_in*c_out"),
    ("pooling", "edge"): ("flops", "n*c_in*h_in*w_in", "n*c_out*h_out*w_out", "h_out*w_out"),
    ("pooling", "device"): ("flops", "n*c_in*h_in*w_in", "n*c_out*h_out*w_out", "h_out*w_out"),
    ("bias_add", "edge"): ("flops",),
    ("bias_add", "device"): ("flops",),
    ("elementwise", "edge"): ("flops",),
    ("elementwise", "device"): ("flops",),
    ("batchnorm", "edge"): ("flops",),
    ("batchnorm", "device"): ("flops",),
    ("activation", "edge"): ("flops",),
    ("activation", "device"): ("flops",),
    # Fused kernels (§VI extension): the anchor's features plus the fused
    # epilogue size, trained as separate models per the paper's suggestion.
    ("conv_fused", "edge"): ("flops", "s_f", "h_in*s_f", "c_out*s_f", "epilogue_elems"),
    ("conv_fused", "device"): ("flops", "n*c_out*s_f", "epilogue_elems"),
    ("dwconv_fused", "edge"): ("flops", "s_f", "padded_size", "epilogue_elems"),
    ("dwconv_fused", "device"): ("flops", "n*c_out*s_f", "epilogue_elems"),
    ("matmul_fused", "edge"): ("flops", "n*c_in", "n*c_out", "c_in*c_out", "epilogue_elems"),
    ("matmul_fused", "device"): ("flops", "n*c_in", "n*c_out", "c_in*c_out", "epilogue_elems"),
}


def _feature_value(profile: NodeProfile, name: str) -> float:
    values = {
        "flops": float(profile.flops),
        "s_f": float(profile.s_f),
        "h_in*s_f": float(profile.h_in * profile.s_f),
        "c_out*s_f": float(profile.c_out * profile.s_f),
        "n*c_out*s_f": float(profile.n * profile.c_out * profile.s_f),
        "padded_size": float(profile.padded_size),
        "n*c_in": float(profile.n * profile.c_in),
        "n*c_out": float(profile.n * profile.c_out),
        "c_in*c_out": float(profile.c_in * profile.c_out),
        "n*c_in*h_in*w_in": float(profile.n * profile.c_in * profile.h_in * profile.w_in),
        "n*c_out*h_out*w_out": float(profile.n * profile.c_out * profile.h_out * profile.w_out),
        "h_out*w_out": float(profile.h_out * profile.w_out),
        "epilogue_elems": float(profile.epilogue_len * profile.output_elems),
    }
    return values[name]


def feature_vector(profile: NodeProfile, side: str) -> np.ndarray:
    """The Table II feature vector of a node for ``side`` in {edge, device}."""
    if side not in SIDES:
        raise ValueError(f"side must be one of {SIDES}, got {side!r}")
    if profile.category is None:
        raise ValueError(f"op {profile.op!r} has no prediction-model category")
    names = FEATURE_NAMES[(profile.category, side)]
    return np.array([_feature_value(profile, name) for name in names], dtype=np.float64)


#: Superset of candidate features offered to the feature-selection step
#: (Table II was distilled from a pool like this via XGBoost importance).
CANDIDATE_FEATURES: Tuple[str, ...] = (
    "flops",
    "s_f",
    "h_in*s_f",
    "c_out*s_f",
    "n*c_out*s_f",
    "padded_size",
    "n*c_in",
    "n*c_out",
    "c_in*c_out",
    "n*c_in*h_in*w_in",
    "n*c_out*h_out*w_out",
    "h_out*w_out",
    "epilogue_elems",
)


def candidate_vector(profile: NodeProfile) -> np.ndarray:
    """All candidate feature values, for the GBT feature-selection step."""
    return np.array([_feature_value(profile, name) for name in CANDIDATE_FEATURES], dtype=np.float64)
