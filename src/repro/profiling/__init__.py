"""Offline profiling pipeline (paper §III-B).

The three-step process of Fig. 4:

1. *Profile* — :mod:`repro.profiling.sampler` draws layer configurations
   uniformly from per-op attribute ranges and labels them with the hardware
   models (our substitute for physical measurement).
2. *Select features* — :mod:`repro.profiling.features` implements the
   hand-designed feature vectors of Table II; :mod:`repro.profiling.gbt`
   provides the XGBoost-substitute gradient-boosted trees whose gain-based
   importance justifies that selection.
3. *Fit* — :mod:`repro.profiling.regression` fits non-negative least squares
   with no intercept, so a zero feature vector predicts zero time.

:class:`~repro.profiling.predictor.LatencyPredictor` bundles the per-category
models into the paper's ``M_user`` / ``M_edge``.
"""

from repro.profiling.features import (
    FEATURE_NAMES,
    NodeProfile,
    feature_vector,
    profile_graph,
    profile_node,
)
from repro.profiling.metrics import mape, rmse
from repro.profiling.predictor import LatencyPredictor
from repro.profiling.offline import OfflineProfiler, ProfilerReport
from repro.profiling.regression import NNLSModel
from repro.profiling.sampler import ConfigSampler, ProfiledSample

__all__ = [
    "ConfigSampler",
    "FEATURE_NAMES",
    "LatencyPredictor",
    "NNLSModel",
    "NodeProfile",
    "OfflineProfiler",
    "ProfiledSample",
    "ProfilerReport",
    "feature_vector",
    "mape",
    "profile_graph",
    "profile_node",
    "rmse",
]
