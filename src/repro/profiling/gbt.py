"""Gradient-boosted regression trees with gain-based feature importance.

The paper scores candidate features with XGBoost and keeps the
high-importance ones (§III-B).  XGBoost is not available offline, so this
is a small from-scratch gradient-boosting implementation over exact-greedy
regression trees — entirely sufficient for ranking ~12 candidate features
on a few thousand profiled samples.  Importance is the total squared-error
reduction (gain) accumulated by each feature across all splits, the same
notion XGBoost's ``total_gain`` reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    value: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class _RegressionTree:
    """Exact-greedy CART regression tree on squared loss."""

    def __init__(self, max_depth: int, min_samples_leaf: int) -> None:
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.root: _Node | None = None
        self.gains: np.ndarray | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "_RegressionTree":
        self.gains = np.zeros(X.shape[1])
        self.root = self._grow(X, y, depth=0)
        return self

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf:
            return node
        best = self._best_split(X, y)
        if best is None:
            return node
        feature, threshold, gain = best
        assert self.gains is not None
        self.gains[feature] += gain
        mask = X[:, feature] <= threshold
        node.feature = feature
        node.threshold = threshold
        node.left = self._grow(X[mask], y[mask], depth + 1)
        node.right = self._grow(X[~mask], y[~mask], depth + 1)
        return node

    def _best_split(self, X: np.ndarray, y: np.ndarray):
        n, d = X.shape
        base_sse = float(((y - y.mean()) ** 2).sum())
        best_gain = 1e-12
        best = None
        for j in range(d):
            order = np.argsort(X[:, j], kind="stable")
            xs, ys = X[order, j], y[order]
            # Cumulative sums allow O(n) evaluation of all split points.
            csum = np.cumsum(ys)
            csq = np.cumsum(ys * ys)
            total, total_sq = csum[-1], csq[-1]
            for i in range(self.min_samples_leaf, n - self.min_samples_leaf + 1):
                if i < n and xs[i - 1] == xs[i]:
                    continue  # cannot split between equal values
                left_sse = csq[i - 1] - csum[i - 1] ** 2 / i
                right_n = n - i
                right_sum = total - csum[i - 1]
                right_sse = (total_sq - csq[i - 1]) - right_sum**2 / right_n
                gain = base_sse - (left_sse + right_sse)
                if gain > best_gain:
                    best_gain = gain
                    best = (j, float((xs[i - 1] + xs[i]) / 2) if i < n else float(xs[-1]), float(gain))
        return best

    def predict(self, X: np.ndarray) -> np.ndarray:
        assert self.root is not None
        out = np.empty(X.shape[0])
        for i, row in enumerate(X):
            node = self.root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
                assert node is not None
            out[i] = node.value
        return out


class GradientBoostedTrees:
    """Squared-loss gradient boosting; exposes per-feature gain importance."""

    def __init__(
        self,
        n_estimators: int = 40,
        max_depth: int = 3,
        learning_rate: float = 0.15,
        min_samples_leaf: int = 5,
    ) -> None:
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.learning_rate = learning_rate
        self.min_samples_leaf = min_samples_leaf
        self._trees: List[_RegressionTree] = []
        self._base: float = 0.0
        self._n_features: int = 0

    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if X.ndim != 2 or y.shape != (X.shape[0],):
            raise ValueError("X must be 2-D and y must match its first dimension")
        self._n_features = X.shape[1]
        self._base = float(y.mean())
        self._trees = []
        pred = np.full_like(y, self._base)
        for _ in range(self.n_estimators):
            residual = y - pred
            tree = _RegressionTree(self.max_depth, self.min_samples_leaf).fit(X, residual)
            pred = pred + self.learning_rate * tree.predict(X)
            self._trees.append(tree)
        return self

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        pred = np.full(X.shape[0], self._base)
        for tree in self._trees:
            pred = pred + self.learning_rate * tree.predict(X)
        return pred

    def feature_importance(self) -> np.ndarray:
        """Total gain per feature, normalised to sum to 1 (0 if no splits)."""
        if not self._trees:
            raise RuntimeError("model is not fitted")
        gains = np.zeros(self._n_features)
        for tree in self._trees:
            assert tree.gains is not None
            gains += tree.gains
        total = gains.sum()
        return gains / total if total > 0 else gains


def rank_features(
    X: np.ndarray, y: np.ndarray, names: Sequence[str], **gbt_kwargs
) -> Dict[str, float]:
    """Fit a GBT and return {feature name: importance}, sorted descending."""
    model = GradientBoostedTrees(**gbt_kwargs).fit(X, y)
    importance = model.feature_importance()
    pairs = sorted(zip(names, importance), key=lambda kv: kv[1], reverse=True)
    return {name: float(score) for name, score in pairs}
