"""Accuracy metrics of the prediction models (Table III): RMSE and MAPE."""

from __future__ import annotations

import numpy as np


def rmse(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Rooted mean squared error, in the units of the inputs."""
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if actual.shape != predicted.shape:
        raise ValueError(f"shape mismatch: {actual.shape} vs {predicted.shape}")
    if actual.size == 0:
        raise ValueError("rmse of empty arrays is undefined")
    return float(np.sqrt(np.mean((actual - predicted) ** 2)))


def mape(actual: np.ndarray, predicted: np.ndarray) -> float:
    """Mean absolute percentage error, as a fraction (0.1 == 10%).

    Entries with zero actual value are rejected — the paper's measurements
    are strictly positive execution times.
    """
    actual = np.asarray(actual, dtype=np.float64)
    predicted = np.asarray(predicted, dtype=np.float64)
    if actual.shape != predicted.shape:
        raise ValueError(f"shape mismatch: {actual.shape} vs {predicted.shape}")
    if actual.size == 0:
        raise ValueError("mape of empty arrays is undefined")
    if np.any(actual == 0):
        raise ValueError("mape undefined for zero actual values")
    return float(np.mean(np.abs((actual - predicted) / actual)))
