"""The influential factor ``k`` of the server computation load (§III-C, §IV).

The edge server monitors the actual execution times of the DNN partitions
it runs, keeps those of the most recent monitoring period, and takes

    k = mean(actual execution time) / mean(model-predicted execution time)

as the load factor.  Every potential partition's predicted server time is
then multiplied by ``k`` at decision time.

Because the device stops offloading when it decides to run locally, ``k``
can go stale; the :class:`GpuWatchdog` reproduces the paper's fix — a
thread that checks the GPU utilisation every 10 s and resets ``k`` once the
GPU is underutilised, so the device learns the server has recovered.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Tuple


class LoadFactorMonitor:
    """Server-side sliding-window estimator of the influential factor k."""

    def __init__(self, window_s: float = 5.0, max_factor: float = 1000.0) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self._window_s = window_s
        self._max_factor = max_factor
        self._records: Deque[Tuple[float, float, float]] = deque()
        self._value = 1.0

    def record(self, time_s: float, actual_s: float, predicted_s: float) -> None:
        """Add one observed partition execution (actual vs predicted time)."""
        if actual_s < 0 or predicted_s <= 0:
            raise ValueError("actual must be >= 0 and predicted > 0")
        self._records.append((time_s, actual_s, predicted_s))
        self._evict(time_s)

    def _evict(self, now_s: float) -> None:
        while self._records and self._records[0][0] < now_s - self._window_s:
            self._records.popleft()

    def refresh(self, now_s: float) -> float:
        """Recompute k over the current window (called each profiler period)."""
        self._evict(now_s)
        if self._records:
            actual = sum(r[1] for r in self._records)
            predicted = sum(r[2] for r in self._records)
            # Constraint (1c): k >= 1.  Under zero load the ratio hovers
            # around 1 and occasionally dips below due to noise.
            self._value = min(max(actual / predicted, 1.0), self._max_factor)
        return self._value

    def reset(self) -> None:
        """Forget history and return to the unloaded factor (watchdog path)."""
        self._records.clear()
        self._value = 1.0

    @property
    def value(self) -> float:
        """Most recently refreshed k (>= 1)."""
        return self._value

    @property
    def sample_count(self) -> int:
        return len(self._records)

    def age_s(self, now_s: float) -> float:
        """Seconds since the newest observation (``inf`` when empty).

        The fleet supervisor uses this as a freshness signal: a server
        whose window went silent stopped receiving offloads — its ``k``
        reflects history, not the present.
        """
        if not self._records:
            return math.inf
        return max(now_s - self._records[-1][0], 0.0)


class GpuWatchdog:
    """Periodically resets a stale load factor once the GPU is underutilised.

    Mirrors §IV: "Once the GPU utilization is under a threshold (e.g. 90%),
    the runtime profiler modifies the value of k, and thus the user-end can
    be notified that the GPU ... has become underutilized".
    """

    def __init__(
        self,
        monitor: LoadFactorMonitor,
        threshold: float = 0.90,
        period_s: float = 10.0,
    ) -> None:
        if not 0.0 < threshold <= 1.0:
            raise ValueError("threshold must be in (0, 1]")
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.monitor = monitor
        self.threshold = threshold
        self.period_s = period_s
        self._last_check_s: float | None = None

    def maybe_check(self, now_s: float, gpu_utilization: float) -> bool:
        """Run the check if a period has elapsed; returns True if k was reset."""
        if self._last_check_s is not None and now_s - self._last_check_s < self.period_s:
            return False
        self._last_check_s = now_s
        if gpu_utilization < self.threshold and self.monitor.value > 1.0:
            self.monitor.reset()
            return True
        return False
