"""``LoADPartEngine``: the per-model decision engine of §IV.

Binds together a computation graph, the trained prediction models
(M_user, M_edge) and the cut analysis.  The prefix and suffix arrays of
Algorithm 1 are computed exactly once at construction; each call to
:meth:`decide` is then a single O(n) scan with the current bandwidth
estimate and the latest influential factor ``k`` multiplied onto the
suffix sum, exactly as the paper's implementation does.
"""

from __future__ import annotations

from typing import List, Sequence


from repro.core.partition_algorithm import (
    PartitionDecision,
    compute_prefix_device,
    compute_suffix_edge,
    partition_decision,
)
from repro.graph.graph import ComputationGraph
from repro.profiling.features import NodeProfile, profile_graph
from repro.profiling.predictor import LatencyPredictor


class LoADPartEngine:
    """Decision engine for one DNN on one (device, server) pair."""

    def __init__(
        self,
        graph: ComputationGraph,
        user_predictor: LatencyPredictor,
        edge_predictor: LatencyPredictor,
        upload_codec=None,
    ) -> None:
        if user_predictor.side != "device":
            raise ValueError("user_predictor must be the 'device' side")
        if edge_predictor.side != "edge":
            raise ValueError("edge_predictor must be the 'edge' side")
        graph.validate()
        self.graph = graph
        self.upload_codec = upload_codec
        self.profiles: List[NodeProfile] = profile_graph(graph)
        self.device_times = user_predictor.predict_nodes(self.profiles)
        self.edge_times = edge_predictor.predict_nodes(self.profiles)
        sizes = graph.transmission_sizes()
        if upload_codec is not None:
            # Compressed uploads (codec extension): the decision sees the
            # wire sizes, which shifts the optimum toward earlier cuts.
            sizes = [upload_codec.wire_bytes(s) for s in sizes]
        self.sizes = sizes
        self.output_bytes = graph.output_spec.nbytes
        self._prefix = compute_prefix_device(self.device_times)
        self._suffix = compute_suffix_edge(self.edge_times)

    @property
    def num_nodes(self) -> int:
        return len(self.profiles)

    def decide(
        self,
        bandwidth_up: float,
        k: float = 1.0,
        bandwidth_down: float | None = None,
    ) -> PartitionDecision:
        """Run Algorithm 1 under the given link/load conditions."""
        return partition_decision(
            self.device_times,
            self.edge_times,
            self.sizes,
            bandwidth_up,
            k=k,
            bandwidth_down=bandwidth_down,
            output_bytes=self.output_bytes,
            prefix=self._prefix,
            suffix=self._suffix,
        )

    # -- component predictions, used by the runtime and the experiments -----

    def predicted_device_time(self, point: int) -> float:
        """Predicted device time of the head (positions 1..point)."""
        self._check_point(point)
        return float(self._prefix[point])

    def predicted_server_time(self, point: int, k: float = 1.0) -> float:
        """Predicted server time of the tail under load factor ``k``."""
        self._check_point(point)
        return float(k * self._suffix[point])

    def predicted_upload_time(self, point: int, bandwidth_up: float) -> float:
        self._check_point(point)
        if point == self.num_nodes:
            return 0.0
        return self.sizes[point] * 8 / bandwidth_up

    def predicted_total_time(self, point: int, bandwidth_up: float,
                             k: float = 1.0) -> float:
        """Predicted end-to-end latency of partition ``point`` (Problem (1)).

        The same objective value Algorithm 1 minimises — device prefix plus
        upload plus ``k``-scaled server suffix.  The resilient client derives
        its per-attempt offload deadline from this prediction
        (``margin × predicted_total``): a request that overshoots its own
        prediction several-fold is lost, not merely slow.
        """
        self._check_point(point)
        if bandwidth_up <= 0:
            raise ValueError("upload bandwidth must be positive")
        return float(
            self._prefix[point]
            + self.predicted_upload_time(point, bandwidth_up)
            + k * self._suffix[point]
        )

    def tail_profiles(self, point: int) -> Sequence[NodeProfile]:
        """Node profiles of the server-side tail for partition ``point``."""
        self._check_point(point)
        return self.profiles[point:]

    def head_profiles(self, point: int) -> Sequence[NodeProfile]:
        self._check_point(point)
        return self.profiles[:point]

    def _check_point(self, point: int) -> None:
        if not 0 <= point <= self.num_nodes:
            raise ValueError(f"partition point {point} out of range [0, {self.num_nodes}]")
