"""``LoADPartEngine``: the per-model decision engine of §IV.

Binds together a computation graph, the trained prediction models
(M_user, M_edge) and the cut analysis.  The prefix and suffix arrays of
Algorithm 1 are computed exactly once at construction; each call to
:meth:`decide` is then a single O(n) scan with the current bandwidth
estimate and the latest influential factor ``k`` multiplied onto the
suffix sum, exactly as the paper's implementation does.

:meth:`decide_joint` extends the scan to the streaming pipeline: for
every candidate codec it folds the declared encode/decode times and wire
sizes into the prefix/suffix cost terms, and for chunked uploads it
credits upload/compute overlap using the *release schedule* of the tail
— tail node ``j`` cannot start before the last crossing tensor it
(transitively, in execution order) depends on has arrived, so the
pipelined finish time is

    max over release breakpoints v of
        frac_v * t_up + decode_cum_v + k * suffix[jstart_v]

where ``frac_v`` is the cumulative wire fraction at which crossing
tensor ``v`` completes.  The load factor ``k`` still scales every
server-side compute term; decode runs on the server CPU and is charged
unscaled.  With the identity codec and no chunking the joint scan
reduces to exactly Algorithm 1 (bit-for-bit the same candidate vector).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.partition_algorithm import (
    PartitionDecision,
    compute_prefix_device,
    compute_suffix_edge,
    partition_decision,
)
from repro.graph.exits import ExitBranch, validate_exits
from repro.graph.graph import ComputationGraph
from repro.profiling.features import NodeProfile, profile_graph
from repro.profiling.predictor import LatencyPredictor


@dataclass(frozen=True)
class ServerProfile:
    """Hardware and link description of one edge server in a fleet.

    ``edge_predictor`` is that server's own M_edge bundle (``None`` means
    the engine's shared predictor — the homogeneous default);
    ``bandwidth_bps`` is a link-bandwidth *prior* used when no live
    estimate is available; ``extra_latency_s`` is the server's relative
    link position (one-way base latency above the nearest server's),
    likewise a prior that a supervisor's learned estimate overrides.

    A fleet where every profile is ``ServerProfile()`` is bit-identical
    to passing no profiles at all.
    """

    edge_predictor: object | None = None
    bandwidth_bps: float | None = None
    extra_latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.edge_predictor is not None and self.edge_predictor.side != "edge":
            raise ValueError("a ServerProfile predictor must be the 'edge' side")
        if self.bandwidth_bps is not None and self.bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps prior must be positive")
        if not math.isfinite(self.extra_latency_s) or self.extra_latency_s < 0:
            raise ValueError("extra_latency_s must be non-negative and finite")


@dataclass(frozen=True)
class FleetDecision:
    """Result of one joint ``(partition point, server)`` decision.

    ``server`` is the index of the chosen edge server, or ``None`` when
    the winning candidate is local inference (``point == n`` — no server
    involved at all).  ``decisions`` holds the per-server Algorithm 1
    results, index-aligned with the ``bandwidths_up`` argument of
    :meth:`LoADPartEngine.decide_fleet` (``None`` for servers excluded
    from the scan), for tests and routing diagnostics.
    """

    point: int
    server: int | None
    predicted_latency: float
    decisions: Tuple[PartitionDecision | None, ...]

    @property
    def is_local(self) -> bool:
        return self.server is None


@dataclass(frozen=True)
class ExitDecision:
    """Result of one joint ``(exit, partition point)`` decision.

    ``exit_index`` indexes the engine's exit set (the final exit — the
    full network — is ``num_exits - 1``); ``feasible`` says whether the
    chosen exit's best partition meets the SLA (always ``True`` when
    ``sla_s`` is ``None``).  ``decision`` is the chosen exit's own
    Algorithm 1 result; ``decisions`` holds every per-exit result,
    index-aligned with the exit set (``None`` for exits the scan never
    evaluated, i.e. the degenerate ``sla_s=None`` path).
    """

    exit_index: int
    point: int
    predicted_latency: float
    accuracy: float
    sla_s: float | None
    feasible: bool
    decision: PartitionDecision
    decisions: Tuple[PartitionDecision | None, ...]

    @property
    def is_local(self) -> bool:
        return self.point == len(self.decision.candidates) - 1


@dataclass(frozen=True)
class ExitFleetDecision:
    """Result of one joint ``(exit, partition point, server)`` decision.

    The fleet analogue of :class:`ExitDecision`: ``decision`` is the
    chosen exit's :class:`FleetDecision` and ``decisions`` the per-exit
    fleet results (``None`` for unevaluated exits).
    """

    exit_index: int
    point: int
    server: int | None
    predicted_latency: float
    accuracy: float
    sla_s: float | None
    feasible: bool
    decision: FleetDecision
    decisions: Tuple[FleetDecision | None, ...]

    @property
    def is_local(self) -> bool:
        return self.server is None


@dataclass(frozen=True)
class JointDecision:
    """Result of one joint ``(partition point, codec, chunking)`` decision.

    ``candidates`` maps ``(codec, mode)`` — mode ``"mono"`` or
    ``"stream"`` — to the full objective vector over partition points,
    for tests and Fig. 1-style landscapes.
    """

    point: int
    codec: str
    streamed: bool
    chunks: int
    predicted_latency: float
    predicted_device_s: float
    predicted_encode_s: float
    predicted_upload_s: float
    predicted_decode_s: float
    predicted_server_s: float
    wire_bytes: int
    candidates: Dict[Tuple[str, str], np.ndarray]

    @property
    def is_local(self) -> bool:
        return self.point == len(next(iter(self.candidates.values()))) - 1


class LoADPartEngine:
    """Decision engine for one DNN on one (device, server) pair."""

    def __init__(
        self,
        graph: ComputationGraph,
        user_predictor: LatencyPredictor,
        edge_predictor: LatencyPredictor,
        upload_codec=None,
        exits: Sequence[ExitBranch] | None = None,
    ) -> None:
        if user_predictor.side != "device":
            raise ValueError("user_predictor must be the 'device' side")
        if edge_predictor.side != "edge":
            raise ValueError("edge_predictor must be the 'edge' side")
        graph.validate()
        self.graph = graph
        self.upload_codec = upload_codec
        self.profiles: List[NodeProfile] = profile_graph(graph)
        self.device_times = user_predictor.predict_nodes(self.profiles)
        self.edge_times = edge_predictor.predict_nodes(self.profiles)
        self._cuts = graph.cuts()
        sizes = [cut.upload_bytes for cut in self._cuts]
        if upload_codec is not None:
            # Compressed uploads (codec extension): the decision sees the
            # wire sizes, which shifts the optimum toward earlier cuts.
            sizes = [upload_codec.wire_bytes(s) for s in sizes]
        self.sizes = sizes
        self.output_bytes = graph.output_spec.nbytes
        self._prefix = compute_prefix_device(self.device_times)
        self._suffix = compute_suffix_edge(self.edge_times)
        # Per-profile suffix arrays for heterogeneous fleets, keyed by
        # predictor identity (the cache holds a strong reference, so ids
        # cannot be recycled while an entry lives).
        self._profile_suffix_cache: Dict[int, Tuple[object, np.ndarray]] = {}
        # Lazy streaming caches: per-codec wire-size vectors, per-point
        # cut-tensor metadata and release-schedule breakpoints.
        self._codec_cache: Dict[str, object] = {}
        self._wire_cache: Dict[str, np.ndarray] = {}
        self._cut_tensor_cache: Dict[int, Tuple[Tuple[str, int, str], ...]] = {}
        self._release_cache: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        # Early exits: one sub-engine per exit branch over the same
        # predictor bundle — independent per-exit prefix/suffix arrays,
        # computed once here.  The final exit's engine IS this engine
        # (its graph is the backbone), so every exit-free code path is
        # untouched by construction.
        self.exits: Tuple[ExitBranch, ...] = validate_exits(graph, exits or ())
        if self.exits:
            subs = [
                LoADPartEngine(b.graph, user_predictor, edge_predictor,
                               upload_codec=upload_codec)
                for b in self.exits[:-1]
            ]
            subs.append(self)
            self._exit_engines: Tuple[LoADPartEngine, ...] = tuple(subs)
        else:
            self._exit_engines = (self,)

    @property
    def num_nodes(self) -> int:
        return len(self.profiles)

    # -- early exits ---------------------------------------------------------

    @property
    def has_exits(self) -> bool:
        return bool(self.exits)

    @property
    def num_exits(self) -> int:
        return len(self._exit_engines)

    def exit_engine(self, index: int) -> "LoADPartEngine":
        """The sub-engine of exit ``index`` (the last one is ``self``)."""
        return self._exit_engines[index]

    def exit_accuracy(self, index: int | None = None) -> float:
        """Declared accuracy proxy of exit ``index`` (default: final).

        An exit-free engine reports 1.0 — the full network is the only
        (and therefore the most accurate) exit.
        """
        if not self.exits:
            return 1.0
        return self.exits[-1 if index is None else index].accuracy

    def decide(
        self,
        bandwidth_up: float,
        k: float = 1.0,
        bandwidth_down: float | None = None,
        offload_only: bool = False,
        extra_latency_s: float = 0.0,
        profile: ServerProfile | None = None,
    ) -> PartitionDecision:
        """Run Algorithm 1 under the given link/load conditions.

        ``extra_latency_s`` is a fixed per-request penalty on every
        offloading candidate (a server's link base latency); the 0.0
        default reproduces the paper's scan exactly.  ``profile``
        substitutes that server's own edge predictor for the suffix
        array (the device prefix never changes — the device is ours);
        a ``None`` profile or a profile without a predictor uses the
        engine's shared suffix bit-for-bit.
        """
        return partition_decision(
            self.device_times,
            self.edge_times,
            self.sizes,
            bandwidth_up,
            k=k,
            bandwidth_down=bandwidth_down,
            output_bytes=self.output_bytes,
            prefix=self._prefix,
            suffix=self._suffix_for(profile),
            offload_only=offload_only,
            extra_latency_s=extra_latency_s,
        )

    def _suffix_for(self, profile: ServerProfile | None) -> np.ndarray:
        """Suffix array for one server profile (cached per predictor)."""
        if profile is None or profile.edge_predictor is None:
            return self._suffix
        predictor = profile.edge_predictor
        key = id(predictor)
        entry = self._profile_suffix_cache.get(key)
        if entry is None or entry[0] is not predictor:
            suffix = compute_suffix_edge(predictor.predict_nodes(self.profiles))
            entry = (predictor, suffix)
            self._profile_suffix_cache[key] = entry
        return entry[1]

    def _resolve_fleet(
        self,
        bandwidths_up: Sequence[float | None],
        ks: Sequence[float],
        extra_latencies_s: Sequence[float] | None,
        profiles: Sequence[ServerProfile | None] | None,
        allowed: Sequence[int] | None,
    ) -> Tuple[List[int], List[float], List[float], List[ServerProfile | None]]:
        """Shared argument resolution for the fleet scan.

        Fills ``None`` bandwidth entries from the profile prior and
        defaults the extra-latency vector from the profiles' link
        positions.  :func:`fleet_brute_force` calls this too, so the
        reference implementation cannot diverge on resolution rules.
        """
        num = len(bandwidths_up)
        if len(ks) != num:
            raise ValueError("bandwidths_up and ks must have the same length")
        if profiles is None:
            profiles = [None] * num
        elif len(profiles) != num:
            raise ValueError("profiles must match bandwidths_up")
        if extra_latencies_s is None:
            extra_latencies_s = [
                0.0 if p is None else p.extra_latency_s for p in profiles
            ]
        elif len(extra_latencies_s) != num:
            raise ValueError("extra_latencies_s must match bandwidths_up")
        bandwidths = list(bandwidths_up)
        for s, (bw, p) in enumerate(zip(bandwidths, profiles)):
            if bw is None:
                if p is None or p.bandwidth_bps is None:
                    raise ValueError(
                        f"server {s} has no bandwidth estimate and its "
                        "profile carries no prior"
                    )
                bandwidths[s] = p.bandwidth_bps
        servers = list(range(num)) if allowed is None else sorted(set(allowed))
        if any(not 0 <= s < num for s in servers):
            raise ValueError(f"allowed indices must be in [0, {num})")
        return servers, bandwidths, list(extra_latencies_s), list(profiles)

    def decide_fleet(
        self,
        bandwidths_up: Sequence[float | None],
        ks: Sequence[float],
        extra_latencies_s: Sequence[float] | None = None,
        bandwidth_down: float | None = None,
        allowed: Sequence[int] | None = None,
        offload_only: bool = False,
        profiles: Sequence[ServerProfile | None] | None = None,
    ) -> FleetDecision:
        """Jointly pick ``(partition point, server)`` across an edge fleet.

        Algorithm 1's prefix/suffix arrays are computed once (at engine
        construction); the server axis is scanned per candidate — one O(n)
        pass per server ``s`` with its own influential factor ``k_s``,
        bandwidth estimate and link base latency, then a strict-``<``
        minimum across servers.  Tie-breaks: within one server, the latest
        point wins (Algorithm 1's own rule, preferring local); across
        servers, the earliest server index wins.  A winning ``point == n``
        means local inference and ``server is None`` — every server's
        candidate vector contains the identical local candidate, so local
        wins only when no server beats it.

        ``profiles`` makes the fleet heterogeneous: server ``s``'s scan
        uses *its own* edge predictor's suffix array (cached per
        predictor), its profile's bandwidth prior when
        ``bandwidths_up[s]`` is ``None``, and its profile's link position
        when ``extra_latencies_s`` is omitted.  Uniform default profiles
        reproduce the homogeneous scan bit-for-bit.

        ``allowed`` restricts the scan to a subset of server indices (the
        gateway drops dead/saturated servers); an empty ``allowed`` yields
        the pure local decision.  With one allowed server and zero extra
        latency this reduces bit-for-bit to :meth:`decide`.
        """
        num = len(bandwidths_up)
        servers, bandwidths, extras, profiles = self._resolve_fleet(
            bandwidths_up, ks, extra_latencies_s, profiles, allowed
        )

        decisions: List[PartitionDecision | None] = [None] * num
        best_value = math.inf
        best_server: int | None = None
        best_point = self.num_nodes
        for s in servers:
            d = self.decide(
                bandwidths[s],
                k=ks[s],
                bandwidth_down=bandwidth_down,
                offload_only=offload_only,
                extra_latency_s=extras[s],
                profile=profiles[s],
            )
            decisions[s] = d
            if d.predicted_latency < best_value:
                best_value = d.predicted_latency
                best_server = s
                best_point = d.point
        if best_server is None or best_point == self.num_nodes:
            # No server allowed, or local inference won on merit: the
            # objective value is the pure device prefix (identical in
            # every per-server vector).
            return FleetDecision(
                point=self.num_nodes,
                server=None,
                predicted_latency=float(self._prefix[self.num_nodes]),
                decisions=tuple(decisions),
            )
        return FleetDecision(
            point=best_point,
            server=best_server,
            predicted_latency=best_value,
            decisions=tuple(decisions),
        )

    # -- early exits: joint (exit, point) and (exit, point, server) ----------

    def decide_exit(
        self,
        sla_s: float | None,
        bandwidth_up: float,
        k: float = 1.0,
        bandwidth_down: float | None = None,
        offload_only: bool = False,
        extra_latency_s: float = 0.0,
        profile: ServerProfile | None = None,
    ) -> ExitDecision:
        """Jointly pick ``(exit, partition point)`` under a latency SLA.

        One Algorithm 1 scan per exit sub-graph (each reuses its own
        precomputed prefix/suffix arrays), then the exit axis resolves by
        *maximum accuracy subject to deadline*: the latest exit whose best
        partition's predicted latency is ``<= sla_s`` wins — accuracies
        are nondecreasing in exit order, so "latest feasible" is "most
        accurate feasible".  When no exit is feasible the decision falls
        back to the globally fastest ``(exit, point)`` pair (strict ``<``,
        earliest exit on ties) with ``feasible=False`` — the runtime still
        serves the request as fast as it can.

        ``sla_s=None`` (and any exit-free engine) reproduces
        :meth:`decide` bit-for-bit: the returned ``decision`` is exactly
        the plain scan's :class:`PartitionDecision` and no other exit is
        evaluated.
        """
        last = self.num_exits - 1
        if sla_s is None:
            d = self.decide(
                bandwidth_up, k=k, bandwidth_down=bandwidth_down,
                offload_only=offload_only, extra_latency_s=extra_latency_s,
                profile=profile)
            return ExitDecision(
                exit_index=last, point=d.point,
                predicted_latency=d.predicted_latency,
                accuracy=self.exit_accuracy(), sla_s=None, feasible=True,
                decision=d, decisions=(None,) * last + (d,))
        if not math.isfinite(sla_s) or sla_s <= 0:
            raise ValueError(f"sla_s must be positive and finite, got {sla_s}")
        decisions = tuple(
            eng.decide(bandwidth_up, k=k, bandwidth_down=bandwidth_down,
                       offload_only=offload_only,
                       extra_latency_s=extra_latency_s, profile=profile)
            for eng in self._exit_engines)
        chosen, feasible = self._pick_exit(
            sla_s, [d.predicted_latency for d in decisions])
        d = decisions[chosen]
        return ExitDecision(
            exit_index=chosen, point=d.point,
            predicted_latency=d.predicted_latency,
            accuracy=self.exit_accuracy(chosen), sla_s=sla_s,
            feasible=feasible, decision=d, decisions=decisions)

    def decide_exit_fleet(
        self,
        sla_s: float | None,
        bandwidths_up: Sequence[float | None],
        ks: Sequence[float],
        extra_latencies_s: Sequence[float] | None = None,
        bandwidth_down: float | None = None,
        allowed: Sequence[int] | None = None,
        offload_only: bool = False,
        profiles: Sequence[ServerProfile | None] | None = None,
    ) -> ExitFleetDecision:
        """Jointly pick ``(exit, partition point, server)`` across a fleet.

        The fleet analogue of :meth:`decide_exit`: one
        :meth:`decide_fleet` scan per exit sub-graph, then the same exit
        rule — latest exit whose best fleet candidate meets the SLA, else
        the globally fastest ``(exit, point, server)`` triple (strict
        ``<``, earliest exit on ties).  ``sla_s=None`` and exit-free
        engines reproduce :meth:`decide_fleet` bit-for-bit.
        """
        last = self.num_exits - 1
        if sla_s is None:
            d = self.decide_fleet(
                bandwidths_up, ks, extra_latencies_s=extra_latencies_s,
                bandwidth_down=bandwidth_down, allowed=allowed,
                offload_only=offload_only, profiles=profiles)
            return ExitFleetDecision(
                exit_index=last, point=d.point, server=d.server,
                predicted_latency=d.predicted_latency,
                accuracy=self.exit_accuracy(), sla_s=None, feasible=True,
                decision=d, decisions=(None,) * last + (d,))
        if not math.isfinite(sla_s) or sla_s <= 0:
            raise ValueError(f"sla_s must be positive and finite, got {sla_s}")
        decisions = tuple(
            eng.decide_fleet(bandwidths_up, ks,
                             extra_latencies_s=extra_latencies_s,
                             bandwidth_down=bandwidth_down, allowed=allowed,
                             offload_only=offload_only, profiles=profiles)
            for eng in self._exit_engines)
        chosen, feasible = self._pick_exit(
            sla_s, [d.predicted_latency for d in decisions])
        d = decisions[chosen]
        return ExitFleetDecision(
            exit_index=chosen, point=d.point, server=d.server,
            predicted_latency=d.predicted_latency,
            accuracy=self.exit_accuracy(chosen), sla_s=sla_s,
            feasible=feasible, decision=d, decisions=decisions)

    @staticmethod
    def _pick_exit(sla_s: float, latencies: Sequence[float]) -> Tuple[int, bool]:
        """Exit rule shared by the single-server and fleet scans.

        Latest (most accurate) exit meeting the SLA; if none does, the
        fastest exit overall — strict ``<`` on a forward scan, so the
        earliest exit wins latency ties.  With this fallback a *tighter*
        SLA can never select a *later* exit (SLA monotonicity): the
        global argmin's latency is a lower bound on every feasible
        latency at any looser SLA.
        """
        for e in range(len(latencies) - 1, -1, -1):
            if latencies[e] <= sla_s:
                return e, True
        fastest = 0
        for e in range(1, len(latencies)):
            if latencies[e] < latencies[fastest]:
                fastest = e
        return fastest, False

    # -- streaming: joint (point, codec, chunking) decision ------------------

    def codec(self, name: str):
        """Cached :class:`~repro.network.codec.TensorCodec` by name."""
        if name not in self._codec_cache:
            # Deferred import: repro.core loads before repro.network in the
            # package __init__ chain.
            from repro.network.codec import TensorCodec

            self._codec_cache[name] = TensorCodec(name)
        return self._codec_cache[name]

    def cut_tensors(self, point: int) -> Tuple[Tuple[str, int, str], ...]:
        """Crossing tensors of cut ``point`` in *wire* order.

        Each entry is ``(producer_name, fp32_bytes, producer_op)``; the
        graph input is reported with op ``"input"``.  Tensors are ordered
        by the position of their first consumer in the tail — the device
        serializes the tensor the server needs soonest first, which is
        what makes arrival-gated overlap possible at all (production
        order would often ship the immediately-needed tensor *last*).
        Ties break on production order, so single-tensor cuts and chain
        graphs are unaffected.
        """
        self._check_point(point)
        if point not in self._cut_tensor_cache:
            graph = self.graph
            order = graph.topological_order()
            first_consumer = {}
            for j in range(point, len(order)):
                for dep in graph.node(order[j]).inputs:
                    first_consumer.setdefault(dep, j)
            tensors = []
            for prod_idx, name in enumerate(self._cuts[point].crossing):
                if name == graph.input_name:
                    entry = (name, graph.input_spec.nbytes, "input")
                else:
                    node = graph.node(name)
                    entry = (name, node.output.nbytes, node.op)
                tensors.append(
                    (first_consumer.get(name, len(order)), prod_idx, entry))
            tensors.sort(key=lambda t: t[:2])
            self._cut_tensor_cache[point] = tuple(e for _f, _p, e in tensors)
        return self._cut_tensor_cache[point]

    def _release_entries(self, point: int) -> Tuple[Tuple[int, int], ...]:
        """Release schedule of the tail at cut ``point``.

        Entries ``(v, jstart)``: the run of tail nodes starting at
        topological index ``jstart`` cannot begin before crossing tensor
        ``v`` (index into :meth:`cut_tensors`) has arrived.  The release
        index is a running maximum over execution order, so entries are
        strictly increasing in both components.
        """
        if point not in self._release_cache:
            order = self.graph.topological_order()
            idx = {name: i for i, (name, _nb, _op) in
                   enumerate(self.cut_tensors(point))}
            entries = []
            release = -1
            for j in range(point, len(order)):
                node = self.graph.node(order[j])
                needed = max((idx[dep] for dep in node.inputs if dep in idx),
                             default=-1)
                if needed > release:
                    release = needed
                    entries.append((release, j))
            self._release_cache[point] = tuple(entries)
        return self._release_cache[point]

    def release_schedule(self, point: int) -> Tuple[Tuple[str, int], ...]:
        """Arrival gates of the tail at cut ``point``, by tensor *name*.

        Each entry ``(tensor_name, jstart)`` says: the run of tail nodes
        starting at topological index ``jstart`` cannot begin before the
        crossing tensor ``tensor_name`` is available on the server.  This
        is :meth:`_release_entries` translated for the runtime, which keys
        uploaded tensors by producer name.
        """
        names = [name for name, _nb, _op in self.cut_tensors(point)]
        return tuple((names[v], j) for v, j in self._release_entries(point))

    def _wire_sizes(self, codec_name: str) -> np.ndarray:
        """Declared wire bytes per partition point for ``codec_name``."""
        if codec_name not in self._wire_cache:
            codec = self.codec(codec_name)
            n = self.num_nodes
            wire = np.zeros(n + 1, dtype=np.int64)
            if codec_name == "fp32":
                # Identity codec: the wire size IS the raw cut size --
                # computed from the same array as Algorithm 1 so the
                # degenerate joint scan is bit-identical to decide().
                wire[:] = [cut.upload_bytes for cut in self._cuts]
            else:
                for p in range(n):
                    wire[p] = sum(codec.wire_bytes(nb, op)
                                  for _name, nb, op in self.cut_tensors(p))
            self._wire_cache[codec_name] = wire
        return self._wire_cache[codec_name]

    def decide_joint(self, bandwidth_up: float, k: float = 1.0,
                     streaming=None,
                     bandwidth_down: float | None = None,
                     offload_only: bool = False) -> JointDecision:
        """Jointly pick ``(partition point, codec, chunking)``.

        For every candidate codec the mono (whole-tensor upload) objective
        adds the declared encode/decode terms to Algorithm 1; the streamed
        objective additionally credits upload/compute overlap via the tail
        release schedule (see the module docstring).  Ties break toward
        earlier codecs in ``streaming.codecs`` and the monolithic mode, and
        within one objective vector toward the latest point, exactly like
        Algorithm 1 — so ``StreamingConfig(codecs=("fp32",),
        chunk_bytes=None)`` reproduces :meth:`decide` verbatim.
        """
        if streaming is None:
            raise ValueError("decide_joint requires a StreamingConfig")
        if self.upload_codec is not None:
            raise ValueError(
                "decide_joint is incompatible with a static upload_codec; "
                "list the codec in StreamingConfig.codecs instead")
        if bandwidth_up <= 0:
            raise ValueError("upload bandwidth must be positive")
        if k < 1.0:
            raise ValueError(f"the influential factor k must be >= 1, got {k}")
        download = 0.0
        if bandwidth_down is not None:
            if bandwidth_down <= 0:
                raise ValueError("download bandwidth must be positive")
            download = self.output_bytes * 8 / bandwidth_down

        n = self.num_nodes
        raw = np.asarray([cut.upload_bytes for cut in self._cuts],
                         dtype=np.float64)
        candidates: Dict[Tuple[str, str], np.ndarray] = {}
        best = None  # (value, point, codec, mode) under strict-< combo order

        for name in streaming.codecs:
            codec = self.codec(name)
            wire = self._wire_sizes(name)
            enc = codec.encode_time_s(raw)
            dec = codec.decode_time_s(raw)
            t_up = wire.astype(np.float64) * 8 / bandwidth_up

            mono = self._prefix + k * self._suffix
            mono[:-1] += t_up[:-1] + download
            mono += enc + dec
            candidates[(name, "mono")] = mono

            modes = [("mono", mono)]
            if streaming.chunk_bytes is not None:
                stream = np.full(n + 1, np.inf)
                for p in range(n):
                    total_wire = int(wire[p])
                    chunks = streaming.num_chunks(total_wire)
                    if chunks <= 1:
                        continue  # single chunk == the monolithic candidate
                    tensors = self.cut_tensors(p)
                    cum_wire = np.cumsum(
                        [codec.wire_bytes(nb, op) for _n, nb, op in tensors])
                    t_stream = (total_wire * 8 / bandwidth_up
                                + (chunks - 1) * streaming.chunk_overhead_s)
                    # Per-tensor availability on the server: tensor v is
                    # decodable once its last byte lands (its wire-prefix
                    # fraction of the stream) and the decoder — which works
                    # through tensors in wire order — gets to it.
                    avail = []
                    busy = 0.0
                    for v, (_nm, nb, _op) in enumerate(tensors):
                        arrival = cum_wire[v] / cum_wire[-1] * t_stream
                        busy = max(arrival, busy) + codec.decode_time_s(
                            float(nb))
                        avail.append(busy)
                    finish = 0.0
                    for v, jstart in self._release_entries(p):
                        term = avail[v] + k * self._suffix[jstart]
                        finish = max(finish, term)
                    stream[p] = self._prefix[p] + enc[p] + finish + download
                candidates[(name, "stream")] = stream
                modes.append(("stream", stream))

            for mode, arr in modes:
                scan = arr[:-1] if offload_only else arr
                point = int(len(scan) - 1 - np.argmin(scan[::-1]))
                value = float(scan[point])
                if np.isfinite(value) and (best is None or value < best[0]):
                    best = (value, point, name, mode)

        value, point, name, mode = best
        return self._build_joint(point, name, mode, value, candidates,
                                 streaming, bandwidth_up, k)

    def joint_at(self, point: int, codec_name: str, streamed: bool,
                 bandwidth_up: float, k: float = 1.0,
                 streaming=None,
                 bandwidth_down: float | None = None) -> JointDecision:
        """A :class:`JointDecision` pinned to ``(point, codec, mode)``.

        Runs the same candidate computation as :meth:`decide_joint` but
        skips the argmin: benchmarks and tests use this to compare arms at
        one fixed cut (e.g. streaming+zlib vs monolithic fp32 at the same
        transfer-dominated point).
        """
        self._check_point(point)
        jd = self.decide_joint(bandwidth_up, k=k, streaming=streaming,
                               bandwidth_down=bandwidth_down)
        mode = "stream" if streamed else "mono"
        key = (codec_name, mode)
        if key not in jd.candidates:
            raise ValueError(
                f"no candidate vector for {key}; streaming config offers "
                f"{sorted(jd.candidates)}")
        value = float(jd.candidates[key][point])
        if not math.isfinite(value):
            raise ValueError(
                f"{key} is infeasible at point {point} (e.g. a streamed "
                "mode whose cut fits one chunk)")
        return self._build_joint(point, codec_name, mode, value,
                                 jd.candidates, streaming, bandwidth_up, k)

    def _build_joint(self, point: int, name: str, mode: str, value: float,
                     candidates: Dict[Tuple[str, str], np.ndarray],
                     streaming, bandwidth_up: float, k: float) -> JointDecision:
        n = self.num_nodes
        codec = self.codec(name)
        wire_b = int(self._wire_sizes(name)[point])
        streamed = mode == "stream" and point < n
        chunks = streaming.num_chunks(wire_b) if streamed else 1
        upload_s = 0.0
        if point < n:
            upload_s = wire_b * 8 / bandwidth_up
            if streamed:
                upload_s += (chunks - 1) * streaming.chunk_overhead_s
        raw_b = float(self._cuts[point].upload_bytes)
        return JointDecision(
            point=point,
            codec=name,
            streamed=streamed,
            chunks=chunks,
            predicted_latency=value,
            predicted_device_s=float(self._prefix[point]),
            predicted_encode_s=float(codec.encode_time_s(raw_b)),
            predicted_upload_s=upload_s,
            predicted_decode_s=float(codec.decode_time_s(raw_b)),
            predicted_server_s=float(k * self._suffix[point]),
            wire_bytes=wire_b,
            candidates=candidates,
        )

    # -- component predictions, used by the runtime and the experiments -----

    def predicted_device_time(self, point: int) -> float:
        """Predicted device time of the head (positions 1..point)."""
        self._check_point(point)
        return float(self._prefix[point])

    def predicted_server_time(
        self, point: int, k: float = 1.0,
        profile: ServerProfile | None = None,
    ) -> float:
        """Predicted server time of the tail under load factor ``k``.

        ``profile`` evaluates the tail under that server's own predictor
        — a server monitoring its *own* load must compare observations
        against its own hardware model, or slow silicon masquerades as
        queueing (see :class:`~repro.runtime.server.EdgeServer`).
        """
        self._check_point(point)
        return float(k * self._suffix_for(profile)[point])

    def predicted_upload_time(self, point: int, bandwidth_up: float) -> float:
        self._check_point(point)
        if point == self.num_nodes:
            return 0.0
        return self.sizes[point] * 8 / bandwidth_up

    def predicted_total_time(self, point: int, bandwidth_up: float,
                             k: float = 1.0) -> float:
        """Predicted end-to-end latency of partition ``point`` (Problem (1)).

        The same objective value Algorithm 1 minimises — device prefix plus
        upload plus ``k``-scaled server suffix.  The resilient client derives
        its per-attempt offload deadline from this prediction
        (``margin × predicted_total``): a request that overshoots its own
        prediction several-fold is lost, not merely slow.
        """
        self._check_point(point)
        if bandwidth_up <= 0:
            raise ValueError("upload bandwidth must be positive")
        return float(
            self._prefix[point]
            + self.predicted_upload_time(point, bandwidth_up)
            + k * self._suffix[point]
        )

    def tail_profiles(self, point: int) -> Sequence[NodeProfile]:
        """Node profiles of the server-side tail for partition ``point``."""
        self._check_point(point)
        return self.profiles[point:]

    def head_profiles(self, point: int) -> Sequence[NodeProfile]:
        self._check_point(point)
        return self.profiles[:point]

    def _check_point(self, point: int) -> None:
        if not 0 <= point <= self.num_nodes:
            raise ValueError(f"partition point {point} out of range [0, {self.num_nodes}]")


# -- differential references for the fleet scan ------------------------------
#
# ``decide_fleet`` must agree with these two independent implementations:
# ``fleet_objective`` restates Problem (1) for a single ``(point, server)``
# pair by direct summation (no prefix/suffix arrays — numerically close,
# not bit-equal), and ``fleet_brute_force`` enumerates every pair with the
# scalar mirror of ``partition_decision``'s vector arithmetic (bit-equal).


def fleet_objective(
    engine: LoADPartEngine,
    point: int,
    bandwidth_up: float,
    k: float = 1.0,
    extra_latency_s: float = 0.0,
    bandwidth_down: float | None = None,
    profile: ServerProfile | None = None,
) -> float:
    """Problem (1) for one ``(point, server)`` candidate, summed directly.

    Deliberately avoids the engine's precomputed arrays: the device head
    and server tail are plain Python sums over the predictor outputs, so
    a bookkeeping bug in the prefix/suffix indexing cannot hide in both
    implementations at once.  Compare with ``isclose`` — summation order
    differs from the cumsum by design.
    """
    engine._check_point(point)
    device = sum(float(t) for t in engine.device_times[:point])
    if profile is not None and profile.edge_predictor is not None:
        edge_times = profile.edge_predictor.predict_nodes(engine.profiles)
    else:
        edge_times = engine.edge_times
    total = device + k * sum(float(t) for t in edge_times[point:])
    if point < engine.num_nodes:
        total += engine.sizes[point] * 8 / bandwidth_up + extra_latency_s
        if bandwidth_down is not None:
            total += engine.output_bytes * 8 / bandwidth_down
    return total


def fleet_brute_force(
    engine: LoADPartEngine,
    bandwidths_up: Sequence[float | None],
    ks: Sequence[float],
    extra_latencies_s: Sequence[float] | None = None,
    bandwidth_down: float | None = None,
    allowed: Sequence[int] | None = None,
    offload_only: bool = False,
    profiles: Sequence[ServerProfile | None] | None = None,
) -> FleetDecision:
    """Exhaustive ``(point, server)`` reference for ``decide_fleet``.

    Enumerates every pair with explicit scalar loops, mirroring the
    vectorised arithmetic of ``partition_decision`` operation for
    operation (same IEEE-754 evaluation order), so the result — point,
    server, predicted latency, and every per-server candidate vector —
    must match ``decide_fleet`` *bitwise*, not just approximately.
    Tie-breaks are mirrored too: last point within a server (``<=``
    forward scan), earliest server across servers (strict ``<``).
    """
    num = len(bandwidths_up)
    servers, bandwidths, extras, profiles = engine._resolve_fleet(
        bandwidths_up, ks, extra_latencies_s, profiles, allowed
    )
    n = engine.num_nodes
    prefix = engine._prefix
    sizes = engine.sizes
    download = 0.0
    if bandwidth_down is not None:
        if bandwidth_down <= 0:
            raise ValueError("download bandwidth must be positive")
        download = engine.output_bytes * 8 / bandwidth_down

    decisions: List[PartitionDecision | None] = [None] * num
    best_value = math.inf
    best_server: int | None = None
    best_point = n
    for s in servers:
        k = ks[s]
        if k < 1.0:
            raise ValueError(f"the influential factor k must be >= 1, got {k}")
        bw = bandwidths[s]
        if bw <= 0:
            raise ValueError("upload bandwidth must be positive")
        extra = extras[s]
        if extra < 0:
            raise ValueError("extra_latency_s must be non-negative")
        suffix = engine._suffix_for(profiles[s])
        vals = np.empty(n + 1, dtype=np.float64)
        scan_len = n if offload_only else n + 1
        sp = 0
        sv = math.inf
        for p in range(n + 1):
            c = prefix[p] + k * suffix[p]
            if p < n:
                c = c + (sizes[p] * 8 / bw + download + extra)
            vals[p] = c
            if p < scan_len and c <= sv:
                sp, sv = p, c
        d = PartitionDecision(
            point=sp, predicted_latency=float(vals[sp]), candidates=vals
        )
        decisions[s] = d
        if d.predicted_latency < best_value:
            best_value = d.predicted_latency
            best_server = s
            best_point = d.point
    if best_server is None or best_point == n:
        return FleetDecision(
            point=n,
            server=None,
            predicted_latency=float(prefix[n]),
            decisions=tuple(decisions),
        )
    return FleetDecision(
        point=best_point,
        server=best_server,
        predicted_latency=best_value,
        decisions=tuple(decisions),
    )


# -- differential references for the exit grid --------------------------------
#
# ``decide_exit`` / ``decide_exit_fleet`` must agree bitwise with these
# exhaustive enumerations of every (exit, point) — resp. (exit, point,
# server) — pair.  Each exit's objective vector is rebuilt with the same
# scalar arithmetic mirrors as ``fleet_brute_force`` (independent per-exit
# predictions via each sub-graph's own profiles), and the exit-selection
# rule is restated with explicit loops so a bug in ``_pick_exit`` cannot
# hide in both implementations.


def _scalar_scan(
    engine: LoADPartEngine,
    bandwidth_up: float,
    k: float,
    bandwidth_down: float | None,
    offload_only: bool,
    extra_latency_s: float,
    profile: ServerProfile | None,
) -> PartitionDecision:
    """Scalar mirror of ``partition_decision`` for one exit sub-graph."""
    if k < 1.0:
        raise ValueError(f"the influential factor k must be >= 1, got {k}")
    if bandwidth_up <= 0:
        raise ValueError("upload bandwidth must be positive")
    if extra_latency_s < 0:
        raise ValueError("extra_latency_s must be non-negative")
    download = 0.0
    if bandwidth_down is not None:
        if bandwidth_down <= 0:
            raise ValueError("download bandwidth must be positive")
        download = engine.output_bytes * 8 / bandwidth_down
    n = engine.num_nodes
    prefix = engine._prefix
    suffix = engine._suffix_for(profile)
    sizes = engine.sizes
    vals = np.empty(n + 1, dtype=np.float64)
    scan_len = n if offload_only else n + 1
    sp = 0
    sv = math.inf
    for p in range(n + 1):
        c = prefix[p] + k * suffix[p]
        if p < n:
            c = c + (sizes[p] * 8 / bandwidth_up + download + extra_latency_s)
        vals[p] = c
        if p < scan_len and c <= sv:
            sp, sv = p, c
    return PartitionDecision(point=sp, predicted_latency=float(vals[sp]),
                             candidates=vals)


def exit_brute_force(
    engine: LoADPartEngine,
    sla_s: float | None,
    bandwidth_up: float,
    k: float = 1.0,
    bandwidth_down: float | None = None,
    offload_only: bool = False,
    extra_latency_s: float = 0.0,
    profile: ServerProfile | None = None,
) -> ExitDecision:
    """Exhaustive ``(exit, point)`` reference for ``decide_exit``.

    Every exit's objective vector is enumerated point by point with the
    scalar mirror of Algorithm 1's vector arithmetic; the exit axis is
    then resolved by explicit loops — backward for the latest feasible
    exit, forward strict-``<`` for the no-feasible-exit fallback — so the
    result must match ``decide_exit`` bitwise.
    """
    last = engine.num_exits - 1
    if sla_s is None:
        d = _scalar_scan(engine, bandwidth_up, k, bandwidth_down,
                         offload_only, extra_latency_s, profile)
        return ExitDecision(
            exit_index=last, point=d.point,
            predicted_latency=d.predicted_latency,
            accuracy=engine.exit_accuracy(), sla_s=None, feasible=True,
            decision=d, decisions=(None,) * last + (d,))
    decisions = tuple(
        _scalar_scan(engine.exit_engine(e), bandwidth_up, k, bandwidth_down,
                     offload_only, extra_latency_s, profile)
        for e in range(last + 1))
    chosen = None
    feasible = True
    for e in range(last, -1, -1):
        if decisions[e].predicted_latency <= sla_s:
            chosen = e
            break
    if chosen is None:
        feasible = False
        chosen = 0
        for e in range(1, last + 1):
            if decisions[e].predicted_latency < decisions[chosen].predicted_latency:
                chosen = e
    d = decisions[chosen]
    return ExitDecision(
        exit_index=chosen, point=d.point,
        predicted_latency=d.predicted_latency,
        accuracy=engine.exit_accuracy(chosen), sla_s=sla_s,
        feasible=feasible, decision=d, decisions=decisions)


def exit_fleet_brute_force(
    engine: LoADPartEngine,
    sla_s: float | None,
    bandwidths_up: Sequence[float | None],
    ks: Sequence[float],
    extra_latencies_s: Sequence[float] | None = None,
    bandwidth_down: float | None = None,
    allowed: Sequence[int] | None = None,
    offload_only: bool = False,
    profiles: Sequence[ServerProfile | None] | None = None,
) -> ExitFleetDecision:
    """Exhaustive ``(exit, point, server)`` reference for ``decide_exit_fleet``.

    Per exit, :func:`fleet_brute_force` enumerates every ``(point,
    server)`` pair; the exit axis is then resolved with the same explicit
    loops as :func:`exit_brute_force`.
    """
    last = engine.num_exits - 1
    if sla_s is None:
        d = fleet_brute_force(
            engine, bandwidths_up, ks, extra_latencies_s=extra_latencies_s,
            bandwidth_down=bandwidth_down, allowed=allowed,
            offload_only=offload_only, profiles=profiles)
        return ExitFleetDecision(
            exit_index=last, point=d.point, server=d.server,
            predicted_latency=d.predicted_latency,
            accuracy=engine.exit_accuracy(), sla_s=None, feasible=True,
            decision=d, decisions=(None,) * last + (d,))
    decisions = tuple(
        fleet_brute_force(
            engine.exit_engine(e), bandwidths_up, ks,
            extra_latencies_s=extra_latencies_s,
            bandwidth_down=bandwidth_down, allowed=allowed,
            offload_only=offload_only, profiles=profiles)
        for e in range(last + 1))
    chosen = None
    feasible = True
    for e in range(last, -1, -1):
        if decisions[e].predicted_latency <= sla_s:
            chosen = e
            break
    if chosen is None:
        feasible = False
        chosen = 0
        for e in range(1, last + 1):
            if decisions[e].predicted_latency < decisions[chosen].predicted_latency:
                chosen = e
    d = decisions[chosen]
    return ExitFleetDecision(
        exit_index=chosen, point=d.point, server=d.server,
        predicted_latency=d.predicted_latency,
        accuracy=engine.exit_accuracy(chosen), sla_s=sla_s,
        feasible=feasible, decision=d, decisions=decisions)
