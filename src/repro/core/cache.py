"""The partition cache (§III-A).

Partitioning a DNN and preparing the runtime for the two subgraphs is not
free; the paper amortises it with a cache keyed by the partition point,
holding the partitioned computation graph and auxiliary structures.  Both
the device and the server keep one.  With the cache, partition overhead
amortises to ~1% of inference time over ~100 requests.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.graph.partitioner import GraphPartitioner, PartitionedGraph


class PartitionCache:
    """LRU cache: partition point -> :class:`PartitionedGraph`."""

    def __init__(self, partitioner: GraphPartitioner, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._partitioner = partitioner
        self._capacity = capacity
        self._entries: "OrderedDict[int, PartitionedGraph]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, point: int) -> PartitionedGraph:
        """Fetch the partition for ``point``, building it on a miss."""
        if point in self._entries:
            self.hits += 1
            self._entries.move_to_end(point)
            return self._entries[point]
        self.misses += 1
        partitioned = self._partitioner.partition(point)
        self._entries[point] = partitioned
        if len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
        return partitioned

    def __contains__(self, point: int) -> bool:
        return point in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        self._entries.clear()
        self.hits = 0
        self.misses = 0
