"""The partition cache (§III-A).

Partitioning a DNN and preparing the runtime for the two subgraphs is not
free; the paper amortises it with a cache keyed by the partition point,
holding the partitioned computation graph and auxiliary structures.  Both
the device and the server keep one.  With the cache, partition overhead
amortises to ~1% of inference time over ~100 requests.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.graph.partitioner import GraphPartitioner, PartitionedGraph


class PartitionCache:
    """LRU cache: partition point -> :class:`PartitionedGraph`.

    Thread-safe: the batching event loop and branch-parallel plan chains
    can look up partitions concurrently, and an ``OrderedDict`` mid
    ``move_to_end``/``popitem`` must never be observed torn.  Partitioning
    the same point twice under a race is harmless (the result is
    deterministic), so the lock only guards the bookkeeping.
    """

    def __init__(self, partitioner: GraphPartitioner, capacity: int = 32) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._partitioner = partitioner
        self._capacity = capacity
        self._entries: "OrderedDict[int, PartitionedGraph]" = OrderedDict()
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0

    def get(self, point: int) -> PartitionedGraph:
        """Fetch the partition for ``point``, building it on a miss."""
        with self._lock:
            if point in self._entries:
                self.hits += 1
                self._entries.move_to_end(point)
                return self._entries[point]
            self.misses += 1
            partitioned = self._partitioner.partition(point)
            self._entries[point] = partitioned
            if len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
            return partitioned

    def __contains__(self, point: int) -> bool:
        with self._lock:
            return point in self._entries

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0
