"""Three-tier partitioning: device -> edge -> cloud (AAIoT-style extension).

The paper cites AAIoT's dynamic programming for splitting a DNN across
multi-layered IoT architectures.  This module extends Algorithm 1 to the
three-tier chain

    device --B1--> edge server --B2--> cloud

with two partition points ``p <= q`` on the topological order: positions
``1..p`` run on the device, ``p+1..q`` on the edge, ``q+1..n`` in the
cloud.  The objective generalises Problem (1)::

    t(p, q) =  sum_{i<=p} f(L_i)  +  s_p / B1
             + k_e * sum_{p<i<=q} g_e(L_i)  +  s_q / B2
             + k_c * sum_{i>q} g_c(L_i)

A naive scan is O(n^2); the decomposition below is O(n): for a fixed ``q``
the optimal ``p`` minimises ``h(p) = prefix_f[p] + s_p/B1 - k_e*G_e[p]``,
which does not depend on ``q``, so one forward pass maintaining the
running argmin of ``h`` suffices — the same prefix/suffix trick that makes
Algorithm 1 linear, applied twice.

Degenerate placements fall out naturally: ``p == q`` skips the edge tier
entirely (device -> cloud), and ``q == n`` skips the cloud (exactly
Algorithm 1 without its download term).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class MultiTierDecision:
    """Result of the three-tier scan."""

    device_point: int   # p: last position on the device (0 = none)
    edge_point: int     # q: last position on the edge (q == p -> edge skipped)
    predicted_latency: float
    device_nodes: int
    edge_nodes: int
    cloud_nodes: int

    @property
    def uses_edge(self) -> bool:
        return self.edge_nodes > 0

    @property
    def uses_cloud(self) -> bool:
        return self.cloud_nodes > 0

    @property
    def is_local(self) -> bool:
        return self.edge_nodes == 0 and self.cloud_nodes == 0


def multi_tier_decision(
    device_times: Sequence[float],
    edge_times: Sequence[float],
    cloud_times: Sequence[float],
    sizes: Sequence[int],
    bandwidth_device_edge: float,
    bandwidth_edge_cloud: float,
    k_edge: float = 1.0,
    k_cloud: float = 1.0,
    extra_latency_edge_s: float = 0.0,
    extra_latency_cloud_s: float = 0.0,
) -> MultiTierDecision:
    """O(n) optimal two-cut placement across device/edge/cloud.

    ``extra_latency_edge_s`` / ``extra_latency_cloud_s`` are fixed link
    base latencies charged once per hop actually taken (the heterogeneous
    fleet's per-server link position, generalised to the tier chain): the
    first on every placement that leaves the device, the second on every
    placement that reaches the cloud.  Fully-local placement pays
    neither; the 0.0 defaults reproduce the original scan exactly.
    """
    n = len(device_times)
    if len(edge_times) != n or len(cloud_times) != n:
        raise ValueError("per-tier time arrays must share length")
    if len(sizes) != n + 1:
        raise ValueError(f"sizes must have length n+1={n + 1}")
    if bandwidth_device_edge <= 0 or bandwidth_edge_cloud <= 0:
        raise ValueError("bandwidths must be positive")
    if k_edge < 1.0 or k_cloud < 1.0:
        raise ValueError("load factors must be >= 1")
    if extra_latency_edge_s < 0 or extra_latency_cloud_s < 0:
        raise ValueError("extra latencies must be non-negative")

    f = np.asarray(device_times, dtype=np.float64)
    g_e = np.asarray(edge_times, dtype=np.float64)
    g_c = np.asarray(cloud_times, dtype=np.float64)
    if np.any(f < 0) or np.any(g_e < 0) or np.any(g_c < 0):
        raise ValueError("times must be non-negative")
    s = np.asarray(sizes, dtype=np.float64)

    prefix_f = np.concatenate(([0.0], np.cumsum(f)))       # prefix_f[p]
    prefix_ge = np.concatenate(([0.0], np.cumsum(g_e)))    # G_e[q]
    suffix_gc = np.concatenate((np.cumsum(g_c[::-1])[::-1], [0.0]))  # C[q]

    # The link base latencies fold straight into the hop cost vectors;
    # the fully-local overwrite below keeps placement (n, n) clean.
    up1 = s * 8 / bandwidth_device_edge + extra_latency_edge_s
    up2 = s * 8 / bandwidth_edge_cloud + extra_latency_cloud_s

    # h(p): the q-independent part of the objective.
    h = prefix_f + up1 - k_edge * prefix_ge

    best = None
    best_pq = (0, 0)
    best_h = np.inf
    best_h_p = 0
    for q in range(n + 1):
        # p may equal q (edge skipped: pay s_p/B1 then s_q/B2 at the same
        # position, i.e. the tensor transits the edge without compute).
        if h[q] <= best_h:
            best_h = float(h[q])
            best_h_p = q
        if q == n:
            # Cloud skipped: no second hop, no cloud time.  The candidate
            # objectives are exactly Algorithm 1's; include pure local too.
            totals = prefix_f[: n + 1] + up1[: n + 1] + k_edge * (prefix_ge[n] - prefix_ge[: n + 1])
            totals[n] = prefix_f[n]  # fully local: no hop at all
            p_local = int(len(totals) - 1 - np.argmin(totals[::-1]))
            value = float(totals[p_local])
            if best is None or value <= best:
                best = value
                best_pq = (p_local, n)
            continue
        value = best_h + k_edge * prefix_ge[q] + up2[q] + k_cloud * suffix_gc[q]
        if best is None or value < best:
            best = value
            best_pq = (best_h_p, q)

    p, q = best_pq
    assert best is not None
    return MultiTierDecision(
        device_point=p,
        edge_point=q,
        predicted_latency=best,
        device_nodes=p,
        edge_nodes=q - p,
        cloud_nodes=n - q,
    )


@dataclass(frozen=True)
class MultiTierExitDecision:
    """Result of the SLA-aware exit rule over per-exit three-tier scans."""

    exit_index: int
    feasible: bool
    decision: MultiTierDecision
    decisions: tuple


def multi_tier_exit_decision(
    exit_workloads: Sequence[tuple],
    sla_s: float | None,
    bandwidth_device_edge: float,
    bandwidth_edge_cloud: float,
    k_edge: float = 1.0,
    k_cloud: float = 1.0,
    extra_latency_edge_s: float = 0.0,
    extra_latency_cloud_s: float = 0.0,
) -> MultiTierExitDecision:
    """The engine's exit rule lifted to the device/edge/cloud chain.

    ``exit_workloads`` holds one ``(device_times, edge_times, cloud_times,
    sizes)`` tuple per exit, earliest first, final exit last.  Each exit
    gets its own O(n) two-cut scan; the exit axis then resolves exactly
    like :meth:`LoADPartEngine.decide_exit` — latest exit whose optimum
    meets the SLA, else the globally fastest exit (strict ``<``, earliest
    on ties).  ``sla_s=None`` evaluates only the final exit, making the
    wrapper a zero-cost alias of :func:`multi_tier_decision`.
    """
    if not exit_workloads:
        raise ValueError("exit_workloads must not be empty")

    def scan(workload):
        device_times, edge_times, cloud_times, sizes = workload
        return multi_tier_decision(
            device_times, edge_times, cloud_times, sizes,
            bandwidth_device_edge, bandwidth_edge_cloud,
            k_edge=k_edge, k_cloud=k_cloud,
            extra_latency_edge_s=extra_latency_edge_s,
            extra_latency_cloud_s=extra_latency_cloud_s,
        )

    last = len(exit_workloads) - 1
    if sla_s is None:
        d = scan(exit_workloads[last])
        return MultiTierExitDecision(
            exit_index=last, feasible=True, decision=d,
            decisions=(None,) * last + (d,))
    if sla_s <= 0:
        raise ValueError(f"sla_s must be positive, got {sla_s}")
    decisions = tuple(scan(w) for w in exit_workloads)
    for e in range(last, -1, -1):
        if decisions[e].predicted_latency <= sla_s:
            return MultiTierExitDecision(
                exit_index=e, feasible=True, decision=decisions[e],
                decisions=decisions)
    fastest = 0
    for e in range(1, last + 1):
        if decisions[e].predicted_latency < decisions[fastest].predicted_latency:
            fastest = e
    return MultiTierExitDecision(
        exit_index=fastest, feasible=False, decision=decisions[fastest],
        decisions=decisions)


def multi_tier_objective(
    p: int,
    q: int,
    device_times: Sequence[float],
    edge_times: Sequence[float],
    cloud_times: Sequence[float],
    sizes: Sequence[int],
    bandwidth_device_edge: float,
    bandwidth_edge_cloud: float,
    k_edge: float = 1.0,
    k_cloud: float = 1.0,
    extra_latency_edge_s: float = 0.0,
    extra_latency_cloud_s: float = 0.0,
) -> float:
    """Evaluate ``t(p, q)`` for one explicit two-cut placement.

    The single source of truth for the three-tier objective: both the O(n)
    scan and the brute-force reference must agree with this evaluator on
    the placements they return, which is what the equivalence property
    tests assert.
    """
    n = len(device_times)
    if not 0 <= p <= q <= n:
        raise ValueError(f"need 0 <= p <= q <= n, got p={p}, q={q}, n={n}")
    f = np.asarray(device_times, dtype=np.float64)
    g_e = np.asarray(edge_times, dtype=np.float64)
    g_c = np.asarray(cloud_times, dtype=np.float64)
    s = np.asarray(sizes, dtype=np.float64)
    value = float(f[:p].sum())
    if p == n and q == n:
        return value  # fully local: no hop at all
    value += s[p] * 8 / bandwidth_device_edge + extra_latency_edge_s
    value += k_edge * float(g_e[p:q].sum())
    if q < n:
        value += s[q] * 8 / bandwidth_edge_cloud + extra_latency_cloud_s
        value += k_cloud * float(g_c[q:].sum())
    return value


def multi_tier_brute_force(
    device_times: Sequence[float],
    edge_times: Sequence[float],
    cloud_times: Sequence[float],
    sizes: Sequence[int],
    bandwidth_device_edge: float,
    bandwidth_edge_cloud: float,
    k_edge: float = 1.0,
    k_cloud: float = 1.0,
    extra_latency_edge_s: float = 0.0,
    extra_latency_cloud_s: float = 0.0,
) -> MultiTierDecision:
    """O(n^2) reference implementation (tests and sanity checks)."""
    n = len(device_times)
    best, best_pq = None, (0, 0)
    for q in range(n + 1):
        for p in range(q + 1):
            value = multi_tier_objective(
                p, q, device_times, edge_times, cloud_times, sizes,
                bandwidth_device_edge, bandwidth_edge_cloud,
                k_edge=k_edge, k_cloud=k_cloud,
                extra_latency_edge_s=extra_latency_edge_s,
                extra_latency_cloud_s=extra_latency_cloud_s,
            )
            if best is None or value < best - 1e-15:
                best, best_pq = value, (p, q)
    p, q = best_pq
    assert best is not None
    return MultiTierDecision(p, q, best, p, q - p, n - q)
