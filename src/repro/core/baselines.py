"""Baseline offloading strategies.

- :class:`NeurosurgeonStrategy` — the paper's §V-C baseline: partitions by
  bandwidth like LoADPart but is oblivious to the server computation load
  (always uses ``k = 1``).
- :class:`LocalStrategy` / :class:`FullOffloadStrategy` — the two trivial
  policies of Figs. 7/8.
- :func:`dads_min_cut` — a DADS-style min-cut solver over the full DAG cut
  space.  It is the O(n^3) alternative the paper contrasts Algorithm 1
  against: more general (it can cut inside blocks), but too slow for
  per-request dynamic decisions on a constrained device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Sequence

import networkx as nx

from repro.core.engine import LoADPartEngine
from repro.core.partition_algorithm import PartitionDecision
from repro.graph.graph import ComputationGraph


class NeurosurgeonStrategy:
    """Bandwidth-aware, load-oblivious partitioning (Kang et al., 2017).

    Wraps a :class:`LoADPartEngine` but pins ``k = 1``: the partition point
    tracks bandwidth changes yet never reacts to server load, which is
    exactly how the paper configures its baseline.
    """

    def __init__(self, engine: LoADPartEngine) -> None:
        self.engine = engine

    def decide(self, bandwidth_up: float, k: float = 1.0) -> PartitionDecision:
        """``k`` is accepted for interface parity and deliberately ignored."""
        return self.engine.decide(bandwidth_up, k=1.0)


class LocalStrategy:
    """Always run the whole DNN on the user-end device."""

    def __init__(self, engine: LoADPartEngine) -> None:
        self.engine = engine

    def decide(self, bandwidth_up: float, k: float = 1.0) -> PartitionDecision:
        decision = self.engine.decide(bandwidth_up, k=k)
        n = self.engine.num_nodes
        return PartitionDecision(
            point=n,
            predicted_latency=float(decision.candidates[n]),
            candidates=decision.candidates,
        )


class FullOffloadStrategy:
    """Always upload the input and run the whole DNN on the edge server."""

    def __init__(self, engine: LoADPartEngine) -> None:
        self.engine = engine

    def decide(self, bandwidth_up: float, k: float = 1.0) -> PartitionDecision:
        decision = self.engine.decide(bandwidth_up, k=k)
        return PartitionDecision(
            point=0,
            predicted_latency=float(decision.candidates[0]),
            candidates=decision.candidates,
        )


# ---------------------------------------------------------------------------
# DADS-style min-cut over the full DAG cut space
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MinCutResult:
    """An optimal general cut: which nodes run on the device, and its cost."""

    device_nodes: FrozenSet[str]
    latency: float

    def matches_prefix(self, order: Sequence[str]) -> int | None:
        """If the cut is a topological prefix, return its partition point."""
        p = len(self.device_nodes)
        return p if set(order[:p]) == set(self.device_nodes) else None


def dads_min_cut(
    graph: ComputationGraph,
    device_times: Sequence[float],
    edge_times: Sequence[float],
    bandwidth_up: float,
    k: float = 1.0,
) -> MinCutResult:
    """Minimise device + transmission + k*server time over *all* DAG cuts.

    Builds the standard project-selection flow network: source = device
    side, sink = server side.  Cutting ``src -> v`` (cap ``k * g(v)``) puts
    ``v`` on the server; cutting ``v -> sink`` (cap ``f(v)``) keeps it on
    the device.  Each tensor gets an auxiliary node so a multi-consumer
    tensor pays its transmission cost once, and infinite reverse edges
    forbid server-to-device data flow (offloading is one-way).

    Complexity is that of a max-flow on ~2n nodes — the O(n^3)-ish cost the
    paper's Algorithm 1 avoids.
    """
    order = graph.topological_order()
    n = len(order)
    if len(device_times) != n or len(edge_times) != n:
        raise ValueError("device/edge times must match the node count")
    if bandwidth_up <= 0:
        raise ValueError("upload bandwidth must be positive")
    if k < 1.0:
        raise ValueError("k must be >= 1")

    g = nx.DiGraph()
    src, dst = "__device__", "__server__"
    consumers = graph.consumers()

    def tensor_node(producer: str) -> str:
        return f"__tensor__{producer}"

    # Per-node assignment costs.
    for name, f_t, g_t in zip(order, device_times, edge_times):
        g.add_edge(src, name, capacity=k * g_t)  # pay server time if on server
        g.add_edge(name, dst, capacity=f_t)      # pay device time if on device
    # The graph input is produced on the device (pin to source).
    g.add_edge(src, graph.input_name, capacity=float("inf"))

    # Tensor transmission costs via auxiliary nodes.
    for producer in [graph.input_name] + order:
        consumer_names = consumers[producer]
        if not consumer_names:
            continue
        if producer == graph.input_name:
            size = graph.input_spec.nbytes
        else:
            out = graph.node(producer).output
            assert out is not None
            size = out.nbytes
        t = tensor_node(producer)
        g.add_edge(producer, t, capacity=size * 8 / bandwidth_up)
        for consumer in consumer_names:
            g.add_edge(t, consumer, capacity=float("inf"))
            # Forbid server -> device data flow.
            g.add_edge(consumer, producer, capacity=float("inf"))

    cut_value, (source_side, _sink_side) = nx.minimum_cut(g, src, dst)
    device_nodes = frozenset(name for name in order if name in source_side)
    return MinCutResult(device_nodes=device_nodes, latency=float(cut_value))
