"""Algorithm 1 of the paper: the partition decision.

Solves Problem (1): pick the partition point ``p`` on the topological order
``L_0 .. L_n`` minimising

    t_p = sum_{i<=p} f(L_i)  +  s_p / B_u  +  sum_{i>p} g(L_i, k)  +  s_n / B_d

with ``p = n`` meaning local inference (no network terms).  Prefix sums of
``f`` and suffix sums of ``g`` make the scan O(n) time and O(n) space.

Following the paper's implementation (§IV): ``g(L_i, k) = k * M_edge(L_i)``,
so the suffix array is computed once from ``M_edge`` and ``k`` multiplies it
at decision time; the download term ``s_n / B_d`` is ignored by default
because the result tensor of a discriminative DNN is tiny.

The tie-break matches the pseudo-code exactly: ``curVal <= minVal`` keeps
updating, so among equal-latency points the *latest* one wins (preferring
local execution when offloading buys nothing).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class PartitionDecision:
    """Result of one run of Algorithm 1.

    ``point`` is the chosen ``p`` (0 = full offloading, n = local
    inference); ``predicted_latency`` its objective value; ``candidates``
    the full objective vector (index = partition point), useful for
    plotting Fig. 1-style landscapes.
    """

    point: int
    predicted_latency: float
    candidates: np.ndarray

    @property
    def is_local(self) -> bool:
        return self.point == len(self.candidates) - 1

    @property
    def is_full_offload(self) -> bool:
        return self.point == 0


def compute_prefix_device(device_times: Sequence[float]) -> np.ndarray:
    """``prefix[i] = sum_{j<i} f(L_j)`` for i in 0..n (f(L_0)=0 is implicit)."""
    arr = np.asarray(device_times, dtype=np.float64)
    if np.any(arr < 0):
        raise ValueError("device times must be non-negative")
    prefix = np.zeros(len(arr) + 1)
    np.cumsum(arr, out=prefix[1:])
    return prefix


def compute_suffix_edge(edge_times: Sequence[float]) -> np.ndarray:
    """``suffix[i] = sum_{j>=i} M_edge(L_j)`` for i in 0..n (+ suffix[n]=0).

    Index convention: ``suffix[p]`` is the *unit-k* server time of the tail
    when partitioning after point ``p`` (nodes at positions p+1..n, i.e.
    array indices p..n-1).
    """
    arr = np.asarray(edge_times, dtype=np.float64)
    if np.any(arr < 0):
        raise ValueError("edge times must be non-negative")
    suffix = np.zeros(len(arr) + 1)
    np.cumsum(arr[::-1], out=suffix[:-1][::-1])
    return suffix


def partition_decision(
    device_times: Sequence[float],
    edge_times: Sequence[float],
    sizes: Sequence[int],
    bandwidth_up: float,
    k: float = 1.0,
    bandwidth_down: float | None = None,
    output_bytes: int = 0,
    prefix: np.ndarray | None = None,
    suffix: np.ndarray | None = None,
    offload_only: bool = False,
    extra_latency_s: float = 0.0,
) -> PartitionDecision:
    """Run Algorithm 1.

    Parameters
    ----------
    device_times, edge_times:
        Per-node predictions ``M_user(L_i)`` / ``M_edge(L_i)`` for the
        topological order (length n).
    sizes:
        Transmission sizes ``s_0..s_n`` in bytes (length n+1).
    bandwidth_up:
        Available upload bandwidth in bit/s.
    k:
        Influential factor of the server computation load (>= 1).
    bandwidth_down, output_bytes:
        Optional download term ``s_n / B_d``; ignored when
        ``bandwidth_down`` is None, as in the paper's implementation.
    prefix, suffix:
        Precomputed arrays (see :class:`~repro.core.engine.LoADPartEngine`),
        avoiding the O(n) cumsum on every call.
    offload_only:
        Exclude ``p = n`` (local inference) from the scan — the paper's
        fig. 6 setting, which measures *offloaded* latency even where
        staying local would win.
    extra_latency_s:
        Fixed per-request link latency charged to every *offloading*
        candidate (``p < n``) — the base latency of the server's
        :class:`~repro.network.channel.NetworkParams`.  In a multi-server
        fleet this is what distinguishes a nearby server from a far one at
        equal bandwidth; the default 0.0 adds exactly nothing, keeping
        single-server decisions bit-identical to the paper's.
    """
    n = len(device_times)
    if len(edge_times) != n:
        raise ValueError("device_times and edge_times must have the same length")
    if len(sizes) != n + 1:
        raise ValueError(f"sizes must have length n+1={n + 1}, got {len(sizes)}")
    if bandwidth_up <= 0:
        raise ValueError("upload bandwidth must be positive")
    if k < 1.0:
        raise ValueError(f"the influential factor k must be >= 1, got {k}")
    if extra_latency_s < 0:
        raise ValueError("extra_latency_s must be non-negative")
    if prefix is None:
        prefix = compute_prefix_device(device_times)
    if suffix is None:
        suffix = compute_suffix_edge(edge_times)

    sizes_arr = np.asarray(sizes, dtype=np.float64)
    download = 0.0
    if bandwidth_down is not None:
        if bandwidth_down <= 0:
            raise ValueError("download bandwidth must be positive")
        download = output_bytes * 8 / bandwidth_down

    candidates = prefix + k * suffix
    candidates[:-1] += sizes_arr[:-1] * 8 / bandwidth_up + download + extra_latency_s
    # candidates[n] is pure local inference: no network, no server term
    # (suffix[n] == 0 by construction).

    # The pseudo-code's `curVal <= minVal` keeps the LAST minimiser.
    scan = candidates[:-1] if offload_only else candidates
    best = int(len(scan) - 1 - np.argmin(scan[::-1]))
    return PartitionDecision(
        point=best,
        predicted_latency=float(candidates[best]),
        candidates=candidates,
    )
