"""Block analysis of DAG architectures (§III-D).

The paper observes that cutting a DNN *inside* a multi-branch block
(Residual, Inception, Fire) always transmits several branch tensors whose
combined size is large — e.g. at least 1.25 MB inside InceptionV3's last
Inception block, more than its 1.02 MB input — so the optimal partition
point is (practically) never inside a block.  Cut positions whose width is
1 (a single tensor crosses) are exactly the block boundaries, which is what
reduces the search space and lets Algorithm 1 scan the topological order
linearly.

This module computes that evidence for any graph, and the reduced
candidate set used by the ablation benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graph.graph import ComputationGraph


@dataclass(frozen=True)
class BlockCutReport:
    """Evidence for the §III-D claim, for one graph."""

    graph_name: str
    input_bytes: int
    #: cut positions where exactly one tensor crosses (block boundaries)
    width1_points: List[int]
    #: cut positions where several tensors cross (inside a block)
    multi_points: List[int]
    #: smallest transmission size among inside-block cuts (bytes); None if
    #: the graph is a pure chain
    min_multi_cut_bytes: int | None
    #: smallest transmission size among width-1 cuts after the first
    #: inside-block position (bytes)
    min_width1_cut_bytes: int

    @property
    def inside_cuts_beat_input(self) -> bool:
        """True if some inside-block cut transmits less than the input."""
        if self.min_multi_cut_bytes is None:
            return False
        return self.min_multi_cut_bytes < self.input_bytes


def candidate_points(graph: ComputationGraph) -> List[int]:
    """Partition points worth searching: width-1 cuts plus the endpoints.

    This is the reduced search space the block analysis justifies.  The
    full Algorithm 1 scan searches all n+1 positions anyway (it is O(n)
    either way); the benchmarks verify both give the same answer.
    """
    cuts = graph.cuts()
    n = len(cuts) - 1
    points = [c.index for c in cuts if c.width <= 1]
    if 0 not in points:
        points.insert(0, 0)
    if n not in points:
        points.append(n)
    return points


def block_cut_report(graph: ComputationGraph) -> BlockCutReport:
    """Measure transmission sizes of inside-block vs block-boundary cuts."""
    cuts = graph.cuts()
    n = len(cuts) - 1
    width1 = [c.index for c in cuts if c.width == 1]
    multi = [c.index for c in cuts if c.width > 1]
    min_multi = min((cuts[i].upload_bytes for i in multi), default=None)
    # Width-1 cuts strictly inside the network (exclude p=0 and p=n).
    inner_width1 = [i for i in width1 if 0 < i < n]
    min_width1 = min(
        (cuts[i].upload_bytes for i in inner_width1),
        default=graph.input_spec.nbytes,
    )
    return BlockCutReport(
        graph_name=graph.name,
        input_bytes=graph.input_spec.nbytes,
        width1_points=width1,
        multi_points=multi,
        min_multi_cut_bytes=min_multi,
        min_width1_cut_bytes=min_width1,
    )
