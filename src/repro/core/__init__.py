"""LoADPart core: the paper's primary contribution.

- :mod:`partition_algorithm` — Algorithm 1: the O(n) prefix/suffix scan
  over the topological order that minimises Problem (1).
- :mod:`engine` — :class:`LoADPartEngine`, the per-model decision engine
  that precomputes the prefix/suffix arrays once and re-decides in O(n)
  as the bandwidth estimate and the load factor ``k`` change (§IV).
- :mod:`load_factor` — the influential factor ``k`` of the server
  computation load, and the GPU-utilisation watchdog (§III-C, §IV).
- :mod:`cache` — the partition cache keyed by partition point (§III-A).
- :mod:`blocks` — the §III-D block analysis: cuts inside multi-branch
  blocks transmit more than width-1 cuts, justifying the linear scan.
- :mod:`baselines` — Neurosurgeon (bandwidth-aware, load-oblivious),
  local/full strategies, and a DADS-style min-cut solver.
"""

from repro.core.baselines import (
    FullOffloadStrategy,
    LocalStrategy,
    MinCutResult,
    NeurosurgeonStrategy,
    dads_min_cut,
)
from repro.core.blocks import BlockCutReport, block_cut_report, candidate_points
from repro.core.cache import PartitionCache
from repro.core.engine import (
    FleetDecision,
    LoADPartEngine,
    ServerProfile,
    fleet_brute_force,
    fleet_objective,
)
from repro.core.load_factor import GpuWatchdog, LoadFactorMonitor
from repro.core.multi_tier import MultiTierDecision, multi_tier_decision
from repro.core.partition_algorithm import PartitionDecision, partition_decision

__all__ = [
    "BlockCutReport",
    "FleetDecision",
    "FullOffloadStrategy",
    "GpuWatchdog",
    "LoADPartEngine",
    "LoadFactorMonitor",
    "LocalStrategy",
    "MinCutResult",
    "MultiTierDecision",
    "NeurosurgeonStrategy",
    "PartitionCache",
    "PartitionDecision",
    "ServerProfile",
    "block_cut_report",
    "candidate_points",
    "dads_min_cut",
    "fleet_brute_force",
    "fleet_objective",
    "multi_tier_decision",
    "partition_decision",
]
