"""NumPy kernels for every operator in the registry.

Each kernel has the signature ``kernel(inputs, params, attrs) -> ndarray``
where ``inputs`` is a list of input arrays (in CNode input order) and
``params`` is a list of parameter arrays (in CNode parameter order).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view


def _pair(value: Any) -> Tuple[int, int]:
    if isinstance(value, int):
        return (value, value)
    return (int(value[0]), int(value[1]))


def _pad_nchw(x: np.ndarray, padding: Tuple[int, int], fill: float = 0.0) -> np.ndarray:
    ph, pw = padding
    if ph == 0 and pw == 0:
        return x
    return np.pad(
        x,
        ((0, 0), (0, 0), (ph, ph), (pw, pw)),
        mode="constant",
        constant_values=fill,
    )


def _windows(
    x: np.ndarray, kernel: Tuple[int, int], stride: Tuple[int, int],
    padding: Tuple[int, int], fill: float = 0.0,
) -> np.ndarray:
    """Sliding windows of a padded NCHW tensor: (N, C, Ho, Wo, KH, KW)."""
    xp = _pad_nchw(x, padding, fill)
    win = sliding_window_view(xp, kernel, axis=(2, 3))
    sh, sw = stride
    return win[:, :, ::sh, ::sw, :, :]


def conv2d(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    (x,) = inputs
    (weight,) = params
    win = _windows(x, _pair(attrs["kernel"]), _pair(attrs.get("stride", 1)), _pair(attrs.get("padding", 0)))
    out = np.einsum("nchwij,ocij->nohw", win, weight, optimize=True)
    return out.astype(x.dtype, copy=False)


def dwconv2d(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    (x,) = inputs
    (weight,) = params
    mult = int(attrs.get("channel_multiplier", 1))
    kh, kw = _pair(attrs["kernel"])
    sh, sw = _pair(attrs.get("stride", 1))
    if mult == 1:
        # Multiply-accumulate over kh*kw shifted slices (i-major, j-minor).
        # The planned backend compiles the same lowering in the same
        # accumulation order, so both backends agree bit-for-bit.
        xp = _pad_nchw(x, _pair(attrs.get("padding", 0)))
        c = x.shape[1]
        ho = (xp.shape[2] - kh) // sh + 1
        wo = (xp.shape[3] - kw) // sw + 1
        out = None
        for i in range(kh):
            for j in range(kw):
                view = xp[:, :, i:i + sh * (ho - 1) + 1:sh, j:j + sw * (wo - 1) + 1:sw]
                wk = np.ascontiguousarray(weight[:, 0, i, j]).reshape(1, c, 1, 1)
                if out is None:
                    out = view * wk
                else:
                    out += view * wk
    else:
        win = _windows(x, (kh, kw), (sh, sw), _pair(attrs.get("padding", 0)))
        # Output channel c*mult + m applies filter m of input channel c
        # (TensorFlow depthwise convention; matches the registry's
        # (c_in*mult, 1, kh, kw) parameter layout).
        n, c, ho, wo = win.shape[:4]
        kh, kw = weight.shape[2], weight.shape[3]
        wm = weight.reshape(c, mult, kh, kw)
        out = np.einsum("nchwij,cmij->ncmhw", win, wm, optimize=True)
        out = out.reshape(n, c * mult, ho, wo)
    return out.astype(x.dtype, copy=False)


def matmul(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    (x,) = inputs
    (weight,) = params
    return (x @ weight).astype(x.dtype, copy=False)


def maxpool2d(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    (x,) = inputs
    kernel = _pair(attrs["kernel"])
    stride = _pair(attrs.get("stride", kernel))
    win = _windows(x, kernel, stride, _pair(attrs.get("padding", 0)), fill=-np.inf)
    return win.max(axis=(-2, -1)).astype(x.dtype, copy=False)


def avgpool2d(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    (x,) = inputs
    kernel = _pair(attrs["kernel"])
    stride = _pair(attrs.get("stride", kernel))
    win = _windows(x, kernel, stride, _pair(attrs.get("padding", 0)), fill=0.0)
    # count_include_pad semantics: divide by the full kernel area.
    return win.mean(axis=(-2, -1)).astype(x.dtype, copy=False)


def global_avgpool(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    (x,) = inputs
    return x.mean(axis=(2, 3), keepdims=True).astype(x.dtype, copy=False)


def bias_add(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    (x,) = inputs
    (bias,) = params
    shape = [1] * x.ndim
    shape[1] = bias.shape[0]
    return x + bias.reshape(shape)


def add(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    return inputs[0] + inputs[1]


def mul(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    return inputs[0] * inputs[1]


def batchnorm(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    (x,) = inputs
    gamma, beta, mean, var = params
    eps = float(attrs.get("eps", 1e-5))
    shape = [1] * x.ndim
    shape[1] = gamma.shape[0]
    scale = (gamma / np.sqrt(var + eps)).reshape(shape)
    shift = (beta - mean * gamma / np.sqrt(var + eps)).reshape(shape)
    return (x * scale + shift).astype(x.dtype, copy=False)


def relu(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    return np.maximum(inputs[0], 0)


def sigmoid(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    x = inputs[0]
    return (1.0 / (1.0 + np.exp(-x))).astype(x.dtype, copy=False)


def tanh(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    return np.tanh(inputs[0]).astype(inputs[0].dtype, copy=False)


def softmax(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    x = inputs[0]
    axis = int(attrs.get("axis", -1))
    shifted = x - x.max(axis=axis, keepdims=True)
    expd = np.exp(shifted)
    return (expd / expd.sum(axis=axis, keepdims=True)).astype(x.dtype, copy=False)


def lrn(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    """Local response normalisation via a cumulative sum over channels.

    The windowed sum for every channel is a difference of two prefix sums,
    so one ``cumsum`` replaces the per-channel Python loop.  Prefix sums are
    taken in float64: the subtraction cancels large partial sums, which in
    float32 would cost several digits of the window sum.
    """
    (x,) = inputs
    size = int(attrs.get("size", 5))
    alpha = float(attrs.get("alpha", 1e-4))
    beta = float(attrs.get("beta", 0.75))
    k = float(attrs.get("k", 2.0))
    half = size // 2
    channels = x.shape[1]
    squares = np.square(x, dtype=np.float64)
    prefix = np.cumsum(squares, axis=1)
    prefix = np.concatenate([np.zeros_like(prefix[:, :1]), prefix], axis=1)
    hi = np.minimum(np.arange(channels) + half + 1, channels)
    lo = np.maximum(np.arange(channels) - half, 0)
    denom = prefix[:, hi] - prefix[:, lo]
    return (x / np.power(k + (alpha / size) * denom, beta)).astype(x.dtype, copy=False)


def lrn_reference(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    """Literal per-channel-loop LRN, kept as the equivalence-test oracle."""
    (x,) = inputs
    size = int(attrs.get("size", 5))
    alpha = float(attrs.get("alpha", 1e-4))
    beta = float(attrs.get("beta", 0.75))
    k = float(attrs.get("k", 2.0))
    half = size // 2
    squares = x * x
    channels = x.shape[1]
    denom = np.empty_like(x)
    for c in range(channels):
        lo, hi = max(0, c - half), min(channels, c + half + 1)
        denom[:, c] = squares[:, lo:hi].sum(axis=1)
    return (x / np.power(k + (alpha / size) * denom, beta)).astype(x.dtype, copy=False)


def concat(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    return np.concatenate(list(inputs), axis=int(attrs.get("axis", 1)))


def flatten(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    x = inputs[0]
    return x.reshape(x.shape[0], -1)


def dropout(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> np.ndarray:
    # Inference mode: identity.
    return inputs[0]


def make_tuple(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> Tuple[np.ndarray, ...]:
    return tuple(inputs)


def return_op(inputs: Sequence[Any], params: Sequence[np.ndarray], attrs: Dict[str, Any]) -> Any:
    return inputs[0]


#: Number of parameter tensors each op consumes (for fused dispatch).
_PARAM_ARITY = {"bias_add": 1, "batchnorm": 4, "relu": 0, "sigmoid": 0, "tanh": 0}

_ANCHOR_KERNELS = {
    "fused_conv2d": conv2d,
    "fused_dwconv2d": dwconv2d,
    "fused_matmul": matmul,
}


def _make_fused_kernel(fused_op: str) -> Callable[..., np.ndarray]:
    anchor = _ANCHOR_KERNELS[fused_op]

    def fused(inputs: Sequence[np.ndarray], params: Sequence[np.ndarray],
              attrs: Dict[str, Any]) -> np.ndarray:
        out = anchor(inputs, params[:1], attrs)
        cursor = 1
        for op in attrs.get("epilogue", ()):
            arity = _PARAM_ARITY[op]
            out = KERNELS[op]([out], params[cursor:cursor + arity], {})
            cursor += arity
        return out

    return fused


KERNELS: Dict[str, Callable[..., Any]] = {
    "conv2d": conv2d,
    "dwconv2d": dwconv2d,
    "matmul": matmul,
    "maxpool2d": maxpool2d,
    "avgpool2d": avgpool2d,
    "global_avgpool": global_avgpool,
    "bias_add": bias_add,
    "add": add,
    "mul": mul,
    "batchnorm": batchnorm,
    "relu": relu,
    "sigmoid": sigmoid,
    "tanh": tanh,
    "softmax": softmax,
    "lrn": lrn,
    "concat": concat,
    "flatten": flatten,
    "dropout": dropout,
    "make_tuple": make_tuple,
    "return": return_op,
}

for _fused_name in _ANCHOR_KERNELS:
    KERNELS[_fused_name] = _make_fused_kernel(_fused_name)
