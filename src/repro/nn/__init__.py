"""NumPy inference executor.

Replaces the MindSpore runtime for *functional* purposes: executing a graph
or a partitioned segment on real arrays, so tests can assert that
partitioned execution is numerically identical to monolithic execution.
Timing never comes from this executor — latency is the job of
:mod:`repro.hardware`.
"""

from repro.nn.executor import GraphExecutor, SegmentExecutor, init_parameters
from repro.nn.kernels import KERNELS

__all__ = ["GraphExecutor", "KERNELS", "SegmentExecutor", "init_parameters"]
