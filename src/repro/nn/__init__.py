"""NumPy inference executor.

Replaces the MindSpore runtime for *functional* purposes: executing a graph
or a partitioned segment on real arrays, so tests can assert that
partitioned execution is numerically identical to monolithic execution.
Two backends share the same kernels: ``"naive"`` (per-call dict dispatch)
and ``"planned"`` (compiled plans with preallocated workspaces, see
:mod:`repro.nn.plan`).  Simulated latency still comes from
:mod:`repro.hardware`; the planned backend exists so *functional* execution
keeps up with the emulation loop.
"""

from repro.nn.executor import BACKENDS, GraphExecutor, SegmentExecutor, init_parameters
from repro.nn.kernels import KERNELS
from repro.nn.plan import CompiledPlan, GraphPlan, PlanStats, SegmentPlan, WorkspaceArena

__all__ = [
    "BACKENDS",
    "CompiledPlan",
    "GraphExecutor",
    "GraphPlan",
    "KERNELS",
    "PlanStats",
    "SegmentExecutor",
    "SegmentPlan",
    "WorkspaceArena",
    "init_parameters",
]
