"""Compiled execution plans: the ``"planned"`` executor backend.

The naive executor walks the topological order on every call, dispatches
each node through the ``KERNELS`` string table, and keeps every intermediate
alive in an ``env`` dict.  A :class:`CompiledPlan` instead resolves all of
that **once, at compile time**:

- the node sequence and the kernel callable for each node;
- the concrete input/parameter array bindings (closures bound over buffers,
  no dict lookups at run time);
- cached ``np.einsum_path`` contraction paths for the depthwise kernels;
- a liveness analysis that returns each intermediate's buffer to a
  :class:`WorkspaceArena` after its last consumer, and runs elementwise
  ops in place when their input dies at that step;
- the convolution hot path lowered to im2col + GEMM with persistent,
  pre-padded scratch buffers, and max-pooling lowered to a shifted-slice
  running maximum.

The contract is compile-once / run-many: the first construction pays for
buffer allocation and path search, and every subsequent ``run`` reuses the
same workspace — the common case in ``OffloadingSystem.run``'s back-to-back
request loop.  Outputs are **bit-identical** to the naive backend: every
planned kernel either performs the exact same floating-point reduction in
the same order (elementwise ufuncs, strided-view means, einsum with the
same contraction path) or an order-independent one (max), and the im2col
GEMM hits the identical sgemm the einsum contraction lowers to.

Plans are **batch-native**: ``batch=n`` compiles every step for ``n``
stacked samples (the serving regime of the multi-client runtime, where the
edge server amortises one plan across concurrent requests).  The leading
axis of every tensor is the batch axis, and a batched run is per-sample
bit-identical to ``n`` independent ``batch=1`` runs: convolutions share one
batched im2col fill but issue one GEMM *per sample slab* (a single fused
GEMM over all samples changes BLAS cache blocking with the column count
and therefore the summation order — measured on this host at e.g.
O=64,K=288,M=49 — so it is deliberately rejected), matmuls run one
row-GEMV per sample, and every other kernel reduces strictly within a
sample.

Because every batched kernel reduces strictly within a sample, batched
plans also **slice per sample**: under a sample-parallel
:class:`~repro.nn.parallel.ParallelConfig` the compiler emits one
chain-sliced step list per sample (bound over per-sample views of shared
full-batch external buffers, allocating from per-``(sample, chain)``
arena regions) and execution schedules the 2-D (sample × chain) task
graph on the shared thread pool — composing PR 2's batching with PR 4's
chain parallelism without changing a single floating-point reduction.

Compile time is budgeted: the ``_pick_faster`` autotuner drops to a single
timed repetition once a candidate exceeds ``_PICK_BUDGET_S``, einsum
contraction paths are cached process-wide by (subscripts, shapes), and
``REPRO_PLAN_FAST_COMPILE=1`` skips timed autotuning entirely (each site's
geometry-preferred candidate is used), for tests and CI.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.graph.graph import ComputationGraph
from repro.graph.node import CNode, TensorSpec
from repro.graph.partitioner import Segment
from repro.nn.executor import init_parameters
from repro.nn.kernels import KERNELS, _PARAM_ARITY, _pair
from repro.nn.parallel import ParallelConfig, ParallelPlanRunner, SampleParallelRunner

__all__ = [
    "ChainInfo",
    "CompiledPlan",
    "GraphPlan",
    "PlanError",
    "PlanStats",
    "PlanStream",
    "SegmentPlan",
    "WorkspaceArena",
]

_NUMPY_DTYPES = {
    "float32": np.float32,
    "float16": np.float16,
    "int8": np.int8,
    "int32": np.int32,
}

#: Ops compiled away into views: their output shares the input's storage.
_ALIAS_OPS = frozenset({"flatten", "dropout"})

#: Segment scaffolding; carries no tensor work and is not compiled.
_SCAFFOLD_OPS = frozenset({"make_tuple", "return"})

#: Ops whose planned kernels may write their (same-shape) dying input.
_INPLACE_OPS = frozenset(
    {"bias_add", "relu", "sigmoid", "tanh", "add", "mul", "batchnorm", "softmax"}
)

#: Environment switch: skip timed compile-time autotuning (tests, CI).
FAST_COMPILE_ENV = "REPRO_PLAN_FAST_COMPILE"

#: Once a single candidate run costs more than this, one repetition decides.
_PICK_BUDGET_S = 0.02

#: Process-wide ``np.einsum_path`` cache keyed by (subscripts, shapes):
#: segment plans for different partition points and batch sizes share the
#: same contractions, and path search is pure geometry.
_EINSUM_PATH_CACHE: Dict[Tuple, Any] = {}


def _fast_compile() -> bool:
    return os.environ.get(FAST_COMPILE_ENV, "") not in ("", "0")


def _cached_einsum_path(subscripts: str, *operands: np.ndarray):
    key = (subscripts,) + tuple(op.shape for op in operands)
    path = _EINSUM_PATH_CACHE.get(key)
    if path is None:
        path = np.einsum_path(subscripts, *operands, optimize=True)[0]
        _EINSUM_PATH_CACHE[key] = path
    return path


def _batched_spec(spec: TensorSpec, batch: int) -> TensorSpec:
    """The spec of ``batch`` stacked samples (leading axis is the batch)."""
    if batch == 1:
        return spec
    return TensorSpec((spec.shape[0] * batch,) + spec.shape[1:], spec.dtype)


class PlanError(RuntimeError):
    """Raised when a graph or segment cannot be compiled into a plan."""


class WorkspaceArena:
    """Pool of flat scratch buffers, reused best-fit across lifetimes.

    Buffers are handed out as 1-D arrays; the compiler slices and reshapes
    them into views, so tensors of *different* sizes share storage once
    their lifetimes are disjoint (the smallest adequate free buffer wins).
    Keeping the pool tight matters beyond allocator churn: on hosts with a
    large last-level cache the whole weight set plus workspace can stay
    cache-resident across back-to-back runs of one plan.

    Free pools are keyed by ``region``: under branch-parallel execution
    each chain allocates from (and releases into) its own region, and
    under sample-parallel batched execution regions are ``(sample, chain)``
    pairs, so two tasks that may run concurrently can never be handed the
    same storage.  Serial compiles use the single default region, which
    preserves the exact buffer-sharing behaviour of earlier plans.
    """

    def __init__(self) -> None:
        self._free: Dict[Tuple[Any, str], List[np.ndarray]] = {}
        self.allocated_bytes = 0
        self.persistent_bytes = 0
        self.buffers = 0
        self.reuses = 0

    def acquire(self, numel: int, dtype: Any = np.float32,
                waste_cap: int | None = None, region: Any = 0) -> np.ndarray:
        """Smallest adequate free buffer in ``region``, or a fresh one.

        ``waste_cap`` refuses free buffers more than that factor larger than
        the request — long-lived tensors should not squat on big scratch
        buffers that transient consumers (im2col columns) want to share.
        """
        numel = int(numel)
        pool = self._free.get((region, np.dtype(dtype).str), [])
        best = None
        for i, buf in enumerate(pool):
            if buf.size < numel:
                continue
            if waste_cap is not None and buf.size > waste_cap * numel:
                continue
            if best is None or buf.size < pool[best].size:
                best = i
        if best is not None:
            self.reuses += 1
            return pool.pop(best)
        buf = np.empty(numel, dtype=dtype)
        self.buffers += 1
        self.allocated_bytes += buf.nbytes
        return buf

    def release(self, base: np.ndarray, region: Any = 0) -> None:
        self._free.setdefault((region, base.dtype.str), []).append(base)

    def persistent(self, shape: Tuple[int, ...], dtype: Any = np.float32,
                   fill: float | None = None) -> np.ndarray:
        """A node-private buffer that is never pooled.

        Used for padded-input staging areas whose border values (0 or -inf)
        are written once at compile time and must survive across runs.
        """
        buf = np.empty(shape, dtype=dtype)
        if fill is not None:
            buf.fill(fill)
        self.buffers += 1
        self.allocated_bytes += buf.nbytes
        self.persistent_bytes += buf.nbytes
        return buf


class _Alloc:
    """Arena facade scoped to one node's compilation.

    ``scratch`` buffers are returned to the pool as soon as the node is
    compiled: they are fully rewritten on every run before being read, so
    later nodes may share the same storage for their own scratch or
    outputs without any cross-run hazard.  ``region`` is the arena region
    (the compiling step's chain, or ``(sample, chain)`` under sample
    slicing) every acquisition and release goes to — under parallel
    execution only steps of the *same* region may inherit this node's
    scratch, because another task could be running it.
    """

    def __init__(self, arena: WorkspaceArena, region: Any = 0) -> None:
        self.arena = arena
        self.region = region
        self._scratch: List[np.ndarray] = []

    def acquire(self, numel: int, dtype: Any = np.float32,
                waste_cap: int | None = None) -> np.ndarray:
        return self.arena.acquire(numel, dtype, waste_cap, region=self.region)

    def scratch(self, shape: Tuple[int, ...], dtype: Any = np.float32) -> np.ndarray:
        numel = int(np.prod(shape))
        base = self.arena.acquire(numel, dtype, region=self.region)
        self._scratch.append(base)
        return base[:numel].reshape(shape)

    def release_scratch(self) -> None:
        for base in self._scratch:
            self.arena.release(base, region=self.region)
        self._scratch.clear()


@dataclass(frozen=True)
class PlanStats:
    """Compile-time footprint of one plan."""

    steps: int
    inplace_steps: int
    alias_steps: int
    arena_bytes: int
    persistent_bytes: int
    buffers: int
    reuses: int
    #: Schedulable chain tasks the plan slices into (1 = a pure pipeline).
    #: Under sample-parallel compiles this counts (sample, chain) tasks
    #: across every sample slice.
    chains: int = 1
    #: Buffers kept alive past their last use because their readers span
    #: chains (parallel compiles only; serial compiles never pin).
    pinned_buffers: int = 0
    #: Independent per-sample step slices the plan compiled (1 = a single
    #: step list over the whole batch; ``batch`` under sample-parallel).
    sample_slices: int = 1


@dataclass(frozen=True)
class ChainInfo:
    """Chain-slicing result of one plan, for inspection and property tests.

    ``chain_of`` covers every compute node (aliases included, even though
    they compile to no step); ``chains`` holds the *compiled step* names per
    chain id, in execution order; ``chain_deps[c]`` are the chain ids that
    must finish before chain ``c`` starts; ``roots`` maps each tensor name
    to its storage root (aliases share their input's root).  Under sample
    slicing this describes the **per-sample** chain DAG — every sample
    slice shares the same structure by construction.
    """

    chains: Tuple[Tuple[str, ...], ...]
    chain_of: Dict[str, int]
    chain_deps: Tuple[frozenset, ...]
    node_index: Dict[str, int]
    roots: Dict[str, str]


# ---------------------------------------------------------------------------
# per-op compilers
# ---------------------------------------------------------------------------


def _padded_source(x: np.ndarray, padding: Tuple[int, int], arena: WorkspaceArena,
                   fill: float) -> Tuple[np.ndarray, Callable[[], None] | None]:
    """A stable source array for window views, padded once at compile time.

    Returns ``(src, copy_in)``: the borders of ``src`` are pre-filled and
    only the interior is refreshed from ``x`` by ``copy_in()`` on each run
    (``copy_in`` is None when no padding is needed and ``x`` itself is the
    source).
    """
    ph, pw = padding
    if ph == 0 and pw == 0:
        return x, None
    n, c, h, w = x.shape
    xp = arena.persistent((n, c, h + 2 * ph, w + 2 * pw), x.dtype, fill=fill)
    interior = xp[:, :, ph:ph + h, pw:pw + w]

    def copy_in() -> None:
        np.copyto(interior, x)

    return xp, copy_in


def _strided_windows(src: np.ndarray, kernel: Tuple[int, int],
                     stride: Tuple[int, int]) -> np.ndarray:
    win = sliding_window_view(src, kernel, axis=(2, 3))
    sh, sw = stride
    return win[:, :, ::sh, ::sw, :, :]


def _pool_geometry(attrs: Dict[str, Any]) -> Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int]]:
    kernel = _pair(attrs["kernel"])
    stride = _pair(attrs.get("stride", kernel))
    padding = _pair(attrs.get("padding", 0))
    return kernel, stride, padding


def _conv_geometry(attrs: Dict[str, Any]) -> Tuple[Tuple[int, int], Tuple[int, int], Tuple[int, int]]:
    kernel = _pair(attrs["kernel"])
    stride = _pair(attrs.get("stride", 1))
    padding = _pair(attrs.get("padding", 0))
    return kernel, stride, padding


def _pick_faster(*candidates: Callable[[], None]) -> Callable[[], None]:
    """Compile-time autotune between equivalent strategies.

    Candidates must produce identical results (pure copies here); only the
    winner is kept, so the choice affects speed, never values.  Callers
    order candidates by geometric preference: under
    ``REPRO_PLAN_FAST_COMPILE=1`` the first candidate wins untimed, and the
    first (warming) run doubles as the budget probe — expensive sites
    (> ``_PICK_BUDGET_S`` per run) are decided by a single repetition each,
    which is what keeps whole-zoo compiles in the seconds range.
    """
    if len(candidates) == 1 or _fast_compile():
        return candidates[0]
    import time

    t0 = time.perf_counter()
    candidates[0]()  # warm: shared scratch pages are touched for everyone
    probe = time.perf_counter() - t0
    repeats = 1 if probe > _PICK_BUDGET_S else 3
    best_fn, best_t = candidates[0], float("inf")
    for fn in candidates:
        dt = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            dt = min(dt, time.perf_counter() - t0)
        if dt < best_t:
            best_fn, best_t = fn, dt
    return best_fn


def _compile_elementwise(op: str, x: np.ndarray, params: Sequence[np.ndarray],
                         attrs: Dict[str, Any], out: np.ndarray) -> Callable[[], None]:
    """One elementwise step writing ``op(x)`` into ``out`` (``out is x`` ok).

    Each branch mirrors the naive kernel's exact ufunc sequence, so results
    are bit-identical; ``out=`` only removes the allocation.
    """
    if op == "relu":
        def fn() -> None:
            np.maximum(x, 0, out=out)
    elif op == "tanh":
        def fn() -> None:
            np.tanh(x, out=out)
    elif op == "sigmoid":
        def fn() -> None:
            np.negative(x, out=out)
            np.exp(out, out=out)
            np.add(out, 1.0, out=out)
            np.divide(1.0, out, out=out)
    elif op == "bias_add":
        (bias,) = params
        shape = [1] * x.ndim
        shape[1] = bias.shape[0]
        rb = bias.reshape(shape)

        def fn() -> None:
            np.add(x, rb, out=out)
    elif op == "batchnorm":
        gamma, beta, mean, var = params
        eps = float(attrs.get("eps", 1e-5))
        shape = [1] * x.ndim
        shape[1] = gamma.shape[0]
        # Folded at compile time with the naive kernel's exact expressions.
        scale = (gamma / np.sqrt(var + eps)).reshape(shape)
        shift = (beta - mean * gamma / np.sqrt(var + eps)).reshape(shape)

        def fn() -> None:
            np.multiply(x, scale, out=out)
            np.add(out, shift, out=out)
    else:
        raise PlanError(f"op {op!r} is not an elementwise planned kernel")
    return fn


def _compile_epilogue(epilogue: Sequence[str], params: Sequence[np.ndarray],
                      out: np.ndarray) -> List[Callable[[], None]]:
    """In-place epilogue chain for fused ops, applied to ``out`` in order."""
    steps: List[Callable[[], None]] = []
    cursor = 0
    for op in epilogue:
        arity = _PARAM_ARITY[op]
        steps.append(_compile_elementwise(op, out, params[cursor:cursor + arity], {}, out))
        cursor += arity
    return steps


def _chain(*fns: Callable[[], None] | None) -> Callable[[], None]:
    body = [f for f in fns if f is not None]
    if len(body) == 1:
        return body[0]

    def fn() -> None:
        for f in body:
            f()
    return fn


def _compile_conv2d(node: CNode, x: np.ndarray, params: Sequence[np.ndarray],
                    alloc: _Alloc, out_spec: TensorSpec,
                    ) -> Tuple[Callable[[], None], np.ndarray, np.ndarray]:
    """Batched im2col + per-sample GEMM convolution; self-allocates its output.

    The column tensor is laid out (n, c, kh, kw, ho, wo): one fill covers
    the whole batch, and each sample's slab ``cols[i]`` is a contiguous
    (K, ho*wo) matrix whose GEMM ``W.reshape(O, K) @ cols[i]`` writes the
    sample's NCHW output in place (zero-copy view).  One GEMM per sample is
    deliberate: it is the *identical* sgemm a ``batch=1`` plan issues, so a
    batched run stays per-sample bit-identical to independent runs, whereas
    a single fused (K, n*ho*wo) GEMM changes BLAS cache blocking with the
    column count and with it the floating-point summation order (measured
    on this host).  For n == 1 the layouts coincide exactly.
    """
    attrs = node.attrs
    weight = np.ascontiguousarray(params[0])
    kernel, stride, padding = _conv_geometry(attrs)
    n, c, h, w = x.shape
    _, o, ho, wo = out_spec.shape
    kh, kw = kernel
    sh, sw = stride
    src, copy_in = _padded_source(x, padding, alloc.arena, fill=0.0)
    win = _strided_windows(src, kernel, stride)          # (n, c, ho, wo, kh, kw)
    winT = win.transpose(0, 1, 4, 5, 2, 3)               # (n, c, kh, kw, ho, wo)
    k_dim = c * kh * kw
    m_dim = ho * wo
    w_mat = weight.reshape(o, k_dim)
    cols = alloc.scratch((n, c, kh, kw, ho, wo))
    out_base = alloc.acquire(n * o * m_dim, waste_cap=4)
    out_view = out_base[:n * o * m_dim].reshape(n, o, ho, wo)
    gemms = [
        (cols[i].reshape(k_dim, m_dim), out_view[i].reshape(o, m_dim))
        for i in range(n)
    ]

    # Two im2col strategies build the same column tensor: one 6-D gather, or
    # kh*kw shifted-slice copies (row-contiguous for stride-1 convs).  Both
    # are pure copies — pick whichever runs faster on this geometry, with
    # the geometry-preferred one first (it wins under fast compile).
    def fill_gather() -> None:
        np.copyto(cols, winT)

    slices = [
        (cols[:, :, i, j],
         src[:, :, i:i + sh * (ho - 1) + 1:sh, j:j + sw * (wo - 1) + 1:sw])
        for i in range(kh)
        for j in range(kw)
    ]

    def fill_slices() -> None:
        for dst, view in slices:
            np.copyto(dst, view)

    if sh == 1 and sw == 1:
        fill = _pick_faster(fill_slices, fill_gather)
    else:
        fill = _pick_faster(fill_gather, fill_slices)

    def fn() -> None:
        if copy_in is not None:
            copy_in()
        fill()
        for cols_mat, gemm_out in gemms:
            np.matmul(w_mat, cols_mat, out=gemm_out)

    return fn, out_view, out_base


def _compile_matmul(x: np.ndarray, params: Sequence[np.ndarray],
                    out: np.ndarray) -> Callable[[], None]:
    weight = np.ascontiguousarray(params[0])
    if x.ndim == 2 and x.flags.c_contiguous:
        # One vector-matrix product per sample: the same sgemm path a
        # single-row matmul lowers to, with identical bits, so a batched
        # plan stays per-sample bit-identical to batch=1 runs (an (n, K)
        # GEMM picks a different BLAS kernel once n > 1 and changes the
        # summation order — measured on this host at K=4096).
        rows = [(x[i], out[i]) for i in range(x.shape[0])]

        def fn() -> None:
            for xi, oi in rows:
                np.matmul(xi, weight, out=oi)
    else:
        def fn() -> None:
            np.matmul(x, weight, out=out)
    return fn


def _compile_dwconv2d(node: CNode, x: np.ndarray, params: Sequence[np.ndarray],
                      alloc: _Alloc, out: np.ndarray) -> Callable[[], None]:
    """Depthwise conv as a multiply-accumulate over kh*kw shifted slices.

    The einsum contraction has no GEMM lowering (the channel axis is shared
    by both operands), so it runs in einsum's generic strided loop; the
    shifted-slice form replaces it with kh*kw vectorised ufunc passes over
    contiguous planes — the same lowering the naive kernel now uses, in the
    same i-major/j-minor accumulation order, so bits agree.  The
    channel_multiplier > 1 form keeps the einsum contraction (no zoo model
    uses it; its path comes from the process-wide cache).
    """
    attrs = node.attrs
    weight = params[0]
    mult = int(attrs.get("channel_multiplier", 1))
    kernel, stride, padding = _conv_geometry(attrs)
    kh, kw = kernel
    sh, sw = stride
    src, copy_in = _padded_source(x, padding, alloc.arena, fill=0.0)
    if mult == 1:
        c = x.shape[1]
        ho, wo = out.shape[2], out.shape[3]
        taps = [
            (src[:, :, i:i + sh * (ho - 1) + 1:sh, j:j + sw * (wo - 1) + 1:sw],
             np.ascontiguousarray(weight[:, 0, i, j]).reshape(1, c, 1, 1))
            for i in range(kh)
            for j in range(kw)
        ]
        term = alloc.scratch(out.shape)
        first_src, first_w = taps[0]

        def contract() -> None:
            np.multiply(first_src, first_w, out=out)
            for view, wk in taps[1:]:
                np.multiply(view, wk, out=term)
                np.add(out, term, out=out)
    else:
        win = _strided_windows(src, kernel, stride)
        n, c = x.shape[:2]
        wm = weight.reshape(c, mult, kh, kw)
        out5 = out.reshape(n, c, mult, out.shape[2], out.shape[3])
        path = _cached_einsum_path("nchwij,cmij->ncmhw", win, wm)

        def contract() -> None:
            np.einsum("nchwij,cmij->ncmhw", win, wm, out=out5, optimize=path)
    return _chain(copy_in, contract)


def _compile_maxpool(node: CNode, x: np.ndarray, alloc: _Alloc,
                     out: np.ndarray) -> Callable[[], None]:
    """Running maximum over kh*kw shifted strided slices.

    Max is order-independent (and NaN-propagating either way), so this is
    bit-identical to the naive windowed ``max`` at a fraction of the cost.
    """
    kernel, stride, padding = _pool_geometry(node.attrs)
    kh, kw = kernel
    sh, sw = stride
    _, _, ho, wo = out.shape
    src, copy_in = _padded_source(x, padding, alloc.arena, fill=-np.inf)
    views = [
        src[:, :, i:i + sh * (ho - 1) + 1:sh, j:j + sw * (wo - 1) + 1:sw]
        for i in range(kh)
        for j in range(kw)
    ]
    first, rest = views[0], views[1:]

    def fn() -> None:
        if copy_in is not None:
            copy_in()
        np.copyto(out, first)
        for v in rest:
            np.maximum(out, v, out=out)
    return fn


def _compile_avgpool(node: CNode, x: np.ndarray, alloc: _Alloc,
                     out: np.ndarray) -> Callable[[], None]:
    # Mean is a float reduction whose result depends on summation order, so
    # keep the naive kernel's exact strided-view formulation; the plan only
    # removes the per-run pad/window setup.
    kernel, stride, padding = _pool_geometry(node.attrs)
    src, copy_in = _padded_source(x, padding, alloc.arena, fill=0.0)
    win = _strided_windows(src, kernel, stride)

    def fn() -> None:
        if copy_in is not None:
            copy_in()
        np.mean(win, axis=(-2, -1), out=out)
    return fn


def _compile_softmax(node: CNode, x: np.ndarray, out: np.ndarray) -> Callable[[], None]:
    axis = int(node.attrs.get("axis", -1))

    def fn() -> None:
        mx = x.max(axis=axis, keepdims=True)
        np.subtract(x, mx, out=out)
        np.exp(out, out=out)
        s = out.sum(axis=axis, keepdims=True)
        np.divide(out, s, out=out)
    return fn


def _compile_fallback(node: CNode, xs: List[np.ndarray], params: List[np.ndarray],
                      out: np.ndarray) -> Callable[[], None]:
    """Generic step: run the naive kernel and copy into the bound buffer."""
    kernel = KERNELS.get(node.op)
    if kernel is None:
        raise PlanError(f"no kernel for op {node.op!r}")
    attrs = node.attrs

    def fn() -> None:
        np.copyto(out, kernel(xs, params, attrs))
    return fn


# ---------------------------------------------------------------------------
# the plan compiler
# ---------------------------------------------------------------------------


class CompiledPlan:
    """A compiled node sequence with statically assigned buffers.

    Buffer assignment is register allocation for tensors: each produced
    tensor gets an arena buffer at compile time, freed (returned to the
    pool) right after its last consumer, and elementwise ops whose input
    dies at the consuming step run in place on that input's buffer.

    ``batch`` compiles the plan for that many stacked samples: every spec's
    leading (batch) axis is scaled, and the compiled kernels keep each
    sample's floating-point reduction order identical to a ``batch=1`` run.

    ``parallel`` compiles the plan for branch-parallel execution: the step
    list is sliced into independent chains between join points (see
    :attr:`chain_info`), buffer reuse and in-place rewrites are restricted
    to within-chain lifetimes, and ``execute`` schedules ready chains on
    the shared thread pool.  Outputs stay bit-identical to a serial plan:
    the steps and their per-step reduction orders are unchanged — only the
    interleaving across independent chains is.

    With ``parallel.sample_parallel`` and ``batch > 1`` the two compose:
    the plan compiles one chain-sliced step list **per sample**, bound over
    per-sample views of shared full-batch external buffers, and execution
    schedules (sample, chain) tasks on the same shared pool (see
    :class:`~repro.nn.parallel.SampleParallelRunner`).  Each sample's
    steps are exactly the steps a ``batch=1`` compile emits — the same
    GEMM slab shapes, the same per-sample reduction orders — and each
    sample allocates from its own ``(sample, chain)`` arena regions, so
    outputs stay per-sample bit-identical to the serial batched plan and
    to independent batch-1 runs.
    """

    def __init__(self, name: str, nodes: Sequence[CNode],
                 external_specs: Dict[str, TensorSpec],
                 params: Dict[str, np.ndarray],
                 result_names: Sequence[str],
                 batch: int = 1,
                 parallel: ParallelConfig | None = None) -> None:
        if batch < 1:
            raise PlanError(f"batch must be >= 1, got {batch}")
        self.name = name
        self.batch = batch
        self.parallel = parallel
        self._params = params
        self._result_names = tuple(result_names)
        self._arena = WorkspaceArena()
        self._inputs: Dict[str, np.ndarray] = {}
        self.sample_mode = False
        #: One step list / binding / chain DAG per sample slice (a single
        #: entry covering the whole batch unless sample-parallel kicked in).
        self._sample_steps: List[List[Tuple[str, Callable[[], None]]]] = []
        self._sample_bound: List[Dict[str, np.ndarray]] = []
        self._sample_chain_fns: List[List[List[Callable[[], None]]]] = []
        self._sample_chain_deps: List[List[Set[int]]] = []
        #: External names each compiled chain / step reads (root-resolved,
        #: so readers of an alias of an external gate on the external) —
        #: the release gates of :meth:`begin_streaming`.
        self._sample_chain_gates: List[List[Set[str]]] = []
        self._sample_step_gates: List[List[Set[str]]] = []
        self.chain_info: ChainInfo | None = None
        self.last_intermediates: Dict[str, np.ndarray] = {}
        # One plan instance owns one workspace: concurrent execute() calls
        # (parallel chains racing the batching loop on a cached plan) are
        # serialised here rather than corrupting each other's tensors.
        self._exec_lock = threading.Lock()
        self._compile(list(nodes), dict(external_specs))
        # Slice-0 aliases: the full plan when a single step list covers the
        # whole batch, and the structural representative (every slice shares
        # one chain DAG) under sample slicing.
        self._bound = self._sample_bound[0]
        self._steps = self._sample_steps[0]
        self._chain_fns = self._sample_chain_fns[0]
        self._chain_fn_deps = self._sample_chain_deps[0]
        self._fns = [fn for steps in self._sample_steps for _name, fn in steps]
        self._runner: ParallelPlanRunner | None = None
        if parallel is not None and parallel.threads > 1:
            total_tasks = sum(len(c) for c in self._sample_chain_fns)
            if len(self._sample_chain_fns) > 1 and total_tasks > 1:
                self._runner = SampleParallelRunner(
                    self._sample_chain_fns, self._sample_chain_deps,
                    parallel.threads,
                )
            elif total_tasks > 1:
                self._runner = ParallelPlanRunner(
                    self._chain_fns, self._chain_fn_deps, parallel.threads
                )

    # -- compilation --------------------------------------------------------

    def _compile(self, nodes: List[CNode], external_specs: Dict[str, TensorSpec]) -> None:
        arena = self._arena
        compute = [n for n in nodes if n.op not in _SCAFFOLD_OPS]

        # Sample slicing: with a sample-parallel config, batch > 1 and
        # workers to exploit it, the plan compiles one step list per sample
        # over per-sample views of shared full-batch external buffers
        # (specs keep their batch=1 shapes); otherwise a single step list
        # covers the whole batch.  threads=1 keeps the fused batched
        # compile — per-sample kernels cost granularity overhead that only
        # pays off when samples actually overlap.
        sample_mode = (self.parallel is not None and self.batch > 1
                       and self.parallel.threads > 1
                       and self.parallel.sample_parallel)
        self.sample_mode = sample_mode
        slices = self.batch if sample_mode else 1
        spec_batch = 1 if sample_mode else self.batch

        full_specs = {
            name: _batched_spec(spec, self.batch)
            for name, spec in external_specs.items()
        }
        external_specs = {
            name: _batched_spec(spec, spec_batch)
            for name, spec in external_specs.items()
        }
        specs: Dict[str, TensorSpec] = dict(external_specs)
        for node in compute:
            if node.output is None:
                raise PlanError(f"node {node.name!r} has no output spec")
            specs[node.name] = _batched_spec(node.output, spec_batch)
        for rname in self._result_names:
            if rname not in specs:
                raise PlanError(f"result {rname!r} is not produced by plan {self.name!r}")

        # Storage roots: alias ops (flatten/dropout) share their input's
        # storage, so lifetimes are tracked per root, not per name.
        root: Dict[str, str] = {ext: ext for ext in external_specs}
        for node in compute:
            if node.op in _ALIAS_OPS:
                root[node.name] = root[node.inputs[0]]
            else:
                root[node.name] = node.name

        last_use: Dict[str, int] = {}
        for idx, node in enumerate(compute):
            for dep in node.inputs:
                if dep not in root:
                    raise PlanError(f"node {node.name!r} reads unknown tensor {dep!r}")
                last_use[root[dep]] = idx
        forever = len(compute)
        for rname in self._result_names:
            last_use[root.get(rname, rname)] = forever
        deaths: Dict[int, List[str]] = {}
        for rname, lu in last_use.items():
            deaths.setdefault(lu, []).append(rname)

        # -- chain slicing ---------------------------------------------------
        # The step list partitions into *chains*: maximal runs where each
        # step is the unique consumer of its unique producer.  Any step with
        # several inputs (a join), several consumers (a fork source's
        # successors), or external-only inputs starts a new chain.  Chains
        # are the unit of branch-parallel scheduling; every cross-chain data
        # edge targets the *first* step of its chain (a continuation step
        # has, by construction, its single dependency inside its own chain),
        # which also makes chain ids topologically ordered.
        name_idx = {node.name: i for i, node in enumerate(compute)}
        node_deps: List[List[int]] = [
            sorted({name_idx[d] for d in node.inputs if d in name_idx})
            for node in compute
        ]
        succ_count = [0] * len(compute)
        for ds in node_deps:
            for i in ds:
                succ_count[i] += 1
        chain_of: List[int] = []
        n_chains = 0
        for ds in node_deps:
            if len(ds) == 1 and succ_count[ds[0]] == 1:
                chain_of.append(chain_of[ds[0]])
            else:
                chain_of.append(n_chains)
                n_chains += 1
        chain_deps: List[Set[int]] = [set() for _ in range(n_chains)]
        for j, ds in enumerate(node_deps):
            for i in ds:
                if chain_of[i] != chain_of[j]:
                    chain_deps[chain_of[j]].add(chain_of[i])
        # Steps reading each storage root (alias readers count against the
        # root): under parallel execution a buffer may be reused or rewritten
        # in place only when every reader lives in the reusing step's chain —
        # a reader in a concurrently runnable chain could still be looking.
        root_readers: Dict[str, List[int]] = {}
        for i, node in enumerate(compute):
            for dep in node.inputs:
                root_readers.setdefault(root[dep], []).append(i)

        restricted = self.parallel is not None
        pinned_buffers = 0

        def same_chain_readers(rname: str, c: int) -> bool:
            return all(chain_of[r] == c for r in root_readers.get(rname, ()))

        # Seed the pool with one scratch buffer sized for the largest im2col
        # column matrix in the plan, so every conv shares it instead of each
        # first-encountered geometry pinning its own.  Smaller is better: on
        # hosts with a large last-level cache the weights plus a tight
        # workspace can stay cache-resident across back-to-back runs.
        # (Serial plans only: concurrent chains must not share conv scratch.)
        if not restricted:
            max_cols = 0
            for node in compute:
                if node.op in ("conv2d", "fused_conv2d") and node.output is not None:
                    in_spec = specs.get(node.inputs[0])
                    if in_spec is None:
                        continue
                    kh, kw = _pair(node.attrs["kernel"])
                    _, _, ho, wo = node.output.shape
                    n = in_spec.shape[0]
                    max_cols = max(max_cols, n * in_spec.shape[1] * kh * kw * ho * wo)
            if max_cols:
                arena.release(arena.acquire(max_cols, np.float32))

        # External buffers are allocated once at full batch size and shared
        # by every sample slice (slice ``s`` binds the contiguous view of
        # its own samples).  Under sample slicing they are never released
        # and never stolen — another slice's steps still read them.
        ext_full: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        for ext, spec in full_specs.items():
            base = arena.acquire(spec.numel, _NUMPY_DTYPES[spec.dtype], waste_cap=4)
            view = base[:spec.numel].reshape(spec.shape)
            ext_full[ext] = (view, base)
            self._inputs[ext] = view

        chain_step_names: List[List[str]] = [[] for _ in range(n_chains)]
        inplace_steps = 0
        alias_steps = 0
        for s in range(slices):
            bound: Dict[str, np.ndarray] = {}
            owner: Dict[str, np.ndarray] = {}
            for ext, spec in external_specs.items():
                view, base = ext_full[ext]
                if sample_mode:
                    s0 = spec.shape[0]
                    bound[ext] = view[s * s0:(s + 1) * s0]
                else:
                    bound[ext] = view
                    owner[ext] = base
            chain_fns: List[List[Callable[[], None]]] = [[] for _ in range(n_chains)]
            chain_gates: List[Set[str]] = [set() for _ in range(n_chains)]
            steps: List[Tuple[str, Callable[[], None]]] = []
            step_gates: List[Set[str]] = []
            for idx, node in enumerate(compute):
                xs = [bound[dep] for dep in node.inputs]
                param_arrays = [self._params[p.name] for p in node.params]
                out_spec = specs[node.name]
                if not restricted:
                    region: Any = 0
                elif sample_mode:
                    region = (s, chain_of[idx])
                else:
                    region = chain_of[idx]
                alloc = _Alloc(arena, region=region)
                steal_ok = not restricted or same_chain_readers(
                    root[node.inputs[0]], chain_of[idx]
                ) if node.inputs else True

                if node.op in _ALIAS_OPS and (node.op == "dropout" or xs[0].flags.c_contiguous):
                    bound[node.name] = xs[0] if node.op == "dropout" else xs[0].reshape(
                        xs[0].shape[0], -1
                    )
                    alias_steps += 1
                else:
                    fn, out_view, out_base, inplace = self._compile_step(
                        node, xs, param_arrays, out_spec, alloc, root, last_use, idx,
                        owner, steal_ok,
                    )
                    alloc.release_scratch()
                    bound[node.name] = out_view
                    owner[node.name] = out_base
                    if inplace:
                        inplace_steps += 1
                    steps.append((node.name, fn))
                    chain_fns[chain_of[idx]].append(fn)
                    gates = {root[dep] for dep in node.inputs if root[dep] in ext_full}
                    step_gates.append(gates)
                    chain_gates[chain_of[idx]] |= gates
                    if s == 0:
                        chain_step_names[chain_of[idx]].append(node.name)

                for rname in deaths.get(idx, ()):
                    base = owner.pop(rname, None)
                    if base is None:
                        continue
                    if not restricted:
                        arena.release(base)
                    elif same_chain_readers(rname, chain_of[idx]):
                        # Safe reuse: every reader runs serially before any
                        # later step of this slice's chain; no other chain
                        # (and no other sample) can still be reading.
                        arena.release(base, region=region)
                    else:
                        pinned_buffers += 1  # readers span chains: keep it alive

            # Prune alias-only chains (they compile to no steps), folding
            # their dependencies into their successors so the chain DAG
            # stays closed.  Chain ids are topologically ordered, so one
            # forward pass suffices.  (Identical per slice by construction.)
            folded: List[Set[int]] = []
            for c in range(n_chains):
                deps_c: Set[int] = set()
                for d in chain_deps[c]:
                    if chain_fns[d]:
                        deps_c.add(d)
                    else:
                        deps_c |= folded[d]
                folded.append(deps_c)
            remap: Dict[int, int] = {}
            for c in range(n_chains):
                if chain_fns[c]:
                    remap[c] = len(remap)
            self._sample_chain_fns.append([chain_fns[c] for c in remap])
            self._sample_chain_deps.append(
                [{remap[d] for d in folded[c]} for c in remap])
            self._sample_chain_gates.append([chain_gates[c] for c in remap])
            self._sample_steps.append(steps)
            self._sample_step_gates.append(step_gates)
            self._sample_bound.append(bound)

        self.chain_info = ChainInfo(
            chains=tuple(tuple(names) for names in chain_step_names),
            chain_of={node.name: chain_of[i] for i, node in enumerate(compute)},
            chain_deps=tuple(frozenset(d) for d in chain_deps),
            node_index=dict(name_idx),
            roots=dict(root),
        )
        self.stats = PlanStats(
            steps=sum(len(steps) for steps in self._sample_steps),
            inplace_steps=inplace_steps,
            alias_steps=alias_steps,
            arena_bytes=arena.allocated_bytes,
            persistent_bytes=arena.persistent_bytes,
            buffers=arena.buffers,
            reuses=arena.reuses,
            chains=sum(len(c) for c in self._sample_chain_fns),
            pinned_buffers=pinned_buffers,
            sample_slices=slices,
        )

    def _compile_step(self, node: CNode, xs: List[np.ndarray],
                      param_arrays: List[np.ndarray], out_spec: TensorSpec,
                      alloc: _Alloc, root: Dict[str, str], last_use: Dict[str, int],
                      idx: int, owner: Dict[str, np.ndarray], steal_ok: bool = True,
                      ) -> Tuple[Callable[[], None], np.ndarray, np.ndarray, bool]:
        op = node.op
        attrs = node.attrs
        out_dtype = _NUMPY_DTYPES[out_spec.dtype]

        # conv2d self-allocates: the per-sample GEMMs write the tensor.
        if op in ("conv2d", "fused_conv2d"):
            fn, out_view, out_base = _compile_conv2d(
                node, xs[0], param_arrays, alloc, out_spec)
            if op == "fused_conv2d":
                fn = _chain(fn, *_compile_epilogue(
                    attrs.get("epilogue", ()), param_arrays[1:], out_view))
            return fn, out_view, out_base, False

        # Steal the dying first input's buffer for elementwise ops.  Under
        # parallel compilation the steal is additionally gated on every
        # reader of that buffer living in this step's chain (steal_ok).
        inplace = False
        out_view: np.ndarray | None = None
        out_base: np.ndarray | None = None
        if op in _INPLACE_OPS and steal_ok:
            d0 = node.inputs[0]
            r0 = root[d0]
            cand = xs[0]
            if (last_use.get(r0, -1) == idx and cand.shape == out_spec.shape
                    and cand.dtype == out_dtype and cand.flags.c_contiguous
                    and r0 in owner):
                out_view = cand
                out_base = owner.pop(r0)
                inplace = True
        if out_view is None:
            out_base = alloc.acquire(out_spec.numel, out_dtype, waste_cap=4)
            out_view = out_base[:out_spec.numel].reshape(out_spec.shape)

        if op in ("matmul", "fused_matmul"):
            fn = _compile_matmul(xs[0], param_arrays, out_view)
            if op == "fused_matmul":
                fn = _chain(fn, *_compile_epilogue(
                    attrs.get("epilogue", ()), param_arrays[1:], out_view))
        elif op in ("dwconv2d", "fused_dwconv2d"):
            fn = _compile_dwconv2d(node, xs[0], param_arrays, alloc, out_view)
            if op == "fused_dwconv2d":
                fn = _chain(fn, *_compile_epilogue(
                    attrs.get("epilogue", ()), param_arrays[1:], out_view))
        elif op == "maxpool2d":
            fn = _compile_maxpool(node, xs[0], alloc, out_view)
        elif op == "avgpool2d":
            fn = _compile_avgpool(node, xs[0], alloc, out_view)
        elif op == "global_avgpool":
            x = xs[0]

            def fn() -> None:
                np.mean(x, axis=(2, 3), keepdims=True, out=out_view)
        elif op == "add":
            a, b = xs

            def fn() -> None:
                np.add(a, b, out=out_view)
        elif op == "mul":
            a, b = xs

            def fn() -> None:
                np.multiply(a, b, out=out_view)
        elif op in ("bias_add", "relu", "sigmoid", "tanh", "batchnorm"):
            fn = _compile_elementwise(op, xs[0], param_arrays, attrs, out_view)
        elif op == "softmax":
            fn = _compile_softmax(node, xs[0], out_view)
        elif op == "concat":
            axis = int(attrs.get("axis", 1))
            ins = list(xs)

            def fn() -> None:
                np.concatenate(ins, axis=axis, out=out_view)
        elif op == "flatten":
            # Non-contiguous input (no alias possible): copy through reshape.
            x = xs[0]

            def fn() -> None:
                np.copyto(out_view, x.reshape(x.shape[0], -1))
        else:
            # lrn and any future op: naive kernel + copy-in.
            fn = _compile_fallback(node, xs, param_arrays, out_view)

        return fn, out_view, out_base, inplace

    # -- execution ----------------------------------------------------------

    def execute(self, externals: Dict[str, np.ndarray],
                keep: Iterable[str] = ()) -> Dict[str, np.ndarray]:
        """Run the compiled steps; returns copies of the result tensors.

        Results are copied out of the workspace so they stay valid across
        subsequent runs of the same plan.  A plan owns one workspace, so
        concurrent ``execute`` calls on the same plan serialize on a lock;
        inside one call, independent chains run on the shared thread pool
        when the plan was compiled with ``parallel.threads > 1``.
        """
        with self._exec_lock:
            for name, buf in self._inputs.items():
                np.copyto(buf, externals[name])
            keep_set = set(keep)
            self.last_intermediates = {}
            if keep_set:
                # keep= is a debug/inspection path: run serially so captured
                # intermediates snapshot at well-defined points.  Sample
                # slices run in sample order and kept tensors are stacked
                # back into full-batch arrays.
                if self.sample_mode:
                    # Snapshot kept tensors right after their producing step
                    # — the arena reuses their storage later in the slice.
                    kept: Dict[str, list] = {name: [] for name in keep_set}
                    for bound, steps in zip(self._sample_bound,
                                            self._sample_steps):
                        for name, fn in steps:
                            fn()
                            if name in keep_set:
                                kept[name].append(bound[name].copy())
                    for name, parts in kept.items():
                        if parts:
                            self.last_intermediates[name] = np.concatenate(
                                parts, axis=0)
                else:
                    for name, fn in self._sample_steps[0]:
                        fn()
                        if name in keep_set:
                            self.last_intermediates[name] = self._bound[name].copy()
            elif self._runner is not None:
                self._runner.run()
            else:
                for fn in self._fns:
                    fn()
            if self.sample_mode:
                # Stitch per-sample result views back into one batched array
                # (concatenate copies, so results stay valid across runs).
                return {
                    name: np.concatenate(
                        [b[name] for b in self._sample_bound], axis=0)
                    for name in self._result_names
                }
            return {name: self._bound[name].copy() for name in self._result_names}

    def begin_streaming(self) -> "PlanStream":
        """Begin an incremental run: feed externals as they arrive.

        Returns a :class:`PlanStream`; call ``feed(name, array)`` once per
        external in any order (typically transport arrival order) and
        ``finish()`` for the results.  Steps whose external inputs have all
        arrived start immediately, so tail compute overlaps with transport.
        """
        return PlanStream(self)


class PlanStream:
    """One in-flight streaming execution of a :class:`CompiledPlan`.

    Under a parallel compile the plan's chain DAG runs as a
    :class:`~repro.nn.parallel.GatedRun`: each chain is gated on the
    externals its steps read (root-resolved through aliases) and released
    as they are fed, so ready chains overlap with the arrival of later
    tensors.  Serial plans advance an in-order step cursor instead,
    stalling at the first step whose externals are not all fed — wire
    order is first-consumer order, so in practice the cursor chases the
    feed.  Either way the steps and their within-chain order are exactly
    :meth:`CompiledPlan.execute`'s, so results are bit-identical to a
    monolithic run with the same externals.

    The plan's workspace lock is held from construction until
    :meth:`finish` (or :meth:`abort` after a transport failure) — a stream
    is one occupancy of the plan, like one ``execute`` call stretched over
    the arrival window.
    """

    def __init__(self, plan: CompiledPlan) -> None:
        self._plan = plan
        self._pending: Set[str] = set(plan._inputs)
        self._fed: Set[str] = set()
        self._finished = False
        plan._exec_lock.acquire()
        plan.last_intermediates = {}
        self._gated = None
        self._serial: List[Tuple[Callable[[], None], Set[str]]] | None = None
        self._cursor = 0
        if plan._runner is not None:
            gates = [g for per in plan._sample_chain_gates for g in per]
            self._gated = plan._runner.begin(gates)
        else:
            self._serial = [
                (fn, gates)
                for steps, sgates in zip(plan._sample_steps, plan._sample_step_gates)
                for (_name, fn), gates in zip(steps, sgates)
            ]

    def feed(self, name: str, array: np.ndarray) -> None:
        """Deliver one external tensor; runs every step it unblocks."""
        if self._finished:
            raise RuntimeError("stream already finished")
        if name not in self._pending:
            raise ValueError(f"unknown or already-fed external {name!r}")
        buf = self._plan._inputs[name]
        if tuple(array.shape) != buf.shape:
            raise ValueError(
                f"external {name!r} has shape {array.shape}, expected {buf.shape}"
            )
        np.copyto(buf, array)
        self._pending.discard(name)
        self._fed.add(name)
        if self._gated is not None:
            self._gated.release(name)
        else:
            self._advance()

    def _advance(self) -> None:
        serial = self._serial
        while self._cursor < len(serial):
            fn, gates = serial[self._cursor]
            if gates - self._fed:
                return
            fn()
            self._cursor += 1

    def finish(self) -> Dict[str, np.ndarray]:
        """Wait for the remaining steps; returns copies of the results."""
        if self._finished:
            raise RuntimeError("stream already finished")
        self._finished = True
        try:
            if self._pending:
                raise ValueError(
                    f"stream missing externals {sorted(self._pending)}")
            if self._gated is not None:
                self._gated.finish()
            else:
                self._advance()
            plan = self._plan
            if plan.sample_mode:
                return {
                    name: np.concatenate(
                        [b[name] for b in plan._sample_bound], axis=0)
                    for name in plan._result_names
                }
            return {name: plan._bound[name].copy() for name in plan._result_names}
        finally:
            self._plan._exec_lock.release()

    def abort(self) -> None:
        """Abandon the stream (transport failure) and release the plan.

        Gated tasks are released with whatever (stale) bytes the unfed
        buffers hold and the DAG drained — harmless garbage arithmetic —
        because in-flight chains must not still be writing the workspace
        once the lock is handed back.  Idempotent; safe after ``finish``.
        """
        if self._finished:
            return
        self._finished = True
        try:
            if self._gated is not None:
                for name in list(self._pending):
                    self._gated.release(name)
                try:
                    self._gated.finish()
                except BaseException:
                    pass
        finally:
            self._plan._exec_lock.release()


class GraphPlan:
    """Compiled plan for a whole :class:`ComputationGraph`.

    Mirrors ``GraphExecutor.run`` semantics (same validation, same ``keep``
    contract) with compile-once / run-many performance.  ``batch=n`` runs
    ``n`` stacked samples per call (the input's leading axis is scaled).
    """

    def __init__(self, graph: ComputationGraph, seed: int = 0,
                 params: Dict[str, np.ndarray] | None = None,
                 batch: int = 1, parallel: ParallelConfig | None = None) -> None:
        graph.validate()
        self._graph = graph
        order = graph.topological_order()
        nodes = [graph.node(name) for name in order]
        self._params = params if params is not None else init_parameters(nodes, seed)
        self._core = CompiledPlan(
            name=graph.name,
            nodes=nodes,
            external_specs={graph.input_name: graph.input_spec},
            params=self._params,
            result_names=(graph.output_name,),
            batch=batch,
            parallel=parallel,
        )
        self._expected = _batched_spec(graph.input_spec, batch).shape
        self.last_intermediates: Dict[str, np.ndarray] = {}

    @property
    def params(self) -> Dict[str, np.ndarray]:
        return self._params

    @property
    def stats(self) -> PlanStats:
        return self._core.stats

    @property
    def batch(self) -> int:
        return self._core.batch

    @property
    def chain_info(self) -> ChainInfo | None:
        return self._core.chain_info

    def run(self, x: np.ndarray, keep: Iterable[str] = ()) -> np.ndarray:
        if tuple(x.shape) != self._expected:
            raise ValueError(f"input shape {x.shape} != expected {self._expected}")
        results = self._core.execute({self._graph.input_name: x}, keep)
        self.last_intermediates = self._core.last_intermediates
        return results[self._graph.output_name]


class SegmentPlan:
    """Compiled plan for one partition :class:`Segment`.

    The MakeTuple/Return scaffolding is compiled away — results are exposed
    keyed by producer name, exactly as ``SegmentExecutor.run`` returns them.
    """

    def __init__(self, segment: Segment, seed: int = 0,
                 params: Dict[str, np.ndarray] | None = None,
                 batch: int = 1, parallel: ParallelConfig | None = None) -> None:
        self._segment = segment
        self._params = params if params is not None else init_parameters(segment.nodes, seed)
        self._core = CompiledPlan(
            name=segment.name,
            nodes=segment.nodes,
            external_specs=dict(segment.boundary_inputs),
            params=self._params,
            result_names=segment.result_names,
            batch=batch,
            parallel=parallel,
        )
        self._expected = {
            name: _batched_spec(spec, batch).shape
            for name, spec in segment.boundary_inputs.items()
        }

    @property
    def params(self) -> Dict[str, np.ndarray]:
        return self._params

    @property
    def stats(self) -> PlanStats:
        return self._core.stats

    @property
    def batch(self) -> int:
        return self._core.batch

    @property
    def chain_info(self) -> ChainInfo | None:
        return self._core.chain_info

    def begin_streaming(self) -> PlanStream:
        """Feed boundary tensors one at a time as they arrive off the wire.

        Returns a :class:`PlanStream`: ``feed(name, array)`` each boundary
        tensor (shape-checked against the compiled batched spec), then
        ``finish()`` for the same producer-keyed results :meth:`run`
        returns — bit-identical to a monolithic ``run`` call.
        """
        return self._core.begin_streaming()

    def run(self, boundary: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        missing = set(self._segment.boundary_inputs) - set(boundary)
        if missing:
            raise ValueError(
                f"segment {self._segment.name!r} missing boundary tensors {sorted(missing)}"
            )
        for name, expected in self._expected.items():
            if tuple(boundary[name].shape) != expected:
                raise ValueError(
                    f"boundary tensor {name!r} has shape {boundary[name].shape}, expected {expected}"
                )
        return self._core.execute(
            {name: boundary[name] for name in self._segment.boundary_inputs}
        )
