"""Graph and segment executors over the NumPy kernels.

Weights are initialised deterministically from ``(seed, parameter name)``,
so the device and the server — which each hold a copy of the model file —
materialise *identical* parameters without shipping weights, exactly as the
paper assumes (both sides preload the DNN model file, §III-A).
"""

from __future__ import annotations

import zlib
from typing import Any, Dict, Iterable

import numpy as np

from repro.graph.graph import ComputationGraph
from repro.graph.node import CNode, Parameter
from repro.graph.partitioner import Segment
from repro.nn.kernels import KERNELS
from repro.nn.parallel import ParallelConfig, default_parallelism

#: Available execution backends: "naive" walks the env dict per call,
#: "planned" runs a compiled plan (see :mod:`repro.nn.plan`).
BACKENDS = ("naive", "planned")


def _check_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
    return backend


def _resolve_parallelism(backend: str,
                         parallelism: ParallelConfig | None) -> ParallelConfig | None:
    """Validate the parallelism knob against the backend.

    Only the planned backend can run parallel (chains and per-sample
    slices are properties of compiled plans); an explicit config on the
    naive backend is a user error, while the
    :envvar:`REPRO_PARALLEL_THREADS` default applies to planned executors
    only.  On a ``batch > 1`` planned executor the config additionally
    enables per-sample slicing (2-D sample × chain scheduling) unless
    ``sample_parallel=False``.
    """
    if parallelism is not None:
        if backend != "planned":
            raise ValueError(
                f"parallelism requires backend='planned', got backend={backend!r}"
            )
        return parallelism
    if backend == "planned":
        return default_parallelism()
    return None


def _param_rng(seed: int, name: str) -> np.random.Generator:
    return np.random.default_rng((seed & 0xFFFFFFFF) ^ zlib.crc32(name.encode()))


def _init_one(param: Parameter, seed: int) -> np.ndarray:
    rng = _param_rng(seed, param.name)
    shape = param.spec.shape
    if param.role == "weight":
        fan_in = int(np.prod(shape[1:])) if len(shape) > 1 else shape[0]
        scale = np.sqrt(2.0 / max(fan_in, 1))
        return (rng.standard_normal(shape) * scale).astype(np.float32)
    if param.role in ("bias", "beta", "mean"):
        return np.zeros(shape, dtype=np.float32) if param.role != "mean" else (
            rng.standard_normal(shape) * 0.01
        ).astype(np.float32)
    if param.role == "gamma":
        return np.ones(shape, dtype=np.float32)
    if param.role == "var":
        return np.ones(shape, dtype=np.float32) + (rng.random(shape) * 0.01).astype(np.float32)
    return rng.standard_normal(shape).astype(np.float32)


def graph_signature(graph: ComputationGraph) -> str:
    """Stable fingerprint of a graph's structure (names, ops, attrs).

    Used to key compiled-plan caches: two servers (or one server after a
    model swap) only share cache entries when the graphs really match.
    """
    parts = [graph.name, str(graph.input_spec.shape)]
    for name in graph.topological_order():
        node = graph.node(name)
        parts.append(f"{node.name}|{node.op}|{sorted(node.attrs.items())!r}")
    blob = "\n".join(parts).encode()
    return f"{graph.name}-{zlib.crc32(blob):08x}"


def init_parameters(nodes: Iterable[CNode], seed: int = 0) -> Dict[str, np.ndarray]:
    """Deterministic parameter arrays for the given nodes, keyed by name."""
    params: Dict[str, np.ndarray] = {}
    for node in nodes:
        for param in node.params:
            params[param.name] = _init_one(param, seed)
    return params


def _execute_node(node: CNode, env: Dict[str, Any], params: Dict[str, np.ndarray]) -> Any:
    kernel = KERNELS.get(node.op)
    if kernel is None:
        raise NotImplementedError(f"no NumPy kernel for op {node.op!r}")
    inputs = [env[name] for name in node.inputs]
    param_arrays = [params[p.name] for p in node.params]
    return kernel(inputs, param_arrays, node.attrs)


def _scale_batch(shape: tuple, batch: int) -> tuple:
    """Scale the leading (batch) axis of a spec shape by ``batch``."""
    if batch == 1:
        return tuple(shape)
    return (shape[0] * batch,) + tuple(shape[1:])


class GraphExecutor:
    """Executes a whole computation graph on NumPy arrays.

    ``batch=n`` accepts ``n`` stacked samples per call; every kernel is
    batch-generic, so the naive path just scales its shape validation.
    """

    def __init__(self, graph: ComputationGraph, seed: int = 0,
                 params: Dict[str, np.ndarray] | None = None,
                 backend: str = "naive", batch: int = 1,
                 parallelism: "ParallelConfig | None" = None) -> None:
        graph.validate()
        self._graph = graph
        self._order = graph.topological_order()
        self._params = params if params is not None else init_parameters(
            (graph.node(n) for n in self._order), seed
        )
        self._backend = _check_backend(backend)
        self._batch = int(batch)
        self._plan = None
        parallelism = _resolve_parallelism(backend, parallelism)
        self.parallelism = parallelism
        if backend == "planned":
            from repro.nn.plan import GraphPlan  # deferred: plan imports this module

            self._plan = GraphPlan(graph, seed=seed, params=self._params,
                                   batch=batch, parallel=parallelism)

    @property
    def params(self) -> Dict[str, np.ndarray]:
        return self._params

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def batch(self) -> int:
        return self._batch

    def run(self, x: np.ndarray, keep: Iterable[str] = ()) -> np.ndarray:
        """Run the graph on input ``x``; returns the output tensor.

        ``keep`` optionally names intermediate nodes whose values are stashed
        on :attr:`last_intermediates` for inspection.
        """
        if self._plan is not None:
            out = self._plan.run(x, keep=keep)
            self.last_intermediates = dict(self._plan.last_intermediates)
            return out
        expected = _scale_batch(self._graph.input_spec.shape, self._batch)
        if tuple(x.shape) != expected:
            raise ValueError(f"input shape {x.shape} != expected {expected}")
        env: Dict[str, Any] = {self._graph.input_name: x}
        keep_set = set(keep)
        self.last_intermediates: Dict[str, np.ndarray] = {}
        for name in self._order:
            env[name] = _execute_node(self._graph.node(name), env, self._params)
            if name in keep_set:
                self.last_intermediates[name] = env[name]
        return env[self._graph.output_name]


class SegmentExecutor:
    """Executes one partition segment given its boundary tensors.

    The synthesised MakeTuple/Return scaffolding is executed too, faithfully
    to the paper's Fig. 5 subgraphs; :meth:`run` returns the dict of tensors
    that leave the segment, keyed by producer name.
    """

    def __init__(self, segment: Segment, seed: int = 0,
                 params: Dict[str, np.ndarray] | None = None,
                 backend: str = "naive", batch: int = 1,
                 parallelism: "ParallelConfig | None" = None) -> None:
        self._segment = segment
        self._params = params if params is not None else init_parameters(segment.nodes, seed)
        self._backend = _check_backend(backend)
        self._batch = int(batch)
        self._plan = None
        parallelism = _resolve_parallelism(backend, parallelism)
        self.parallelism = parallelism
        if backend == "planned":
            from repro.nn.plan import SegmentPlan  # deferred: plan imports this module

            self._plan = SegmentPlan(segment, seed=seed, params=self._params,
                                     batch=batch, parallel=parallelism)

    @property
    def params(self) -> Dict[str, np.ndarray]:
        return self._params

    @property
    def backend(self) -> str:
        return self._backend

    @property
    def batch(self) -> int:
        return self._batch

    def run(self, boundary: Dict[str, np.ndarray]) -> Dict[str, np.ndarray]:
        if self._plan is not None:
            return self._plan.run(boundary)
        missing = set(self._segment.boundary_inputs) - set(boundary)
        if missing:
            raise ValueError(f"segment {self._segment.name!r} missing boundary tensors {sorted(missing)}")
        for name, spec in self._segment.boundary_inputs.items():
            expected = _scale_batch(spec.shape, self._batch)
            if tuple(boundary[name].shape) != expected:
                raise ValueError(
                    f"boundary tensor {name!r} has shape {boundary[name].shape}, expected {expected}"
                )
        env: Dict[str, Any] = dict(boundary)
        for node in self._segment.nodes:
            env[node.name] = _execute_node(node, env, self._params)
        # The Return node's value is a single array or a tuple; expose the
        # leaving tensors keyed by their producer names instead, which is what
        # the receiving side needs to resume execution.
        results: Dict[str, np.ndarray] = {}
        for name in self._segment.result_names:
            results[name] = env[name]
        return results
