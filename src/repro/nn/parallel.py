"""Branch-parallel plan execution: chains, thread pools, compile-once caches.

Branchy backbones (Inception modules, SqueezeNet fire modules, ResNet
residual blocks) contain DAG branches that are mutually independent between
join points.  The plan compiler (:mod:`repro.nn.plan`) slices its compiled
step list into such *chains* using the same dependency analysis that drives
its liveness pass; this module supplies the execution side:

- :class:`ParallelConfig` — the user-facing knob
  (``SystemConfig(parallelism=ParallelConfig(threads=...))``);
- :class:`ParallelPlanRunner` — runs ready chains on a persistent,
  process-shared :class:`~concurrent.futures.ThreadPoolExecutor`;
- :class:`SampleParallelRunner` — the 2-D (sample × chain) extension for
  batched plans: per-sample step slices are independent by construction,
  so their chain DAGs fold into one task graph on the same shared pool;
- :class:`CompileOnceCache` — a thread-safe build-once cache for compiled
  executors (the server's tail-plan cache is raced by parallel chains and
  the batching event loop).

Threads — not processes — are the right tool here because the hot kernels
(im2col copies into preallocated scratch, and above all the per-sample
GEMMs/GEMVs) release the GIL inside BLAS, so independent chains genuinely
overlap on multicore hosts while sharing one address space (the plan's
workspace arena, weights, and padded staging buffers need no pickling or
duplication).

Bit-identity is preserved by construction: chain slicing never changes
*what* a step computes or the order of steps *within* a chain — only the
interleaving of steps across independent chains, and no step reads a
tensor produced by a concurrently runnable chain (that is exactly the
dependency cut the slicer makes).  The arena gives concurrently live
intermediates chain-private regions, so no two simultaneously running
steps ever share scratch storage.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import (
    Callable, Collection, Dict, Hashable, List, Sequence, Set, TypeVar,
)

__all__ = [
    "PARALLEL_THREADS_ENV",
    "CompileOnceCache",
    "GatedRun",
    "ParallelConfig",
    "ParallelPlanRunner",
    "SampleParallelRunner",
    "default_parallelism",
    "shared_pool",
]

#: Environment switch: default thread count for planned executors that were
#: not given an explicit :class:`ParallelConfig` (used by CI to push the
#: whole tier-1 suite through the branch-parallel path).
PARALLEL_THREADS_ENV = "REPRO_PARALLEL_THREADS"


@dataclass(frozen=True)
class ParallelConfig:
    """Opt-in branch-parallel execution of compiled plans.

    ``threads`` is the worker count of the shared chain pool.  ``threads=1``
    keeps execution on the calling thread (chain slicing still happens and
    is observable in :class:`~repro.nn.plan.PlanStats`, but scheduling is
    serial) — useful as the control arm of differential tests.

    ``sample_parallel`` extends the chain scheduler to the batch axis:
    plans compiled for ``batch > 1`` with ``threads > 1`` slice into
    **per-sample** step lists (every kernel in the planned backend reduces
    strictly within one sample, so samples are independent by
    construction) and the scheduler runs (sample, chain) tasks on the same
    shared pool — 2-D scheduling bounded by one worker budget.  With
    ``threads=1`` the fused batched compile is kept (per-sample kernel
    granularity costs overhead that only pays off when samples overlap).
    ``sample_parallel=False`` keeps batched plans on the single
    chain-sliced step list over the whole batch, the control arm of the
    per-sample differential tests.
    """

    threads: int = 2
    sample_parallel: bool = True

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise ValueError(f"threads must be >= 1, got {self.threads}")


def default_parallelism() -> ParallelConfig | None:
    """The :envvar:`REPRO_PARALLEL_THREADS` default, or None when unset."""
    raw = os.environ.get(PARALLEL_THREADS_ENV, "")
    if raw in ("", "0"):
        return None
    try:
        threads = int(raw)
    except ValueError:
        raise ValueError(
            f"{PARALLEL_THREADS_ENV} must be an integer, got {raw!r}"
        ) from None
    return ParallelConfig(threads=threads)


# ---------------------------------------------------------------------------
# persistent thread pools
# ---------------------------------------------------------------------------

_POOLS: Dict[int, ThreadPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def shared_pool(threads: int) -> ThreadPoolExecutor:
    """The process-wide chain pool for ``threads`` workers.

    Pools are persistent (created once, reused by every plan compiled with
    the same thread count) so repeated ``run`` calls never pay thread
    startup, and a fleet of executors does not multiply OS threads.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    with _POOLS_LOCK:
        pool = _POOLS.get(threads)
        if pool is None:
            pool = ThreadPoolExecutor(
                max_workers=threads, thread_name_prefix=f"repro-chains-{threads}"
            )
            _POOLS[threads] = pool
        return pool


# ---------------------------------------------------------------------------
# the chain runner
# ---------------------------------------------------------------------------


class ParallelPlanRunner:
    """Executes a plan's chains on the shared pool, respecting chain deps.

    ``chains`` is a list of step sequences (zero-arg callables, already
    bound over their buffers); ``chain_deps[c]`` names the chains that must
    finish before chain ``c`` may start.  One ``run()`` call schedules every
    dependency-free chain immediately and releases successors as their
    predecessors complete; it returns when all chains have finished.

    A runner instance belongs to one plan and must not be entered
    concurrently — the plan's workspace is single-occupancy (callers hold
    the plan's execution lock).  Plans must also not nest parallel plans
    inside chain steps: the pool is shared, and nesting could exhaust it.
    """

    def __init__(self, chains: Sequence[Sequence[Callable[[], None]]],
                 chain_deps: Sequence[Set[int]], threads: int) -> None:
        if len(chain_deps) != len(chains):
            raise ValueError("chain_deps must match chains one-to-one")
        self._chains = [list(steps) for steps in chains]
        self._deps = [frozenset(d) for d in chain_deps]
        for c, deps in enumerate(self._deps):
            bad = [d for d in deps if not 0 <= d < len(chains) or d == c]
            if bad:
                raise ValueError(f"chain {c} has invalid dependencies {bad}")
        self._succs: List[List[int]] = [[] for _ in chains]
        for c, deps in enumerate(self._deps):
            for d in deps:
                self._succs[d].append(c)
        self.threads = threads
        self._pool = shared_pool(threads)

    def run(self) -> None:
        """Run every chain once; raises the first chain failure, if any."""
        self.begin().finish()

    def begin(self, chain_gates: Sequence[Collection[str]] | None = None
              ) -> "GatedRun":
        """Start one gated execution of the chain DAG.

        ``chain_gates[c]`` names the external *gates* task ``c`` must wait
        for (on top of its chain dependencies); the caller releases them
        one by one via :meth:`GatedRun.release` as, e.g., boundary tensors
        arrive over a streaming transport, and collects completion with
        :meth:`GatedRun.finish`.  ``None`` gates nothing — dependency-free
        chains are submitted immediately, which is exactly :meth:`run`.
        """
        return GatedRun(self, chain_gates)


class GatedRun:
    """One in-flight execution of a runner's chain DAG, with release gates.

    Task ``c`` becomes ready when its chain dependencies have finished
    *and* every gate name in its ``chain_gates[c]`` has been
    :meth:`release`-d.  Gates are how a streaming transport starts tail
    chains as their boundary tensors arrive: gating only delays task
    starts — it never changes a step's work or within-chain order, so
    results stay bit-identical to an ungated run.

    Instances are single-use (one ``finish`` per ``begin``) and must only
    be released/finished by the thread(s) owning the plan's workspace.
    """

    def __init__(self, runner: ParallelPlanRunner,
                 chain_gates: Sequence[Collection[str]] | None = None) -> None:
        n = len(runner._chains)
        if chain_gates is None:
            chain_gates = [()] * n
        if len(chain_gates) != n:
            raise ValueError("chain_gates must match chains one-to-one")
        self._runner = runner
        self._lock = threading.Lock()
        self._done = threading.Event()
        self._remaining = [len(d) for d in runner._deps]
        self._waiters: Dict[str, List[int]] = {}
        for c, gates in enumerate(chain_gates):
            for g in set(gates):
                self._remaining[c] += 1
                self._waiters.setdefault(g, []).append(c)
        self._pending_gates: Set[str] = set(self._waiters)
        self._state: Dict[str, object] = {"left": n, "error": None, "futures": []}
        if n == 0:
            self._done.set()
            return
        for c in range(n):
            if self._remaining[c] == 0:
                self._submit(c)

    def _submit(self, c: int) -> None:
        state = self._state
        with self._lock:
            if state["error"] is not None:
                return
            state["futures"].append(self._runner._pool.submit(self._run_chain, c))

    def _run_chain(self, c: int) -> None:
        state = self._state
        try:
            for fn in self._runner._chains[c]:
                fn()
        except BaseException as exc:  # propagate to finish()
            with self._lock:
                if state["error"] is None:
                    state["error"] = exc
            self._done.set()
            return
        ready = []
        with self._lock:
            state["left"] -= 1
            for s in self._runner._succs[c]:
                self._remaining[s] -= 1
                if self._remaining[s] == 0:
                    ready.append(s)
            if state["left"] == 0:
                self._done.set()
        for s in ready:
            self._submit(s)

    def release(self, name: str) -> None:
        """Release every task gated on ``name`` (unknown names are no-ops)."""
        ready = []
        with self._lock:
            self._pending_gates.discard(name)
            for c in self._waiters.pop(name, ()):
                self._remaining[c] -= 1
                if self._remaining[c] == 0:
                    ready.append(c)
        for c in ready:
            self._submit(c)

    def finish(self) -> None:
        """Wait for every task to finish; re-raises the first chain failure."""
        with self._lock:
            pending = sorted(self._pending_gates)
            error = self._state["error"]
        if pending and error is None:
            # Waiting would deadlock: gated tasks can never become ready.
            raise RuntimeError(f"gated run finished with unreleased gates {pending}")
        self._done.wait()
        state = self._state
        if state["error"] is not None:
            # Let in-flight chains drain before handing the (now possibly
            # inconsistent) workspace back — a later run recompiles nothing
            # but must not race stragglers.
            with self._lock:
                futures = list(state["futures"])
            for fut in futures:
                fut.exception()
            raise state["error"]


class SampleParallelRunner(ParallelPlanRunner):
    """2-D (sample × chain) scheduler for batched plans.

    A batched plan compiled with ``sample_parallel`` holds one chain-sliced
    step list **per sample**; the sample copies are mutually independent by
    construction (every planned kernel reduces strictly within a sample and
    each sample allocates from its own ``(sample, chain)`` arena regions).
    This runner folds the per-sample chain DAGs into one task graph — chain
    ``c`` of sample ``s`` becomes task ``s * chains_per_sample + c``, with
    dependencies only inside its own sample — and schedules it on the same
    shared pool as plain chain parallelism, so one worker budget bounds
    both axes and a branchy batched plan overlaps samples *and* branches.
    """

    def __init__(self, sample_chains: Sequence[Sequence[Sequence[Callable[[], None]]]],
                 sample_deps: Sequence[Sequence[Set[int]]], threads: int) -> None:
        if len(sample_chains) != len(sample_deps):
            raise ValueError("sample_chains must match sample_deps one-to-one")
        if not sample_chains:
            raise ValueError("need at least one sample")
        chains: List[Sequence[Callable[[], None]]] = []
        deps: List[Set[int]] = []
        for per_chain, per_deps in zip(sample_chains, sample_deps):
            offset = len(chains)
            chains.extend(per_chain)
            deps.extend({offset + d for d in ds} for ds in per_deps)
        super().__init__(chains, deps, threads)
        self.samples = len(sample_chains)


# ---------------------------------------------------------------------------
# thread-safe compile-once cache
# ---------------------------------------------------------------------------

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class _Cell:
    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value = None
        self.error: BaseException | None = None


class CompileOnceCache:
    """Keyed build-once cache safe under concurrent lookups.

    Exactly one caller per key runs the factory; every other caller blocks
    until the build finishes and then shares the same object (torn state is
    impossible: the key is published before the build, the value only
    after).  A failed build propagates its exception to all waiters and
    evicts the key so a later call may retry.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._cells: Dict[Hashable, _Cell] = {}
        self.builds = 0
        self.hits = 0

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        with self._lock:
            cell = self._cells.get(key)
            if cell is None:
                cell = _Cell()
                self._cells[key] = cell
                builder = True
                self.builds += 1
            else:
                builder = False
                self.hits += 1
        if not builder:
            cell.event.wait()
            if cell.error is not None:
                raise cell.error
            return cell.value
        try:
            cell.value = factory()
        except BaseException as exc:
            cell.error = exc
            with self._lock:
                # Evict so the next caller can retry a transient failure.
                if self._cells.get(key) is cell:
                    del self._cells[key]
            cell.event.set()
            raise
        cell.event.set()
        return cell.value

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            cell = self._cells.get(key)
        return cell is not None and cell.event.is_set() and cell.error is None

    def __len__(self) -> int:
        with self._lock:
            return len(self._cells)

    def clear(self) -> None:
        with self._lock:
            self._cells.clear()
