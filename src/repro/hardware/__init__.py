"""Hardware simulation: the testbed of Table IV, in software.

The paper measures latencies on a Raspberry Pi 4 (user-end device) and a
Xeon + Tesla T4 edge server.  Neither is available here, so this package
provides calibrated parametric cost models that play the role of the
physical hardware:

- :class:`~repro.hardware.device_model.DeviceModel` — per-node CPU execution
  times on the Pi-class device (compute + memory traffic + cache effects).
- :class:`~repro.hardware.gpu_model.GpuModel` — per-kernel service times on
  the T4-class GPU at zero background load.
- :class:`~repro.hardware.gpu_scheduler.GpuScheduler` — a time-sliced,
  kernel-granularity queueing simulator; GPU kernels are non-preemptive, so
  contention with background tasks appears *between* kernels, which is
  exactly the effect §III-C of the paper builds on.
- :mod:`~repro.hardware.background` — background-load levels and time
  schedules (30%..100%(l), 100%(h)) mirroring the paper's load generator.

Every model exposes noiseless ``mean_*`` methods (used by tests and for
calibration) and stochastic ``sample_*`` methods (used by the runtime).
"""

from repro.hardware.background import (
    LOAD_LEVELS,
    LoadLevel,
    LoadSchedule,
    fig2_levels,
    fig9_schedule,
)
from repro.hardware.device_model import DeviceModel, DeviceParams
from repro.hardware.energy import (
    EnergyParams,
    energy_decision,
    energy_of_partition,
    weighted_decision,
)
from repro.hardware.gpu_model import GpuModel, GpuParams
from repro.hardware.gpu_scheduler import GpuScheduler
from repro.hardware.specs import DEVICE_SPEC, EDGE_SERVER_SPEC, GPU_TIME_SLICE_S, HardwareSpec

__all__ = [
    "DEVICE_SPEC",
    "DeviceModel",
    "DeviceParams",
    "EnergyParams",
    "energy_decision",
    "energy_of_partition",
    "weighted_decision",
    "EDGE_SERVER_SPEC",
    "GPU_TIME_SLICE_S",
    "GpuModel",
    "GpuParams",
    "GpuScheduler",
    "HardwareSpec",
    "LOAD_LEVELS",
    "LoadLevel",
    "LoadSchedule",
    "fig2_levels",
    "fig9_schedule",
]
