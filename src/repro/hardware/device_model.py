"""Cost model of the user-end device (Raspberry Pi 4 class CPU).

The model produces the per-node "ground truth" execution times that the
paper obtains by measuring a physical Pi.  It is parametric and calibrated
against the absolute numbers the paper states explicitly:

- VGG16 local inference ~5.2 s, with the prefix up to its earliest viable
  partition point ~4.88 s (§V-B),
- Xception local inference ~1.8 s (§V-C),
- AlexNet local inference a few hundred ms (Figs. 1 and 7),
- ResNet18 local inference just under its 8 Mbps full-offload latency, so
  that local wins at 8 Mbps and full offloading wins at 16 Mbps (§V-B).

Structure per node::

    t = flops / (R_cat * eff) + traffic / BW_mem + setup + overhead

where ``eff`` captures real Cortex-A72 effects that a linear model cannot
fully express:

- few-channel convolutions vectorise poorly
  (``c_in / (c_in + c_half)``),
- working sets larger than the cache spill to LPDDR4
  (``1 / (1 + working_set / ws_half)``) — this is what makes VGG16's
  huge early feature maps so slow on the device,
- optionally, small output maps starve the cores of parallel work
  (``hw_out / (hw_out + hw_half)``; disabled by default with
  ``hw_half = 0``),

and ``setup`` is a per-convolution-kernel fixed cost (im2col buffers,
weight repacking, thread fork/join) that amortises away for large kernels:
``setup = C * F_half / (flops + F_half)``.  This is why networks made of
many tiny convolutions (SqueezeNet) run far below peak on the device while
AlexNet/VGG do not.  Fully-connected layers additionally stream their
weights from memory (``param_bytes / BW_mem``), which is what makes
AlexNet's FC block worth offloading (the p=8 -> 19 -> 27 trajectory of
Fig. 6).

These nonlinearities (plus lognormal measurement noise) are what make the
*device* conv prediction model the least accurate entry of Table III, as in
the paper (MAPE ~40%).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.graph.ops import FUSED_ANCHOR_CATEGORY
from repro.profiling.features import NodeProfile


def lognormal_factor(rng: np.random.Generator, sigma: float) -> float:
    """Multiplicative measurement noise with mean 1."""
    if sigma <= 0:
        return 1.0
    return float(rng.lognormal(mean=-0.5 * sigma * sigma, sigma=sigma))


@dataclass(frozen=True)
class DeviceParams:
    """Tunable constants of the device cost model (SI units: s, bytes, FLOP/s)."""

    conv_rate: float = 5.6e9           # peak effective conv FLOP/s
    conv_c_half: float = 3.0           # few-channel inefficiency knee
    conv_ws_half: float = 8.0e6        # cache-spill knee (bytes of working set)
    conv_hw_half: float = 0.0          # small-output-map knee (0 = disabled)
    conv_setup: float = 8.0e-3         # per-conv-kernel setup cost ceiling
    conv_setup_half_flops: float = 10.0e6  # setup amortisation knee
    pointwise_ws_discount: float = 0.3  # 1x1 convs stream; reduced cache cost
    dwconv_rate: float = 1.6e9         # depth-wise conv is memory bound on CPU
    matmul_rate: float = 1.5e9
    pool_rate: float = 3.0e9
    elementwise_rate: float = 6.0e9
    mem_bandwidth: float = 3.5e9       # effective LPDDR4 stream bandwidth, B/s
    node_overhead: float = 0.05e-3     # framework dispatch overhead per node
    im2col_traffic_factor: float = 0.25
    noise_sigma: float = 0.04


class DeviceModel:
    """Per-node execution-time model for the user-end device."""

    def __init__(self, params: DeviceParams | None = None) -> None:
        self.params = params or DeviceParams()

    # -- internals -----------------------------------------------------------

    def _conv_eff(self, profile: NodeProfile) -> float:
        p = self.params
        working_set = profile.input_bytes + profile.output_bytes
        if profile.k_h * profile.k_w == 1:
            # Pointwise (1x1) convolutions are plain GEMMs over pixels: they
            # stream memory linearly with no im2col blow-up, so the cache
            # penalty is much milder (Xception/ResNet bottlenecks).
            working_set *= p.pointwise_ws_discount
        channel_eff = profile.c_in / (profile.c_in + p.conv_c_half)
        cache_eff = 1.0 / (1.0 + working_set / p.conv_ws_half)
        hw_out = profile.h_out * profile.w_out
        parallel_eff = hw_out / (hw_out + p.conv_hw_half) if p.conv_hw_half > 0 else 1.0
        return channel_eff * cache_eff * parallel_eff

    def _conv_setup(self, anchor_flops: float) -> float:
        p = self.params
        return p.conv_setup * p.conv_setup_half_flops / (anchor_flops + p.conv_setup_half_flops)

    def _traffic_bytes(self, profile: NodeProfile) -> float:
        p = self.params
        if profile.category in ("conv", "dwconv", "conv_fused", "dwconv_fused"):
            reuse = (profile.k_h * profile.k_w) * p.im2col_traffic_factor
            return profile.input_bytes * reuse + profile.output_bytes + profile.param_bytes
        return profile.input_bytes + profile.output_bytes + profile.param_bytes

    # -- public API ------------------------------------------------------------

    def mean_time(self, profile: NodeProfile) -> float:
        """Noiseless execution time of one node, in seconds.

        Fused kernels (§VI extension) cost their anchor plus a nearly-free
        epilogue: the absorbed element-wise ops reuse registers instead of
        making extra memory passes, which is exactly the fusion benefit
        frameworks chase.
        """
        p = self.params
        category = profile.category
        if category is None:
            return 0.0
        anchor_flops = profile.anchor_flops
        anchor = FUSED_ANCHOR_CATEGORY.get(category, category)
        if anchor == "conv":
            compute = anchor_flops / (p.conv_rate * self._conv_eff(profile))
            compute += self._conv_setup(anchor_flops)
        elif anchor == "dwconv":
            compute = anchor_flops / p.dwconv_rate
        elif anchor == "matmul":
            compute = anchor_flops / p.matmul_rate
        elif anchor == "pooling":
            compute = anchor_flops / p.pool_rate
        else:  # bias_add, elementwise, batchnorm, activation
            compute = anchor_flops / p.elementwise_rate
        # Epilogue of a fused kernel: compute only, no extra memory traffic.
        compute += (profile.flops - anchor_flops) / p.elementwise_rate
        memory = self._traffic_bytes(profile) / p.mem_bandwidth
        return compute + memory + p.node_overhead

    def sample_time(self, profile: NodeProfile, rng: np.random.Generator) -> float:
        """One noisy measurement of the node's execution time."""
        return self.mean_time(profile) * lognormal_factor(rng, self.params.noise_sigma)

    def mean_graph_time(self, profiles: Iterable[NodeProfile]) -> float:
        """Noiseless local-inference time of a whole graph (or prefix)."""
        return sum(self.mean_time(p) for p in profiles)

    def sample_graph_time(self, profiles: Iterable[NodeProfile], rng: np.random.Generator) -> float:
        return sum(self.sample_time(p, rng) for p in profiles)
