"""Hardware specifications of the paper's testbed (Table IV)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

#: GPU scheduling quantum assumed by the paper (§III-C mentions ~2 ms time
#: slices on a time-multiplexed GPU).
GPU_TIME_SLICE_S = 0.002


@dataclass(frozen=True)
class HardwareSpec:
    """One row of Table IV."""

    name: str
    system: str
    cpu: str
    cpu_cores: int
    cpu_ghz: float
    memory: str
    disk: str
    gpu: str


EDGE_SERVER_SPEC = HardwareSpec(
    name="edge-server",
    system="Supermicro SYS-7049GP-TRT",
    cpu="2x Intel Xeon Gold 6230R, 26C52T",
    cpu_cores=52,
    cpu_ghz=2.10,
    memory="4x 64GB DDR4 3200MHz",
    disk="2x 1T SSD + 2x 8T HDD",
    gpu="NVIDIA Tesla T4 16GB",
)

DEVICE_SPEC = HardwareSpec(
    name="user-end-device",
    system="Raspberry Pi 4 Model B",
    cpu="ARM Cortex A72",
    cpu_cores=4,
    cpu_ghz=1.50,
    memory="4GB LPDDR4 1600MHz",
    disk="16GB microSD card",
    gpu="N/A",
)


def table4_rows() -> Tuple[HardwareSpec, HardwareSpec]:
    """The two columns of Table IV (edge server, user-end device)."""
    return (EDGE_SERVER_SPEC, DEVICE_SPEC)
