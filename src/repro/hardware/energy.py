"""Device energy model and energy-aware partitioning.

Neurosurgeon (the paper's baseline) optimises mobile *energy* as well as
latency; LoADPart's objective is latency-only.  This extension adds the
energy dimension so the two objectives can be compared on the same
machinery.  Billed to the device (the battery-powered side):

- CPU energy for the head segment: ``P_cpu * device_time``,
- radio energy for the upload/download: ``P_tx * upload_time`` and
  ``P_rx * download_time``,
- idle energy while waiting for the server: ``P_idle * server_time``.

The total has exactly the structure of Problem (1) with per-term scaling,
so the O(n) Algorithm-1 scan solves the energy and weighted
(latency + lambda * energy) objectives too — see
:func:`energy_decision` and :func:`weighted_decision`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.partition_algorithm import PartitionDecision, partition_decision


@dataclass(frozen=True)
class EnergyParams:
    """Power draw of a Raspberry-Pi-class device, in watts.

    Defaults follow published Pi 4 measurements: ~2.7 W idle, ~6.4 W under
    full CPU load (so ~3.7 W of *active* compute power), and WiFi radio
    around 1.3 W transmitting / 0.9 W receiving above idle.
    """

    cpu_active_w: float = 3.7
    idle_w: float = 2.7
    radio_tx_w: float = 1.3
    radio_rx_w: float = 0.9

    def __post_init__(self) -> None:
        if min(self.cpu_active_w, self.idle_w, self.radio_tx_w, self.radio_rx_w) < 0:
            raise ValueError("power draws must be non-negative")


def energy_of_partition(
    point: int,
    device_times: Sequence[float],
    edge_times: Sequence[float],
    sizes: Sequence[int],
    bandwidth_up: float,
    k: float = 1.0,
    params: EnergyParams | None = None,
) -> float:
    """Device-side energy (J) of one partition choice."""
    p = params or EnergyParams()
    n = len(device_times)
    compute = float(np.sum(device_times[:point])) * p.cpu_active_w
    if point == n:
        return compute
    upload = sizes[point] * 8 / bandwidth_up
    waiting = k * float(np.sum(edge_times[point:]))
    return compute + upload * p.radio_tx_w + waiting * p.idle_w


def energy_decision(
    device_times: Sequence[float],
    edge_times: Sequence[float],
    sizes: Sequence[int],
    bandwidth_up: float,
    k: float = 1.0,
    params: EnergyParams | None = None,
) -> PartitionDecision:
    """Minimise device energy instead of latency.

    Reuses Algorithm 1 verbatim: scaling the device times by ``P_cpu``,
    the server times by ``P_idle`` and the bandwidth by ``1 / P_tx`` turns
    the latency objective into the energy objective, term by term.
    """
    p = params or EnergyParams()
    device = np.asarray(device_times) * p.cpu_active_w
    edge = np.asarray(edge_times) * p.idle_w
    bandwidth = bandwidth_up / p.radio_tx_w if p.radio_tx_w > 0 else bandwidth_up * 1e12
    return partition_decision(device, edge, sizes, bandwidth, k=k)


def weighted_decision(
    device_times: Sequence[float],
    edge_times: Sequence[float],
    sizes: Sequence[int],
    bandwidth_up: float,
    k: float = 1.0,
    energy_weight: float = 0.5,
    params: EnergyParams | None = None,
) -> PartitionDecision:
    """Minimise ``latency + energy_weight * energy`` (J weighted into s).

    ``energy_weight`` is in seconds per joule; 0 recovers pure latency.
    """
    if energy_weight < 0:
        raise ValueError("energy_weight must be non-negative")
    p = params or EnergyParams()
    device = np.asarray(device_times) * (1.0 + energy_weight * p.cpu_active_w)
    edge = np.asarray(edge_times) * (1.0 + energy_weight * p.idle_w)
    bandwidth = bandwidth_up / (1.0 + energy_weight * p.radio_tx_w)
    return partition_decision(device, edge, sizes, bandwidth, k=k)
