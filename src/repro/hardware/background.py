"""Background computation-load levels and time schedules (paper §II, §V-C).

The paper generates six GPU-load levels by running 7 processes of periodic
AlexNet inference (30%..100%(l) utilisation) and an extreme level 100%(h)
by running ResNet152 every microsecond in 7 processes.  100%(l) and
100%(h) share the same *utilisation* but differ in the depth of the kernel
queue, hence in how long a foreground task waits at each scheduling point.

A :class:`LoadLevel` condenses a regime into the contention parameters the
:class:`~repro.hardware.gpu_scheduler.GpuScheduler` consumes; a
:class:`LoadSchedule` is a step function of time used by the Fig. 9
experiments.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


@dataclass(frozen=True)
class LoadLevel:
    """Contention parameters of one background-load regime.

    ``utilization`` is what the server's GPU monitor reads (the watchdog
    threshold of §IV compares against it).  ``contend_prob`` is the chance
    that a background kernel occupies the GPU at a foreground kernel
    boundary; ``wait_mean_s``/``wait_cv`` parameterise the (lognormal) wait
    duration; ``initial_wait_s`` is the mean queueing delay before the first
    foreground kernel of a request is scheduled.
    """

    name: str
    utilization: float
    contend_prob: float
    wait_mean_s: float
    wait_cv: float
    initial_wait_s: float

    @property
    def is_saturated(self) -> bool:
        return self.utilization >= 1.0


IDLE = LoadLevel("0%", 0.0, 0.0, 0.0, 0.0, 0.0)
U30 = LoadLevel("30%", 0.30, 0.036, 0.15e-3, 1.0, 0.05e-3)
U50 = LoadLevel("50%", 0.50, 0.060, 0.15e-3, 1.0, 0.08e-3)
U70 = LoadLevel("70%", 0.70, 0.084, 0.20e-3, 1.0, 0.15e-3)
U90 = LoadLevel("90%", 0.90, 0.110, 0.30e-3, 1.2, 0.50e-3)
U100L = LoadLevel("100%(l)", 1.00, 0.55, 0.8e-3, 1.2, 2.0e-3)
U100H = LoadLevel("100%(h)", 1.00, 0.85, 6.0e-3, 1.5, 8.0e-3)

#: All named levels, keyed by their paper name.
LOAD_LEVELS: Dict[str, LoadLevel] = {
    level.name: level
    for level in (IDLE, U30, U50, U70, U90, U100L, U100H)
}


def fig2_levels() -> List[LoadLevel]:
    """The six levels of Fig. 2 (30% .. 100%(l), 100%(h))."""
    return [U30, U50, U70, U90, U100L, U100H]


class LoadSchedule:
    """A step function mapping simulation time to a :class:`LoadLevel`."""

    def __init__(self, steps: Sequence[Tuple[float, LoadLevel]]) -> None:
        if not steps:
            raise ValueError("LoadSchedule needs at least one step")
        starts = [t for t, _ in steps]
        if starts != sorted(starts):
            raise ValueError("LoadSchedule steps must be sorted by start time")
        if starts[0] != 0.0:
            raise ValueError("LoadSchedule must start at t=0")
        self._starts = starts
        self._levels = [level for _, level in steps]

    def level_at(self, t: float) -> LoadLevel:
        idx = bisect.bisect_right(self._starts, t) - 1
        return self._levels[max(idx, 0)]

    @property
    def steps(self) -> List[Tuple[float, LoadLevel]]:
        return list(zip(self._starts, self._levels))

    @property
    def end_of_last_step(self) -> float:
        return self._starts[-1]


def fig9_schedule() -> LoadSchedule:
    """The load trajectory of the Fig. 9 experiments.

    Utilisation ramps 0% -> 100%(l) -> 100%(h) and back to idle, mirroring
    the paper's description ("we generate the background GPU utilization
    from 0% to 100%(l) and then from 100%(l) to 100%(h)"); the final drop
    exercises the GPU-watchdog recovery path (the SqueezeNet shift from
    p=99 back to a mid-network point around 220 s).
    """
    return LoadSchedule(
        [
            (0.0, IDLE),
            (40.0, U50),
            (70.0, U90),
            (100.0, U100L),
            (150.0, U100H),
            (220.0, IDLE),
        ]
    )
