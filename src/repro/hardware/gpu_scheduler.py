"""Time-sliced GPU contention simulator.

Models the effect §III-C of the paper describes: GPU kernels are
non-preemptive, so a *single* short kernel usually completes within its
time slice unaffected, but a partition made of many kernels yields the GPU
between kernels, where background work can (and under saturation, will)
jump in.  The simulator therefore charges waiting time

- before the first kernel, with probability ``utilization**2`` (the GPU must
  be busy *and* mid-kernel when the request arrives; a single tiny kernel is
  therefore usually scheduled immediately, as §III-C observes),
- at any kernel boundary after the first with probability ``contend_prob``,
- and whenever the foreground's time-slice budget is exhausted (forced
  yield).

Waits are lognormal with the level's mean and coefficient of variation:
the heavy tail under 100%(h) is what produces the large latency variance of
Fig. 2 and the fluctuating traces of Fig. 9.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.hardware.background import IDLE, LoadLevel
from repro.hardware.specs import GPU_TIME_SLICE_S


def _lognormal(rng: np.random.Generator, mean: float, cv: float) -> float:
    """Sample a lognormal with the given mean and coefficient of variation."""
    if mean <= 0:
        return 0.0
    if cv <= 0:
        return mean
    sigma2 = math.log(1.0 + cv * cv)
    mu = math.log(mean) - 0.5 * sigma2
    return float(rng.lognormal(mean=mu, sigma=math.sqrt(sigma2)))


class GpuScheduler:
    """Executes foreground kernel sequences under a background-load level."""

    def __init__(self, time_slice_s: float = GPU_TIME_SLICE_S) -> None:
        if time_slice_s <= 0:
            raise ValueError("time slice must be positive")
        self.time_slice_s = time_slice_s

    def execute(
        self,
        kernel_times: Sequence[float],
        level: LoadLevel = IDLE,
        rng: np.random.Generator | None = None,
    ) -> float:
        """Total time to run ``kernel_times`` under ``level``, in seconds.

        ``rng`` may be omitted only for the idle level (where the result is
        deterministic).
        """
        if not kernel_times:
            return 0.0
        if level.utilization <= 0.0:
            return float(sum(kernel_times))
        if rng is None:
            raise ValueError("a Generator is required under non-zero load")
        total = 0.0
        if rng.random() < level.utilization**2:
            total += _lognormal(rng, level.initial_wait_s, level.wait_cv)
        slice_left = self.time_slice_s
        for i, kt in enumerate(kernel_times):
            forced_yield = slice_left <= 0.0
            contended = i > 0 and rng.random() < level.contend_prob
            if forced_yield or contended:
                total += _lognormal(rng, level.wait_mean_s, level.wait_cv)
                slice_left = self.time_slice_s
            total += kt
            slice_left -= kt
        return total

    def mean_execute(self, kernel_times: Sequence[float], level: LoadLevel = IDLE) -> float:
        """Approximate expectation of :meth:`execute`.

        Uses the expected number of contended boundaries plus the expected
        number of forced yields (service time divided by the slice length);
        accurate to a few percent for realistic kernel sequences, and exact
        at idle.
        """
        service = float(sum(kernel_times))
        if not kernel_times or level.utilization <= 0.0:
            return service
        n = len(kernel_times)
        contended = level.contend_prob * (n - 1)
        forced = (1.0 - level.contend_prob) * (service / self.time_slice_s)
        initial = level.utilization**2 * level.initial_wait_s
        return initial + service + (contended + forced) * level.wait_mean_s

    def mean_slowdown(self, kernel_times: Sequence[float], level: LoadLevel) -> float:
        """Expected slowdown factor (the "true k") of a kernel sequence."""
        service = float(sum(kernel_times))
        if service <= 0.0:
            return 1.0
        return self.mean_execute(kernel_times, level) / service
