"""Cost model of the edge-server GPU (NVIDIA Tesla T4 class).

Each computation node maps to one GPU kernel whose *service time* (the time
it occupies the GPU once scheduled) is::

    t = max(flops / (R_cat * occupancy) + traffic / BW_mem, t_min) + launch

``occupancy`` penalises kernels too small to fill the GPU — the dominant
nonlinearity of GPU latency prediction, and the reason the paper's edge
conv model has ~17% MAPE while its matmul model is near-linear.

Queueing behind background tasks is *not* part of this model: that is the
job of :class:`repro.hardware.gpu_scheduler.GpuScheduler`, mirroring the
paper's observation that load affects whole partitions between kernels, not
individual kernel service times (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

import numpy as np

from repro.graph.ops import FUSED_ANCHOR_CATEGORY
from repro.hardware.device_model import lognormal_factor
from repro.profiling.features import NodeProfile


@dataclass(frozen=True)
class GpuParams:
    """Tunable constants of the GPU kernel model (s, bytes, FLOP/s)."""

    conv_rate: float = 4.0e12
    dwconv_rate: float = 0.4e12
    matmul_rate: float = 3.0e12
    occupancy_half_flops: float = 2.0e7   # kernels below ~20 MFLOP underfill the GPU
    mem_bandwidth: float = 250.0e9        # effective HBM/GDDR6 bandwidth, B/s
    launch_overhead: float = 8.0e-6       # per-kernel launch + framework dispatch
    min_kernel_time: float = 15.0e-6      # small kernels cannot beat this floor
    noise_sigma: float = 0.05


class GpuModel:
    """Per-kernel service-time model for the edge-server GPU at zero load."""

    def __init__(self, params: GpuParams | None = None) -> None:
        self.params = params or GpuParams()

    def _occupancy(self, flops: float) -> float:
        h = self.params.occupancy_half_flops
        return flops / (flops + h) if flops > 0 else 1.0

    def mean_time(self, profile: NodeProfile) -> float:
        """Noiseless service time of one kernel, in seconds.

        A fused kernel (§VI extension) pays one launch and one memory pass
        for the whole anchor+epilogue group — the fusion saving.
        """
        p = self.params
        category = profile.category
        if category is None:
            return 0.0
        anchor_flops = profile.anchor_flops
        anchor = FUSED_ANCHOR_CATEGORY.get(category, category)
        traffic = profile.input_bytes + profile.output_bytes + profile.param_bytes
        if anchor == "conv":
            compute = anchor_flops / (p.conv_rate * self._occupancy(anchor_flops))
        elif anchor == "dwconv":
            compute = anchor_flops / (p.dwconv_rate * self._occupancy(anchor_flops))
        elif anchor == "matmul":
            compute = anchor_flops / p.matmul_rate
        else:  # pooling and the element-wise family are bandwidth bound
            compute = 0.0
        body = max(compute + traffic / p.mem_bandwidth, p.min_kernel_time)
        return body + p.launch_overhead

    def sample_time(self, profile: NodeProfile, rng: np.random.Generator) -> float:
        return self.mean_time(profile) * lognormal_factor(rng, self.params.noise_sigma)

    def kernel_times(self, profiles: Iterable[NodeProfile]) -> List[float]:
        """Noiseless service times for a kernel sequence (one per node)."""
        return [self.mean_time(p) for p in profiles]

    def sample_kernel_times(self, profiles: Iterable[NodeProfile], rng: np.random.Generator) -> List[float]:
        return [self.sample_time(p, rng) for p in profiles]

    def mean_graph_time(self, profiles: Iterable[NodeProfile]) -> float:
        """Noiseless, contention-free execution time of a node sequence."""
        return sum(self.mean_time(p) for p in profiles)
