"""Shared reference implementations used by multiple test modules."""


def brute_force(device, edge, sizes, bw_up, k, bw_down=None, out_bytes=0):
    """Direct O(n^2) evaluation of Problem (1), the paper's objective."""
    n = len(device)
    best_p, best_val = None, None
    download = out_bytes * 8 / bw_down if bw_down else 0.0
    for p in range(n + 1):
        if p == n:
            val = sum(device)
        else:
            val = sum(device[:p]) + sizes[p] * 8 / bw_up + k * sum(edge[p:]) + download
        if best_val is None or val <= best_val:  # paper tie-break: latest wins
            best_p, best_val = p, val
    return best_p, best_val
