"""Shared reference implementations and the zoo-wide bit-identity harness.

The harness (``ZOO``, ``sample_inputs``, ``assert_per_sample_bit_identical``)
was factored out of the batched-plan tests so every differential sweep —
batched, parallel, future backends — asserts the same contract: a planned
run must equal independent naive batch-1 runs **bit for bit**, per sample.
"""

from __future__ import annotations

import numpy as np
import pytest

#: Zoo split for parametrised sweeps: heavy graphs carry the ``slow``
#: marker (deselect with ``-m 'not slow'``).
FAST_MODELS = ("alexnet", "squeezenet", "mobilenet_v1", "mobilenet_v2", "resnet18")
SLOW_MODELS = ("vgg16", "resnet50", "resnet101", "resnet152", "inception_v3", "xception")

#: The seven-model differential sweep of the parallel test layer: the
#: benchmark families — serial backbones (alexnet, vgg16, mobilenet_v1)
#: plus every branchy family (fire, residual, inception, xception flows).
SWEEP_FAST = ("alexnet", "squeezenet", "mobilenet_v1", "resnet18")
SWEEP_SLOW = ("vgg16", "inception_v3", "xception")


def zoo_params(fast=FAST_MODELS, slow=SLOW_MODELS):
    """pytest params for a model sweep, slow-marking the heavy graphs."""
    return [pytest.param(m, id=m) for m in fast] + [
        pytest.param(m, id=m, marks=pytest.mark.slow) for m in slow
    ]


ZOO = zoo_params()
SWEEP_ZOO = zoo_params(SWEEP_FAST, SWEEP_SLOW)


def sample_inputs(graph, n, seed=42):
    """``n`` deterministic input draws for ``graph`` (one per sample)."""
    rng = np.random.default_rng(seed)
    return [rng.standard_normal(graph.input_spec.shape).astype(np.float32)
            for _ in range(n)]


def naive_reference(graph, params):
    """A naive batch-1 executor sharing ``params`` — the bit-level oracle."""
    from repro.nn import GraphExecutor

    return GraphExecutor(graph, seed=0, params=params)


def assert_per_sample_bit_identical(graph, executor, batch, *, reference=None,
                                    seed=42):
    """``executor``'s stacked ``batch`` run == independent naive runs.

    Returns the stacked output so callers can chain further comparisons
    (e.g. parallel output == this serial output, byte for byte).
    """
    naive = reference if reference is not None else naive_reference(
        graph, executor.params)
    xs = sample_inputs(graph, batch, seed)
    out = executor.run(np.concatenate(xs, axis=0) if batch > 1 else xs[0])
    assert out.dtype == np.float32
    for i, x in enumerate(xs):
        assert np.array_equal(out[i:i + 1], naive.run(x)), f"sample {i} differs"
    return out


def sampled_points(graph, count=2):
    """Deterministic interior partition points for a differential sweep."""
    n = len(graph.topological_order())
    points = sorted({max(1, (i + 1) * n // (count + 1)) for i in range(count)})
    return [p for p in points if 0 < p < n]


def brute_force(device, edge, sizes, bw_up, k, bw_down=None, out_bytes=0):
    """Direct O(n^2) evaluation of Problem (1), the paper's objective."""
    n = len(device)
    best_p, best_val = None, None
    download = out_bytes * 8 / bw_down if bw_down else 0.0
    for p in range(n + 1):
        if p == n:
            val = sum(device)
        else:
            val = sum(device[:p]) + sizes[p] * 8 / bw_up + k * sum(edge[p:]) + download
        if best_val is None or val <= best_val:  # paper tie-break: latest wins
            best_p, best_val = p, val
    return best_p, best_val
