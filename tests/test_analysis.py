"""Timeline analysis helpers: CSV round trip, comparison statistics."""

import numpy as np
import pytest

from repro.experiments.analysis import (
    compare_timelines,
    component_breakdown,
    dwell_statistics,
    timeline_from_csv,
    timeline_to_csv,
)
from repro.hardware.background import fig9_schedule
from repro.network.traces import ConstantTrace
from repro.runtime.system import OffloadingSystem, SystemConfig, Timeline


@pytest.fixture(scope="module")
def timelines(squeezenet_engine):
    out = {}
    for policy in ("loadpart", "neurosurgeon"):
        system = OffloadingSystem(
            squeezenet_engine,
            bandwidth_trace=ConstantTrace(8e6),
            load_schedule=fig9_schedule(),
            config=SystemConfig(policy=policy, seed=8),
        )
        out[policy] = system.run(200.0)
    return out


class TestCsv:
    def test_round_trip_preserves_metrics(self, timelines):
        original = timelines["loadpart"]
        restored = timeline_from_csv(timeline_to_csv(original))
        assert len(restored) == len(original)
        assert restored.mean_latency() == pytest.approx(original.mean_latency())
        np.testing.assert_array_equal(restored.points, original.points)

    def test_csv_has_header_and_rows(self, timelines):
        text = timeline_to_csv(timelines["loadpart"])
        lines = text.strip().splitlines()
        assert lines[0].startswith("request_id,start_s")
        assert len(lines) == len(timelines["loadpart"]) + 1


class TestComparison:
    def test_loadpart_vs_baseline(self, timelines):
        stats = compare_timelines(timelines["loadpart"], timelines["neurosurgeon"], 200.0)
        assert stats.mean_reduction > 0.0
        assert stats.max_window_reduction >= stats.mean_reduction - 0.05
        assert len(stats.windows) > 5

    def test_self_comparison_is_zero(self, timelines):
        stats = compare_timelines(timelines["loadpart"], timelines["loadpart"], 200.0)
        assert stats.mean_reduction == pytest.approx(0.0)
        assert stats.max_window_reduction == pytest.approx(0.0)

    def test_validation(self, timelines):
        with pytest.raises(ValueError):
            compare_timelines(timelines["loadpart"], timelines["neurosurgeon"],
                              200.0, window_s=0.0)
        with pytest.raises(ValueError):
            compare_timelines(Timeline([]), timelines["neurosurgeon"], 200.0)


class TestBreakdowns:
    def test_dwell_fractions_sum_to_one(self, timelines):
        dwell = dwell_statistics(timelines["loadpart"])
        assert sum(dwell.values()) == pytest.approx(1.0)
        assert all(0 < v <= 1 for v in dwell.values())

    def test_loadpart_dwells_on_multiple_points(self, timelines):
        assert len(dwell_statistics(timelines["loadpart"])) >= 2
        assert len(dwell_statistics(timelines["neurosurgeon"])) == 1

    def test_component_breakdown_consistent(self, timelines):
        parts = component_breakdown(timelines["loadpart"])
        total = timelines["loadpart"].mean_latency()
        assert sum(parts.values()) == pytest.approx(total, rel=1e-9)
