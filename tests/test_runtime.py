"""Runtime emulation: event loop, device/server, end-to-end system."""

import numpy as np
import pytest

from repro.hardware.background import IDLE, U100H, LoadSchedule, fig9_schedule
from repro.network.channel import Channel
from repro.network.traces import ConstantTrace, StepTrace
from repro.runtime.client import UserDevice
from repro.runtime.events import EventLoop
from repro.runtime.server import EdgeServer
from repro.runtime.system import OffloadingSystem, SystemConfig


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(2.0, lambda: seen.append("b"))
        loop.schedule_at(1.0, lambda: seen.append("a"))
        loop.run_until(3.0)
        assert seen == ["a", "b"]
        assert loop.now == 3.0

    def test_same_time_fifo(self):
        loop = EventLoop()
        seen = []
        for tag in "abc":
            loop.schedule_at(1.0, lambda t=tag: seen.append(t))
        loop.run_until(1.0)
        assert seen == ["a", "b", "c"]

    def test_periodic(self):
        loop = EventLoop()
        ticks = []
        loop.schedule_every(1.0, lambda: ticks.append(loop.now))
        loop.run_until(3.5)
        assert ticks == [1.0, 2.0, 3.0]

    def test_cannot_schedule_in_past(self):
        loop = EventLoop()
        loop.run_until(5.0)
        with pytest.raises(ValueError):
            loop.schedule_at(4.0, lambda: None)

    def test_events_beyond_horizon_not_run(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(10.0, lambda: seen.append(1))
        loop.run_until(5.0)
        assert seen == []

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventLoop().schedule_after(-1.0, lambda: None)

    def test_invalid_period(self):
        with pytest.raises(ValueError):
            EventLoop().schedule_every(0.0, lambda: None)


@pytest.fixture
def system(squeezenet_engine):
    return OffloadingSystem(
        squeezenet_engine,
        bandwidth_trace=ConstantTrace(8e6),
        config=SystemConfig(seed=5),
    )


class TestServer:
    def test_offload_updates_monitor(self, squeezenet_engine):
        server = EdgeServer(squeezenet_engine, seed=1)
        reply = server.handle_offload(0.0, 1, point=10)
        assert reply.server_exec_s > 0
        assert server.monitor.sample_count == 1

    def test_cache_hit_on_repeat(self, squeezenet_engine):
        server = EdgeServer(squeezenet_engine, seed=1)
        first = server.handle_offload(0.0, 1, point=10)
        second = server.handle_offload(0.1, 2, point=10)
        assert not first.cache_hit and second.cache_hit
        assert first.partition_overhead_s > 0 and second.partition_overhead_s == 0

    def test_load_query_returns_k_and_util(self, squeezenet_engine):
        schedule = LoadSchedule([(0.0, IDLE), (10.0, U100H)])
        server = EdgeServer(squeezenet_engine, load_schedule=schedule, seed=1)
        reply = server.handle_load_query(0.0)
        assert reply.k == 1.0 and reply.gpu_utilization == 0.0
        assert server.handle_load_query(20.0).gpu_utilization == 1.0

    def test_k_rises_under_load(self, squeezenet_engine):
        schedule = LoadSchedule([(0.0, U100H)])
        server = EdgeServer(squeezenet_engine, load_schedule=schedule, seed=1)
        for i in range(5):
            server.handle_offload(float(i) * 0.2, i, point=47)
        assert server.handle_load_query(1.0).k > 5.0

    def test_watchdog_resets_stale_k(self, squeezenet_engine):
        schedule = LoadSchedule([(0.0, U100H), (10.0, IDLE)])
        server = EdgeServer(squeezenet_engine, load_schedule=schedule, seed=1)
        for i in range(5):
            server.handle_offload(float(i) * 0.2, i, point=47)
        server.monitor.refresh(1.0)
        assert server.monitor.value > 1.0
        assert server.watchdog_tick(12.0) is True
        assert server.handle_load_query(12.0).k == 1.0


class TestDevice:
    def test_probe_feeds_estimator(self, squeezenet_engine):
        server = EdgeServer(squeezenet_engine, seed=1)
        channel = Channel(ConstantTrace(8e6))
        device = UserDevice(squeezenet_engine, server, channel, seed=2)
        device.send_probe(0.0)
        assert device.estimator.sample_count == 1
        assert device.estimator.estimate() == pytest.approx(8e6, rel=0.3)

    def test_local_inference_record(self, alexnet_engine):
        server = EdgeServer(alexnet_engine, seed=1)
        channel = Channel(ConstantTrace(1e5))  # terrible network -> local
        device = UserDevice(alexnet_engine, server, channel, seed=2)
        device.estimator.add_probe(0.0, 1000, 1000 * 8 / 1e5)
        record = device.request_inference(0.0)
        assert record.is_local
        assert record.partition_point == alexnet_engine.num_nodes
        assert record.upload_s == 0.0 and record.server_s == 0.0

    def test_offload_record_components_sum(self, squeezenet_engine):
        server = EdgeServer(squeezenet_engine, seed=1)
        channel = Channel(ConstantTrace(8e6))
        device = UserDevice(squeezenet_engine, server, channel, seed=2)
        device.profiler_tick(0.0)
        record = device.request_inference(0.0)
        assert record.total_s == pytest.approx(
            record.device_s + record.upload_s + record.server_s
            + record.download_s + record.overhead_s
        )

    def test_passive_measurement_recorded(self, squeezenet_engine):
        server = EdgeServer(squeezenet_engine, seed=1)
        channel = Channel(ConstantTrace(8e6))
        device = UserDevice(squeezenet_engine, server, channel, seed=2)
        before = device.estimator.sample_count
        record = device.request_inference(0.0)
        if not record.is_local:
            assert device.estimator.sample_count == before + 1
            assert device.estimator.passive_fraction > 0


class TestSystem:
    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            SystemConfig(policy="oracle")

    def test_run_produces_records(self, system):
        timeline = system.run(5.0)
        assert len(timeline) > 5
        starts = timeline.times
        assert np.all(np.diff(starts) > 0)

    def test_max_requests_cap(self, system):
        timeline = system.run(1e9, max_requests=7)
        assert len(timeline) == 7

    def test_timeline_helpers(self, system):
        timeline = system.run(5.0)
        assert timeline.mean_latency() > 0
        assert timeline.percentile_latency(95) >= timeline.percentile_latency(5)
        window = timeline.between(0.0, 2.0)
        assert all(r.start_s < 2.0 for r in window)

    def test_cache_hits_dominate_steady_state(self, system):
        system.run(10.0)
        assert system.device.cache.hit_rate > 0.8

    def test_deterministic_given_seed(self, squeezenet_engine):
        def run():
            sys_ = OffloadingSystem(
                squeezenet_engine,
                bandwidth_trace=ConstantTrace(8e6),
                config=SystemConfig(seed=9),
            )
            return sys_.run(3.0).latencies

        np.testing.assert_array_equal(run(), run())

    def test_estimator_adapts_to_bandwidth_change(self, squeezenet_engine):
        trace = StepTrace([(0.0, 8e6), (30.0, 64e6)])
        sys_ = OffloadingSystem(
            squeezenet_engine, bandwidth_trace=trace, config=SystemConfig(seed=4)
        )
        timeline = sys_.run(60.0)
        early = timeline.between(10.0, 30.0)
        late = timeline.between(45.0, 60.0)
        assert late.mean_latency() < early.mean_latency()
        # More bandwidth moves the partition point earlier.
        assert np.median(late.points) < np.median(early.points)

    def test_loadpart_beats_neurosurgeon_under_fig9_load(self, squeezenet_engine):
        results = {}
        for policy in ("loadpart", "neurosurgeon"):
            sys_ = OffloadingSystem(
                squeezenet_engine,
                bandwidth_trace=ConstantTrace(8e6),
                load_schedule=fig9_schedule(),
                config=SystemConfig(policy=policy, seed=11),
            )
            results[policy] = sys_.run(260.0).mean_latency()
        assert results["loadpart"] < results["neurosurgeon"]

    def test_loadpart_shifts_point_under_load(self, squeezenet_engine):
        sys_ = OffloadingSystem(
            squeezenet_engine,
            bandwidth_trace=ConstantTrace(8e6),
            load_schedule=fig9_schedule(),
            config=SystemConfig(seed=11),
        )
        timeline = sys_.run(260.0)
        idle_points = set(timeline.between(10.0, 40.0).points.tolist())
        heavy_points = set(timeline.between(170.0, 215.0).points.tolist())
        n = squeezenet_engine.num_nodes
        assert any(p < n for p in idle_points)      # partial offloading when idle
        assert n in heavy_points                    # local under 100%(h)

    def test_watchdog_recovers_after_load_drops(self, squeezenet_engine):
        """The paper's ~220 s SqueezeNet recovery (p=99 back to mid)."""
        sys_ = OffloadingSystem(
            squeezenet_engine,
            bandwidth_trace=ConstantTrace(8e6),
            load_schedule=fig9_schedule(),
            config=SystemConfig(seed=11),
        )
        timeline = sys_.run(300.0)
        n = squeezenet_engine.num_nodes
        recovered = timeline.between(245.0, 300.0)
        assert np.median(recovered.points) < n

    def test_local_policy_never_offloads(self, squeezenet_engine):
        sys_ = OffloadingSystem(
            squeezenet_engine,
            bandwidth_trace=ConstantTrace(8e6),
            config=SystemConfig(policy="local", seed=2),
        )
        timeline = sys_.run(3.0)
        assert all(r.is_local for r in timeline)

    def test_full_policy_always_offloads(self, squeezenet_engine):
        sys_ = OffloadingSystem(
            squeezenet_engine,
            bandwidth_trace=ConstantTrace(8e6),
            config=SystemConfig(policy="full", seed=2),
        )
        timeline = sys_.run(3.0)
        assert all(r.partition_point == 0 for r in timeline)

    def test_on_record_callback(self, system):
        seen = []
        system.run(1.0, on_record=seen.append)
        assert len(seen) > 0


class TestEmptyTimeline:
    def test_mean_latency_nan(self):
        from repro.runtime.system import Timeline

        t = Timeline([])
        assert np.isnan(t.mean_latency())

    def test_percentile_latency_nan(self):
        from repro.runtime.system import Timeline

        t = Timeline([])
        assert np.isnan(t.percentile_latency(95))

    def test_between_can_return_empty(self, system):
        timeline = system.run(1.0, max_requests=2)
        empty = timeline.between(1e9, 2e9)
        assert len(empty) == 0
        assert np.isnan(empty.mean_latency())


class TestFunctionalMode:
    """Functional execution changes what is computed, never what is recorded."""

    def test_invalid_backend_in_config(self):
        with pytest.raises(ValueError, match="backend must be one of"):
            SystemConfig(backend="jit")

    def _run(self, engine, **cfg_kwargs):
        config = SystemConfig(seed=11, **cfg_kwargs)
        sys_ = OffloadingSystem(engine, config=config)
        timeline = sys_.run(2.0, max_requests=3)
        return timeline, sys_

    def test_records_identical_and_outputs_bit_equal(self, squeezenet_engine):
        sim, _ = self._run(squeezenet_engine)
        t_naive, s_naive = self._run(squeezenet_engine, functional=True,
                                     backend="naive")
        t_plan, s_plan = self._run(squeezenet_engine, functional=True,
                                   backend="planned")
        # Same InferenceRecord stream: functional mode and backend choice
        # must not perturb partition decisions or simulated timing.
        assert sim.records == t_naive.records == t_plan.records
        out_naive, out_plan = s_naive.device.last_output, s_plan.device.last_output
        assert out_naive is not None and out_plan is not None
        assert out_naive.shape == squeezenet_engine.graph.output_spec.shape
        assert np.array_equal(out_naive, out_plan)

    def test_simulation_only_has_no_tensors(self, squeezenet_engine):
        _, sys_ = self._run(squeezenet_engine)
        assert sys_.device.last_output is None
