"""RMSE / MAPE metrics."""

import numpy as np
import pytest

from repro.profiling.metrics import mape, rmse


class TestRmse:
    def test_zero_for_perfect(self):
        a = np.array([1.0, 2.0, 3.0])
        assert rmse(a, a) == 0.0

    def test_known_value(self):
        assert rmse(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            rmse(np.ones(3), np.ones(4))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse(np.array([]), np.array([]))


class TestMape:
    def test_known_value(self):
        actual = np.array([100.0, 200.0])
        predicted = np.array([110.0, 180.0])
        assert mape(actual, predicted) == pytest.approx(0.10)

    def test_zero_actual_rejected(self):
        with pytest.raises(ValueError):
            mape(np.array([0.0, 1.0]), np.array([1.0, 1.0]))

    def test_symmetric_in_error_sign(self):
        actual = np.array([100.0])
        assert mape(actual, np.array([90.0])) == mape(actual, np.array([110.0]))

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            mape(np.ones(2), np.ones(3))
