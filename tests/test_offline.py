"""OfflineProfiler: the full Fig. 4 pipeline."""

import numpy as np
import pytest

from repro.experiments.context import DEFAULT_SAMPLES
from repro.graph.ops import CATEGORIES
from repro.profiling.offline import TABLE3_ROWS, OfflineProfiler


class TestCollect:
    def test_samples_per_category(self):
        prof = OfflineProfiler(samples_per_category=25, seed=1)
        data = prof.collect()
        assert set(data) == set(CATEGORIES)
        assert all(len(v) == 25 for v in data.values())

    def test_measurements_positive(self):
        data = OfflineProfiler(samples_per_category=20, seed=2).collect()
        for samples in data.values():
            for s in samples:
                assert s.device_time > 0 and s.edge_time > 0

    def test_device_slower_than_edge_on_average(self):
        data = OfflineProfiler(samples_per_category=40, seed=3).collect()
        dev = np.mean([s.device_time for s in data["conv"]])
        edge = np.mean([s.edge_time for s in data["conv"]])
        assert dev > edge


class TestRun:
    def test_report_structure(self, trained_report):
        names = [r.name for r in trained_report.rows]
        assert names == [row[0] for row in TABLE3_ROWS]
        for r in trained_report.rows:
            assert r.edge_rmse >= 0 and r.device_rmse >= 0
            assert 0 <= r.edge_mape and 0 <= r.device_mape

    def test_train_test_split_counts(self, trained_report):
        for category in CATEGORIES:
            total = trained_report.train_counts[category] + trained_report.test_counts[category]
            assert total == DEFAULT_SAMPLES  # the shared root-conftest report
            assert trained_report.test_counts[category] >= 1

    def test_format_table3_contains_rows(self, trained_report):
        text = trained_report.format_table3()
        assert "Conv" in text and "MAPE" in text

    def test_reproducible_with_same_seed(self):
        a = OfflineProfiler(samples_per_category=40, seed=9).run()
        b = OfflineProfiler(samples_per_category=40, seed=9).run()
        for ra, rb in zip(a.rows, b.rows):
            assert ra == rb

    def test_invalid_test_fraction(self):
        with pytest.raises(ValueError):
            OfflineProfiler(test_fraction=1.5)

    def test_conv_is_among_hardest_on_device(self, trained_report):
        """Paper's Table III shape: conv kinds are the least predictable."""
        rows = {r.name: r for r in trained_report.rows}
        conv_mape = rows["Conv"].device_mape
        assert conv_mape > rows["Matmul"].device_mape

    def test_matmul_is_most_accurate(self, trained_report):
        rows = {r.name: r for r in trained_report.rows}
        assert rows["Matmul"].device_mape == min(r.device_mape for r in trained_report.rows)
