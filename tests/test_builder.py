"""GraphBuilder: auto-naming, composites, finalisation."""

import pytest

from repro.graph.builder import GraphBuilder


class TestAutoNaming:
    def test_sequential_names(self):
        b = GraphBuilder("g", (1, 3, 8, 8))
        a = b.relu(b.input)
        c = b.relu(a)
        assert (a, c) == ("relu_1", "relu_2")

    def test_explicit_name_wins(self):
        b = GraphBuilder("g", (1, 3, 8, 8))
        assert b.relu(b.input, name="myrelu") == "myrelu"


class TestComposites:
    def test_conv_block_bias_variant(self):
        b = GraphBuilder("g", (1, 3, 8, 8))
        x = b.conv_block(b.input, 8, kernel=3, padding=1, prefix="blk")
        b.output(x)
        g = b.build()
        assert g.topological_order() == ["blk.conv", "blk.post", "blk.relu"]
        assert g.node("blk.post").op == "bias_add"

    def test_conv_block_bn_variant(self):
        b = GraphBuilder("g", (1, 3, 8, 8))
        x = b.conv_block(b.input, 8, kernel=3, padding=1, prefix="blk", bn=True)
        b.output(x)
        g = b.build()
        assert g.node("blk.post").op == "batchnorm"

    def test_conv_block_no_activation(self):
        b = GraphBuilder("g", (1, 3, 8, 8))
        x = b.conv_block(b.input, 8, kernel=3, padding=1, act="")
        b.output(x)
        assert b.build().node(x).op == "bias_add"

    def test_dense_block(self):
        b = GraphBuilder("g", (1, 128))
        x = b.dense_block(b.input, 64, prefix="fc")
        b.output(x)
        g = b.build()
        assert g.topological_order() == ["fc.fc", "fc.bias", "fc.relu"]

    def test_dense_block_linear(self):
        b = GraphBuilder("g", (1, 128))
        x = b.dense_block(b.input, 64, act=None)
        b.output(x)
        assert b.build().node(x).op == "bias_add"


class TestFinalisation:
    def test_build_without_output_raises(self):
        b = GraphBuilder("g", (1, 4))
        b.relu(b.input)
        with pytest.raises(ValueError, match="output"):
            b.build()

    def test_build_validates(self):
        b = GraphBuilder("g", (1, 4))
        x = b.relu(b.input)
        b.relu(b.input)  # dead node
        b.output(x)
        with pytest.raises(Exception):
            b.build()

    def test_maxpool_stride_defaults(self):
        b = GraphBuilder("g", (1, 4, 8, 8))
        x = b.maxpool(b.input, kernel=2)
        b.output(x)
        assert b.build().node(x).output.shape == (1, 4, 4, 4)
