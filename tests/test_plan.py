"""The planned backend: bit-identity with naive, liveness, workspace arena."""

import numpy as np
import pytest

from repro.graph import fuse_graph
from repro.graph.partitioner import GraphPartitioner
from repro.models import build_model
from repro.nn import BACKENDS, GraphExecutor, SegmentExecutor
from repro.nn.plan import GraphPlan, PlanError, SegmentPlan, WorkspaceArena

_FAST_MODELS = ("alexnet", "squeezenet", "mobilenet_v1", "mobilenet_v2", "resnet18")
_SLOW_MODELS = ("vgg16", "resnet50", "resnet101", "resnet152", "inception_v3", "xception")
ZOO = [pytest.param(m, id=m) for m in _FAST_MODELS] + [
    pytest.param(m, id=m, marks=pytest.mark.slow) for m in _SLOW_MODELS
]


def _input_for(graph, seed=42):
    rng = np.random.default_rng(seed)
    return rng.standard_normal(graph.input_spec.shape).astype(np.float32)


class TestZooBitIdentity:
    """Planned outputs must equal naive outputs bit for bit, zoo-wide."""

    @pytest.mark.parametrize("model_name", ZOO)
    @pytest.mark.parametrize("fused", [False, True], ids=["plain", "fused"])
    def test_bit_identical_and_rerun_stable(self, model_name, fused):
        graph = build_model(model_name)
        if fused:
            graph = fuse_graph(graph)
        planned = GraphExecutor(graph, seed=0, backend="planned")
        naive = GraphExecutor(graph, seed=0, params=planned.params)
        x = _input_for(graph)
        ref = naive.run(x)
        first = planned.run(x)
        second = planned.run(x)  # exercises buffer reuse across runs
        assert first.dtype == np.float32
        assert np.array_equal(ref, first)
        assert np.array_equal(first, second)


class TestPlanSemantics:
    def test_same_output_and_keep_as_naive(self, chain_graph, rng):
        keep = ("relu", "pool")
        planned = GraphExecutor(chain_graph, seed=2, backend="planned")
        naive = GraphExecutor(chain_graph, seed=2, params=planned.params)
        x = rng.standard_normal(chain_graph.input_spec.shape).astype(np.float32)
        out_n = naive.run(x, keep=keep)
        out_p = planned.run(x, keep=keep)
        assert np.array_equal(out_n, out_p)
        assert set(planned.last_intermediates) == set(naive.last_intermediates)
        for name in keep:
            assert np.array_equal(
                naive.last_intermediates[name], planned.last_intermediates[name]
            )

    def test_diamond_and_fire_graphs(self, diamond_graph, fire_graph, rng):
        for graph in (diamond_graph, fire_graph):
            planned = GraphExecutor(graph, seed=1, backend="planned")
            naive = GraphExecutor(graph, seed=1, params=planned.params)
            x = rng.standard_normal(graph.input_spec.shape).astype(np.float32)
            assert np.array_equal(naive.run(x), planned.run(x))

    def test_rejects_wrong_input_shape_same_message(self, chain_graph):
        planned = GraphExecutor(chain_graph, backend="planned")
        with pytest.raises(ValueError, match="input shape"):
            planned.run(np.zeros((1, 3, 8, 8), dtype=np.float32))

    def test_invalid_backend_rejected(self, chain_graph):
        with pytest.raises(ValueError, match="backend must be one of"):
            GraphExecutor(chain_graph, backend="jit")
        assert set(BACKENDS) == {"naive", "planned"}

    def test_stats_report_liveness_work(self, chain_graph):
        plan = GraphPlan(chain_graph)
        stats = plan.stats
        assert stats.steps > 0
        assert stats.inplace_steps >= 1       # bias/relu run on dying inputs
        assert stats.alias_steps >= 1         # flatten is a view
        assert stats.arena_bytes > 0

    def test_results_survive_later_runs(self, chain_graph, rng):
        plan = GraphPlan(chain_graph, seed=0)
        x1 = rng.standard_normal(chain_graph.input_spec.shape).astype(np.float32)
        x2 = rng.standard_normal(chain_graph.input_spec.shape).astype(np.float32)
        out1 = plan.run(x1)
        saved = out1.copy()
        plan.run(x2)
        assert np.array_equal(out1, saved), "returned tensor aliases the workspace"


class TestSegmentPlans:
    def _run_split(self, graph, params, point, head_backend, tail_backend):
        part = GraphPartitioner(graph).partition(point)
        x = _input_for(graph, seed=7)
        boundary = {}
        if point > 0:
            head = SegmentExecutor(part.head, params=params, backend=head_backend)
            boundary = dict(head.run({graph.input_name: x}))
        if graph.input_name in part.transfer_specs:
            boundary[graph.input_name] = x
        if part.tail.is_empty:
            return boundary[graph.output_name]
        tail = SegmentExecutor(part.tail, params=params, backend=tail_backend)
        return tail.run(boundary)[graph.output_name]

    @pytest.mark.parametrize("head_backend,tail_backend",
                             [("planned", "naive"), ("naive", "planned"),
                              ("planned", "planned")])
    def test_cross_backend_handoff_chain(self, chain_graph, head_backend, tail_backend):
        full = GraphExecutor(chain_graph, seed=0)
        ref = full.run(_input_for(chain_graph, seed=7))
        n = len(chain_graph.topological_order())
        for point in range(n + 1):
            got = self._run_split(chain_graph, full.params, point,
                                  head_backend, tail_backend)
            assert np.array_equal(ref, got), f"point {point}"

    def test_cross_backend_handoff_alexnet(self):
        graph = build_model("alexnet")
        full = GraphExecutor(graph, seed=0)
        ref = full.run(_input_for(graph, seed=7))
        mid = len(graph.topological_order()) // 2
        for hb, tb in (("planned", "naive"), ("naive", "planned")):
            got = self._run_split(graph, full.params, mid, hb, tb)
            assert np.array_equal(ref, got)

    def test_missing_boundary_same_message(self, chain_graph):
        part = GraphPartitioner(chain_graph).partition(3)
        plan = SegmentPlan(part.tail, seed=0)
        with pytest.raises(ValueError, match="missing boundary tensors"):
            plan.run({})

    def test_wrong_boundary_shape_same_message(self, chain_graph):
        part = GraphPartitioner(chain_graph).partition(3)
        plan = SegmentPlan(part.tail, seed=0)
        bad = {name: np.zeros((1, 1, 1, 1), dtype=np.float32)
               for name in part.tail.boundary_inputs}
        with pytest.raises(ValueError, match="has shape"):
            plan.run(bad)

    def test_unknown_result_raises_plan_error(self, chain_graph):
        part = GraphPartitioner(chain_graph).partition(3)
        part.tail.result_names = ("no-such-node",)
        with pytest.raises(PlanError, match="not produced"):
            SegmentPlan(part.tail, seed=0)


class TestWorkspaceArena:
    def test_release_then_acquire_reuses(self):
        arena = WorkspaceArena()
        a = arena.acquire(128)
        arena.release(a)
        b = arena.acquire(64)
        assert b is a, "acquire hands back the pooled base buffer"
        assert arena.buffers == 1 and arena.reuses == 1

    def test_best_fit_prefers_smallest_adequate(self):
        arena = WorkspaceArena()
        big, small = arena.acquire(1000), arena.acquire(100)
        arena.release(big)
        arena.release(small)
        got = arena.acquire(80)
        assert got.size == 100

    def test_waste_cap_refuses_oversized_buffers(self):
        arena = WorkspaceArena()
        arena.release(arena.acquire(1000))
        got = arena.acquire(10, waste_cap=4)
        assert got.size == 10 and arena.buffers == 2

    def test_dtypes_do_not_mix(self):
        arena = WorkspaceArena()
        arena.release(arena.acquire(64, np.float32))
        got = arena.acquire(64, np.int32)
        assert got.dtype == np.int32 and arena.buffers == 2

    def test_persistent_never_pooled(self):
        arena = WorkspaceArena()
        buf = arena.persistent((4, 4), fill=-np.inf)
        assert np.all(np.isinf(buf))
        assert arena.persistent_bytes == buf.nbytes
        got = arena.acquire(16)
        assert got is not buf
