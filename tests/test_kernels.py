"""NumPy kernels vs naive reference implementations."""

import numpy as np
import pytest

from repro.nn.kernels import (
    avgpool2d,
    batchnorm,
    bias_add,
    concat,
    conv2d,
    dwconv2d,
    flatten,
    global_avgpool,
    lrn,
    matmul,
    maxpool2d,
    relu,
    sigmoid,
    softmax,
    tanh,
)


def naive_conv2d(x, w, stride, padding):
    n, c_in, h, w_in = x.shape
    c_out, _, kh, kw = w.shape
    sh, sw = stride
    ph, pw = padding
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    ho = (h + 2 * ph - kh) // sh + 1
    wo = (w_in + 2 * pw - kw) // sw + 1
    out = np.zeros((n, c_out, ho, wo), dtype=x.dtype)
    for b in range(n):
        for o in range(c_out):
            for i in range(ho):
                for j in range(wo):
                    patch = xp[b, :, i * sh:i * sh + kh, j * sw:j * sw + kw]
                    out[b, o, i, j] = (patch * w[o]).sum()
    return out


class TestConv:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 0)])
    def test_matches_naive(self, rng, stride, padding):
        x = rng.standard_normal((2, 3, 9, 9)).astype(np.float32)
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        got = conv2d([x], [w], {"kernel": 3, "stride": stride, "padding": padding})
        want = naive_conv2d(x, w, (stride, stride), (padding, padding))
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_asymmetric_kernel(self, rng):
        x = rng.standard_normal((1, 2, 7, 7)).astype(np.float32)
        w = rng.standard_normal((3, 2, 1, 5)).astype(np.float32)
        got = conv2d([x], [w], {"kernel": (1, 5), "padding": (0, 2)})
        want = naive_conv2d(x, w, (1, 1), (0, 2))
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_1x1_is_channel_mix(self, rng):
        x = rng.standard_normal((1, 4, 5, 5)).astype(np.float32)
        w = rng.standard_normal((2, 4, 1, 1)).astype(np.float32)
        got = conv2d([x], [w], {"kernel": 1})
        want = np.einsum("nchw,oc->nohw", x, w[:, :, 0, 0])
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)


class TestDWConv:
    def test_matches_per_channel_conv(self, rng):
        x = rng.standard_normal((1, 4, 8, 8)).astype(np.float32)
        w = rng.standard_normal((4, 1, 3, 3)).astype(np.float32)
        got = dwconv2d([x], [w], {"kernel": 3, "padding": 1})
        for c in range(4):
            want_c = naive_conv2d(x[:, c:c + 1], w[c:c + 1], (1, 1), (1, 1))
            np.testing.assert_allclose(got[:, c:c + 1], want_c, rtol=1e-4, atol=1e-5)

    def test_multiplier_expands_channels(self, rng):
        # channel_multiplier > 1 is supported; deep checks live in
        # TestDwconvChannelMultiplier below.
        x = rng.standard_normal((1, 4, 8, 8)).astype(np.float32)
        w = rng.standard_normal((8, 1, 3, 3)).astype(np.float32)
        out = dwconv2d([x], [w], {"kernel": 3, "channel_multiplier": 2})
        assert out.shape == (1, 8, 6, 6)


class TestPooling:
    def test_maxpool(self, rng):
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        got = maxpool2d([x], [], {"kernel": 2})
        want = x.reshape(1, 2, 2, 2, 2, 2).max(axis=(3, 5))
        np.testing.assert_allclose(got, want)

    def test_maxpool_with_padding_ignores_pad(self, rng):
        x = rng.standard_normal((1, 1, 2, 2)).astype(np.float32) - 10.0
        got = maxpool2d([x], [], {"kernel": 3, "stride": 1, "padding": 1})
        # -inf padding never wins, so corners equal local maxima of x.
        assert got[0, 0, 0, 0] == x[0, 0, :2, :2].max()

    def test_avgpool_counts_padding(self):
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        got = avgpool2d([x], [], {"kernel": 2, "stride": 1, "padding": 1})
        # Corner windows contain 1 real + 3 padded zeros -> mean 0.25.
        assert got[0, 0, 0, 0] == pytest.approx(0.25)

    def test_global_avgpool(self, rng):
        x = rng.standard_normal((2, 3, 4, 5)).astype(np.float32)
        got = global_avgpool([x], [], {})
        np.testing.assert_allclose(got[..., 0, 0], x.mean(axis=(2, 3)), rtol=1e-5)
        assert got.shape == (2, 3, 1, 1)


class TestElementwise:
    def test_bias_add_4d(self, rng):
        x = rng.standard_normal((1, 3, 2, 2)).astype(np.float32)
        b = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        got = bias_add([x], [b], {})
        np.testing.assert_allclose(got[0, 1], x[0, 1] + 2.0)

    def test_bias_add_2d(self, rng):
        x = rng.standard_normal((2, 3)).astype(np.float32)
        b = np.array([1.0, 2.0, 3.0], dtype=np.float32)
        np.testing.assert_allclose(bias_add([x], [b], {}), x + b)

    def test_batchnorm_normalises(self, rng):
        x = rng.standard_normal((1, 2, 4, 4)).astype(np.float32)
        gamma = np.array([2.0, 1.0], dtype=np.float32)
        beta = np.array([0.5, -0.5], dtype=np.float32)
        mean = x.mean(axis=(0, 2, 3)).astype(np.float32)
        var = x.var(axis=(0, 2, 3)).astype(np.float32)
        got = batchnorm([x], [gamma, beta, mean, var], {"eps": 0.0})
        want = gamma.reshape(1, 2, 1, 1) * (x - mean.reshape(1, 2, 1, 1)) / np.sqrt(
            var.reshape(1, 2, 1, 1)
        ) + beta.reshape(1, 2, 1, 1)
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0], dtype=np.float32)
        np.testing.assert_allclose(relu([x], [], {}), [0, 0, 2])

    def test_sigmoid_bounds(self, rng):
        # float32 saturates to exactly 0/1 for large magnitudes.
        x = rng.standard_normal(100).astype(np.float32) * 10
        y = sigmoid([x], [], {})
        assert np.all((y >= 0) & (y <= 1))
        mid = sigmoid([np.zeros(1, dtype=np.float32)], [], {})
        assert mid[0] == pytest.approx(0.5)

    def test_tanh(self, rng):
        x = rng.standard_normal(10).astype(np.float32)
        np.testing.assert_allclose(tanh([x], [], {}), np.tanh(x), rtol=1e-5)

    def test_softmax_sums_to_one(self, rng):
        x = rng.standard_normal((3, 10)).astype(np.float32) * 50
        y = softmax([x], [], {})
        np.testing.assert_allclose(y.sum(axis=-1), np.ones(3), rtol=1e-5)

    def test_softmax_is_stable_for_large_inputs(self):
        x = np.array([[1000.0, 1000.0]], dtype=np.float32)
        y = softmax([x], [], {})
        np.testing.assert_allclose(y, [[0.5, 0.5]])

    def test_lrn_matches_reference(self, rng):
        x = rng.standard_normal((1, 6, 2, 2)).astype(np.float32)
        attrs = {"size": 5, "alpha": 1e-4, "beta": 0.75, "k": 2.0}
        got = lrn([x], [], attrs)
        # Reference: explicit loop over channel windows.
        want = np.empty_like(x)
        for c in range(6):
            lo, hi = max(0, c - 2), min(6, c + 3)
            denom = 2.0 + (1e-4 / 5) * (x[:, lo:hi] ** 2).sum(axis=1)
            want[:, c] = x[:, c] / denom ** 0.75
        np.testing.assert_allclose(got, want, rtol=1e-5)


class TestStructural:
    def test_matmul(self, rng):
        x = rng.standard_normal((2, 4)).astype(np.float32)
        w = rng.standard_normal((4, 3)).astype(np.float32)
        np.testing.assert_allclose(matmul([x], [w], {}), x @ w, rtol=1e-5)

    def test_concat(self, rng):
        a = rng.standard_normal((1, 2, 2, 2)).astype(np.float32)
        b = rng.standard_normal((1, 3, 2, 2)).astype(np.float32)
        assert concat([a, b], [], {"axis": 1}).shape == (1, 5, 2, 2)

    def test_flatten(self, rng):
        x = rng.standard_normal((2, 3, 4, 5)).astype(np.float32)
        assert flatten([x], [], {}).shape == (2, 60)


class TestVectorizedLrn:
    """The cumsum LRN vs the literal per-channel loop it replaced."""

    @pytest.mark.parametrize("size,channels", [(5, 96), (5, 3), (3, 8), (7, 16)])
    def test_matches_loop_reference(self, rng, size, channels):
        from repro.nn.kernels import lrn_reference

        x = (rng.standard_normal((2, channels, 5, 5)) * 4).astype(np.float32)
        attrs = {"size": size, "alpha": 1e-4, "beta": 0.75, "k": 2.0}
        got = lrn([x], [], attrs)
        want = lrn_reference([x], [], attrs)
        assert got.dtype == want.dtype == np.float32
        np.testing.assert_allclose(got, want, rtol=1e-6, atol=1e-7)

    def test_default_attrs(self, rng):
        from repro.nn.kernels import lrn_reference

        x = rng.standard_normal((1, 32, 4, 4)).astype(np.float32)
        np.testing.assert_allclose(lrn([x], [], {}), lrn_reference([x], [], {}),
                                   rtol=1e-6, atol=1e-7)


def naive_dwconv_mult(x, w, mult, stride, padding):
    """Loop reference for depthwise conv with a channel multiplier."""
    n, c, h, wd = x.shape
    kh, kw = w.shape[2], w.shape[3]
    sh, sw = stride
    ph, pw = padding
    xp = np.pad(x, ((0, 0), (0, 0), (ph, ph), (pw, pw)))
    ho = (h + 2 * ph - kh) // sh + 1
    wo = (wd + 2 * pw - kw) // sw + 1
    out = np.zeros((n, c * mult, ho, wo), dtype=x.dtype)
    for ci in range(c):
        for m in range(mult):
            filt = w[ci * mult + m, 0]
            for i in range(ho):
                for j in range(wo):
                    patch = xp[:, ci, i * sh:i * sh + kh, j * sw:j * sw + kw]
                    out[:, ci * mult + m, i, j] = (patch * filt).sum(axis=(-2, -1))
    return out


class TestDwconvChannelMultiplier:
    def test_output_shape(self, rng):
        x = rng.standard_normal((1, 4, 8, 8)).astype(np.float32)
        w = rng.standard_normal((8, 1, 3, 3)).astype(np.float32)
        out = dwconv2d([x], [w], {"kernel": 3, "padding": 1, "channel_multiplier": 2})
        assert out.shape == (1, 8, 8, 8)

    @pytest.mark.parametrize("mult,stride,padding", [(2, 1, 1), (3, 2, 1), (2, 1, 0)])
    def test_matches_loop_reference(self, rng, mult, stride, padding):
        x = rng.standard_normal((2, 3, 9, 9)).astype(np.float32)
        w = rng.standard_normal((3 * mult, 1, 3, 3)).astype(np.float32)
        attrs = {"kernel": 3, "stride": stride, "padding": padding,
                 "channel_multiplier": mult}
        got = dwconv2d([x], [w], attrs)
        want = naive_dwconv_mult(x, w, mult, (stride, stride), (padding, padding))
        np.testing.assert_allclose(got, want, rtol=1e-4, atol=1e-5)

    def test_mult_one_unchanged(self, rng):
        x = rng.standard_normal((1, 5, 7, 7)).astype(np.float32)
        w = rng.standard_normal((5, 1, 3, 3)).astype(np.float32)
        a = dwconv2d([x], [w], {"kernel": 3, "padding": 1})
        b = dwconv2d([x], [w], {"kernel": 3, "padding": 1, "channel_multiplier": 1})
        np.testing.assert_array_equal(a, b)
