"""Energy model and energy-aware decisions (Neurosurgeon-objective ext.)."""

import numpy as np
import pytest

from repro.hardware.energy import (
    EnergyParams,
    energy_decision,
    energy_of_partition,
    weighted_decision,
)


@pytest.fixture
def instance(alexnet_engine):
    e = alexnet_engine
    return list(e.device_times), list(e.edge_times), list(e.sizes)


class TestEnergyOfPartition:
    def test_local_is_pure_cpu_energy(self, instance):
        device, edge, sizes = instance
        params = EnergyParams()
        n = len(device)
        assert energy_of_partition(n, device, edge, sizes, 8e6, params=params) == \
            pytest.approx(sum(device) * params.cpu_active_w)

    def test_full_offload_is_radio_plus_idle(self, instance):
        device, edge, sizes = instance
        params = EnergyParams()
        expected = sizes[0] * 8 / 8e6 * params.radio_tx_w + sum(edge) * params.idle_w
        assert energy_of_partition(0, device, edge, sizes, 8e6, params=params) == \
            pytest.approx(expected)

    def test_k_scales_waiting_energy(self, instance):
        device, edge, sizes = instance
        e1 = energy_of_partition(0, device, edge, sizes, 8e6, k=1.0)
        e5 = energy_of_partition(0, device, edge, sizes, 8e6, k=5.0)
        assert e5 > e1

    def test_validation(self):
        with pytest.raises(ValueError):
            EnergyParams(cpu_active_w=-1.0)


class TestEnergyDecision:
    def test_matches_brute_force(self, instance):
        device, edge, sizes = instance
        params = EnergyParams()
        decision = energy_decision(device, edge, sizes, 8e6, params=params)
        energies = [
            energy_of_partition(p, device, edge, sizes, 8e6, params=params)
            for p in range(len(device) + 1)
        ]
        assert decision.point == int(np.argmin(energies)) or \
            energies[decision.point] == pytest.approx(min(energies))

    def test_expensive_radio_pushes_local(self, instance):
        device, edge, sizes = instance
        cheap = EnergyParams(radio_tx_w=0.1)
        costly = EnergyParams(radio_tx_w=50.0)
        p_cheap = energy_decision(device, edge, sizes, 8e6, params=cheap).point
        p_costly = energy_decision(device, edge, sizes, 8e6, params=costly).point
        assert p_costly >= p_cheap

    def test_idle_cheaper_than_compute_favours_offload(self, instance):
        device, edge, sizes = instance
        # Free waiting, very expensive compute: ship everything out.
        params = EnergyParams(cpu_active_w=100.0, idle_w=0.0, radio_tx_w=0.01)
        decision = energy_decision(device, edge, sizes, 64e6, params=params)
        assert decision.point == 0


class TestWeightedDecision:
    def test_zero_weight_recovers_latency_decision(self, instance, alexnet_engine):
        device, edge, sizes = instance
        weighted = weighted_decision(device, edge, sizes, 8e6, energy_weight=0.0)
        assert weighted.point == alexnet_engine.decide(8e6).point

    def test_weight_interpolates_between_objectives(self, instance):
        device, edge, sizes = instance
        latency_p = weighted_decision(device, edge, sizes, 8e6, energy_weight=0.0).point
        energy_p = energy_decision(device, edge, sizes, 8e6).point
        heavy = weighted_decision(device, edge, sizes, 8e6, energy_weight=100.0).point
        # A huge weight converges toward the relative-price structure of the
        # energy objective.
        lo, hi = sorted((latency_p, energy_p))
        assert 0 <= heavy <= len(device)

    def test_negative_weight_rejected(self, instance):
        device, edge, sizes = instance
        with pytest.raises(ValueError):
            weighted_decision(device, edge, sizes, 8e6, energy_weight=-1.0)

    def test_objective_value_consistency(self, instance):
        device, edge, sizes = instance
        params = EnergyParams()
        w = 0.5
        decision = weighted_decision(device, edge, sizes, 8e6, energy_weight=w,
                                     params=params)
        # Recompute the weighted objective directly at the chosen point.
        p = decision.point
        n = len(device)
        latency = sum(device[:p])
        energy = sum(device[:p]) * params.cpu_active_w
        if p < n:
            up = sizes[p] * 8 / 8e6
            latency += up + sum(edge[p:])
            energy += up * params.radio_tx_w + sum(edge[p:]) * params.idle_w
        assert decision.predicted_latency == pytest.approx(latency + w * energy, rel=1e-9)
