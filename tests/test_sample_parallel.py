"""Per-sample parallel batched plans: 2-D (sample × chain) bit-identity.

The sample-parallel contract extends the PR 2 batched contract and the
PR 4 parallel contract at once: a plan compiled with ``batch=n`` and
``ParallelConfig(threads=t, sample_parallel=True)`` must produce output
**byte-for-byte equal** to the serial batched plan — and therefore,
per sample, to ``n`` independent naive batch-1 runs.  Only the
interleaving of (sample, chain) tasks may change — never a kernel, never
a reduction order, because each sample's compiled steps *are* the batch-1
compile steps bound over a per-sample view of the shared batch buffers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.partitioner import GraphPartitioner
from repro.models import build_model
from repro.nn import GraphExecutor, SegmentExecutor
from repro.nn.parallel import ParallelConfig, SampleParallelRunner
from repro.nn.plan import GraphPlan, SegmentPlan
from tests.helpers import (
    SWEEP_ZOO,
    assert_per_sample_bit_identical,
    sample_inputs,
    sampled_points,
)

THREAD_COUNTS = (1, 2, 8)
BATCHES = (2, 4, 8)


class TestSampleParallelZooSweep:
    """sample-parallel == serial batched plan == naive oracle, byte for byte."""

    @pytest.mark.parametrize("batch", BATCHES)
    @pytest.mark.parametrize("model_name", SWEEP_ZOO)
    def test_full_graph_bit_identical(self, model_name, batch):
        graph = build_model(model_name)
        serial = GraphExecutor(graph, seed=0, backend="planned", batch=batch)
        # serial batched plan == independent naive batch-1 runs, per sample ...
        out_serial = assert_per_sample_bit_identical(graph, serial, batch)
        xs = sample_inputs(graph, batch)
        x = np.concatenate(xs, axis=0)
        # ... and sample-parallel == serial batched, for every thread count.
        for threads in THREAD_COUNTS:
            parallel = GraphExecutor(
                graph, seed=0, params=serial.params, backend="planned",
                batch=batch, parallelism=ParallelConfig(threads=threads),
            )
            out = parallel.run(x)
            assert out.tobytes() == out_serial.tobytes(), \
                f"{model_name} batch={batch} threads={threads} diverged"
            # Workspace reuse across runs must stay deterministic too.
            assert parallel.run(x).tobytes() == out_serial.tobytes()

    @pytest.mark.parametrize("model_name", SWEEP_ZOO)
    def test_batched_tail_segments_bit_identical(self, model_name):
        """Batched tails at sampled partition points — the server-side path."""
        batch = 4
        graph = build_model(model_name)
        partitioner = GraphPartitioner(graph)
        params = GraphExecutor(graph, seed=0, backend="planned").params
        xs = sample_inputs(graph, batch)
        for point in sampled_points(graph, count=2):
            partitioned = partitioner.partition(point)
            head = SegmentExecutor(partitioned.head, params=params)
            tail_names = list(partitioned.tail.boundary_inputs)
            per_sample, boundary = [], {}
            for x in xs:
                head_out = head.run({name: x for name
                                     in partitioned.head.boundary_inputs})
                per_sample.append({
                    name: (x if name == graph.input_name else head_out[name])
                    for name in tail_names
                })
            for name in tail_names:
                boundary[name] = np.concatenate(
                    [s[name] for s in per_sample], axis=0)
            tail_serial = SegmentExecutor(
                partitioned.tail, params=params, backend="planned", batch=batch,
            ).run(boundary)
            # Serial batched tail == per-sample naive tails (the oracle).
            tail_naive = SegmentExecutor(partitioned.tail, params=params)
            for i, sample_boundary in enumerate(per_sample):
                ref = tail_naive.run(sample_boundary)
                for name, want in ref.items():
                    assert np.array_equal(tail_serial[name][i:i + 1], want), \
                        f"{model_name} point={point} sample {i} tensor {name}"
            # Sample-parallel batched tail == serial batched tail, bytewise.
            for threads in THREAD_COUNTS:
                tail_par = SegmentExecutor(
                    partitioned.tail, params=params, backend="planned",
                    batch=batch, parallelism=ParallelConfig(threads=threads),
                ).run(boundary)
                for name in tail_serial:
                    assert tail_par[name].tobytes() == \
                        tail_serial[name].tobytes(), \
                        f"{model_name} point={point} threads={threads} {name}"


class TestSampleSlicing:
    """Structural properties of the per-sample compile."""

    def test_batched_plan_slices_per_sample(self):
        plan = GraphPlan(build_model("squeezenet"), batch=4,
                         parallel=ParallelConfig(threads=2))
        assert plan.stats.sample_slices == 4
        # 2-D task graph: chains count tasks across every sample slice.
        chains_per_sample = GraphPlan(
            build_model("squeezenet"), parallel=ParallelConfig(threads=2),
        ).stats.chains
        assert plan.stats.chains == 4 * chains_per_sample

    def test_serial_backbone_still_gains_sample_axis(self):
        """AlexNet has one chain, but batch=4 yields four parallel tasks."""
        plan = GraphPlan(build_model("alexnet"), batch=4,
                         parallel=ParallelConfig(threads=2))
        assert plan.stats.sample_slices == 4
        assert plan.stats.chains == 4

    def test_sample_parallel_false_is_chain_only(self):
        """The control arm compiles exactly like PR 4's batched chain plan."""
        graph = build_model("squeezenet")
        batch = 4
        control = GraphPlan(
            graph, batch=batch,
            parallel=ParallelConfig(threads=2, sample_parallel=False))
        assert control.stats.sample_slices == 1
        serial = GraphExecutor(graph, seed=0, backend="planned", batch=batch,
                               params=control.params)
        xs = sample_inputs(graph, batch)
        x = np.concatenate(xs, axis=0)
        assert control.run(x).tobytes() == serial.run(x).tobytes()

    def test_batch_one_never_sample_slices(self):
        plan = GraphPlan(build_model("squeezenet"), batch=1,
                         parallel=ParallelConfig(threads=2))
        assert plan.stats.sample_slices == 1

    def test_serial_batched_plan_unsliced(self):
        """No ParallelConfig => the PR 2 batched compile, untouched."""
        plan = GraphPlan(build_model("alexnet"), batch=4)
        assert plan.stats.sample_slices == 1
        assert plan.stats.pinned_buffers == 0

    def test_keep_intermediates_concatenate_across_samples(self):
        """``keep=`` must return full-batch tensors in sample mode."""
        graph = build_model("alexnet")
        batch = 3
        serial = GraphExecutor(graph, seed=0, backend="planned", batch=batch)
        parallel = GraphExecutor(
            graph, seed=0, params=serial.params, backend="planned",
            batch=batch, parallelism=ParallelConfig(threads=2),
        )
        keep = [graph.topological_order()[1]]
        xs = sample_inputs(graph, batch)
        x = np.concatenate(xs, axis=0)
        serial.run(x, keep=keep)
        parallel.run(x, keep=keep)
        for name in keep:
            want = serial.last_intermediates[name]
            got = parallel.last_intermediates[name]
            assert got.shape[0] == batch
            assert got.tobytes() == want.tobytes()

    def test_segment_plan_sample_slices(self):
        graph = build_model("resnet18")
        point = sampled_points(graph, count=1)[0]
        tail = GraphPartitioner(graph).partition(point).tail
        plan = SegmentPlan(tail, batch=4, parallel=ParallelConfig(threads=2))
        assert plan.stats.sample_slices == 4


class TestSampleParallelRunner:
    def test_folds_sample_dags_with_offsets(self):
        order = []

        def step(tag):
            return lambda: order.append(tag)

        runner = SampleParallelRunner(
            sample_chains=[[[step("a0")], [step("b0")]],
                           [[step("a1")], [step("b1")]]],
            sample_deps=[[set(), {0}], [set(), {0}]],
            threads=1,
        )
        assert runner.samples == 2
        runner.run()
        # Per-sample dependency order holds regardless of interleaving.
        assert order.index("a0") < order.index("b0")
        assert order.index("a1") < order.index("b1")
        assert sorted(order) == ["a0", "a1", "b0", "b1"]

    def test_validates_shapes(self):
        with pytest.raises(ValueError, match="one-to-one"):
            SampleParallelRunner([[[lambda: None]]], [], threads=2)
        with pytest.raises(ValueError, match="at least one"):
            SampleParallelRunner([], [], threads=2)

    def test_cross_sample_runs_complete_under_contention(self):
        """Many samples × chains on a small pool: no lost tasks, no hang."""
        hits = []
        lock_free_append = hits.append  # list.append is atomic under the GIL
        sample_chains, sample_deps = [], []
        for s in range(6):
            sample_chains.append(
                [[lambda s=s, c=c: lock_free_append((s, c))] for c in range(5)])
            sample_deps.append([set() if c == 0 else {c - 1} for c in range(5)])
        runner = SampleParallelRunner(sample_chains, sample_deps, threads=4)
        runner.run()
        assert sorted(hits) == [(s, c) for s in range(6) for c in range(5)]
