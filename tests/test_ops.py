"""Op registry: shape inference, FLOPs (Table I), parameters, arity."""

import pytest

from repro.graph.node import TensorSpec
from repro.graph.ops import OP_REGISTRY, node_flops, op_spec


def infer(op, shapes, **attrs):
    spec = op_spec(op)
    inputs = [TensorSpec(s) for s in shapes]
    return spec.infer_shape(inputs, attrs)


def flops(op, shapes, **attrs):
    inputs = [TensorSpec(s) for s in shapes]
    out = op_spec(op).infer_shape(inputs, attrs)
    return node_flops(op, inputs, out, attrs)


class TestShapeInference:
    def test_conv2d_basic(self):
        out = infer("conv2d", [(1, 3, 224, 224)], out_channels=64, kernel=11, stride=4, padding=2)
        assert out.shape == (1, 64, 55, 55)

    def test_conv2d_same_padding(self):
        out = infer("conv2d", [(1, 8, 14, 14)], out_channels=16, kernel=3, padding=1)
        assert out.shape == (1, 16, 14, 14)

    def test_conv2d_asymmetric_kernel(self):
        out = infer("conv2d", [(1, 8, 17, 17)], out_channels=4, kernel=(1, 7), padding=(0, 3))
        assert out.shape == (1, 4, 17, 17)

    def test_conv2d_rejects_collapsed_output(self):
        with pytest.raises(ValueError):
            infer("conv2d", [(1, 3, 4, 4)], out_channels=8, kernel=7)

    def test_conv2d_rejects_rank3(self):
        with pytest.raises(ValueError):
            infer("conv2d", [(3, 224, 224)], out_channels=8, kernel=3)

    def test_dwconv2d_keeps_channels(self):
        out = infer("dwconv2d", [(1, 32, 16, 16)], kernel=3, padding=1)
        assert out.shape == (1, 32, 16, 16)

    def test_dwconv2d_multiplier(self):
        out = infer("dwconv2d", [(1, 8, 8, 8)], kernel=3, padding=1, channel_multiplier=2)
        assert out.shape == (1, 16, 8, 8)

    def test_matmul(self):
        assert infer("matmul", [(1, 9216)], out_features=4096).shape == (1, 4096)

    def test_matmul_rejects_rank4(self):
        with pytest.raises(ValueError):
            infer("matmul", [(1, 3, 4, 4)], out_features=8)

    def test_maxpool_default_stride_is_kernel(self):
        assert infer("maxpool2d", [(1, 8, 8, 8)], kernel=2).shape == (1, 8, 4, 4)

    def test_maxpool_explicit_stride(self):
        assert infer("maxpool2d", [(1, 64, 55, 55)], kernel=3, stride=2).shape == (1, 64, 27, 27)

    def test_global_avgpool(self):
        assert infer("global_avgpool", [(1, 512, 7, 7)]).shape == (1, 512, 1, 1)

    def test_add_requires_matching_shapes(self):
        with pytest.raises(ValueError):
            infer("add", [(1, 8, 4, 4), (1, 8, 4, 5)])

    def test_concat_channel_axis(self):
        out = infer("concat", [(1, 8, 4, 4), (1, 16, 4, 4)], axis=1)
        assert out.shape == (1, 24, 4, 4)

    def test_concat_rejects_spatial_mismatch(self):
        with pytest.raises(ValueError):
            infer("concat", [(1, 8, 4, 4), (1, 8, 5, 4)], axis=1)

    def test_concat_negative_axis(self):
        out = infer("concat", [(1, 8, 4, 4), (1, 8, 4, 4)], axis=-3)
        assert out.shape == (1, 16, 4, 4)

    def test_flatten(self):
        assert infer("flatten", [(2, 8, 4, 4)]).shape == (2, 128)

    def test_elementwise_keep_shape(self):
        for op in ("relu", "sigmoid", "tanh", "softmax", "batchnorm", "bias_add", "lrn", "dropout"):
            assert infer(op, [(1, 8, 4, 4)]).shape == (1, 8, 4, 4)

    def test_make_tuple_combines_payload(self):
        out = infer("make_tuple", [(1, 8, 4, 4), (1, 16)])
        assert out.shape == (8 * 16 + 16,)


class TestFlopsTable1:
    """Hand-computed Table I values."""

    def test_conv(self):
        # N*C_in*H_out*W_out*K_H*K_W*C_out = 1*3*55*55*11*11*64
        assert flops("conv2d", [(1, 3, 224, 224)], out_channels=64, kernel=11,
                     stride=4, padding=2) == 1 * 3 * 55 * 55 * 11 * 11 * 64

    def test_dwconv(self):
        assert flops("dwconv2d", [(1, 32, 16, 16)], kernel=3, padding=1) == 32 * 16 * 16 * 9

    def test_matmul(self):
        assert flops("matmul", [(1, 9216)], out_features=4096) == 9216 * 4096

    def test_pooling(self):
        # N*C_out*H_out*W_out*K_H*K_W
        assert flops("maxpool2d", [(1, 64, 55, 55)], kernel=3, stride=2) == 64 * 27 * 27 * 9

    def test_global_avgpool_is_input_size(self):
        assert flops("global_avgpool", [(1, 512, 7, 7)]) == 512 * 49

    def test_elementwise_is_input_size(self):
        for op in ("bias_add", "relu", "batchnorm", "sigmoid", "tanh", "softmax", "lrn"):
            assert flops(op, [(1, 8, 14, 14)]) == 8 * 14 * 14

    def test_add_is_input_size(self):
        assert flops("add", [(1, 8, 4, 4), (1, 8, 4, 4)]) == 128

    def test_structural_ops_are_free(self):
        assert flops("flatten", [(1, 8, 4, 4)]) == 0
        assert flops("concat", [(1, 4, 4, 4), (1, 4, 4, 4)]) == 0
        assert flops("dropout", [(1, 8)]) == 0


class TestParams:
    def test_conv_weight_shape(self):
        spec = op_spec("conv2d")
        params = spec.make_params("c", [TensorSpec((1, 3, 8, 8))],
                                  {"out_channels": 16, "kernel": 3})
        assert len(params) == 1
        assert params[0].spec.shape == (16, 3, 3, 3)
        assert params[0].name == "c.weight"

    def test_dwconv_weight_shape(self):
        spec = op_spec("dwconv2d")
        (w,) = spec.make_params("d", [TensorSpec((1, 32, 8, 8))], {"kernel": 3})
        assert w.spec.shape == (32, 1, 3, 3)

    def test_matmul_weight_shape(self):
        spec = op_spec("matmul")
        (w,) = spec.make_params("m", [TensorSpec((1, 128))], {"out_features": 64})
        assert w.spec.shape == (128, 64)

    def test_bias_add_param(self):
        spec = op_spec("bias_add")
        (b,) = spec.make_params("b", [TensorSpec((1, 64, 8, 8))], {})
        assert b.spec.shape == (64,) and b.role == "bias"

    def test_batchnorm_params(self):
        spec = op_spec("batchnorm")
        params = spec.make_params("bn", [TensorSpec((1, 32, 4, 4))], {})
        assert [p.role for p in params] == ["gamma", "beta", "mean", "var"]
        assert all(p.spec.shape == (32,) for p in params)


class TestRegistry:
    def test_unknown_op_raises(self):
        with pytest.raises(KeyError, match="unknown op"):
            op_spec("conv3d")

    def test_arity_checks(self):
        with pytest.raises(ValueError):
            op_spec("add").check_arity(1)
        with pytest.raises(ValueError):
            op_spec("relu").check_arity(2)
        op_spec("concat").check_arity(5)  # unbounded

    def test_all_ops_have_categories_or_none(self):
        from repro.graph.ops import CATEGORIES, FUSED_CATEGORIES

        known = set(CATEGORIES) | set(FUSED_CATEGORIES)
        for name, spec in OP_REGISTRY.items():
            assert spec.category is None or spec.category in known, name

    def test_negative_kernel_rejected(self):
        with pytest.raises(ValueError):
            infer("conv2d", [(1, 3, 8, 8)], out_channels=4, kernel=-3)
