"""NNLS regression: the paper's fitting constraints."""

import numpy as np
import pytest

from repro.profiling.regression import NNLSModel


class TestFit:
    def test_recovers_exact_linear_relation(self, rng):
        X = rng.random((100, 3)) * np.array([1e9, 1e3, 1.0])
        coef = np.array([2e-9, 3e-5, 0.5])
        y = X @ coef
        model = NNLSModel(["a", "b", "c"]).fit(X, y)
        np.testing.assert_allclose(model.coef, coef, rtol=1e-6)

    def test_coefficients_non_negative(self, rng):
        X = rng.random((200, 2))
        # A truly negative relationship on the second feature.
        y = X[:, 0] * 2.0 - X[:, 1] * 5.0 + 10.0
        model = NNLSModel(["a", "b"]).fit(X, y)
        assert np.all(model.coef >= 0)

    def test_zero_features_predict_zero(self, rng):
        """The paper's no-intercept requirement."""
        X = rng.random((50, 2)) + 1.0
        y = X[:, 0] + X[:, 1] + 5.0  # data has an offset the model may not learn
        model = NNLSModel(["a", "b"]).fit(X, y)
        assert model.predict_one(np.zeros(2)) == 0.0

    def test_huge_scale_spread_is_conditioned(self, rng):
        # Feature magnitudes spanning 1e0..1e12, targets in seconds.
        X = np.column_stack([rng.random(300) * 1e12, rng.random(300)])
        coef = np.array([1e-12, 1e-3])
        y = X @ coef
        model = NNLSModel(["flops", "small"]).fit(X, y)
        np.testing.assert_allclose(model.predict(X), y, rtol=1e-6)

    def test_predict_single_row(self, rng):
        X = rng.random((20, 2))
        y = X.sum(axis=1)
        model = NNLSModel(["a", "b"]).fit(X, y)
        assert model.predict_one(np.array([1.0, 1.0])) == pytest.approx(2.0, rel=1e-6)


class TestValidation:
    def test_wrong_feature_count(self, rng):
        with pytest.raises(ValueError):
            NNLSModel(["a", "b"]).fit(rng.random((10, 3)), rng.random(10))

    def test_mismatched_y(self, rng):
        with pytest.raises(ValueError):
            NNLSModel(["a"]).fit(rng.random((10, 1)), rng.random(9))

    def test_underdetermined_rejected(self, rng):
        with pytest.raises(ValueError, match="samples"):
            NNLSModel(["a", "b", "c"]).fit(rng.random((2, 3)), rng.random(2))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            NNLSModel(["a"]).predict(np.ones((1, 1)))

    def test_is_fitted(self, rng):
        model = NNLSModel(["a"])
        assert not model.is_fitted
        model.fit(rng.random((5, 1)), rng.random(5))
        assert model.is_fitted


class TestSerialisation:
    def test_round_trip(self, rng):
        X = rng.random((30, 2))
        y = X @ np.array([1.5, 0.5])
        model = NNLSModel(["a", "b"]).fit(X, y)
        restored = NNLSModel.from_dict(model.to_dict())
        np.testing.assert_allclose(restored.predict(X), model.predict(X))
        assert restored.feature_names == ("a", "b")

    def test_rejects_negative_coef_payload(self):
        with pytest.raises(ValueError):
            NNLSModel.from_dict({"feature_names": ["a"], "coef": [-1.0]})

    def test_to_dict_before_fit(self):
        with pytest.raises(RuntimeError):
            NNLSModel(["a"]).to_dict()
