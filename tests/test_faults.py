"""Fault-injection layer: validation, determinism, and the null identity."""

import math

import numpy as np
import pytest

from repro.network.channel import Channel, NetworkParams, TransferResult
from repro.network.estimator import BandwidthEstimator
from repro.network.faults import FaultPlan, FaultyChannel, ServerFaultPlan
from repro.network.traces import ConstantTrace, OutageTrace


class TestTransferResult:
    def test_from_elapsed_delivered(self):
        r = TransferResult.from_elapsed(100, 0.5)
        assert r.delivered and not r.timed_out
        assert r.elapsed_s == 0.5

    def test_from_elapsed_timeout(self):
        r = TransferResult.from_elapsed(100, 0.5, timeout_s=0.2)
        assert not r.delivered and r.timed_out
        # The device waits out the whole deadline, not the (unknowable)
        # true transfer time.
        assert r.elapsed_s == 0.2

    def test_from_elapsed_infinite(self):
        r = TransferResult.from_elapsed(100, math.inf)
        assert not r.delivered
        assert math.isinf(r.elapsed_s)

    def test_failed_with_budget(self):
        r = TransferResult.failed(100, timeout_s=0.3)
        assert not r.delivered and r.elapsed_s == 0.3


class TestFaultPlanValidation:
    def test_defaults_are_null(self):
        plan = FaultPlan()
        assert plan.is_null
        assert not plan.in_outage(1.0)

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            FaultPlan(drop_prob=1.5)
        with pytest.raises(ValueError):
            FaultPlan(latency_spike_prob=-0.1)

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            FaultPlan(outages=((2.0, 1.0),))
        with pytest.raises(ValueError):
            FaultPlan(outages=((0.0, 2.0), (1.0, 3.0)))  # overlap

    def test_rejects_bad_spike(self):
        with pytest.raises(ValueError):
            FaultPlan(latency_spike_s=-1.0)

    def test_server_plan_validation(self):
        with pytest.raises(ValueError):
            ServerFaultPlan(queue_limit=0)
        with pytest.raises(ValueError):
            ServerFaultPlan(retry_after_s=-1.0)
        with pytest.raises(ValueError):
            ServerFaultPlan(crash_windows=((5.0, 4.0),))

    def test_server_restarts_before(self):
        plan = ServerFaultPlan(crash_windows=((1.0, 2.0), (5.0, 6.0)))
        assert plan.restarts_before(0.5) == 0
        assert plan.is_down(1.5)
        assert plan.restarts_before(3.0) == 1
        assert plan.restarts_before(10.0) == 2


class TestNetworkParamsValidation:
    def test_rejects_negative_latency(self):
        with pytest.raises(ValueError):
            NetworkParams(base_latency_s=-0.001)

    def test_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            NetworkParams(jitter_sigma=-0.1)


class TestFaultyChannel:
    def _channels(self, plan):
        trace = ConstantTrace(8e6)
        return Channel(trace), FaultyChannel(trace, plan)

    def test_null_plan_byte_identical(self):
        # The crux: a zero-rate plan must consume NO extra randomness, so
        # the fault-free path is bit-identical with and without the wrapper.
        plain, faulty = self._channels(FaultPlan())
        r1 = np.random.default_rng(5)
        r2 = np.random.default_rng(5)
        for t in np.linspace(0.0, 10.0, 25):
            a = plain.try_upload(50_000, t, r1)
            b = faulty.try_upload(50_000, t, r2)
            assert a == b
            assert plain.try_download(10_000, t, r1) == faulty.try_download(10_000, t, r2)

    def test_same_seed_same_faults(self):
        plan = FaultPlan(drop_prob=0.3, latency_spike_prob=0.2, seed=9)
        trace = ConstantTrace(8e6)
        outcomes = []
        for _ in range(2):
            ch = FaultyChannel(trace, plan)
            rng = np.random.default_rng(5)
            outcomes.append([ch.try_upload(50_000, t, rng)
                             for t in np.linspace(0.0, 10.0, 40)])
        assert outcomes[0] == outcomes[1]

    def test_drops_occur_and_carry_timeout(self):
        plan = FaultPlan(drop_prob=0.5, seed=3)
        _, faulty = self._channels(plan)
        rng = np.random.default_rng(1)
        results = [faulty.try_upload(50_000, float(t), rng, timeout_s=0.8)
                   for t in range(50)]
        dropped = [r for r in results if not r.delivered]
        assert dropped, "0.5 drop probability produced no drops in 50 tries"
        assert all(r.elapsed_s == 0.8 and r.timed_out for r in dropped)
        assert any(r.delivered for r in results)

    def test_outage_window_fails_everything(self):
        plan = FaultPlan(outages=((2.0, 4.0),))
        _, faulty = self._channels(plan)
        rng = np.random.default_rng(1)
        assert faulty.try_upload(1000, 1.0, rng).delivered
        r = faulty.try_upload(1000, 3.0, rng, timeout_s=0.5)
        assert not r.delivered and r.elapsed_s == 0.5
        assert faulty.try_upload(1000, 5.0, rng).delivered

    def test_latency_spike_adds_delay(self):
        trace = ConstantTrace(8e6)
        always = FaultyChannel(trace, FaultPlan(latency_spike_prob=1.0,
                                                latency_spike_s=0.5, seed=2))
        never = Channel(trace)
        r_spiked = always.try_upload(50_000, 0.0, np.random.default_rng(4))
        r_plain = never.try_upload(50_000, 0.0, np.random.default_rng(4))
        assert r_spiked.elapsed_s == pytest.approx(r_plain.elapsed_s + 0.5)


class TestOutageTrace:
    def test_zero_bandwidth_in_window(self):
        trace = OutageTrace(ConstantTrace(8e6), ((1.0, 2.0),))
        assert trace.upload_at(0.5) == 8e6
        assert trace.upload_at(1.5) == 0.0
        assert trace.download_at(1.5) == 0.0
        assert trace.in_outage(1.5)

    def test_mean_time_infinite_during_outage(self):
        ch = Channel(OutageTrace(ConstantTrace(8e6), ((1.0, 2.0),)))
        assert math.isinf(ch.mean_upload_time(1000, 1.5))
        rng = np.random.default_rng(0)
        assert not ch.try_upload(1000, 1.5, rng, timeout_s=0.5).delivered

    def test_rejects_bad_windows(self):
        with pytest.raises(ValueError):
            OutageTrace(ConstantTrace(8e6), ((3.0, 2.0),))


class TestEstimatorResilience:
    def test_failure_evidence_lowers_estimate(self):
        est = BandwidthEstimator()
        for i in range(4):
            est.add_probe(float(i), 100_000, 0.1)  # 8 Mbps
        healthy = est.estimate()
        for i in range(8):
            est.add_failure(4.0 + i, 100_000, 2.0)  # bound: 0.4 Mbps
        assert est.estimate() < healthy
        assert est.failure_fraction > 0.5

    def test_failure_with_degenerate_elapsed_ignored(self):
        est = BandwidthEstimator()
        est.add_failure(0.0, 100_000, math.inf)
        est.add_failure(0.0, 100_000, 0.0)
        assert est.sample_count == 0

    def test_window_s_expires_old_samples(self):
        est = BandwidthEstimator(window_s=10.0)
        est.add_probe(0.0, 100_000, 0.1)    # 8 Mbps
        est.add_probe(1.0, 100_000, 0.1)
        est.add_probe(20.0, 100_000, 0.025)  # 32 Mbps, others expired
        assert est.estimate() == pytest.approx(32e6)
        assert est.sample_count == 1

    def test_no_window_keeps_samples(self):
        est = BandwidthEstimator()
        est.add_probe(0.0, 100_000, 0.1)
        est.add_probe(100.0, 100_000, 0.1)
        assert est.sample_count == 2


class TestPerServerStreams:
    """Satellite: fault RNG streams keyed by ``(seed, server_id)``."""

    def test_for_server_zero_is_identity(self):
        plan = FaultPlan(seed=7, drop_prob=0.2)
        assert plan.for_server(0) is plan

    def test_for_server_is_deterministic(self):
        plan = FaultPlan(seed=7, drop_prob=0.2)
        assert plan.for_server(3) == plan.for_server(3)

    def test_for_server_streams_are_independent(self):
        plan = FaultPlan(seed=7, drop_prob=0.2)
        seeds = {plan.for_server(s).seed for s in range(6)}
        assert len(seeds) == 6

    def test_for_server_rejects_negative(self):
        with pytest.raises(ValueError):
            FaultPlan(seed=7).for_server(-1)

    def test_adding_a_server_never_perturbs_siblings(self):
        """Growing the fleet keeps every existing server's plan fixed."""
        plan = FaultPlan(seed=13, drop_prob=0.1)
        small = [plan.for_server(s) for s in range(2)]
        large = [plan.for_server(s) for s in range(5)]
        assert large[:2] == small


class TestChaosPlans:
    def test_windows_fit_the_horizon(self):
        for sid in range(4):
            plan = ServerFaultPlan.chaos(seed=3, server_id=sid,
                                         horizon_s=10.0, crashes=3)
            for start, end in plan.crash_windows:
                assert 0.0 <= start < end <= 10.0

    def test_deterministic_per_server(self):
        a = ServerFaultPlan.chaos(seed=3, server_id=1, horizon_s=10.0)
        b = ServerFaultPlan.chaos(seed=3, server_id=1, horizon_s=10.0)
        assert a == b

    def test_servers_get_distinct_schedules(self):
        plans = [ServerFaultPlan.chaos(seed=3, server_id=s, horizon_s=10.0)
                 for s in range(4)]
        assert len({p.crash_windows for p in plans}) > 1

    def test_windows_are_disjoint_and_ordered(self):
        plan = ServerFaultPlan.chaos(seed=5, server_id=0, horizon_s=20.0,
                                     crashes=5)
        windows = plan.crash_windows
        for (s1, e1), (s2, e2) in zip(windows, windows[1:]):
            assert e1 <= s2

    def test_every_crash_has_an_observable_restart(self):
        plan = ServerFaultPlan.chaos(seed=5, server_id=2, horizon_s=8.0,
                                     crashes=2)
        assert plan.restarts_before(8.0) == len(plan.crash_windows)
