"""Device cost model: structure, calibration bands, noise."""

import numpy as np
import pytest

from repro.hardware.device_model import DeviceModel, DeviceParams, lognormal_factor
from repro.models import build_model
from repro.profiling.features import profile_graph
from tests.test_features import make_profile


@pytest.fixture(scope="module")
def device():
    return DeviceModel()


class TestStructure:
    def test_uncategorised_nodes_are_free(self, device):
        p = make_profile("flatten", (1, 8, 4, 4))
        assert device.mean_time(p) == 0.0

    def test_monotone_in_flops(self, device):
        small = make_profile("conv2d", (1, 64, 28, 28), out_channels=64, kernel=3, padding=1)
        large = make_profile("conv2d", (1, 64, 28, 28), out_channels=256, kernel=3, padding=1)
        assert device.mean_time(large) > device.mean_time(small)

    def test_few_channel_penalty(self, device):
        # Same FLOPs, different channel balance: 3-in is less efficient.
        few = make_profile("conv2d", (1, 3, 56, 56), out_channels=64, kernel=3, padding=1)
        many = make_profile("conv2d", (1, 64, 56, 56), out_channels=3, kernel=3, padding=1)
        assert few.flops == many.flops
        assert device.mean_time(few) > device.mean_time(many)

    def test_cache_spill_penalty(self, device):
        # Equal FLOPs; the large-map config has a far bigger working set.
        big_map = make_profile("conv2d", (1, 16, 112, 112), out_channels=64, kernel=3, padding=1)
        small_map = make_profile("conv2d", (1, 256, 28, 28), out_channels=64, kernel=3, padding=1)
        assert big_map.flops == small_map.flops
        per_flop_big = device.mean_time(big_map) / big_map.flops
        per_flop_small = device.mean_time(small_map) / small_map.flops
        assert per_flop_big > per_flop_small

    def test_setup_cost_amortises(self, device):
        tiny = make_profile("conv2d", (1, 64, 14, 14), out_channels=16, kernel=1)
        per_flop_tiny = device.mean_time(tiny) / tiny.flops
        big = make_profile("conv2d", (1, 256, 56, 56), out_channels=256, kernel=3, padding=1)
        per_flop_big = device.mean_time(big) / big.flops
        assert per_flop_tiny > 3 * per_flop_big

    def test_matmul_includes_weight_streaming(self, device):
        p = make_profile("matmul", (1, 9216), out_features=4096)
        weight_stream = p.param_bytes / device.params.mem_bandwidth
        assert device.mean_time(p) > weight_stream

    def test_pointwise_cache_discount(self):
        params = DeviceParams()
        device = DeviceModel(params)
        pw = make_profile("conv2d", (1, 728, 37, 37), out_channels=728, kernel=1)
        spatial = make_profile("conv2d", (1, 728, 37, 37), out_channels=728, kernel=3, padding=1)
        # The 3x3 has 9x the FLOPs; per-FLOP it must still be slower than
        # the streaming 1x1 at this working-set size.
        assert device.mean_time(spatial) / spatial.flops > device.mean_time(pw) / pw.flops


class TestCalibration:
    """Local-inference times against the paper's stated values."""

    @pytest.mark.parametrize("model,lo,hi", [
        ("alexnet", 0.20, 0.40),     # Figs. 1/7 imply a few hundred ms
        ("vgg16", 4.6, 6.5),         # paper: ~5.2 s
        ("xception", 1.5, 2.6),      # paper: ~1.8 s
        ("resnet18", 0.40, 0.61),    # must be under the 8 Mbps full-offload time
        ("squeezenet", 0.15, 0.40),
        ("resnet50", 0.8, 1.7),
    ])
    def test_local_inference_bands(self, device, model, lo, hi):
        total = device.mean_graph_time(profile_graph(build_model(model)))
        assert lo <= total <= hi, f"{model}: {total:.3f}s outside [{lo}, {hi}]"

    def test_resnet18_local_beats_8mbps_offload(self, device):
        """§V-B/V-C: ResNet18 runs locally at 8 Mbps."""
        graph = build_model("resnet18")
        local = device.mean_graph_time(profile_graph(graph))
        upload = graph.input_spec.nbytes * 8 / 8e6
        assert local < upload

    def test_vgg_prefix_dwarfs_1mbps_upload(self, device):
        """§V-B: any VGG16 prefix on the device loses to uploading raw input."""
        graph = build_model("vgg16")
        profiles = profile_graph(graph)
        upload_1mbps = graph.input_spec.nbytes * 8 / 1e6
        sizes = graph.transmission_sizes()
        device_prefix = 0.0
        for i, profile in enumerate(profiles, start=1):
            device_prefix += device.mean_time(profile)
            if sizes[i] < graph.input_spec.nbytes:
                # Earliest viable partition point: prefix must already lose.
                assert device_prefix + sizes[i] * 8 / 1e6 > upload_1mbps
                break


class TestNoise:
    def test_lognormal_factor_mean_one(self, rng):
        samples = [lognormal_factor(rng, 0.1) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(1.0, abs=0.01)

    def test_zero_sigma_is_deterministic(self, rng):
        assert lognormal_factor(rng, 0.0) == 1.0

    def test_sample_time_close_to_mean(self, device, rng):
        p = make_profile("conv2d", (1, 64, 28, 28), out_channels=64, kernel=3, padding=1)
        samples = [device.sample_time(p, rng) for _ in range(500)]
        assert np.mean(samples) == pytest.approx(device.mean_time(p), rel=0.02)

    def test_sample_graph_time_positive(self, device, rng, chain_graph):
        assert device.sample_graph_time(profile_graph(chain_graph), rng) > 0
