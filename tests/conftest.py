"""Test-local fixtures: small graphs and an RNG.

The trained-predictor and engine fixtures (``trained_report``,
``alexnet_engine``, ``squeezenet_engine``, ``engine_for``) live in the
repository-root ``conftest.py``, shared with ``benchmarks/``.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

# Skip plan-compile autotuning in tests: candidate choice only affects
# speed, never results (all candidates are bit-identical by construction).
os.environ.setdefault("REPRO_PLAN_FAST_COMPILE", "1")

from repro.graph.builder import GraphBuilder


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def chain_graph():
    """A tiny chain: conv -> bias -> relu -> pool -> flatten -> fc."""
    b = GraphBuilder("chain", (1, 3, 16, 16))
    x = b.conv(b.input, 8, kernel=3, padding=1, name="conv")
    x = b.bias_add(x, name="bias")
    x = b.relu(x, name="relu")
    x = b.maxpool(x, kernel=2, name="pool")
    x = b.flatten(x, name="flat")
    x = b.matmul(x, 10, name="fc")
    b.output(x)
    return b.build()


@pytest.fixture
def diamond_graph():
    """A DAG with two branches joined by an add (residual-style)."""
    b = GraphBuilder("diamond", (1, 4, 8, 8))
    stem = b.conv(b.input, 8, kernel=3, padding=1, name="stem")
    left = b.conv(stem, 8, kernel=3, padding=1, name="left")
    right = b.conv(stem, 8, kernel=1, name="right")
    joined = b.add(left, right, name="join")
    out = b.relu(joined, name="out")
    b.output(out)
    return b.build()


@pytest.fixture
def fire_graph():
    """A SqueezeNet-style fire module with a concat join."""
    b = GraphBuilder("fire", (1, 16, 8, 8))
    s = b.conv(b.input, 4, kernel=1, name="squeeze")
    e1 = b.conv(s, 8, kernel=1, name="e1")
    e3 = b.conv(s, 8, kernel=3, padding=1, name="e3")
    cat = b.concat([e1, e3], name="cat")
    b.output(cat)
    return b.build()
