"""LoADPartEngine: prediction plumbing and decision consistency."""

import pytest

from repro.core.engine import LoADPartEngine
from repro.models import build_model


class TestConstruction:
    def test_rejects_swapped_predictors(self, trained_report):
        g = build_model("alexnet")
        with pytest.raises(ValueError):
            LoADPartEngine(g, trained_report.edge_predictor, trained_report.edge_predictor)
        with pytest.raises(ValueError):
            LoADPartEngine(g, trained_report.user_predictor, trained_report.user_predictor)

    def test_num_nodes(self, alexnet_engine):
        assert alexnet_engine.num_nodes == 27


class TestComponents:
    def test_prefix_matches_cumsum(self, alexnet_engine):
        total = 0.0
        for p in range(alexnet_engine.num_nodes + 1):
            assert alexnet_engine.predicted_device_time(p) == pytest.approx(total)
            if p < alexnet_engine.num_nodes:
                total += alexnet_engine.device_times[p]

    def test_suffix_scales_with_k(self, alexnet_engine):
        base = alexnet_engine.predicted_server_time(4, k=1.0)
        assert alexnet_engine.predicted_server_time(4, k=7.0) == pytest.approx(7 * base)

    def test_upload_time(self, alexnet_engine):
        expected = alexnet_engine.sizes[4] * 8 / 8e6
        assert alexnet_engine.predicted_upload_time(4, 8e6) == pytest.approx(expected)

    def test_upload_time_local_is_zero(self, alexnet_engine):
        assert alexnet_engine.predicted_upload_time(alexnet_engine.num_nodes, 8e6) == 0.0

    def test_head_tail_profiles_partition_the_graph(self, alexnet_engine):
        n = alexnet_engine.num_nodes
        for p in (0, 5, n):
            head = alexnet_engine.head_profiles(p)
            tail = alexnet_engine.tail_profiles(p)
            assert len(head) == p and len(tail) == n - p

    def test_point_range_checked(self, alexnet_engine):
        with pytest.raises(ValueError):
            alexnet_engine.predicted_server_time(-1)
        with pytest.raises(ValueError):
            alexnet_engine.predicted_device_time(99)


class TestDecisions:
    def test_decision_candidates_decompose(self, alexnet_engine):
        decision = alexnet_engine.decide(8e6, k=2.0)
        for p in (0, 4, 10, alexnet_engine.num_nodes):
            expected = alexnet_engine.predicted_device_time(p)
            expected += alexnet_engine.predicted_server_time(p, k=2.0)
            expected += alexnet_engine.predicted_upload_time(p, 8e6) if p < alexnet_engine.num_nodes else 0.0
            assert decision.candidates[p] == pytest.approx(expected)

    def test_paper_alexnet_trajectory(self, alexnet_engine):
        """Early points at high bandwidth, local at very low bandwidth."""
        high = alexnet_engine.decide(64e6).point
        low = alexnet_engine.decide(1e6).point
        assert 0 <= high <= 8
        assert low == alexnet_engine.num_nodes

    def test_paper_squeezenet_partial_at_8mbps(self, squeezenet_engine):
        point = squeezenet_engine.decide(8e6).point
        assert 0 < point < squeezenet_engine.num_nodes

    def test_squeezenet_goes_local_under_extreme_load(self, squeezenet_engine):
        point = squeezenet_engine.decide(8e6, k=2000.0).point
        assert point == squeezenet_engine.num_nodes
