"""LatencyPredictor: prediction semantics and persistence."""

import numpy as np
import pytest

from repro.graph.ops import CATEGORIES
from repro.profiling.features import profile_graph
from repro.profiling.predictor import LatencyPredictor


class TestConstruction:
    def test_bad_side(self, trained_report):
        with pytest.raises(ValueError, match="side"):
            LatencyPredictor("cloud", trained_report.user_predictor.models)

    def test_missing_category(self, trained_report):
        models = dict(trained_report.user_predictor.models)
        models.pop("conv")
        with pytest.raises(ValueError, match="missing models"):
            LatencyPredictor("device", models)


class TestPrediction:
    def test_predictions_non_negative(self, trained_report, chain_graph):
        for predictor in (trained_report.user_predictor, trained_report.edge_predictor):
            times = predictor.predict_nodes(profile_graph(chain_graph))
            assert np.all(times >= 0)

    def test_uncategorised_nodes_predict_zero(self, trained_report, fire_graph):
        profiles = profile_graph(fire_graph)
        concat = [p for p in profiles if p.op == "concat"][0]
        assert trained_report.user_predictor.predict(concat) == 0.0
        assert trained_report.edge_predictor.predict(concat) == 0.0

    def test_total_is_sum_of_nodes(self, trained_report, chain_graph):
        profiles = profile_graph(chain_graph)
        predictor = trained_report.user_predictor
        assert predictor.predict_total(profiles) == pytest.approx(
            float(predictor.predict_nodes(profiles).sum())
        )

    def test_device_predictions_exceed_edge(self, trained_report):
        """The Pi is far slower than the T4 for any real graph."""
        from repro.models import build_model

        profiles = profile_graph(build_model("alexnet"))
        device = trained_report.user_predictor.predict_total(profiles)
        edge = trained_report.edge_predictor.predict_total(profiles)
        assert device > 10 * edge


class TestPersistence:
    def test_json_round_trip(self, trained_report, chain_graph):
        predictor = trained_report.user_predictor
        restored = LatencyPredictor.from_json(predictor.to_json())
        assert restored.side == predictor.side
        profiles = profile_graph(chain_graph)
        np.testing.assert_allclose(
            restored.predict_nodes(profiles), predictor.predict_nodes(profiles)
        )

    def test_json_has_all_categories(self, trained_report):
        import json

        payload = json.loads(trained_report.edge_predictor.to_json())
        assert set(payload["models"]) == set(CATEGORIES)


class TestFit:
    def test_fit_rejects_empty_category(self, trained_report):
        with pytest.raises(ValueError, match="no samples"):
            LatencyPredictor.fit("device", {"conv": []})
