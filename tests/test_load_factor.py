"""LoadFactorMonitor and GpuWatchdog (§III-C / §IV)."""

import pytest

from repro.core.load_factor import GpuWatchdog, LoadFactorMonitor


class TestMonitor:
    def test_initial_value_is_one(self):
        assert LoadFactorMonitor().value == 1.0

    def test_k_is_ratio_of_sums(self):
        m = LoadFactorMonitor(window_s=10.0)
        m.record(0.0, actual_s=0.030, predicted_s=0.010)
        m.record(1.0, actual_s=0.010, predicted_s=0.010)
        assert m.refresh(1.0) == pytest.approx(0.040 / 0.020)

    def test_k_clamped_at_one(self):
        """Constraint (1c): k >= 1 even if the model overpredicts."""
        m = LoadFactorMonitor()
        m.record(0.0, actual_s=0.005, predicted_s=0.010)
        assert m.refresh(0.0) == 1.0

    def test_k_clamped_at_max(self):
        m = LoadFactorMonitor(max_factor=100.0)
        m.record(0.0, actual_s=10.0, predicted_s=0.001)
        assert m.refresh(0.0) == 100.0

    def test_window_eviction(self):
        m = LoadFactorMonitor(window_s=5.0)
        m.record(0.0, actual_s=1.0, predicted_s=0.01)  # k would be 100
        m.record(10.0, actual_s=0.02, predicted_s=0.01)
        assert m.refresh(10.0) == pytest.approx(2.0)
        assert m.sample_count == 1

    def test_value_sticky_when_window_empties(self):
        """Staleness: without new offloads, k keeps its last value (§IV)."""
        m = LoadFactorMonitor(window_s=1.0)
        m.record(0.0, actual_s=0.05, predicted_s=0.01)
        assert m.refresh(0.0) == pytest.approx(5.0)
        assert m.refresh(100.0) == pytest.approx(5.0)  # stale but sticky
        assert m.sample_count == 0

    def test_reset(self):
        m = LoadFactorMonitor()
        m.record(0.0, actual_s=0.05, predicted_s=0.01)
        m.refresh(0.0)
        m.reset()
        assert m.value == 1.0
        assert m.sample_count == 0

    def test_invalid_records(self):
        m = LoadFactorMonitor()
        with pytest.raises(ValueError):
            m.record(0.0, actual_s=-1.0, predicted_s=0.01)
        with pytest.raises(ValueError):
            m.record(0.0, actual_s=1.0, predicted_s=0.0)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            LoadFactorMonitor(window_s=0.0)


class TestWatchdog:
    def _loaded_monitor(self):
        m = LoadFactorMonitor()
        m.record(0.0, actual_s=0.10, predicted_s=0.01)
        m.refresh(0.0)
        assert m.value == pytest.approx(10.0)
        return m

    def test_resets_when_gpu_recovers(self):
        m = self._loaded_monitor()
        dog = GpuWatchdog(m, threshold=0.9, period_s=10.0)
        assert dog.maybe_check(0.0, gpu_utilization=0.3) is True
        assert m.value == 1.0

    def test_no_reset_when_gpu_busy(self):
        m = self._loaded_monitor()
        dog = GpuWatchdog(m, threshold=0.9, period_s=10.0)
        assert dog.maybe_check(0.0, gpu_utilization=0.95) is False
        assert m.value == pytest.approx(10.0)

    def test_respects_period(self):
        m = self._loaded_monitor()
        dog = GpuWatchdog(m, threshold=0.9, period_s=10.0)
        dog.maybe_check(0.0, gpu_utilization=0.95)
        # Load drops, but the next check is not due yet.
        assert dog.maybe_check(5.0, gpu_utilization=0.1) is False
        assert m.value == pytest.approx(10.0)
        assert dog.maybe_check(10.0, gpu_utilization=0.1) is True
        assert m.value == 1.0

    def test_no_reset_when_k_already_one(self):
        m = LoadFactorMonitor()
        dog = GpuWatchdog(m)
        assert dog.maybe_check(0.0, gpu_utilization=0.0) is False

    def test_validation(self):
        m = LoadFactorMonitor()
        with pytest.raises(ValueError):
            GpuWatchdog(m, threshold=0.0)
        with pytest.raises(ValueError):
            GpuWatchdog(m, period_s=0.0)


class TestMonitorAge:
    def test_empty_monitor_is_infinitely_stale(self):
        import math

        from repro.core.load_factor import LoadFactorMonitor

        assert math.isinf(LoadFactorMonitor(window_s=5.0).age_s(3.0))

    def test_age_tracks_latest_record(self):
        from repro.core.load_factor import LoadFactorMonitor

        m = LoadFactorMonitor(window_s=5.0)
        m.record(1.0, 0.1, 0.1)
        assert m.age_s(3.0) == 2.0
        assert m.age_s(0.5) == 0.0   # clamped, never negative
