"""ComputationGraph: construction, topological order, cuts."""

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.graph import ComputationGraph, GraphError
from repro.graph.node import CNode, TensorSpec


class TestConstruction:
    def test_duplicate_name_rejected(self):
        g = ComputationGraph("g", TensorSpec((1, 4)))
        g.add_node(CNode("a", "relu", ["input"]))
        with pytest.raises(GraphError, match="duplicate"):
            g.add_node(CNode("a", "relu", ["input"]))

    def test_node_named_like_input_rejected(self):
        g = ComputationGraph("g", TensorSpec((1, 4)))
        with pytest.raises(GraphError):
            g.add_node(CNode("input", "relu", ["input"]))

    def test_unknown_input_rejected(self):
        g = ComputationGraph("g", TensorSpec((1, 4)))
        with pytest.raises(GraphError, match="unknown input"):
            g.add_node(CNode("a", "relu", ["nope"]))

    def test_output_must_exist(self):
        g = ComputationGraph("g", TensorSpec((1, 4)))
        with pytest.raises(GraphError):
            g.set_output("missing")

    def test_shapes_inferred_on_add(self, chain_graph):
        assert chain_graph.node("conv").output.shape == (1, 8, 16, 16)
        assert chain_graph.node("fc").output.shape == (1, 10)

    def test_params_attached(self, chain_graph):
        assert chain_graph.node("conv").params[0].spec.shape == (8, 3, 3, 3)
        assert chain_graph.node("fc").params[0].spec.shape == (512, 10)

    def test_output_spec(self, chain_graph):
        assert chain_graph.output_spec.shape == (1, 10)

    def test_len_and_contains(self, chain_graph):
        assert len(chain_graph) == 6
        assert "conv" in chain_graph
        assert "nope" not in chain_graph


class TestValidation:
    def test_valid_graph_passes(self, chain_graph, diamond_graph, fire_graph):
        chain_graph.validate()
        diamond_graph.validate()
        fire_graph.validate()

    def test_dead_node_detected(self):
        b = GraphBuilder("g", (1, 4))
        x = b.relu(b.input, name="a")
        b.relu(b.input, name="dead")
        b.output(x)
        with pytest.raises(GraphError, match="dead"):
            b.graph.validate()

    def test_missing_output_detected(self):
        g = ComputationGraph("g", TensorSpec((1, 4)))
        g.add_node(CNode("a", "relu", ["input"]))
        with pytest.raises(GraphError, match="no output"):
            g.validate()

    def test_empty_graph_detected(self):
        g = ComputationGraph("g", TensorSpec((1, 4)))
        with pytest.raises(GraphError):
            g.validate()


class TestTopologicalOrder:
    def test_chain_order(self, chain_graph):
        assert chain_graph.topological_order() == ["conv", "bias", "relu", "pool", "flat", "fc"]

    def test_diamond_order_is_valid(self, diamond_graph):
        order = diamond_graph.topological_order()
        pos = {n: i for i, n in enumerate(order)}
        assert pos["stem"] < pos["left"]
        assert pos["stem"] < pos["right"]
        assert pos["left"] < pos["join"]
        assert pos["right"] < pos["join"]
        assert pos["join"] < pos["out"]

    def test_order_deterministic_across_rebuilds(self):
        def build():
            b = GraphBuilder("g", (1, 4, 8, 8))
            s = b.conv(b.input, 4, kernel=1, name="s")
            a = b.relu(s, name="a")
            c = b.sigmoid(s, name="c")
            j = b.add(a, c, name="j")
            b.output(j)
            return b.build().topological_order()

        assert build() == build()

    def test_order_cached_copy_is_isolated(self, chain_graph):
        order = chain_graph.topological_order()
        order.append("tampered")
        assert "tampered" not in chain_graph.topological_order()


class TestCuts:
    def test_s0_is_input_size(self, chain_graph):
        sizes = chain_graph.transmission_sizes()
        assert sizes[0] == chain_graph.input_spec.nbytes

    def test_sn_is_zero(self, chain_graph):
        assert chain_graph.transmission_sizes()[-1] == 0

    def test_chain_cut_sizes_track_node_outputs(self, chain_graph):
        sizes = chain_graph.transmission_sizes()
        order = chain_graph.topological_order()
        for i, name in enumerate(order[:-1], start=1):
            assert sizes[i] == chain_graph.node(name).output.nbytes

    def test_chain_cuts_have_width_one(self, chain_graph):
        cuts = chain_graph.cuts()
        for cut in cuts[1:-1]:
            assert cut.width == 1

    def test_diamond_cut_width_two_inside_block(self, diamond_graph):
        cuts = diamond_graph.cuts()
        order = diamond_graph.topological_order()
        # After both branches started but before the join: two tensors cross.
        widths = {cut.index: cut.width for cut in cuts}
        # Position after the first branch node (index 2): stem output still
        # needed by the other branch, plus the finished branch output.
        assert widths[2] == 2

    def test_diamond_cut_bytes_sum_crossing_tensors(self, diamond_graph):
        cuts = diamond_graph.cuts()
        cut = cuts[2]
        total = 0
        for name in cut.crossing:
            if name == diamond_graph.input_name:
                total += diamond_graph.input_spec.nbytes
            else:
                total += diamond_graph.node(name).output.nbytes
        assert cut.upload_bytes == total

    def test_input_crossing_when_consumed_late(self):
        b = GraphBuilder("g", (1, 4, 8, 8))
        a = b.conv(b.input, 4, kernel=3, padding=1, name="a")
        a = b.relu(a, name="r")
        # A long skip connection from the raw input.
        skip = b.conv(b.input, 4, kernel=1, name="skip")
        j = b.add(a, skip, name="j")
        b.output(j)
        g = b.build()
        cuts = g.cuts()
        order = g.topological_order()
        # Cut right after "a": input must still cross (skip not computed yet).
        idx = order.index("a") + 1
        if order[: idx] == ["a"]:
            assert g.input_name in cuts[idx].crossing

    def test_flops_of_matches_registry(self, chain_graph):
        assert chain_graph.flops_of("conv") == 3 * 16 * 16 * 9 * 8
        assert chain_graph.flops_of("fc") == 512 * 10

    def test_total_flops_positive(self, chain_graph):
        assert chain_graph.total_flops() > 0

    def test_summary_contains_nodes(self, chain_graph):
        text = chain_graph.summary()
        assert "conv" in text and "GFLOPs" in text


class TestConsumers:
    def test_consumer_map(self, diamond_graph):
        consumers = diamond_graph.consumers()
        assert set(consumers["stem"]) == {"left", "right"}
        assert consumers["out"] == []
        assert consumers[diamond_graph.input_name] == ["stem"]
