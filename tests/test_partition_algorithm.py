"""Algorithm 1: correctness against brute force, tie-breaking, constraints."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.partition_algorithm import (
    PartitionDecision,
    compute_prefix_device,
    compute_suffix_edge,
    partition_decision,
)
from tests.helpers import ZOO, brute_force


times = st.lists(st.floats(0.0, 1.0), min_size=1, max_size=40)


class TestAgainstBruteForce:
    @given(
        device=times,
        seed=st.integers(0, 2**31),
        bw=st.floats(1e5, 1e8),
        k=st.floats(1.0, 500.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_brute_force(self, device, seed, bw, k):
        rng = np.random.default_rng(seed)
        n = len(device)
        edge = rng.random(n).tolist()
        sizes = (rng.integers(0, 10**6, n + 1)).tolist()
        sizes[n] = 0
        decision = partition_decision(device, edge, sizes, bw, k=k)
        bf_p, bf_val = brute_force(device, edge, sizes, bw, k)
        assert decision.point == bf_p
        assert decision.predicted_latency == pytest.approx(bf_val, rel=1e-9, abs=1e-12)

    @given(seed=st.integers(0, 2**31))
    @settings(max_examples=50, deadline=None)
    def test_download_term_matches_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        n = 10
        device = rng.random(n).tolist()
        edge = rng.random(n).tolist()
        sizes = rng.integers(0, 10**6, n + 1).tolist()
        decision = partition_decision(
            device, edge, sizes, 8e6, k=2.0, bandwidth_down=4e6, output_bytes=4000
        )
        bf_p, bf_val = brute_force(device, edge, sizes, 8e6, 2.0, 4e6, 4000)
        assert decision.point == bf_p
        assert decision.predicted_latency == pytest.approx(bf_val, rel=1e-9)


class TestZooAgainstBruteForce:
    """Algorithm 1 == brute-force argmin on every *real* zoo profile.

    The synthetic sweeps above draw random per-node times; this property
    runs the same check over the profiled device/edge times and transfer
    sizes of every zoo model, with random network conditions — the inputs
    the online decision loop actually sees.
    """

    @pytest.mark.parametrize("model_name", ZOO)
    @given(
        bw=st.floats(1e5, 1e8),
        k=st.floats(1.0, 500.0),
        bw_down=st.one_of(st.none(), st.floats(1e5, 1e8)),
        out_bytes=st.integers(0, 10**6),
    )
    @settings(max_examples=30, deadline=None)
    def test_zoo_profiles_match_brute_force(self, engine_for, model_name,
                                            bw, k, bw_down, out_bytes):
        engine = engine_for(model_name)
        device, edge, sizes = (engine.device_times, engine.edge_times,
                               engine.sizes)
        decision = partition_decision(
            device, edge, sizes, bw, k=k,
            bandwidth_down=bw_down, output_bytes=out_bytes,
        )
        bf_p, bf_val = brute_force(device, edge, sizes, bw, k,
                                   bw_down, out_bytes)
        assert decision.point == bf_p
        assert decision.predicted_latency == pytest.approx(
            bf_val, rel=1e-9, abs=1e-12)


class TestSemantics:
    def test_tie_break_prefers_latest(self):
        # All candidates equal: zero compute both sides, zero sizes.
        n = 5
        decision = partition_decision([0.0] * n, [0.0] * n, [0] * (n + 1), 8e6)
        assert decision.point == n  # local preferred on ties

    def test_huge_k_forces_local(self, alexnet_engine):
        device = alexnet_engine.device_times
        edge = alexnet_engine.edge_times
        sizes = alexnet_engine.sizes
        decision = partition_decision(device, edge, sizes, 8e6, k=1e6)
        assert decision.point == len(device)

    def test_fast_network_slow_device_forces_full_offload(self):
        device = [1.0, 1.0, 1.0]
        edge = [1e-6, 1e-6, 1e-6]
        sizes = [100, 100, 100, 0]
        decision = partition_decision(device, edge, sizes, 1e9)
        assert decision.point == 0

    def test_candidates_vector_shape(self):
        decision = partition_decision([0.1] * 4, [0.01] * 4, [10] * 4 + [0], 8e6)
        assert decision.candidates.shape == (5,)
        assert decision.predicted_latency == decision.candidates[decision.point]

    def test_is_local_and_full_flags(self):
        n = 3
        local = partition_decision([1e-9] * n, [1.0] * n, [10**9] * n + [0], 1e3)
        assert local.is_local and not local.is_full_offload
        full = partition_decision([10.0] * n, [1e-9] * n, [0, 10, 10, 0], 1e9)
        assert full.is_full_offload and not full.is_local

    def test_k_monotonically_discourages_offloading(self, alexnet_engine):
        """Larger k never moves the partition point earlier."""
        last_point = 0
        for k in (1.0, 2.0, 5.0, 10.0, 50.0, 200.0):
            point = alexnet_engine.decide(8e6, k=k).point
            assert point >= last_point
            last_point = point

    def test_bandwidth_monotonically_encourages_offloading(self, alexnet_engine):
        """More bandwidth never moves the partition point later."""
        last_point = alexnet_engine.num_nodes
        for bw in (1e6, 2e6, 4e6, 8e6, 16e6, 32e6, 64e6):
            point = alexnet_engine.decide(bw).point
            assert point <= last_point
            last_point = point


class TestValidation:
    def test_k_below_one_rejected(self):
        with pytest.raises(ValueError, match="k"):
            partition_decision([1.0], [1.0], [1, 0], 8e6, k=0.5)

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            partition_decision([1.0], [1.0], [1, 0], 0.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            partition_decision([1.0, 2.0], [1.0], [1, 1, 0], 8e6)
        with pytest.raises(ValueError):
            partition_decision([1.0], [1.0], [1, 1, 0], 8e6)

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            partition_decision([-1.0], [1.0], [1, 0], 8e6)
        with pytest.raises(ValueError):
            partition_decision([1.0], [-1.0], [1, 0], 8e6)

    def test_nonpositive_download_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            partition_decision([1.0], [1.0], [1, 0], 8e6, bandwidth_down=0.0)


class TestHelpers:
    def test_prefix_semantics(self):
        prefix = compute_prefix_device([1.0, 2.0, 3.0])
        np.testing.assert_allclose(prefix, [0, 1, 3, 6])

    def test_suffix_semantics(self):
        suffix = compute_suffix_edge([1.0, 2.0, 3.0])
        np.testing.assert_allclose(suffix, [6, 5, 3, 0])

    def test_precomputed_arrays_match_direct(self, alexnet_engine):
        direct = partition_decision(
            alexnet_engine.device_times,
            alexnet_engine.edge_times,
            alexnet_engine.sizes,
            8e6,
            k=3.0,
        )
        via_engine = alexnet_engine.decide(8e6, k=3.0)
        assert direct.point == via_engine.point
        np.testing.assert_allclose(direct.candidates, via_engine.candidates)


class TestDecideExitPins:
    """Deterministic (exit, point) pins on the profiled squeezenet exits."""

    def test_sla_none_is_decide_bitwise(self, squeezenet_exit_engine):
        eng = squeezenet_exit_engine
        plain = eng.decide(8e6, k=3.0)
        ed = eng.decide_exit(None, 8e6, k=3.0)
        assert ed.exit_index == eng.num_exits - 1
        assert ed.feasible is True
        assert ed.point == plain.point
        assert ed.predicted_latency == plain.predicted_latency
        assert np.array_equal(ed.decision.candidates, plain.candidates)
        assert ed.decisions[:-1] == (None,) * (eng.num_exits - 1)

    def test_generous_sla_keeps_full_accuracy(self, squeezenet_exit_engine):
        eng = squeezenet_exit_engine
        plain = eng.decide(8e6, k=1.0)
        ed = eng.decide_exit(60.0, 8e6, k=1.0)
        assert ed.exit_index == eng.num_exits - 1
        assert ed.feasible is True
        assert ed.accuracy == eng.exit_accuracy()
        assert ed.point == plain.point
        assert ed.predicted_latency == plain.predicted_latency

    def test_impossible_sla_falls_back_to_fastest(self, squeezenet_exit_engine):
        eng = squeezenet_exit_engine
        ed = eng.decide_exit(1e-9, 8e6, k=1.0)
        assert ed.feasible is False
        latencies = [d.predicted_latency for d in ed.decisions]
        assert ed.predicted_latency == min(latencies)
        assert ed.exit_index == latencies.index(min(latencies))

    def test_tight_sla_trades_accuracy_for_latency(self, squeezenet_exit_engine):
        eng = squeezenet_exit_engine
        full = eng.decide(8e6, k=1.0).predicted_latency
        fastest = min(
            eng.exit_engine(e).decide(8e6, k=1.0).predicted_latency
            for e in range(eng.num_exits))
        assert fastest < full  # early exits genuinely cheaper
        sla = (fastest + full) / 2
        ed = eng.decide_exit(sla, 8e6, k=1.0)
        assert ed.feasible is True
        assert ed.exit_index < eng.num_exits - 1
        assert ed.predicted_latency <= sla
        assert ed.accuracy < eng.exit_accuracy()
        # Latest feasible: every later exit misses the deadline.
        for e in range(ed.exit_index + 1, eng.num_exits):
            assert ed.decisions[e].predicted_latency > sla

    def test_accuracy_monotone_over_sla_grid(self, squeezenet_exit_engine):
        eng = squeezenet_exit_engine
        grid = [0.001, 0.01, 0.05, 0.1, 0.5, 2.0, 60.0]
        accs = [eng.decide_exit(s, 8e6, k=1.0).accuracy for s in grid]
        assert accs == sorted(accs)

    def test_invalid_sla_rejected(self, squeezenet_exit_engine):
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="sla_s"):
                squeezenet_exit_engine.decide_exit(bad, 8e6)

    def test_exit_free_engine_decide_exit_is_decide(self, alexnet_engine):
        eng = alexnet_engine
        plain = eng.decide(8e6, k=2.0)
        for sla in (None, 0.05, 100.0):
            ed = eng.decide_exit(sla, 8e6, k=2.0)
            assert ed.exit_index == 0
            assert ed.point == plain.point
            assert ed.predicted_latency == plain.predicted_latency
            assert ed.accuracy == 1.0
