"""JSON serialisation round trips."""

import json

import pytest

from repro.graph.serialize import graph_from_json, graph_to_json
from repro.models import build_model


class TestRoundTrip:
    def test_chain_round_trip(self, chain_graph):
        restored = graph_from_json(graph_to_json(chain_graph))
        assert restored.topological_order() == chain_graph.topological_order()
        assert restored.output_name == chain_graph.output_name
        assert restored.input_spec == chain_graph.input_spec

    def test_attrs_preserved(self, chain_graph):
        restored = graph_from_json(graph_to_json(chain_graph))
        assert restored.node("conv").attrs == chain_graph.node("conv").attrs

    def test_tuple_attrs_survive(self):
        from repro.graph.builder import GraphBuilder

        b = GraphBuilder("g", (1, 3, 17, 17))
        x = b.conv(b.input, 4, kernel=(1, 7), padding=(0, 3), name="c")
        b.output(x)
        g = b.build()
        restored = graph_from_json(graph_to_json(g))
        assert restored.node("c").attrs["kernel"] == (1, 7)
        assert restored.node("c").output == g.node("c").output

    @pytest.mark.parametrize("model", ["alexnet", "squeezenet", "resnet18"])
    def test_zoo_round_trip(self, model):
        g = build_model(model)
        restored = graph_from_json(graph_to_json(g))
        assert restored.total_flops() == g.total_flops()
        assert restored.transmission_sizes() == g.transmission_sizes()

    def test_deterministic_output(self, chain_graph):
        assert graph_to_json(chain_graph) == graph_to_json(chain_graph)

    def test_version_check(self, chain_graph):
        payload = json.loads(graph_to_json(chain_graph))
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="version"):
            graph_from_json(json.dumps(payload))

    def test_round_trip_revalidates(self, chain_graph):
        payload = json.loads(graph_to_json(chain_graph))
        payload["nodes"][0]["inputs"] = ["missing"]
        with pytest.raises(Exception):
            graph_from_json(json.dumps(payload))
