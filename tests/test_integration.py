"""Cross-module integration and failure-injection scenarios."""

import numpy as np

from repro.core.engine import LoADPartEngine
from repro.graph.serialize import graph_from_json, graph_to_json
from repro.hardware.background import U100H, LoadSchedule
from repro.models import build_model
from repro.network.traces import ConstantTrace, RandomWalkTrace, StepTrace
from repro.profiling.predictor import LatencyPredictor
from repro.runtime.system import OffloadingSystem, SystemConfig


class TestArtifactPipeline:
    """The deployment path of Fig. 3: both sides load the same files."""

    def test_model_and_predictors_from_disk(self, tmp_path, trained_report):
        graph = build_model("squeezenet")
        (tmp_path / "model.json").write_text(graph_to_json(graph))
        (tmp_path / "m_user.json").write_text(trained_report.user_predictor.to_json())
        (tmp_path / "m_edge.json").write_text(trained_report.edge_predictor.to_json())

        # "Device" and "server" each reload from the artifacts.
        device_graph = graph_from_json((tmp_path / "model.json").read_text())
        server_graph = graph_from_json((tmp_path / "model.json").read_text())
        m_user = LatencyPredictor.from_json((tmp_path / "m_user.json").read_text())
        m_edge = LatencyPredictor.from_json((tmp_path / "m_edge.json").read_text())

        device_engine = LoADPartEngine(device_graph, m_user, m_edge)
        server_engine = LoADPartEngine(server_graph, m_user, m_edge)
        # Both sides agree on the split for any conditions: the partition
        # point alone is enough to coordinate (the paper's protocol).
        for bw in (1e6, 8e6, 64e6):
            for k in (1.0, 20.0):
                assert device_engine.decide(bw, k=k).point == server_engine.decide(bw, k=k).point

    def test_reloaded_engine_runs_the_system(self, tmp_path, trained_report):
        graph = build_model("alexnet")
        text = graph_to_json(graph)
        engine = LoADPartEngine(
            graph_from_json(text),
            LatencyPredictor.from_json(trained_report.user_predictor.to_json()),
            LatencyPredictor.from_json(trained_report.edge_predictor.to_json()),
        )
        system = OffloadingSystem(engine, ConstantTrace(8e6), config=SystemConfig(seed=0))
        timeline = system.run(3.0)
        assert len(timeline) > 3


class TestFailureInjection:
    def test_bandwidth_collapse_mid_run(self, squeezenet_engine):
        """Link drops from 64 Mbps to 0.5 Mbps: the system degrades to
        local inference instead of stalling on uploads."""
        trace = StepTrace([(0.0, 64e6), (20.0, 0.5e6)])
        system = OffloadingSystem(squeezenet_engine, trace, config=SystemConfig(seed=1))
        timeline = system.run(60.0)
        early = timeline.between(5.0, 20.0)
        late = timeline.between(40.0, 60.0)
        n = squeezenet_engine.num_nodes
        assert np.median(early.points) < n
        assert np.all(late.points == n)
        # Latency is bounded by local inference, not by the dead link.
        assert late.mean_latency() < 0.5

    def test_bandwidth_recovery(self, squeezenet_engine):
        trace = StepTrace([(0.0, 0.5e6), (20.0, 32e6)])
        system = OffloadingSystem(squeezenet_engine, trace, config=SystemConfig(seed=1))
        timeline = system.run(60.0)
        late = timeline.between(40.0, 60.0)
        assert np.median(late.points) < squeezenet_engine.num_nodes

    def test_permanent_saturation_converges_to_local(self, squeezenet_engine):
        system = OffloadingSystem(
            squeezenet_engine,
            ConstantTrace(8e6),
            load_schedule=LoadSchedule([(0.0, U100H)]),
            config=SystemConfig(seed=2),
        )
        timeline = system.run(60.0)
        tail = timeline.between(30.0, 60.0)
        n = squeezenet_engine.num_nodes
        assert np.all(tail.points == n)

    def test_cold_start_without_probes(self, squeezenet_engine):
        """The very first request uses the estimator's initial value and
        still succeeds (no crash, sane record)."""
        from repro.network.channel import Channel
        from repro.runtime.client import UserDevice
        from repro.runtime.server import EdgeServer

        server = EdgeServer(squeezenet_engine, seed=1)
        device = UserDevice(squeezenet_engine, server,
                            Channel(ConstantTrace(8e6)), seed=2)
        record = device.request_inference(0.0)  # no profiler_tick first
        assert record.total_s > 0
        assert record.estimated_bandwidth_bps == 8e6  # initial default

    def test_jittery_link_stays_stable(self, squeezenet_engine):
        """A noisy random-walk link never produces pathological decisions."""
        trace = RandomWalkTrace(8e6, sigma=0.5, step_s=0.5, duration_s=40.0,
                                min_bps=1e6, max_bps=64e6, seed=9)
        system = OffloadingSystem(squeezenet_engine, trace, config=SystemConfig(seed=3))
        timeline = system.run(40.0)
        # All latencies bounded by (local + margin); no runaway requests.
        assert timeline.latencies.max() < 1.0
        assert len(timeline) > 50

    def test_monitor_k_cap_prevents_blowup(self, squeezenet_engine):
        """Even absurd observed/predicted ratios leave k finite and the
        decision well-defined."""
        from repro.core.load_factor import LoadFactorMonitor

        monitor = LoadFactorMonitor(max_factor=1000.0)
        monitor.record(0.0, actual_s=1e6, predicted_s=1e-9)
        k = monitor.refresh(0.0)
        assert k == 1000.0
        decision = squeezenet_engine.decide(8e6, k=k)
        assert decision.point == squeezenet_engine.num_nodes

    def test_think_time_zero(self, squeezenet_engine):
        """Back-to-back requests with no gap still advance the clock."""
        system = OffloadingSystem(
            squeezenet_engine, ConstantTrace(8e6),
            config=SystemConfig(seed=4, think_time_s=0.0),
        )
        timeline = system.run(2.0)
        assert len(timeline) >= 2
        assert np.all(np.diff(timeline.times) > 0)
