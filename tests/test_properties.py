"""Hypothesis property tests over randomly generated DAGs.

Random graphs exercise the structural invariants the hand-written graphs
cannot: arbitrary branching, skip connections, and joins.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.builder import GraphBuilder
from repro.graph.partitioner import GraphPartitioner
from repro.nn.executor import GraphExecutor, SegmentExecutor
from repro.nn.parallel import ParallelConfig
from repro.nn.plan import GraphPlan
from tests.helpers import brute_force


@st.composite
def random_dag(draw):
    """A random small NCHW DAG built from shape-preserving ops."""
    rng_seed = draw(st.integers(0, 2**31))
    n_nodes = draw(st.integers(2, 14))
    channels = draw(st.sampled_from([2, 4, 8]))
    size = draw(st.sampled_from([4, 6, 8]))
    rng = np.random.default_rng(rng_seed)

    b = GraphBuilder(f"rand{rng_seed}", (1, channels, size, size))
    produced = [b.input]
    for i in range(n_nodes):
        kind = rng.choice(["conv", "relu", "bn", "add", "sigmoid"])
        src = produced[int(rng.integers(0, len(produced)))]
        if kind == "conv":
            name = b.conv(src, channels, kernel=3, padding=1, name=f"conv{i}")
        elif kind == "relu":
            name = b.relu(src, name=f"relu{i}")
        elif kind == "bn":
            name = b.batchnorm(src, name=f"bn{i}")
        elif kind == "sigmoid":
            name = b.sigmoid(src, name=f"sig{i}")
        else:
            other = produced[int(rng.integers(0, len(produced)))]
            if other == src:
                name = b.relu(src, name=f"relu{i}")
            else:
                name = b.add(src, other, name=f"add{i}")
        produced.append(name)

    # Join every loose end so the graph has a single output and no dead nodes.
    graph = b.graph
    consumers = graph.consumers()
    loose = [n for n in graph.nodes if not consumers[n]]
    while len(loose) > 1:
        a, c = loose[0], loose[1]
        joined = b.add(a, c, name=f"join_{a}_{c}")
        loose = [joined] + loose[2:]
    if not consumers[b.input] :
        pass  # input always consumed: first node uses it
    b.output(loose[0])
    return b.build()


class TestGraphInvariants:
    @given(graph=random_dag())
    @settings(max_examples=40, deadline=None)
    def test_topological_order_respects_edges(self, graph):
        order = graph.topological_order()
        assert sorted(order) == sorted(graph.nodes)
        pos = {name: i for i, name in enumerate(order)}
        for node in graph.nodes.values():
            for dep in node.inputs:
                if dep != graph.input_name:
                    assert pos[dep] < pos[node.name]

    @given(graph=random_dag())
    @settings(max_examples=40, deadline=None)
    def test_cut_sizes_well_formed(self, graph):
        sizes = graph.transmission_sizes()
        assert len(sizes) == len(graph) + 1
        assert sizes[0] == graph.input_spec.nbytes
        assert sizes[-1] == 0
        assert all(s >= 0 for s in sizes)

    @given(graph=random_dag())
    @settings(max_examples=40, deadline=None)
    def test_cut_crossing_is_exact(self, graph):
        """Every crossing tensor is consumed by the tail; nothing else is."""
        order = graph.topological_order()
        cuts = graph.cuts()
        for cut in cuts:
            head = set(order[: cut.index]) | {graph.input_name}
            tail = set(order[cut.index:])
            needed = set()
            for name in tail:
                for dep in graph.node(name).inputs:
                    if dep in head:
                        needed.add(dep)
            assert set(cut.crossing) == needed

    @given(graph=random_dag(), point_frac=st.floats(0.0, 1.0))
    @settings(max_examples=40, deadline=None)
    def test_partition_segments_cover_graph(self, graph, point_frac):
        partitioner = GraphPartitioner(graph)
        p = round(point_frac * len(graph))
        part = partitioner.partition(p)
        head = {n.name for n in part.head.compute_nodes}
        tail = {n.name for n in part.tail.compute_nodes}
        assert head | tail == set(graph.nodes)
        assert not head & tail


class TestSerialisationRoundTrip:
    @given(graph=random_dag())
    @settings(max_examples=30, deadline=None)
    def test_json_round_trip_preserves_structure(self, graph):
        from repro.graph.serialize import graph_from_json, graph_to_json

        restored = graph_from_json(graph_to_json(graph))
        assert restored.topological_order() == graph.topological_order()
        assert restored.transmission_sizes() == graph.transmission_sizes()
        assert restored.total_flops() == graph.total_flops()
        for name in graph.nodes:
            assert restored.node(name).output == graph.node(name).output

    @given(graph=random_dag(), seed=st.integers(0, 500))
    @settings(max_examples=15, deadline=None)
    def test_round_tripped_graph_executes_identically(self, graph, seed):
        from repro.graph.serialize import graph_from_json, graph_to_json

        restored = graph_from_json(graph_to_json(graph))
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(graph.input_spec.shape).astype(np.float32)
        a = GraphExecutor(graph, seed=seed).run(x)
        b = GraphExecutor(restored, seed=seed).run(x)
        np.testing.assert_array_equal(a, b)


class TestExecutionEquivalence:
    @given(graph=random_dag(), point_frac=st.floats(0.0, 1.0), seed=st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_partitioned_execution_matches(self, graph, point_frac, seed):
        """The headline invariant on arbitrary DAGs."""
        p = round(point_frac * len(graph))
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(graph.input_spec.shape).astype(np.float32)
        executor = GraphExecutor(graph, seed=seed)
        ref = executor.run(x)

        part = GraphPartitioner(graph).partition(p)
        boundary = {}
        if p > 0:
            head = SegmentExecutor(part.head, params=executor.params)
            boundary = dict(head.run({graph.input_name: x}))
        if graph.input_name in part.transfer_specs:
            boundary[graph.input_name] = x
        if part.tail.is_empty:
            got = boundary[graph.output_name]
        else:
            tail = SegmentExecutor(part.tail, params=executor.params)
            got = tail.run(boundary)[graph.output_name]
        np.testing.assert_allclose(got, ref, rtol=1e-4, atol=1e-5)


def _chain_ancestors(chain_deps):
    """Transitive closure of the chain DAG: ancestors[c] = chains that
    must complete before chain ``c`` may start."""
    ancestors = []
    for c, deps in enumerate(chain_deps):
        acc = set()
        for d in deps:
            acc.add(d)
            acc |= ancestors[d]  # chain ids are topologically ordered
        ancestors.append(acc)
    return ancestors


def _happens_before(i, j, chain_of, ancestors, order):
    """Is compute step ``i`` guaranteed to finish before ``j`` starts,
    under *every* legal chain interleaving?"""
    ci, cj = chain_of[order[i]], chain_of[order[j]]
    if ci == cj:
        return i < j  # within a chain, steps run in compile order
    return ci in ancestors[cj]


class TestChainSlicingProperties:
    """The chain pass on arbitrary DAGs: partition, deps, arena aliasing."""

    @given(graph=random_dag())
    @settings(max_examples=30, deadline=None)
    def test_chains_partition_steps_exactly_once(self, graph):
        plan = GraphPlan(graph, parallel=ParallelConfig(threads=2))
        info = plan.chain_info
        assert info is not None
        step_names = [name for name, _ in plan._core._steps]
        step_pos = {name: i for i, name in enumerate(step_names)}
        from_chains = [name for chain in info.chains for name in chain]
        # Every compiled step lands in exactly one chain...
        assert sorted(from_chains) == sorted(step_names)
        # ...and within a chain, steps keep their compile order.
        for chain in info.chains:
            positions = [step_pos[name] for name in chain]
            assert positions == sorted(positions)

    @given(graph=random_dag())
    @settings(max_examples=30, deadline=None)
    def test_chains_respect_dependencies(self, graph):
        """Every data edge is safe under any interleaving: produced in the
        same chain earlier, or in a chain the consumer's chain awaits."""
        plan = GraphPlan(graph, parallel=ParallelConfig(threads=2))
        info = plan.chain_info
        ancestors = _chain_ancestors(info.chain_deps)
        for name, j in info.node_index.items():
            node = graph.node(name)
            for dep in node.inputs:
                if dep not in info.node_index:
                    continue  # external input: written before any chain runs
                i = info.node_index[dep]
                ci, cj = info.chain_of[dep], info.chain_of[name]
                if ci == cj:
                    assert i < j
                else:
                    assert ci in ancestors[cj], \
                        f"edge {dep}->{name} crosses chains without ordering"

    @given(graph=random_dag())
    @settings(max_examples=25, deadline=None)
    def test_no_concurrent_lifetimes_share_arena_storage(self, graph):
        """If two tensors share a workspace buffer, all accesses to one
        must happen-before all accesses to the other — under every chain
        interleaving, not just the serial compile order."""
        plan = GraphPlan(graph, parallel=ParallelConfig(threads=2))
        core = plan._core
        info = plan.chain_info
        ancestors = _chain_ancestors(info.chain_deps)
        order = list(info.node_index)  # names by compile index
        order.sort(key=info.node_index.get)

        # Access sets per storage root: producing step + every reader.
        touches = {}
        for name, idx in info.node_index.items():
            touches.setdefault(info.roots[name], set()).add(idx)
            for dep in graph.node(name).inputs:
                if dep in info.roots:
                    touches.setdefault(info.roots[dep], set()).add(idx)

        roots = [r for r in touches if r in core._bound]
        for a in range(len(roots)):
            for b_i in range(a + 1, len(roots)):
                ra, rb = roots[a], roots[b_i]
                if not np.shares_memory(core._bound[ra], core._bound[rb]):
                    continue
                # Shared storage (arena reuse or in-place rewrite): one
                # lifetime must entirely precede the other.
                ok = (
                    all(_happens_before(i, j, info.chain_of, ancestors, order)
                        for i in touches[ra] for j in touches[rb] if i != j)
                    or all(_happens_before(j, i, info.chain_of, ancestors, order)
                           for i in touches[ra] for j in touches[rb] if i != j)
                )
                assert ok, f"roots {ra!r} and {rb!r} can overlap while sharing storage"

    @given(graph=random_dag(), seed=st.integers(0, 500),
           threads=st.sampled_from([2, 4]))
    @settings(max_examples=20, deadline=None)
    def test_parallel_run_bit_identical_on_random_dags(self, graph, seed, threads):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(graph.input_spec.shape).astype(np.float32)
        serial = GraphPlan(graph, seed=seed)
        parallel = GraphPlan(graph, seed=seed, params=serial.params,
                             parallel=ParallelConfig(threads=threads))
        assert parallel.run(x).tobytes() == serial.run(x).tobytes()


class TestAlgorithmOnRandomGraphs:
    @given(graph=random_dag(), seed=st.integers(0, 2**31),
           bw=st.floats(1e5, 1e8), k=st.floats(1.0, 100.0))
    @settings(max_examples=30, deadline=None)
    def test_algorithm1_on_real_cut_sizes(self, graph, seed, bw, k):
        """Algorithm 1 with real graph cut sizes equals brute force."""
        from repro.core.partition_algorithm import partition_decision

        rng = np.random.default_rng(seed)
        n = len(graph)
        device = rng.random(n).tolist()
        edge = (rng.random(n) * 0.01).tolist()
        sizes = graph.transmission_sizes()
        decision = partition_decision(device, edge, sizes, bw, k=k)
        bf_p, bf_val = brute_force(device, edge, sizes, bw, k)
        assert decision.point == bf_p
        assert decision.predicted_latency == pytest.approx(bf_val, rel=1e-9)


class _TimesPredictor:
    """Duck-typed predictor bundle with fixed per-node times.

    The engine only needs ``.side`` and ``.predict_nodes`` from its
    predictors, so property tests can plant arbitrary latency landscapes
    without training NNLS models.
    """

    def __init__(self, side, times):
        self.side = side
        self._times = np.asarray(times, dtype=np.float64)

    def predict_nodes(self, profiles):
        assert len(profiles) == len(self._times)
        return self._times.copy()


class _GeometryPredictor:
    """Duck-typed predictor keyed on node *geometry*, not position.

    Exit sub-graphs share their backbone prefix but differ in length, so a
    positional times table cannot serve every exit engine.  Hashing each
    profile's geometry yields deterministic per-node times that are
    automatically consistent across all sub-graphs containing the node.
    """

    def __init__(self, side, seed, unit_s):
        self.side = side
        self._seed = int(seed)
        self._unit_s = float(unit_s)

    def _time(self, p):
        import zlib
        key = repr((self.side, self._seed, p.op, p.flops,
                    p.c_in, p.c_out, p.h_out, p.w_out))
        h = zlib.crc32(key.encode())
        return ((h % 1000) + 1) * self._unit_s

    def predict_nodes(self, profiles):
        return np.array([self._time(p) for p in profiles], dtype=np.float64)


@st.composite
def random_exit_engine(draw):
    """A random DAG engine carrying 0-3 random early-exit branches.

    Returns ``(engine, edge_predictor)`` — the predictor rides along for
    fleet tests that wrap it in per-server :class:`ScaledPredictor`\\ s.
    """
    from repro.core.engine import LoADPartEngine
    from repro.graph.exits import ExitSpec, build_exit_branches

    graph = draw(random_dag())
    seed = draw(st.integers(0, 2**31))
    order = graph.topological_order()
    num_specs = draw(st.integers(0, min(3, len(order))))
    positions = draw(st.lists(
        st.integers(0, len(order) - 1),
        min_size=num_specs, max_size=num_specs, unique=True))
    accs = sorted(draw(st.lists(
        st.floats(0.3, 0.69), min_size=num_specs, max_size=num_specs)))
    specs = [ExitSpec(attach=order[pos], accuracy=acc)
             for pos, acc in zip(sorted(positions), accs)]
    user = _GeometryPredictor("device", seed, 1e-3)
    edge = _GeometryPredictor("edge", seed, 1e-5)
    if not specs:
        return LoADPartEngine(graph, user, edge), edge
    branches = build_exit_branches(graph, specs, final_accuracy=0.7,
                                   num_classes=8)
    return LoADPartEngine(graph, user, edge, exits=branches), edge


class TestExitDifferential:
    """``decide_exit`` vs the exhaustive ``(exit, point)`` reference.

    Every random scenario draws a DAG, a random exit-branch set (possibly
    empty), a bandwidth, a load factor and an SLA (possibly ``None``),
    then demands *bitwise* agreement — exit index, partition point,
    feasibility, predicted latency, accuracy, and every per-exit
    candidate vector — between the one-pass-per-exit scan and the scalar
    brute-force enumeration, including the no-feasible-exit fallback and
    the ``point == n`` local edge.
    """

    @given(data=st.data(), setup=random_exit_engine())
    @settings(max_examples=40, deadline=None)
    def test_exit_scan_matches_brute_force(self, data, setup):
        from repro.core.engine import exit_brute_force

        engine, _ = setup

        bw = data.draw(st.floats(1e5, 1e8), label="bw")
        k = data.draw(st.floats(1.0, 50.0), label="k")
        sla = data.draw(
            st.one_of(st.none(), st.floats(1e-6, 10.0)), label="sla")
        offload_only = data.draw(st.booleans(), label="offload_only")

        got = engine.decide_exit(sla, bw, k=k, offload_only=offload_only)
        ref = exit_brute_force(engine, sla, bw, k=k,
                               offload_only=offload_only)

        assert got.exit_index == ref.exit_index
        assert got.feasible == ref.feasible
        assert got.point == ref.point
        assert got.predicted_latency == ref.predicted_latency  # bitwise
        assert got.accuracy == ref.accuracy
        assert got.sla_s == ref.sla_s
        assert len(got.decisions) == len(ref.decisions) == engine.num_exits
        for dg, dr in zip(got.decisions, ref.decisions):
            if dg is None:
                assert dr is None
                continue
            assert dg.point == dr.point
            assert dg.predicted_latency == dr.predicted_latency
            assert np.array_equal(dg.candidates, dr.candidates)

    @given(data=st.data(), setup=random_exit_engine())
    @settings(max_examples=25, deadline=None)
    def test_exit_fleet_scan_matches_brute_force(self, data, setup):
        from repro.core.engine import ServerProfile, exit_fleet_brute_force
        from repro.profiling.predictor import ScaledPredictor

        engine, edge_base = setup
        num = data.draw(st.integers(1, 3), label="num_servers")
        profiles, bandwidths, ks = [], [], []
        for s in range(num):
            scale = data.draw(
                st.one_of(st.none(), st.floats(0.25, 4.0)), label=f"scale{s}")
            profiles.append(ServerProfile(
                edge_predictor=(None if scale is None else ScaledPredictor(
                    edge_base, scale)),
                extra_latency_s=data.draw(st.floats(0.0, 0.05),
                                          label=f"extra{s}"),
            ))
            bandwidths.append(data.draw(st.floats(1e5, 1e8), label=f"bw{s}"))
            ks.append(data.draw(st.floats(1.0, 50.0), label=f"k{s}"))
        sla = data.draw(
            st.one_of(st.none(), st.floats(1e-6, 10.0)), label="sla")

        got = engine.decide_exit_fleet(sla, bandwidths, ks, profiles=profiles)
        ref = exit_fleet_brute_force(engine, sla, bandwidths, ks,
                                     profiles=profiles)

        assert got.exit_index == ref.exit_index
        assert got.feasible == ref.feasible
        assert got.point == ref.point
        assert got.server == ref.server
        assert got.predicted_latency == ref.predicted_latency  # bitwise
        assert got.accuracy == ref.accuracy
        for fg, fr in zip(got.decisions, ref.decisions):
            if fg is None:
                assert fr is None
                continue
            assert fg.point == fr.point
            assert fg.server == fr.server
            assert fg.predicted_latency == fr.predicted_latency

    @given(data=st.data(), setup=random_exit_engine())
    @settings(max_examples=30, deadline=None)
    def test_sla_monotonicity(self, data, setup):
        """A looser SLA never loses accuracy, and feasibility is monotone:
        the feasible set only grows as the deadline relaxes."""
        engine, _ = setup
        bw = data.draw(st.floats(1e5, 1e8), label="bw")
        k = data.draw(st.floats(1.0, 50.0), label="k")
        s1 = data.draw(st.floats(1e-6, 10.0), label="sla1")
        s2 = data.draw(st.floats(1e-6, 10.0), label="sla2")
        tight, loose = min(s1, s2), max(s1, s2)
        d_tight = engine.decide_exit(tight, bw, k=k)
        d_loose = engine.decide_exit(loose, bw, k=k)
        assert d_tight.accuracy <= d_loose.accuracy
        if d_tight.feasible:
            assert d_loose.feasible
            assert d_tight.exit_index <= d_loose.exit_index

    @given(data=st.data(), setup=random_exit_engine())
    @settings(max_examples=30, deadline=None)
    def test_sla_none_is_the_plain_scan(self, data, setup):
        """``sla_s=None`` reproduces ``decide()`` bit-for-bit: final exit,
        same point, same latency, same candidate vector."""
        engine, _ = setup
        bw = data.draw(st.floats(1e5, 1e8), label="bw")
        k = data.draw(st.floats(1.0, 50.0), label="k")
        plain = engine.decide(bw, k=k)
        ed = engine.decide_exit(None, bw, k=k)
        assert ed.exit_index == engine.num_exits - 1
        assert ed.feasible is True
        assert ed.point == plain.point
        assert ed.predicted_latency == plain.predicted_latency
        assert np.array_equal(ed.decision.candidates, plain.candidates)
        assert all(d is None for d in ed.decisions[:-1])


class TestFleetDifferential:
    """``decide_fleet`` vs the exhaustive heterogeneous reference.

    Every random scenario draws per-server profiles (predictor scale,
    bandwidth prior, link position), load factors and live bandwidth
    estimates, then demands *bitwise* agreement — point, server,
    predicted latency and all per-server candidate vectors — between the
    O(n)-per-server scan and the explicit ``(point, server)``
    enumeration, including the all-servers-masked and ``point == n``
    edges.  The direct-summation objective must agree numerically at
    every candidate the scan produced.
    """

    @given(data=st.data(), graph=random_dag())
    @settings(max_examples=40, deadline=None)
    def test_heterogeneous_scan_matches_brute_force(self, data, graph):
        from repro.core.engine import (
            LoADPartEngine, ServerProfile, fleet_brute_force, fleet_objective,
        )
        from repro.profiling.predictor import ScaledPredictor

        seed = data.draw(st.integers(0, 2**31), label="times_seed")
        rng = np.random.default_rng(seed)
        n = len(graph)
        edge_base = _TimesPredictor("edge", rng.random(n) * 0.01)
        engine = LoADPartEngine(
            graph, _TimesPredictor("device", rng.random(n)), edge_base)

        num = data.draw(st.integers(1, 4), label="num_servers")
        profiles, bandwidths, ks = [], [], []
        for s in range(num):
            scale = data.draw(
                st.one_of(st.none(), st.floats(0.25, 4.0)), label=f"scale{s}")
            prior = data.draw(
                st.one_of(st.none(), st.floats(1e5, 1e8)), label=f"prior{s}")
            profiles.append(ServerProfile(
                edge_predictor=(None if scale is None
                                else ScaledPredictor(edge_base, scale)),
                bandwidth_bps=prior,
                extra_latency_s=data.draw(st.floats(0.0, 0.05),
                                          label=f"extra{s}"),
            ))
            live_bw = data.draw(
                st.one_of(st.none(), st.floats(1e5, 1e8)), label=f"bw{s}")
            if live_bw is None and prior is None:
                live_bw = 8e6  # someone must know a bandwidth
            bandwidths.append(live_bw)
            ks.append(data.draw(st.floats(1.0, 50.0), label=f"k{s}"))
        allowed = data.draw(
            st.one_of(st.none(),
                      st.lists(st.integers(0, num - 1), max_size=num)),
            label="allowed")
        offload_only = data.draw(st.booleans(), label="offload_only")

        got = engine.decide_fleet(
            bandwidths, ks, allowed=allowed, offload_only=offload_only,
            profiles=profiles)
        ref = fleet_brute_force(
            engine, bandwidths, ks, allowed=allowed,
            offload_only=offload_only, profiles=profiles)

        assert got.point == ref.point
        assert got.server == ref.server
        assert got.predicted_latency == ref.predicted_latency  # bitwise
        for s, (dg, dr) in enumerate(zip(got.decisions, ref.decisions)):
            if dg is None:
                assert dr is None
                continue
            assert dg.point == dr.point
            assert dg.predicted_latency == dr.predicted_latency
            assert np.array_equal(dg.candidates, dr.candidates)
            # Independent restatement of Problem (1) at spot-check points.
            bw_s = (bandwidths[s] if bandwidths[s] is not None
                    else profiles[s].bandwidth_bps)
            for p in {0, n // 2, n, dg.point}:
                direct = fleet_objective(
                    engine, p, bw_s, k=ks[s],
                    extra_latency_s=profiles[s].extra_latency_s,
                    profile=profiles[s])
                assert direct == pytest.approx(float(dg.candidates[p]),
                                               rel=1e-9, abs=1e-12)

    @given(data=st.data(), graph=random_dag())
    @settings(max_examples=25, deadline=None)
    def test_uniform_profiles_are_the_homogeneous_scan(self, data, graph):
        """Identical profiles reproduce the profile-free scan bit-for-bit."""
        from repro.core.engine import LoADPartEngine, ServerProfile
        from repro.profiling.predictor import ScaledPredictor

        seed = data.draw(st.integers(0, 2**31), label="times_seed")
        rng = np.random.default_rng(seed)
        n = len(graph)
        edge_base = _TimesPredictor("edge", rng.random(n) * 0.01)
        engine = LoADPartEngine(
            graph, _TimesPredictor("device", rng.random(n)), edge_base)
        num = data.draw(st.integers(1, 3), label="num_servers")
        bandwidths = [data.draw(st.floats(1e5, 1e8), label=f"bw{s}")
                      for s in range(num)]
        ks = [data.draw(st.floats(1.0, 50.0), label=f"k{s}")
              for s in range(num)]
        plain = engine.decide_fleet(bandwidths, ks)
        for uniform in (ServerProfile(),
                        ServerProfile(edge_predictor=ScaledPredictor(
                            edge_base, 1.0))):
            dressed = engine.decide_fleet(
                bandwidths, ks, profiles=[uniform] * num)
            assert dressed.point == plain.point
            assert dressed.server == plain.server
            assert dressed.predicted_latency == plain.predicted_latency
            for dp, dd in zip(plain.decisions, dressed.decisions):
                assert np.array_equal(dp.candidates, dd.candidates)
