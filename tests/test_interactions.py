"""Cross-feature interaction matrix: batching × parallelism × resilience × faults.

Batching (PR 2), resilience/fault injection (PR 3) and parallel plans
(PR 4/5) shipped as separate opt-ins; this matrix drives every pairing
through :class:`MultiClientSystem` and pins down the composition
contracts:

- every configuration completes (the drain loop never hangs, with or
  without faults in flight);
- a zero-rate fault plan plus a serial (threads=1) parallel config is
  **byte-identical** to the plain path — opting in without turning
  anything on perturbs nothing;
- thread count never changes what the fleet computes or records — the
  simulated timeline is independent of real execution interleaving.
"""

from __future__ import annotations

import pytest

from repro.network.faults import FaultPlan
from repro.network.streaming import StreamingConfig
from repro.nn.parallel import ParallelConfig
from repro.runtime.batching import BatchingConfig
from repro.runtime.messages import STATUSES
from repro.runtime.multi import MultiClientSystem
from repro.runtime.resilience import ResilienceConfig
from repro.runtime.system import SystemConfig

CLIENTS = 3
DURATION_S = 0.3

#: An active link-fault plan: drops, spikes and one outage window inside
#: the simulated horizon.
ACTIVE_FAULTS = FaultPlan(drop_prob=0.25, latency_spike_prob=0.25,
                          latency_spike_s=0.05,
                          outages=((0.10, 0.14),), seed=5)
#: All rates zero: must be byte-identical to no plan at all (PR 3 contract).
ZERO_FAULTS = FaultPlan(seed=5)


def run_fleet(engine, *, batching=None, parallelism=None, resilience=None,
              faults=None, streaming=None, sla_classes=None, seed=7):
    """One fleet run → (per-timeline record signatures, client outputs)."""
    config = SystemConfig(
        seed=seed, policy="loadpart", functional=True, backend="planned",
        batching=batching, parallelism=parallelism,
        resilience=resilience, faults=faults, streaming=streaming,
        sla_classes=sla_classes,
    )
    system = MultiClientSystem(engine, CLIENTS, config=config)
    result = system.run(DURATION_S)
    signature = tuple(
        tuple((r.request_id, r.partition_point, r.status, r.retries,
               r.batch_size, r.total_s, r.sla_s, r.exit_index, r.met_sla)
              for r in timeline)
        for timeline in result.timelines
    )
    outputs = tuple(
        c.last_output.tobytes() if c.last_output is not None else None
        for c in system.clients
    )
    return result, signature, outputs


@pytest.mark.parametrize("resilience", [None, ResilienceConfig()],
                         ids=["trusting", "resilient"])
@pytest.mark.parametrize("batching", [None, BatchingConfig(window_s=0.004)],
                         ids=["unbatched", "batched"])
class TestInteractionMatrix:
    """{batching} × {threads 1/2} × {resilience} × {faults zero/active}."""

    def test_matrix_completes_and_degenerate_configs_are_plain(
            self, squeezenet_engine, batching, resilience):
        plain = run_fleet(squeezenet_engine, batching=batching,
                          resilience=resilience)
        assert plain[0].total_requests > 0
        runs = {}
        for threads in (1, 2):
            for fault_name, faults in (("zero", ZERO_FAULTS),
                                       ("active", ACTIVE_FAULTS)):
                result, signature, outputs = run_fleet(
                    squeezenet_engine, batching=batching,
                    resilience=resilience, faults=faults,
                    parallelism=ParallelConfig(threads=threads),
                )
                # Fleet completion: the run returned (no hang) and every
                # client issued work with well-formed records.
                assert result.total_requests > 0
                assert len(result.timelines) == CLIENTS
                for timeline in result.timelines:
                    for record in timeline:
                        assert record.status in STATUSES
                runs[(threads, fault_name)] = (signature, outputs)

        # Zero-rate faults + serial scheduling == the plain path, bytewise.
        assert runs[(1, "zero")] == (plain[1], plain[2])
        # Thread count never changes records or outputs, faulty or not.
        for fault_name in ("zero", "active"):
            assert runs[(2, fault_name)] == runs[(1, fault_name)], \
                f"threads changed the {fault_name}-fault fleet"

    def test_resilient_active_fleet_serves_every_request(
            self, squeezenet_engine, batching, resilience):
        """Under active faults the resilient arm stays available (retries
        or local fallback), and the naive arm is allowed to stall — but
        both drain."""
        result, signature, _ = run_fleet(
            squeezenet_engine, batching=batching, resilience=resilience,
            faults=ACTIVE_FAULTS, parallelism=ParallelConfig(threads=2),
        )
        assert result.total_requests > 0
        if resilience is not None:
            assert result.availability == 1.0
            for timeline in signature:
                for (_rid, _point, status, _retries, _bs, total_s,
                     _sla, _exit, _met) in timeline:
                    assert status != "failed"
                    assert total_s != float("inf")


#: Chunked streaming with the full lossless-first codec menu: the joint
#: decision may pick zlib + chunked uploads per request.
STREAMING = StreamingConfig(chunk_bytes=4096)
#: Opt-in that turns nothing on: no chunking, fp32 only.
DEGENERATE_STREAMING = StreamingConfig(chunk_bytes=None, codecs=("fp32",))


@pytest.mark.parametrize("resilience", [None, ResilienceConfig()],
                         ids=["trusting", "resilient"])
@pytest.mark.parametrize("batching", [None, BatchingConfig(window_s=0.004)],
                         ids=["unbatched", "batched"])
class TestStreamingInteractions:
    """Streaming × {batching, threads 1/2, resilience, faults zero/active}."""

    def test_streaming_matrix_completes(self, squeezenet_engine, batching,
                                        resilience):
        runs = {}
        for threads in (1, 2):
            for fault_name, faults in (("zero", ZERO_FAULTS),
                                       ("active", ACTIVE_FAULTS)):
                result, signature, outputs = run_fleet(
                    squeezenet_engine, batching=batching,
                    resilience=resilience, faults=faults,
                    parallelism=ParallelConfig(threads=threads),
                    streaming=STREAMING,
                )
                assert result.total_requests > 0
                assert len(result.timelines) == CLIENTS
                for timeline in result.timelines:
                    for record in timeline:
                        assert record.status in STATUSES
                runs[(threads, fault_name)] = (signature, outputs)
        # Simulated timelines stay independent of real thread interleaving
        # even with the streamed upload path in the loop.
        for fault_name in ("zero", "active"):
            assert runs[(2, fault_name)] == runs[(1, fault_name)], \
                f"threads changed the streamed {fault_name}-fault fleet"

    def test_degenerate_streaming_is_plain_bytewise(
            self, squeezenet_engine, batching, resilience):
        """No chunking + lossless-identity codec + zero-rate faults +
        serial scheduling == the non-streaming path, bytewise."""
        plain = run_fleet(squeezenet_engine, batching=batching,
                          resilience=resilience, faults=ZERO_FAULTS,
                          parallelism=ParallelConfig(threads=1))
        degenerate = run_fleet(squeezenet_engine, batching=batching,
                               resilience=resilience, faults=ZERO_FAULTS,
                               parallelism=ParallelConfig(threads=1),
                               streaming=DEGENERATE_STREAMING)
        assert degenerate[0].total_requests == plain[0].total_requests
        assert (degenerate[1], degenerate[2]) == (plain[1], plain[2])


class TestSeedDeterminism:
    """Identical seeds → identical FleetResult records, across runs and
    thread counts, even with active faults + batching + resilience on
    (the PR 3 dedicated seed-keyed RNG stream under PR 4/5 interleaving)."""

    def _signature(self, engine, threads):
        parallelism = ParallelConfig(threads=threads) if threads else None
        _, signature, outputs = run_fleet(
            engine, batching=BatchingConfig(window_s=0.004),
            resilience=ResilienceConfig(), faults=ACTIVE_FAULTS,
            parallelism=parallelism, seed=11,
        )
        return signature, outputs

    def test_faulty_batched_fleet_reproducible(self, squeezenet_engine):
        first = self._signature(squeezenet_engine, None)
        assert any(len(t) for t in first[0])
        # Same seed, same everything — run-to-run.
        assert self._signature(squeezenet_engine, None) == first
        # ... and across thread counts, including repeat runs.
        for threads in (1, 2, 8):
            assert self._signature(squeezenet_engine, threads) == first, \
                f"threads={threads} changed the faulty fleet's records"
        assert self._signature(squeezenet_engine, 2) == first

    def test_different_fault_seed_changes_the_run(self, squeezenet_engine):
        """Sanity: the determinism above is not vacuous — fault draws do
        shape the timeline."""
        base = run_fleet(
            squeezenet_engine, batching=BatchingConfig(window_s=0.004),
            resilience=ResilienceConfig(), faults=ACTIVE_FAULTS, seed=11,
        )[1]
        other = run_fleet(
            squeezenet_engine, batching=BatchingConfig(window_s=0.004),
            resilience=ResilienceConfig(),
            faults=FaultPlan(drop_prob=0.9, seed=77), seed=11,
        )[1]
        assert base != other


#: Mixed SLA traffic, assigned round-robin: a strict class that forces
#: the exit axis, an SLA-free client (classic path), and a slack class
#: that keeps full accuracy.
SLA_MIX = (0.02, None, 0.5)


@pytest.mark.parametrize("resilience", [None, ResilienceConfig()],
                         ids=["trusting", "resilient"])
@pytest.mark.parametrize("batching", [None, BatchingConfig(window_s=0.004)],
                         ids=["unbatched", "batched"])
class TestSlaInteractions:
    """Mixed strict/slack SLA × {batching} × {threads 1/2} × {resilience}
    × {faults}: fleets complete with sane ``sla_s``/``exit_index``/
    ``met_sla`` stamps, and runs are seed-reproducible."""

    def test_mixed_sla_matrix_completes_with_sane_stamps(
            self, exit_engine_for, batching, resilience):
        engine = exit_engine_for("squeezenet")
        for threads in (1, 2):
            for faults in (None, ACTIVE_FAULTS):
                result, _, _ = run_fleet(
                    engine, batching=batching, resilience=resilience,
                    faults=faults, parallelism=ParallelConfig(threads=threads),
                    sla_classes=SLA_MIX)
                assert result.total_requests > 0
                assert len(result.timelines) == CLIENTS
                for i, timeline in enumerate(result.timelines):
                    expected_sla = SLA_MIX[i % len(SLA_MIX)]
                    for r in timeline:
                        assert r.status in STATUSES
                        assert r.sla_s == expected_sla
                        assert (r.exit_index is None
                                or 0 <= r.exit_index < engine.num_exits)
                        if expected_sla is None:
                            # The classic path, untouched: no exit axis,
                            # no attainment stamp.
                            assert r.met_sla is None
                            assert r.exit_index is None
                        else:
                            assert r.met_sla == (
                                r.completed and r.total_s <= r.sla_s)
                if faults is None:
                    # Fault-free, every SLA request ran the (exit, point)
                    # decision: the strict class trades accuracy (early
                    # exits), the slack class keeps the full network.
                    strict, free, slack = result.timelines[:3]
                    assert all(r.exit_index is not None for r in strict)
                    assert any(r.exit_index < engine.num_exits - 1
                               for r in strict)
                    assert any(r.exit_index == engine.num_exits - 1
                               for r in slack)
                    attainment = result.sla_attainment()
                    assert 0.0 <= attainment <= 1.0

    def test_mixed_sla_fleet_reproducible(self, exit_engine_for, batching,
                                          resilience):
        engine = exit_engine_for("squeezenet")
        kwargs = dict(batching=batching, resilience=resilience,
                      faults=ACTIVE_FAULTS,
                      parallelism=ParallelConfig(threads=2),
                      sla_classes=SLA_MIX)
        _, sig_a, out_a = run_fleet(engine, **kwargs)
        _, sig_b, out_b = run_fleet(engine, **kwargs)
        assert sig_a == sig_b
        assert out_a == out_b
